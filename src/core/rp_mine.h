// RP-Mine (Figure 3): the naive recycling miner. Depth-first projected
// mining directly over physically materialized slices, with the
// single-group shortcut of Lemma 3.1.

#ifndef GOGREEN_CORE_RP_MINE_H_
#define GOGREEN_CORE_RP_MINE_H_

#include "core/compressed_miner.h"

namespace gogreen::core {

class RpMineMiner : public CompressedMiner {
 public:
  std::string name() const override { return "rp-mine"; }

  Result<fpm::PatternSet> MineCompressed(const CompressedDb& cdb,
                                         uint64_t min_support) override;
};

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_RP_MINE_H_
