#include "core/recycler.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

/// Session path counters: which branch of the recycling decision answered
/// each query. `recycle.cache_hits` counts answers served from the cached
/// pattern set (filtered and recycled paths both reuse it);
/// `recycle.cache_misses` counts full scratch mines.
void RecordPath(MiningPath path) {
  using obs::MetricRegistry;
  static obs::Counter* hits =
      MetricRegistry::Global().GetCounter("recycle.cache_hits");
  static obs::Counter* misses =
      MetricRegistry::Global().GetCounter("recycle.cache_misses");
  static obs::Counter* filtered =
      MetricRegistry::Global().GetCounter("recycle.filtered_rounds");
  static obs::Counter* recycled =
      MetricRegistry::Global().GetCounter("recycle.recycled_rounds");
  switch (path) {
    case MiningPath::kInitial:
    case MiningPath::kScratch:
      misses->Add(1);
      break;
    case MiningPath::kFiltered:
      hits->Add(1);
      filtered->Add(1);
      break;
    case MiningPath::kRecycled:
      hits->Add(1);
      recycled->Add(1);
      break;
  }
}

}  // namespace

const char* MiningPathName(MiningPath path) {
  switch (path) {
    case MiningPath::kInitial:
      return "initial";
    case MiningPath::kFiltered:
      return "filtered";
    case MiningPath::kRecycled:
      return "recycled";
    case MiningPath::kScratch:
      return "scratch";
  }
  return "?";
}

RecyclingSession::RecyclingSession(fpm::TransactionDb db,
                                   RecyclerOptions options)
    : db_(std::move(db)), options_(options) {}

Result<fpm::PatternSet> RecyclingSession::Mine(uint64_t min_support) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  last_constraints_.reset();
  return MineSupport(min_support);
}

Result<fpm::PatternSet> RecyclingSession::MineFraction(double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("support fraction must be in (0, 1]");
  }
  return Mine(fpm::AbsoluteSupport(fraction, db_.NumTransactions()));
}

Result<fpm::PatternSet> RecyclingSession::Mine(
    const ConstraintSet& constraints) {
  if (constraints.min_support() == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  const ConstraintDelta delta =
      last_constraints_.has_value()
          ? constraints.CompareTo(*last_constraints_)
          : ConstraintDelta::kUnchanged;
  GOGREEN_ASSIGN_OR_RETURN(fpm::PatternSet raw,
                           MineSupport(constraints.min_support()));
  Timer timer;
  fpm::PatternSet filtered = constraints.Filter(raw);
  last_stats_.mine_seconds += timer.ElapsedSeconds();
  last_stats_.delta = delta;
  last_stats_.patterns_returned = filtered.size();
  last_constraints_ = constraints;
  return filtered;
}

void RecyclingSession::SeedCache(fpm::PatternSet fp, uint64_t min_support) {
  GOGREEN_CHECK(min_support > 0);
  cached_fp_ = std::move(fp);
  cached_minsup_ = min_support;
  cdb_.reset();
}

void RecyclingSession::InvalidateCache() {
  cached_fp_ = fpm::PatternSet();
  cached_minsup_ = 0;
  cdb_.reset();
}

Result<fpm::PatternSet> RecyclingSession::MineSupport(uint64_t min_support) {
  last_stats_ = SessionStats();

  if (!options_.enable_recycling || cached_minsup_ == 0) {
    GOGREEN_ASSIGN_OR_RETURN(fpm::PatternSet fp, MineScratch(min_support));
    last_stats_.path = cached_minsup_ == 0 && options_.enable_recycling
                           ? MiningPath::kInitial
                           : MiningPath::kScratch;
    if (options_.enable_recycling) {
      cached_fp_ = fp;
      cached_minsup_ = min_support;
      cdb_.reset();
    }
    last_stats_.patterns_returned = fp.size();
    last_stats_.cached_patterns = cached_fp_.size();
    RecordPath(last_stats_.path);
    return fp;
  }

  if (min_support >= cached_minsup_) {
    // Tightened (or unchanged): the answer is a filter of the cache.
    GOGREEN_TRACE_SPAN("recycle.filter");
    Timer timer;
    fpm::PatternSet fp = cached_fp_.FilterBySupport(min_support);
    last_stats_.mine_seconds = timer.ElapsedSeconds();
    last_stats_.path = MiningPath::kFiltered;
    last_stats_.delta = min_support == cached_minsup_
                            ? ConstraintDelta::kUnchanged
                            : ConstraintDelta::kTightened;
    last_stats_.patterns_returned = fp.size();
    last_stats_.cached_patterns = cached_fp_.size();
    RecordPath(last_stats_.path);
    return fp;
  }

  // Relaxed: recycle.
  GOGREEN_ASSIGN_OR_RETURN(fpm::PatternSet fp, MineRecycled(min_support));
  last_stats_.path = MiningPath::kRecycled;
  last_stats_.delta = ConstraintDelta::kRelaxed;
  cached_fp_ = fp;
  cached_minsup_ = min_support;
  last_stats_.patterns_returned = fp.size();
  last_stats_.cached_patterns = cached_fp_.size();
  RecordPath(last_stats_.path);
  return fp;
}

Result<fpm::PatternSet> RecyclingSession::MineScratch(uint64_t min_support) {
  GOGREEN_TRACE_SPAN("recycle.scratch");
  Timer timer;
  auto miner = fpm::CreateMiner(options_.base_miner);
  GOGREEN_ASSIGN_OR_RETURN(fpm::PatternSet fp,
                           miner->Mine(db_, min_support));
  last_stats_.mine_seconds = timer.ElapsedSeconds();
  return fp;
}

Result<fpm::PatternSet> RecyclingSession::MineRecycled(uint64_t min_support) {
  if (!cdb_.has_value() || options_.recompress_each_round) {
    GOGREEN_TRACE_SPAN("recycle.compress");
    Timer timer;
    CompressionStats cstats;
    GOGREEN_ASSIGN_OR_RETURN(
        CompressedDb cdb,
        CompressDatabase(db_, cached_fp_,
                         {options_.strategy, options_.matcher}, &cstats));
    cdb_ = std::move(cdb);
    last_stats_.compress_seconds = timer.ElapsedSeconds();
    last_stats_.compression_ratio = cstats.Ratio();
  }
  GOGREEN_TRACE_SPAN("recycle.mine");
  Timer timer;
  auto miner = CreateCompressedMiner(options_.algo);
  GOGREEN_ASSIGN_OR_RETURN(fpm::PatternSet fp,
                           miner->MineCompressed(*cdb_, min_support));
  last_stats_.mine_seconds = timer.ElapsedSeconds();
  return fp;
}

}  // namespace gogreen::core
