#include "core/recycler.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

/// Session path counters: which branch of the recycling decision answered
/// each query. `recycle.cache_hits` counts answers served from the cached
/// pattern set (filtered and recycled paths both reuse it);
/// `recycle.cache_misses` counts full scratch mines.
void RecordPath(MiningPath path) {
  using obs::MetricRegistry;
  static obs::Counter* hits =
      MetricRegistry::Global().GetCounter("recycle.cache_hits");
  static obs::Counter* misses =
      MetricRegistry::Global().GetCounter("recycle.cache_misses");
  static obs::Counter* filtered =
      MetricRegistry::Global().GetCounter("recycle.filtered_rounds");
  static obs::Counter* recycled =
      MetricRegistry::Global().GetCounter("recycle.recycled_rounds");
  switch (path) {
    case MiningPath::kInitial:
    case MiningPath::kScratch:
      misses->Add(1);
      break;
    case MiningPath::kFiltered:
      hits->Add(1);
      filtered->Add(1);
      break;
    case MiningPath::kRecycled:
      hits->Add(1);
      recycled->Add(1);
      break;
  }
}

}  // namespace

const char* MiningPathName(MiningPath path) {
  switch (path) {
    case MiningPath::kInitial:
      return "initial";
    case MiningPath::kFiltered:
      return "filtered";
    case MiningPath::kRecycled:
      return "recycled";
    case MiningPath::kScratch:
      return "scratch";
  }
  return "?";
}

RecyclingSession::RecyclingSession(fpm::TransactionDb db,
                                   RecyclerOptions options)
    : db_(std::move(db)), options_(options) {}

Result<fpm::MineResult> RecyclingSession::Mine(
    const fpm::MineRequest& request) {
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t minsup,
                           request.EffectiveMinSupport());
  const ThreadPool::ScopedThreads scoped_threads(request.threads);
  const ConstraintSet* constraints = request.constraints;
  // The delta is judged against the previous query's constraints before the
  // support round resets the stats.
  const ConstraintDelta delta =
      (constraints != nullptr && last_constraints_.has_value())
          ? constraints->CompareTo(*last_constraints_)
          : ConstraintDelta::kUnchanged;
  active_ctx_ = request.run_context;
  Result<fpm::MineResult> mined = MineSupport(minsup);
  active_ctx_ = nullptr;
  GOGREEN_RETURN_NOT_OK(mined.status());
  fpm::MineResult result = std::move(mined).value();
  if (constraints != nullptr) {
    Timer timer;
    result.patterns = constraints->Filter(result.patterns);
    last_stats_.mine_seconds += timer.ElapsedSeconds();
    last_stats_.delta = delta;
    last_stats_.patterns_returned = result.patterns.size();
    last_constraints_ = *constraints;
  } else {
    last_constraints_.reset();
  }
  return result;
}

Result<fpm::PatternSet> RecyclingSession::Mine(uint64_t min_support) {
  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result,
                           Mine(fpm::MineRequest::At(min_support)));
  return std::move(result.patterns);
}

Result<fpm::PatternSet> RecyclingSession::MineFraction(double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("support fraction must be in (0, 1]");
  }
  return Mine(fpm::AbsoluteSupport(fraction, db_.NumTransactions()));
}

Result<fpm::PatternSet> RecyclingSession::Mine(
    const ConstraintSet& constraints) {
  fpm::MineRequest request;
  request.constraints = &constraints;
  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result, Mine(request));
  return std::move(result.patterns);
}

void RecyclingSession::SeedCache(fpm::PatternSet fp, uint64_t min_support) {
  GOGREEN_CHECK(min_support > 0);
  cached_fp_ = std::move(fp);
  cached_minsup_ = min_support;
  cdb_.reset();
}

void RecyclingSession::InvalidateCache() {
  cached_fp_ = fpm::PatternSet();
  cached_minsup_ = 0;
  cdb_.reset();
}

Result<fpm::MineResult> RecyclingSession::MineSupport(uint64_t min_support) {
  last_stats_ = SessionStats();

  // The session is a one-entry cache; the shared SelectSeed helper turns it
  // into the same route decision serve::PatternStore makes over many.
  SeedChoice choice;
  if (options_.enable_recycling && cached_minsup_ != 0) {
    const std::vector<SeedCandidate> candidates = {
        {cached_minsup_, cdb_.has_value(), /*last_used=*/0, /*tag=*/0}};
    choice = SelectSeed(candidates, min_support);
  }

  if (choice.route == SeedRoute::kNone) {
    GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result,
                             MineScratch(min_support));
    last_stats_.path = cached_minsup_ == 0 && options_.enable_recycling
                           ? MiningPath::kInitial
                           : MiningPath::kScratch;
    if (options_.enable_recycling) {
      // A partial (governed) result is still exact at its frontier, so it
      // is cached at that support for the next round to reuse.
      cached_fp_ = result.patterns;
      cached_minsup_ = result.frontier_support;
      cdb_.reset();
    }
    last_stats_.patterns_returned = result.patterns.size();
    last_stats_.cached_patterns = cached_fp_.size();
    RecordPath(last_stats_.path);
    return result;
  }

  if (choice.route == SeedRoute::kExact ||
      choice.route == SeedRoute::kFilterDown) {
    // Tightened (or unchanged): the answer is a filter of the cache.
    GOGREEN_TRACE_SPAN("recycle.filter");
    Timer timer;
    fpm::MineResult result;
    result.patterns = cached_fp_.FilterBySupport(min_support);
    result.frontier_support = min_support;
    last_stats_.mine_seconds = timer.ElapsedSeconds();
    last_stats_.path = MiningPath::kFiltered;
    last_stats_.delta = choice.route == SeedRoute::kExact
                            ? ConstraintDelta::kUnchanged
                            : ConstraintDelta::kTightened;
    last_stats_.patterns_returned = result.patterns.size();
    last_stats_.cached_patterns = cached_fp_.size();
    RecordPath(last_stats_.path);
    return result;
  }

  // Relaxed: recycle.
  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result, MineRecycled(min_support));
  last_stats_.path = MiningPath::kRecycled;
  last_stats_.delta = ConstraintDelta::kRelaxed;
  cached_fp_ = result.patterns;
  cached_minsup_ = result.frontier_support;
  last_stats_.patterns_returned = result.patterns.size();
  last_stats_.cached_patterns = cached_fp_.size();
  RecordPath(last_stats_.path);
  return result;
}

Result<fpm::MineResult> RecyclingSession::MineScratch(uint64_t min_support) {
  GOGREEN_TRACE_SPAN("recycle.scratch");
  Timer timer;
  auto miner = fpm::CreateMiner(options_.base_miner);
  fpm::MineRequest request = fpm::MineRequest::At(min_support);
  request.run_context = active_ctx_;
  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result, miner->Mine(db_, request));
  last_stats_.mine_seconds = timer.ElapsedSeconds();
  return result;
}

Result<fpm::MineResult> RecyclingSession::MineRecycled(uint64_t min_support) {
  if (!cdb_.has_value() || options_.recompress_each_round) {
    GOGREEN_TRACE_SPAN("recycle.compress");
    Timer timer;
    CompressionStats cstats;
    GOGREEN_ASSIGN_OR_RETURN(
        CompressedDb cdb,
        CompressDatabase(db_, cached_fp_,
                         {options_.strategy, options_.matcher}, &cstats));
    cdb_ = std::move(cdb);
    last_stats_.compress_seconds = timer.ElapsedSeconds();
    last_stats_.compression_ratio = cstats.Ratio();
  }
  GOGREEN_TRACE_SPAN("recycle.mine");
  Timer timer;
  auto miner = CreateCompressedMiner(options_.algo);
  fpm::MineRequest request = fpm::MineRequest::At(min_support);
  request.run_context = active_ctx_;
  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result,
                           miner->Mine(*cdb_, request));
  last_stats_.mine_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace gogreen::core
