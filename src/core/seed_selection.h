// Choosing which cached pattern set should seed a mining query.
//
// A cache over one database may hold complete pattern sets mined at several
// support thresholds. Given a new target support ξ_new, every cached entry
// enables exactly one of the paper's reuse paths:
//
//   - entry at ξ == ξ_new      -> exact hit: return the cached set;
//   - entry at ξ  < ξ_new      -> filter down: the cached set is a superset,
//                                 FilterBySupport(ξ_new) answers the query
//                                 without touching the database;
//   - entry at ξ  > ξ_new      -> recycle: compress the database with the
//                                 cached set (ξ_old ≥ ξ_new, Section 3.2)
//                                 and mine the compressed image.
//
// SelectSeed ranks the candidates by route cost (exact < filter < recycle)
// and, within a route, by how much work the seed leaves: filtering prefers
// the largest ξ below the target (fewest extra patterns to drop), recycling
// prefers the smallest ξ above the target (the richer pattern set covers
// more of each transaction, so the compressed image is smaller — the paper's
// tightest-ξ_old rule). This logic is shared by core::RecyclingSession (one
// candidate) and serve::PatternStore (many).

#ifndef GOGREEN_CORE_SEED_SELECTION_H_
#define GOGREEN_CORE_SEED_SELECTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gogreen::core {

/// How a chosen seed answers the query.
enum class SeedRoute {
  kNone,        ///< No usable seed: mine the raw database from scratch.
  kExact,       ///< Cached at the target support: return it as-is.
  kFilterDown,  ///< Cached below the target: FilterBySupport, no mining.
  kRecycle,     ///< Cached above the target: compress + mine compressed.
};

const char* SeedRouteName(SeedRoute route);

/// One cached complete pattern set, described for selection purposes only.
/// `tag` is an opaque caller-side handle (index, key slot, ...) echoed back
/// through SeedChoice.
struct SeedCandidate {
  uint64_t min_support = 0;   ///< Support the cached set is complete at.
  bool has_compressed = false;  ///< A compressed image is already memoized.
  uint64_t last_used = 0;     ///< Logical clock; larger = more recent.
  size_t tag = 0;
};

/// The winning candidate and the route it enables. When `route` is kNone the
/// other fields are meaningless.
struct SeedChoice {
  SeedRoute route = SeedRoute::kNone;
  size_t tag = 0;
  uint64_t min_support = 0;  ///< The winning candidate's support.
};

/// Picks the cheapest seed for a query at `target_support` (>= 1). Route
/// preference is exact > filter-down > recycle; ties inside a route break on
/// distance to the target, then on `has_compressed` (a memoized image saves
/// the compression pass), then on recency (`last_used`).
SeedChoice SelectSeed(const std::vector<SeedCandidate>& candidates,
                      uint64_t target_support);

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_SEED_SELECTION_H_
