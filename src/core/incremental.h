// Incremental mining via recycling (the Section 2 extension, detailed in
// the authors' technical report): when the database itself changes between
// mining rounds, the old patterns can no longer be filtered — their supports
// are stale — but they remain excellent *compression units*: compressing
// the new database with them and mining the compressed image yields exact
// results at any threshold, with most of the recycling speedup intact. This
// sidesteps the classic incremental-mining pain points (no negative border
// to store, robust to large or shrinking deltas).

#ifndef GOGREEN_CORE_INCREMENTAL_H_
#define GOGREEN_CORE_INCREMENTAL_H_

#include <cstdint>
#include <functional>

#include "core/recycler.h"
#include "fpm/pattern_set.h"
#include "fpm/transaction_db.h"
#include "util/status.h"

namespace gogreen::core {

/// A mining session over a database that changes between rounds.
class IncrementalSession {
 public:
  explicit IncrementalSession(fpm::TransactionDb db,
                              RecyclerOptions options = {});

  /// Appends one transaction.
  void AddTransaction(std::vector<fpm::ItemId> items);

  /// Appends every transaction of `batch`.
  void AddBatch(const fpm::TransactionDb& batch);

  /// Removes the transactions for which `predicate(tid, items)` is true
  /// (tids are positions in the *current* database; survivors are
  /// renumbered). Returns the number removed.
  size_t RemoveIf(
      const std::function<bool(fpm::Tid, fpm::ItemSpan)>& predicate);

  /// Mines the complete set on the current database. Recycles the most
  /// recent result as compression units when one exists; supports are
  /// re-counted exactly, so the answer is exact even though the cached
  /// supports are stale.
  Result<fpm::PatternSet> Mine(uint64_t min_support);

  const fpm::TransactionDb& db() const { return db_; }
  const SessionStats& last_stats() const { return last_stats_; }
  bool has_cache() const { return has_cache_; }

 private:
  fpm::TransactionDb db_;
  RecyclerOptions options_;
  fpm::PatternSet cached_fp_;
  bool has_cache_ = false;
  SessionStats last_stats_;
};

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_INCREMENTAL_H_
