#include "core/disk_recycle.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/recycle_hmine.h"
#include "core/slice_db.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

using fpm::Rank;

// Transient spill-IO failures are retried under the shared policy
// (util/retry.h): 3 attempts total with ~1/2 ms exponential backoff, the
// same schedule the old local loop used. Only transient failures retry;
// anything else propagates on the first occurrence.
RetryPolicy SpillRetryPolicy() {
  RetryPolicy policy;
  policy.jitter_seed = 0x5917117e5ULL;  // Stable, distinct from pattern_io's.
  return policy;
}

/// Serializes slices to per-rank spill files.
/// Record: u32 pattern_len, pattern ranks, u64 empty_count, u32 num_outs,
/// then per out row u32 len + ranks.
///
/// RAII: destruction closes and removes every partition file this writer
/// created, so spill files cannot leak on any exit path (IO error, governed
/// stop, exception). Callers that consumed the partitions may still call
/// Cleanup() early; it is idempotent.
class SliceSpillWriter {
 public:
  SliceSpillWriter(std::string dir, std::string stem, size_t num_ranks)
      : dir_(std::move(dir)), stem_(std::move(stem)),
        files_(num_ranks, nullptr) {}

  ~SliceSpillWriter() { Cleanup(); }

  SliceSpillWriter(const SliceSpillWriter&) = delete;
  SliceSpillWriter& operator=(const SliceSpillWriter&) = delete;

  std::string PathOf(Rank r) const {
    return dir_ + "/" + stem_ + "." + std::to_string(r) + ".sspill";
  }

  /// Appends one record, retrying transient write failures with backoff.
  /// A failed attempt rewinds the file to the record start before the next
  /// try, so retries overwrite rather than duplicate.
  Status Append(Rank r, const Slice& slice) {
    GOGREEN_DCHECK(r < files_.size());
    if (files_[r] == nullptr) {
      GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("spill.open"));
      files_[r] = std::fopen(PathOf(r).c_str(), "wb");
      if (files_[r] == nullptr) {
        return Status::IOError("cannot create spill file " + PathOf(r));
      }
      used_.push_back(r);
    }
    return RetryTransient(SpillRetryPolicy(), [this, r, &slice] {
      return AppendOnce(files_[r], r, slice);
    });
  }

  Status Finish() {
    GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("spill.finish"));
    for (Rank r : used_) {
      if (files_[r] != nullptr) {
        if (std::fclose(files_[r]) != 0) {
          files_[r] = nullptr;
          return Status::IOError("close failed for " + PathOf(r));
        }
        files_[r] = nullptr;
      }
    }
    return Status::OK();
  }

  void Cleanup() {
    for (Rank r : used_) {
      if (files_[r] != nullptr) {
        std::fclose(files_[r]);
        files_[r] = nullptr;
      }
      std::remove(PathOf(r).c_str());
    }
    used_.clear();
  }

  const std::vector<Rank>& used_ranks() const { return used_; }

 private:
  Status AppendOnce(std::FILE* f, Rank r, const Slice& slice) {
    GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("spill.write"));
    const long start = std::ftell(f);
    if (start < 0) return Status::IOError("ftell failed for " + PathOf(r));
    const auto write_row = [f](const std::vector<Rank>& row) {
      const uint32_t len = static_cast<uint32_t>(row.size());
      if (std::fwrite(&len, sizeof(len), 1, f) != 1) return false;
      return len == 0 ||
             std::fwrite(row.data(), sizeof(Rank), len, f) == len;
    };
    const uint32_t num_outs = static_cast<uint32_t>(slice.outs.size());
    bool ok = write_row(slice.pattern) &&
              std::fwrite(&slice.empty_count, sizeof(slice.empty_count), 1,
                          f) == 1 &&
              std::fwrite(&num_outs, sizeof(num_outs), 1, f) == 1;
    for (size_t i = 0; ok && i < slice.outs.size(); ++i) {
      ok = write_row(slice.outs[i]);
    }
    if (!ok) {
      std::clearerr(f);
      std::fseek(f, start, SEEK_SET);
      return Status::IOError("short write to " + PathOf(r));
    }
    return Status::OK();
  }

  std::string dir_;
  std::string stem_;
  std::vector<std::FILE*> files_;
  std::vector<Rank> used_;
};

Result<std::vector<Slice>> ReadSliceSpillOnce(const std::string& path) {
  GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("spill.read"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::vector<Slice>{};
  std::vector<Slice> slices;
  const auto read_row = [f](std::vector<Rank>* row) {
    uint32_t len = 0;
    if (std::fread(&len, sizeof(len), 1, f) != 1) return -1;
    row->resize(len);
    if (len > 0 && std::fread(row->data(), sizeof(Rank), len, f) != len) {
      return -1;
    }
    return static_cast<int>(len);
  };
  while (true) {
    Slice slice;
    const int first = read_row(&slice.pattern);
    if (first < 0) break;  // Clean EOF (or truncation at a boundary).
    uint32_t num_outs = 0;
    if (std::fread(&slice.empty_count, sizeof(slice.empty_count), 1, f) !=
            1 ||
        std::fread(&num_outs, sizeof(num_outs), 1, f) != 1) {
      std::fclose(f);
      return Status::IOError("truncated slice spill " + path);
    }
    slice.outs.resize(num_outs);
    for (uint32_t i = 0; i < num_outs; ++i) {
      if (read_row(&slice.outs[i]) < 0) {
        std::fclose(f);
        return Status::IOError("truncated slice spill " + path);
      }
    }
    slices.push_back(std::move(slice));
  }
  std::fclose(f);
  return slices;
}

/// Reads one spill partition, retrying transient failures whole-call (each
/// attempt reopens and rescans from the start, so retries are idempotent).
Result<std::vector<Slice>> ReadSliceSpill(const std::string& path) {
  return RetryTransientResult<std::vector<Slice>>(
      SpillRetryPolicy(), [&path] { return ReadSliceSpillOnce(path); });
}

struct SliceTotals {
  size_t items = 0;
  size_t out_rows = 0;
};

SliceTotals Totals(const std::vector<Slice>& slices) {
  SliceTotals t;
  for (const Slice& s : slices) {
    t.items += s.pattern.size();
    t.out_rows += s.outs.size();
    for (const auto& o : s.outs) t.items += o.size();
  }
  return t;
}

/// Counts extension supports of a slice set (group-weighted), without the
/// mining context (used to pick partition items before spilling).
std::vector<uint64_t> CountSliceItems(const std::vector<Slice>& slices,
                                      size_t flist_items) {
  std::vector<uint64_t> counts(flist_items, 0);
  for (const Slice& s : slices) {
    const uint64_t w = s.count();
    for (Rank r : s.pattern) counts[r] += w;
    for (const auto& o : s.outs) {
      for (Rank r : o) ++counts[r];
    }
  }
  return counts;
}

/// Mines one partition of slices, spilling to sub-partitions when over the
/// memory budget. Sets `*completed` false iff a governed stop abandoned
/// work; the depth-0 caller owns the frontier bookkeeping for the spill
/// path (the in-memory path marks its own frontier via MineSlicesHM when
/// `prefix_ranks` is empty).
Status MineSlicePartition(std::vector<Slice> slices, const fpm::FList& flist,
                          uint64_t min_support, size_t memory_limit,
                          const std::string& temp_dir, uint64_t depth,
                          std::vector<Rank>* prefix_ranks,
                          fpm::PatternSet* out, fpm::MiningStats* stats,
                          RunContext* ctx, bool* completed) {
  const SliceTotals totals = Totals(slices);
  if (EstimateSliceMineMemory(totals.items, totals.out_rows, slices.size(),
                              flist.size()) <= memory_limit) {
    SliceDb sdb;
    sdb.slices = std::move(slices);
    if (!MineSlicesHM(sdb, flist, min_support, *prefix_ranks, out, stats,
                      ctx)) {
      *completed = false;
    }
    return Status::OK();
  }

  // Over budget: parallel-project every slice into per-rank partitions.
  const std::vector<uint64_t> counts =
      CountSliceItems(slices, flist.size());

  // Unique per process and invocation (see partition.cc).
  static std::atomic<uint64_t> g_spill_id{0};
  const std::string stem = "gogreen_rpart_" + std::to_string(::getpid()) +
                           "_" + std::to_string(g_spill_id.fetch_add(1)) +
                           "_d" + std::to_string(depth);
  SliceSpillWriter writer(temp_dir, stem, flist.size());
  for (const Slice& s : slices) {
    // The ranks this slice touches.
    std::vector<Rank> touched = s.pattern;
    for (const auto& o : s.outs) {
      touched.insert(touched.end(), o.begin(), o.end());
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    const std::vector<Slice> one{s};
    for (Rank r : touched) {
      if (counts[r] < min_support) continue;
      std::vector<Slice> projected = ProjectSlices(one, r);
      if (projected.empty()) {
        // Still append nothing; the partition's singleton pattern is
        // emitted from `counts` below, not from the spill contents.
        continue;
      }
      GOGREEN_RETURN_NOT_OK(writer.Append(r, projected[0]));
    }
  }
  GOGREEN_RETURN_NOT_OK(writer.Finish());
  slices.clear();
  slices.shrink_to_fit();

  // Governed runs walk the partitions most-frequent-first: when a stop
  // abandons the walk, the contiguously-completed head covers every support
  // strictly above the first unfinished partition's, which is a sound
  // frontier. Ungoverned runs keep the ascending (sequential-output) order.
  std::vector<Rank> order;
  for (Rank r = 0; r < flist.size(); ++r) {
    if (counts[r] >= min_support) order.push_back(r);
  }
  if (ctx != nullptr) std::reverse(order.begin(), order.end());

  size_t processed = 0;
  bool stopped = false;
  for (const Rank r : order) {
    if (ctx != nullptr && ctx->PollNow()) {
      stopped = true;
      break;
    }
    prefix_ranks->push_back(r);
    std::vector<fpm::ItemId> items = flist.DecodeRanks(*prefix_ranks);
    std::sort(items.begin(), items.end());
    out->Add(std::move(items), counts[r]);

    auto loaded = ReadSliceSpill(writer.PathOf(r));
    GOGREEN_RETURN_NOT_OK(loaded.status());  // Writer dtor cleans up.
    bool sub_completed = true;
    if (!loaded->empty()) {
      const Status st = MineSlicePartition(
          std::move(loaded).value(), flist, min_support, memory_limit,
          temp_dir, depth + 1, prefix_ranks, out, stats, ctx,
          &sub_completed);
      GOGREEN_RETURN_NOT_OK(st);
    }
    prefix_ranks->pop_back();
    if (!sub_completed) {
      // A nested stop leaves this partition unfinished; the stop reason is
      // sticky, so later partitions would be abandoned too — break now to
      // keep the completed head contiguous.
      stopped = true;
      break;
    }
    ++processed;
  }

  if (stopped) {
    *completed = false;
    if (depth == 0 && processed < order.size()) {
      ctx->MarkIncomplete(counts[order[processed]] + 1);
    }
  }
  writer.Cleanup();
  return Status::OK();
}

}  // namespace

size_t EstimateSliceMineMemory(size_t total_items, size_t total_out_rows,
                               size_t num_slices, size_t flist_items) {
  // Slice vectors (ranks) + per-out-row vector headers + per-slice
  // bookkeeping + projection reference lists (up to one tail ref per out
  // row at the deepest level) + header scratch.
  return total_items * sizeof(Rank) +
         total_out_rows * (sizeof(std::vector<Rank>) + 2 * sizeof(uint32_t)) +
         num_slices * 64 +
         flist_items * (sizeof(uint64_t) + sizeof(size_t));
}

Result<fpm::PatternSet> MineRecycleHMMemoryLimited(
    const CompressedDb& cdb, uint64_t min_support, size_t memory_limit,
    const std::string& temp_dir, fpm::MiningStats* stats, RunContext* ctx) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  fpm::MiningStats local;
  if (stats == nullptr) stats = &local;
  stats->Reset();
  Timer timer;
  fpm::PatternSet out;

  const fpm::FList flist = fpm::FList::FromCounts(
      cdb.CountItemSupports(cdb.ItemUniverseSize()), min_support);
  if (!flist.empty()) {
    // All spill files for this run live in a run-private directory that the
    // ScopedTempDir removes on every exit path.
    Result<ScopedTempDir> scratch =
        ScopedTempDir::Create(temp_dir, "gogreen_recycle_");
    GOGREEN_RETURN_NOT_OK(scratch.status());

    SliceDb sdb = SliceDb::Build(cdb, flist);
    std::vector<Rank> prefix;
    bool completed = true;
    GOGREEN_RETURN_NOT_OK(MineSlicePartition(
        std::move(sdb.slices), flist, min_support, memory_limit,
        scratch->path(), 0, &prefix, &out, stats, ctx, &completed));
  }

  stats->patterns_emitted = out.size();
  stats->elapsed_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace gogreen::core
