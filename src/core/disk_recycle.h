// Memory-limited recycling (Section 5.3): Algorithm Recycling of Figure 3
// with the EM(D) > M branch. When the slice structures would exceed the
// memory budget, the compressed database is partitioned on disk with
// parallel projection — every slice is written, projected, to the partition
// of each frequent item it touches — and the partitions are mined one at a
// time with the in-memory Recycle-HM core.
//
// Lock-discipline audit (DESIGN.md §15): lock-free by construction — the
// run directory is private to one request (atomic spill-id counter), and
// partitions are mined sequentially within the run; cancellation flows
// through RunContext atomics. Checked by the thread-safety build.

#ifndef GOGREEN_CORE_DISK_RECYCLE_H_
#define GOGREEN_CORE_DISK_RECYCLE_H_

#include <string>

#include "core/compressed_db.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "util/status.h"

namespace gogreen::core {

/// Estimated bytes of the in-memory slice structures for a slice database
/// with the given totals (see SliceDb).
size_t EstimateSliceMineMemory(size_t total_items, size_t total_out_rows,
                               size_t num_slices, size_t flist_items);

/// Memory-limited Recycle-HM: identical output to RecycleHMineMiner but
/// bounded by `memory_limit` bytes of mining structures, spilling
/// projections to a run-private directory under `temp_dir` when necessary.
/// The run directory is removed on every exit path (success, IO error, or
/// governed stop). Spill IO retries transient failures with bounded
/// backoff; see the `spill.*` failpoints in util/failpoint.h. `ctx`
/// (optional) governs the run — on a deadline/budget/cancel breach
/// partitions are abandoned at a boundary and the context is marked
/// incomplete with a sound frontier support (partitions are processed
/// most-frequent-first when governed).
Result<fpm::PatternSet> MineRecycleHMMemoryLimited(
    const CompressedDb& cdb, uint64_t min_support, size_t memory_limit,
    const std::string& temp_dir, fpm::MiningStats* stats = nullptr,
    RunContext* ctx = nullptr);

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_DISK_RECYCLE_H_
