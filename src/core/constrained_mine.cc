#include "core/constrained_mine.h"

#include <algorithm>

#include "core/slice_db.h"
#include "fpm/flist.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

using fpm::Rank;

/// The anti-monotone members of a constraint set, checkable on prefixes.
class AntiMonotonePruner {
 public:
  explicit AntiMonotonePruner(const ConstraintSet& constraints) {
    for (size_t i = 0; i < constraints.NumConstraints(); ++i) {
      if (constraints.constraint(i).category() ==
          ConstraintCategory::kAntiMonotone) {
        members_.push_back(&constraints.constraint(i));
      }
    }
  }

  /// True if the prefix fails some anti-monotone constraint (prune point).
  bool Prune(const fpm::Pattern& prefix) const {
    for (const Constraint* c : members_) {
      if (!c->Satisfies(prefix)) return true;
    }
    return false;
  }

  bool empty() const { return members_.empty(); }

 private:
  std::vector<const Constraint*> members_;
};

/// H-Mine-style recursion with a prune hook, over rank-encoded rows.
class ConstrainedHMine {
 public:
  ConstrainedHMine(const fpm::FList& flist, uint64_t min_support,
                   const AntiMonotonePruner& pruner, fpm::PatternSet* out,
                   fpm::MiningStats* stats)
      : flist_(flist),
        min_support_(min_support),
        pruner_(pruner),
        out_(out),
        stats_(stats),
        counts_(flist.size(), 0),
        local_of_(flist.size(), UINT32_MAX) {}

  struct Suffix {
    uint32_t row;
    uint32_t pos;
  };

  void Mine(const std::vector<std::vector<Rank>>& rows,
            const std::vector<Suffix>& projs, std::vector<Rank>* prefix) {
    std::vector<Rank> touched;
    for (const Suffix& s : projs) {
      const auto& row = rows[s.row];
      for (size_t i = s.pos; i < row.size(); ++i) {
        if (counts_[row[i]] == 0) touched.push_back(row[i]);
        ++counts_[row[i]];
        ++stats_->items_scanned;
      }
    }
    std::vector<Rank> frequent;
    for (Rank r : touched) {
      if (counts_[r] >= min_support_) frequent.push_back(r);
    }
    std::sort(frequent.begin(), frequent.end());
    std::vector<uint64_t> freq_counts(frequent.size());
    for (size_t i = 0; i < frequent.size(); ++i) {
      freq_counts[i] = counts_[frequent[i]];
    }
    for (Rank r : touched) counts_[r] = 0;
    if (frequent.empty()) return;

    // Anti-monotone pruning decides which extensions survive BEFORE the
    // buckets are built, so pruned subtrees cost nothing.
    std::vector<bool> keep(frequent.size(), true);
    size_t kept = 0;
    for (size_t i = 0; i < frequent.size(); ++i) {
      prefix->push_back(frequent[i]);
      fpm::Pattern candidate(flist_.DecodeRanks(*prefix), freq_counts[i]);
      std::sort(candidate.items.begin(), candidate.items.end());
      if (pruner_.Prune(candidate)) {
        keep[i] = false;
      } else {
        out_->Add(std::move(candidate));
        ++kept;
      }
      prefix->pop_back();
    }
    if (kept == 0) return;

    std::vector<std::vector<Suffix>> buckets(frequent.size());
    for (size_t i = 0; i < frequent.size(); ++i) {
      local_of_[frequent[i]] = keep[i] ? static_cast<uint32_t>(i)
                                       : UINT32_MAX;
    }
    for (const Suffix& s : projs) {
      const auto& row = rows[s.row];
      for (size_t i = s.pos; i + 1 < row.size(); ++i) {
        const uint32_t local = local_of_[row[i]];
        if (local != UINT32_MAX) {
          buckets[local].push_back(
              {s.row, static_cast<uint32_t>(i + 1)});
        }
      }
    }
    for (Rank r : frequent) local_of_[r] = UINT32_MAX;
    stats_->projections_built += kept;

    for (size_t i = 0; i < frequent.size(); ++i) {
      if (!keep[i] || buckets[i].empty()) continue;
      prefix->push_back(frequent[i]);
      Mine(rows, buckets[i], prefix);
      prefix->pop_back();
      buckets[i].clear();
      buckets[i].shrink_to_fit();
    }
  }

 private:
  const fpm::FList& flist_;
  const uint64_t min_support_;
  const AntiMonotonePruner& pruner_;
  fpm::PatternSet* out_;
  fpm::MiningStats* stats_;
  std::vector<uint64_t> counts_;
  std::vector<uint32_t> local_of_;
};

/// Slice recursion with the same prune hook (physical projection; the
/// simple RP-Mine shape is enough because pruning dominates the savings).
class ConstrainedSliceMine {
 public:
  ConstrainedSliceMine(SliceMiningContext* base,
                       const AntiMonotonePruner& pruner)
      : base_(base), pruner_(pruner) {}

  void Mine(const std::vector<Slice>& slices, std::vector<Rank>* prefix) {
    std::vector<uint64_t> counts;
    const std::vector<Rank> frequent =
        base_->CountFrequent(slices, &counts);
    for (size_t i = 0; i < frequent.size(); ++i) {
      prefix->push_back(frequent[i]);
      fpm::Pattern candidate(base_->flist().DecodeRanks(*prefix),
                             counts[i]);
      std::sort(candidate.items.begin(), candidate.items.end());
      const bool pruned = pruner_.Prune(candidate);
      if (!pruned) {
        base_->EmitPattern(*prefix, counts[i]);
        const std::vector<Slice> projected =
            ProjectSlices(slices, frequent[i]);
        ++base_->stats()->projections_built;
        if (!projected.empty()) Mine(projected, prefix);
      }
      prefix->pop_back();
    }
  }

 private:
  SliceMiningContext* base_;
  const AntiMonotonePruner& pruner_;
};

/// Applies the non-anti-monotone members (monotone, succinct, convertible)
/// as a final filter. Anti-monotone members already hold by construction
/// but re-checking is cheap and keeps Filter as the single source of truth.
fpm::PatternSet PostFilter(const fpm::PatternSet& raw,
                           const ConstraintSet& constraints) {
  return constraints.Filter(raw);
}

}  // namespace

Result<fpm::PatternSet> MineConstrained(const fpm::TransactionDb& db,
                                        const ConstraintSet& constraints,
                                        fpm::MiningStats* stats) {
  if (constraints.min_support() == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  fpm::MiningStats local;
  if (stats == nullptr) stats = &local;
  stats->Reset();
  Timer timer;

  fpm::PatternSet raw;
  const fpm::FList flist =
      fpm::FList::Build(db, constraints.min_support());
  if (!flist.empty()) {
    std::vector<std::vector<Rank>> rows;
    rows.reserve(db.NumTransactions());
    for (fpm::Tid t = 0; t < db.NumTransactions(); ++t) {
      std::vector<Rank> enc = flist.EncodeTransaction(db.Transaction(t));
      if (!enc.empty()) rows.push_back(std::move(enc));
    }
    std::vector<ConstrainedHMine::Suffix> all;
    all.reserve(rows.size());
    for (uint32_t r = 0; r < rows.size(); ++r) all.push_back({r, 0});

    const AntiMonotonePruner pruner(constraints);
    ConstrainedHMine miner(flist, constraints.min_support(), pruner, &raw,
                           stats);
    std::vector<Rank> prefix;
    miner.Mine(rows, all, &prefix);
  }

  fpm::PatternSet out = PostFilter(raw, constraints);
  stats->patterns_emitted = out.size();
  stats->elapsed_seconds = timer.ElapsedSeconds();
  return out;
}

Result<fpm::PatternSet> MineConstrainedCompressed(
    const CompressedDb& cdb, const ConstraintSet& constraints,
    fpm::MiningStats* stats) {
  if (constraints.min_support() == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  fpm::MiningStats local;
  if (stats == nullptr) stats = &local;
  stats->Reset();
  Timer timer;

  fpm::PatternSet raw;
  const fpm::FList flist = fpm::FList::FromCounts(
      cdb.CountItemSupports(cdb.ItemUniverseSize()),
      constraints.min_support());
  if (!flist.empty()) {
    const SliceDb sdb = SliceDb::Build(cdb, flist);
    SliceMiningContext base(flist, constraints.min_support(), &raw, stats);
    const AntiMonotonePruner pruner(constraints);
    ConstrainedSliceMine miner(&base, pruner);
    std::vector<Rank> prefix;
    miner.Mine(sdb.slices, &prefix);
  }

  fpm::PatternSet out = PostFilter(raw, constraints);
  stats->patterns_emitted = out.size();
  stats->elapsed_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace gogreen::core
