// Pattern utility functions (Section 3.2 of the paper): how much is a
// recycled frequent pattern worth as a compression unit for future mining?

#ifndef GOGREEN_CORE_UTILITY_H_
#define GOGREEN_CORE_UTILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/pattern_set.h"

namespace gogreen::core {

/// The two compression strategies of Section 3.2.
enum class CompressionStrategy {
  /// Minimize Cost Principle: U(X) = (2^|X| - 1) * X.C — the estimated cost
  /// of the search-space visit that discovered X (all 2^|X|-1 subsets, each
  /// counted at least X.C times). Patterns that were expensive to find save
  /// the most when recycled.
  kMcp,
  /// Maximal Length Principle: U(X) = |X| * |DB| + X.C — longest pattern
  /// first, support as tie-break. Maximizes storage compression.
  kMlp,
};

const char* CompressionStrategyName(CompressionStrategy strategy);

/// U(X) under `strategy` for a database of `db_size` tuples. Computed in
/// double precision: only the ordering matters, and 2^|X| overflows uint64
/// for patterns longer than 63 items.
double PatternUtility(const fpm::Pattern& pattern,
                      CompressionStrategy strategy, size_t db_size);

/// Indices of `fp`'s patterns sorted by descending utility (step 1-2 of the
/// compression algorithm, Figure 1). Deterministic: ties are broken by
/// higher support, then shorter length, then lexicographic items.
std::vector<size_t> RankPatternsByUtility(const fpm::PatternSet& fp,
                                          CompressionStrategy strategy,
                                          size_t db_size);

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_UTILITY_H_
