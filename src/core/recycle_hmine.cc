#include "core/recycle_hmine.h"

#include <algorithm>
#include <memory>

#include "check/check_db.h"
#include "core/slice_db.h"
#include "fpm/parallel_mine.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

using fpm::kNoRank;
using fpm::Rank;

// A projected compressed database is kept as four entry species so that the
// expensive aggregate machinery is paid only where group sharing actually
// exists. This mirrors RP-Struct's split into group heads (group-links) and
// group tails (item-links), refined by member count:
//
//   ProjSlice     multi-member group, members still carry outlying items;
//                 the pattern suffix is counted once with the group weight.
//   GroupPattern  multi-member group whose members' outlying items are all
//                 consumed: just (pattern suffix, count). Dominant on dense
//                 data.
//   PairedTail    single member with live pattern suffix + outlying suffix.
//                 A group of one has nothing to share, so it is a POD.
//   Plain         single member whose pattern is consumed: an H-Mine
//                 suffix, processed with H-Mine's flat mechanics. Dominant
//                 on sparse data (the uncovered part of the database).

/// Reference to the unconsumed suffix of one member's outlying row in the
/// flattened out storage.
struct TailRef {
  uint32_t row;
  uint32_t pos;
};

struct ProjSlice {
  uint32_t slice_id;
  uint32_t pattern_pos;
  uint64_t full_count;  // Members with no remaining outlying items.
  std::vector<TailRef> tails;  // Members with live outlying suffixes.

  uint64_t count() const { return full_count + tails.size(); }
};

struct GroupPattern {
  uint32_t slice_id;
  uint32_t pattern_pos;
  uint64_t count;  // 0 = tombstone (upgraded to a ProjSlice).
};

struct PairedTail {
  uint32_t row;  // UINT32_MAX = tombstone (upgraded to a ProjSlice).
  uint32_t pos;
  uint32_t slice_id;
  uint32_t pattern_pos;
};

struct ProjectedDb {
  std::vector<ProjSlice> slices;
  std::vector<GroupPattern> gpatterns;
  std::vector<PairedTail> paired;
  std::vector<TailRef> plain;

  bool empty() const {
    return slices.empty() && gpatterns.empty() && paired.empty() &&
           plain.empty();
  }
};

/// Approximate heap footprint of one projected database, for budget
/// accounting in governed runs.
size_t ProjectedDbBytes(const ProjectedDb& db) {
  size_t bytes = db.slices.size() * sizeof(ProjSlice) +
                 db.gpatterns.size() * sizeof(GroupPattern) +
                 db.paired.size() * sizeof(PairedTail) +
                 db.plain.size() * sizeof(TailRef);
  for (const ProjSlice& ps : db.slices) {
    bytes += ps.tails.size() * sizeof(TailRef);
  }
  return bytes;
}

/// All outlying rows of a SliceDb flattened into one CSR for cache-friendly
/// scans. Read-only after construction, so it is built once per run and
/// shared by every worker's context.
struct FlatOuts {
  std::vector<Rank> data;
  std::vector<uint32_t> offsets;  // Row boundaries in data.

  explicit FlatOuts(const SliceDb& sdb) {
    size_t total = 0;
    size_t rows = 0;
    for (const Slice& s : sdb.slices) {
      rows += s.outs.size();
      for (const auto& o : s.outs) total += o.size();
    }
    data.reserve(total);
    offsets.reserve(rows + 1);
    offsets.push_back(0);
    for (const Slice& s : sdb.slices) {
      for (const auto& o : s.outs) {
        data.insert(data.end(), o.begin(), o.end());
        offsets.push_back(static_cast<uint32_t>(data.size()));
      }
    }
  }
};

class RecycleHmContext {
 public:
  RecycleHmContext(const SliceDb& sdb, const FlatOuts& fouts,
                   SliceMiningContext* base)
      : sdb_(sdb),
        fouts_(fouts),
        base_(base),
        counts_(base->flist().size(), 0),
        local_of_(base->flist().size(), UINT32_MAX),
        entry_kind_(base->flist().size(), kNone),
        entry_idx_(base->flist().size(), 0),
        entry_stamp_(base->flist().size(), 0) {}

  /// Returns false iff a governed stop abandoned part of the subtree.
  bool Mine(const ProjectedDb& projs, std::vector<Rank>* prefix) {
    if (projs.slices.empty() && projs.gpatterns.empty() &&
        projs.paired.empty()) {
      // No group structure left in this subtree: fall back to flat H-Mine
      // mechanics (no species bookkeeping, one bucket array per level).
      return PlainMine(projs.plain, prefix);
    }
    std::vector<uint64_t> freq_counts;
    const std::vector<Rank> frequent = Count(projs, &freq_counts);
    if (frequent.empty()) return true;

    if (TrySingleGroup(projs, frequent, freq_counts, prefix)) return true;

    // One pass threads every extension's bucket (Fill-RPHeader, §4.1).
    std::vector<ProjectedDb> buckets(frequent.size());
    BuildBuckets(projs, frequent, &buckets);
    base_->stats()->projections_built += frequent.size();
    // The buckets are this level's dominant scratch; charge them for the
    // time the recursion below keeps them alive.
    size_t bucket_bytes = 0;
    if (base_->run_context() != nullptr) {
      for (const ProjectedDb& b : buckets) bucket_bytes += ProjectedDbBytes(b);
    }
    const ScopedBytes charge(base_->run_context(), bucket_bytes);

    bool completed = true;
    for (size_t i = 0; i < frequent.size(); ++i) {
      if (base_->ShouldStop()) {
        completed = false;
        break;
      }
      prefix->push_back(frequent[i]);
      base_->EmitPattern(*prefix, freq_counts[i]);
      if (!buckets[i].empty() && !Mine(buckets[i], prefix)) completed = false;
      prefix->pop_back();
      buckets[i] = ProjectedDb();  // Release level memory eagerly.
    }
    return completed;
  }

  /// Root projected database classifying each slice by species.
  ProjectedDb Root() const {
    ProjectedDb projs;
    uint32_t row = 0;
    for (uint32_t sid = 0; sid < sdb_.slices.size(); ++sid) {
      const Slice& s = sdb_.slices[sid];
      const uint32_t first_row = row;
      row += static_cast<uint32_t>(s.outs.size());
      if (s.pattern.empty()) {
        for (uint32_t r = first_row; r < row; ++r) {
          projs.plain.push_back({r, 0});
        }
      } else if (s.outs.empty()) {
        projs.gpatterns.push_back({sid, 0, s.empty_count});
      } else if (s.outs.size() == 1 && s.empty_count == 0) {
        projs.paired.push_back({first_row, 0, sid, 0});
      } else {
        ProjSlice ps{sid, 0, s.empty_count, {}};
        ps.tails.reserve(s.outs.size());
        for (uint32_t r = first_row; r < row; ++r) ps.tails.push_back({r, 0});
        projs.slices.push_back(std::move(ps));
      }
    }
    return projs;
  }

 private:
  /// H-Mine-speed recursion for subtrees with no remaining group structure:
  /// identical to the plain H-Mine bucket threading, over the flattened
  /// outlying rows. Returns false iff a governed stop abandoned work.
  bool PlainMine(const std::vector<TailRef>& rows,
                 std::vector<Rank>* prefix) {
    std::vector<Rank> touched;
    for (const TailRef& tail : rows) {
      const auto out = RowSuffix(tail.row, tail.pos);
      for (Rank r : out) {
        if (counts_[r] == 0) touched.push_back(r);
        ++counts_[r];
      }
      base_->stats()->items_scanned += out.size();
    }
    std::vector<Rank> frequent;
    for (Rank r : touched) {
      if (counts_[r] >= base_->min_support()) frequent.push_back(r);
    }
    std::sort(frequent.begin(), frequent.end());
    std::vector<uint64_t> freq_counts(frequent.size());
    for (size_t i = 0; i < frequent.size(); ++i) {
      freq_counts[i] = counts_[frequent[i]];
    }
    for (Rank r : touched) counts_[r] = 0;
    if (frequent.empty()) return true;

    std::vector<std::vector<TailRef>> buckets(frequent.size());
    for (size_t i = 0; i < frequent.size(); ++i) {
      local_of_[frequent[i]] = static_cast<uint32_t>(i);
    }
    for (const TailRef& tail : rows) {
      const auto out = RowSuffix(tail.row, tail.pos);
      for (size_t j = 0; j + 1 < out.size(); ++j) {
        const uint32_t local = local_of_[out[j]];
        if (local != UINT32_MAX) {
          buckets[local].push_back(
              {tail.row, tail.pos + static_cast<uint32_t>(j + 1)});
        }
      }
    }
    for (Rank r : frequent) local_of_[r] = UINT32_MAX;
    base_->stats()->projections_built += frequent.size();

    size_t bucket_bytes = 0;
    if (base_->run_context() != nullptr) {
      for (const auto& b : buckets) bucket_bytes += b.size() * sizeof(TailRef);
    }
    const ScopedBytes charge(base_->run_context(), bucket_bytes);

    bool completed = true;
    for (size_t i = 0; i < frequent.size(); ++i) {
      if (base_->ShouldStop()) {
        completed = false;
        break;
      }
      prefix->push_back(frequent[i]);
      base_->EmitPattern(*prefix, freq_counts[i]);
      if (!buckets[i].empty() && !PlainMine(buckets[i], prefix)) {
        completed = false;
      }
      prefix->pop_back();
      buckets[i].clear();
      buckets[i].shrink_to_fit();
    }
    return completed;
  }

  std::span<const Rank> Pattern(uint32_t slice_id, uint32_t pos) const {
    const Slice& s = sdb_.slices[slice_id];
    return {s.pattern.data() + pos, s.pattern.size() - pos};
  }

  std::span<const Rank> RowSuffix(uint32_t row, uint32_t pos) const {
    return {fouts_.data.data() + fouts_.offsets[row] + pos,
            fouts_.offsets[row + 1] - fouts_.offsets[row] - pos};
  }

  uint32_t RowLen(uint32_t row) const {
    return fouts_.offsets[row + 1] - fouts_.offsets[row];
  }

  /// First unconsumed position of a row under a floor (kNoRank = none).
  uint32_t FlooredPos(uint32_t row, uint32_t pos, Rank floor) const {
    if (floor == kNoRank) return pos;
    const Rank* begin = fouts_.data.data() + fouts_.offsets[row];
    const Rank* end = fouts_.data.data() + fouts_.offsets[row + 1];
    return static_cast<uint32_t>(
        std::upper_bound(begin + pos, end, floor) - begin);
  }

  void CountSpan(std::span<const Rank> span, uint64_t weight,
                 std::vector<Rank>* touched) {
    for (Rank r : span) {
      if (counts_[r] == 0) touched->push_back(r);
      counts_[r] += weight;
    }
    base_->stats()->items_scanned += span.size();
  }

 public:
  /// One counting pass over all species: the frequent extension ranks
  /// ascending, with `freq_counts[i]` their supports. Exposed so the
  /// parallel driver can expand the root level before fanning out.
  std::vector<Rank> Count(const ProjectedDb& projs,
                          std::vector<uint64_t>* freq_counts) {
    std::vector<Rank> touched;
    for (const ProjSlice& ps : projs.slices) {
      CountSpan(Pattern(ps.slice_id, ps.pattern_pos), ps.count(), &touched);
      for (const TailRef& tail : ps.tails) {
        CountSpan(RowSuffix(tail.row, tail.pos), 1, &touched);
      }
    }
    for (const GroupPattern& gp : projs.gpatterns) {
      if (gp.count == 0) continue;  // Tombstone.
      CountSpan(Pattern(gp.slice_id, gp.pattern_pos), gp.count, &touched);
    }
    for (const PairedTail& pt : projs.paired) {
      if (pt.row == UINT32_MAX) continue;  // Tombstone.
      CountSpan(Pattern(pt.slice_id, pt.pattern_pos), 1, &touched);
      CountSpan(RowSuffix(pt.row, pt.pos), 1, &touched);
    }
    for (const TailRef& tail : projs.plain) {
      CountSpan(RowSuffix(tail.row, tail.pos), 1, &touched);
    }

    std::vector<Rank> frequent;
    for (Rank r : touched) {
      if (counts_[r] >= base_->min_support()) frequent.push_back(r);
    }
    std::sort(frequent.begin(), frequent.end());
    freq_counts->clear();
    for (Rank r : frequent) freq_counts->push_back(counts_[r]);
    for (Rank r : touched) counts_[r] = 0;
    return frequent;
  }

  /// Lemma 3.1 over all group-bearing species.
  bool TrySingleGroup(const ProjectedDb& projs,
                      const std::vector<Rank>& frequent,
                      const std::vector<uint64_t>& freq_counts,
                      std::vector<Rank>* prefix) {
    const auto check = [&](std::span<const Rank> pat,
                           uint64_t weight) -> bool {
      if (pat.size() < frequent.size()) return false;
      if (!std::includes(pat.begin(), pat.end(), frequent.begin(),
                         frequent.end())) {
        return false;
      }
      for (uint64_t c : freq_counts) {
        if (c != weight) return false;
      }
      base_->EmitCombinations(frequent, weight, prefix);
      return true;
    };

    for (const ProjSlice& ps : projs.slices) {
      if (check(Pattern(ps.slice_id, ps.pattern_pos), ps.count())) {
        return true;
      }
    }
    for (const GroupPattern& gp : projs.gpatterns) {
      if (gp.count != 0 &&
          check(Pattern(gp.slice_id, gp.pattern_pos), gp.count)) {
        return true;
      }
    }
    for (const PairedTail& pt : projs.paired) {
      if (pt.row != UINT32_MAX &&
          check(Pattern(pt.slice_id, pt.pattern_pos), 1)) {
        return true;
      }
    }
    return false;
  }

  void BuildBuckets(const ProjectedDb& projs,
                    const std::vector<Rank>& frequent,
                    std::vector<ProjectedDb>* buckets) {
    for (size_t i = 0; i < frequent.size(); ++i) {
      local_of_[frequent[i]] = static_cast<uint32_t>(i);
    }

    for (const ProjSlice& ps : projs.slices) ThreadProjSlice(ps, buckets);

    for (const GroupPattern& gp : projs.gpatterns) {
      if (gp.count == 0) continue;
      const auto pat = Pattern(gp.slice_id, gp.pattern_pos);
      for (size_t k = 0; k + 1 < pat.size(); ++k) {
        const uint32_t local = local_of_[pat[k]];
        if (local == UINT32_MAX) continue;
        (*buckets)[local].gpatterns.push_back(
            {gp.slice_id, gp.pattern_pos + static_cast<uint32_t>(k + 1),
             gp.count});
      }
    }

    for (const PairedTail& pt : projs.paired) {
      if (pt.row == UINT32_MAX) continue;
      ThreadSingleMember(pt.slice_id, pt.pattern_pos, pt.row, pt.pos,
                         buckets);
    }

    // Plain rows: exactly H-Mine's bucket threading.
    for (const TailRef& tail : projs.plain) {
      const auto out = RowSuffix(tail.row, tail.pos);
      for (size_t j = 0; j + 1 < out.size(); ++j) {
        const uint32_t local = local_of_[out[j]];
        if (local == UINT32_MAX) continue;
        (*buckets)[local].plain.push_back(
            {tail.row, tail.pos + static_cast<uint32_t>(j + 1)});
      }
    }

    for (Rank r : frequent) local_of_[r] = UINT32_MAX;
  }

 private:
  // -- Bucket builders per species --

  /// Appends the projections of one member (pattern suffix + out suffix)
  /// onto each frequent item it contains, without aggregation. Used by
  /// PairedTail sources and by ProjSlice group heads that degrade.
  void ThreadSingleMember(uint32_t slice_id, uint32_t pattern_pos,
                          uint32_t row, uint32_t pos,
                          std::vector<ProjectedDb>* buckets) {
    const auto pat = Pattern(slice_id, pattern_pos);
    // Pattern items: the member keeps its out suffix whole.
    for (size_t k = 0; k < pat.size(); ++k) {
      const uint32_t local = local_of_[pat[k]];
      if (local == UINT32_MAX) continue;
      const bool pattern_left = k + 1 < pat.size();
      const uint32_t out_pos = FlooredPos(row, pos, pat[k]);
      const bool out_left = out_pos < RowLen(row);
      const uint32_t pat_pos2 =
          pattern_pos + static_cast<uint32_t>(k + 1);
      if (pattern_left && out_left) {
        (*buckets)[local].paired.push_back({row, out_pos, slice_id,
                                            pat_pos2});
      } else if (pattern_left) {
        (*buckets)[local].gpatterns.push_back({slice_id, pat_pos2, 1});
      } else if (out_left) {
        (*buckets)[local].plain.push_back({row, out_pos});
      }
    }
    // Outlying items: keep the pattern items ranked above them.
    const auto out = RowSuffix(row, pos);
    size_t pat_k = 0;
    for (size_t j = 0; j < out.size(); ++j) {
      const Rank o = out[j];
      const uint32_t local = local_of_[o];
      if (local == UINT32_MAX) continue;
      while (pat_k < pat.size() && pat[pat_k] < o) ++pat_k;
      const bool pattern_left = pat_k < pat.size();
      const bool out_left = j + 1 < out.size();
      const uint32_t pat_pos2 =
          pattern_pos + static_cast<uint32_t>(pat_k);
      const uint32_t out_pos = pos + static_cast<uint32_t>(j + 1);
      if (pattern_left && out_left) {
        (*buckets)[local].paired.push_back({row, out_pos, slice_id,
                                            pat_pos2});
      } else if (pattern_left) {
        (*buckets)[local].gpatterns.push_back({slice_id, pat_pos2, 1});
      } else if (out_left) {
        (*buckets)[local].plain.push_back({row, out_pos});
      }
    }
  }

  void ThreadProjSlice(const ProjSlice& ps,
                       std::vector<ProjectedDb>* buckets) {
    const auto pat = Pattern(ps.slice_id, ps.pattern_pos);

    // Group-head contributions: projecting on a pattern item keeps every
    // member. Tails are advanced past the projection item eagerly, folding
    // exhausted members into full_count (so tail lists only shrink); when
    // the pattern suffix is consumed the survivors degrade to plain rows.
    for (size_t k = 0; k < pat.size(); ++k) {
      const uint32_t local = local_of_[pat[k]];
      if (local == UINT32_MAX) continue;
      const uint32_t pat_pos2 =
          ps.pattern_pos + static_cast<uint32_t>(k + 1);
      if (k + 1 < pat.size()) {
        ProjSlice next{ps.slice_id, pat_pos2, ps.full_count, {}};
        next.tails.reserve(ps.tails.size());
        for (const TailRef& tail : ps.tails) {
          const uint32_t out_pos = FlooredPos(tail.row, tail.pos, pat[k]);
          if (out_pos < RowLen(tail.row)) {
            next.tails.push_back({tail.row, out_pos});
          } else {
            ++next.full_count;
          }
        }
        if (next.tails.empty()) {
          (*buckets)[local].gpatterns.push_back(
              {ps.slice_id, pat_pos2,
               next.full_count});
        } else if (next.tails.size() == 1 && next.full_count == 0) {
          (*buckets)[local].paired.push_back(
              {next.tails[0].row, next.tails[0].pos, ps.slice_id,
               pat_pos2});
        } else {
          (*buckets)[local].slices.push_back(std::move(next));
        }
      } else {
        for (const TailRef& tail : ps.tails) {
          const uint32_t out_pos = FlooredPos(tail.row, tail.pos, pat[k]);
          if (out_pos < RowLen(tail.row)) {
            (*buckets)[local].plain.push_back({tail.row, out_pos});
          }
        }
      }
    }

    // Tail contributions: members whose outs contain the projection item.
    // Members of one (slice, item) pair aggregate lazily, upgrading
    // singleton entries to shared ones on the second member.
    ++serial_;
    for (const TailRef& tail : ps.tails) {
      const uint32_t start = tail.pos;
      const auto out = RowSuffix(tail.row, start);
      size_t pat_k = 0;
      for (size_t j = 0; j < out.size(); ++j) {
        const Rank o = out[j];
        const uint32_t local = local_of_[o];
        if (local == UINT32_MAX) continue;
        while (pat_k < pat.size() && pat[pat_k] < o) ++pat_k;
        const bool pattern_left = pat_k < pat.size();
        const bool out_left = j + 1 < out.size();
        const uint32_t out_pos = start + static_cast<uint32_t>(j + 1);
        if (!pattern_left) {
          if (out_left) (*buckets)[local].plain.push_back({tail.row, out_pos});
          continue;
        }
        const uint32_t pat_pos2 =
            ps.pattern_pos + static_cast<uint32_t>(pat_k);
        AddAggregated(ps.slice_id, pat_pos2, o, local, out_left, tail.row,
                      out_pos, buckets);
      }
    }
  }

  /// Lazy aggregation of tail-case members under one (source slice,
  /// projection item) key, upgrading representation as members accumulate.
  void AddAggregated(uint32_t slice_id, uint32_t pat_pos, Rank o,
                     uint32_t local, bool out_left, uint32_t row,
                     uint32_t out_pos, std::vector<ProjectedDb>* buckets) {
    ProjectedDb& bucket = (*buckets)[local];
    if (entry_stamp_[o] != serial_) {
      // First member for this (slice, o).
      entry_stamp_[o] = serial_;
      if (out_left) {
        entry_kind_[o] = kPaired;
        entry_idx_[o] = bucket.paired.size();
        bucket.paired.push_back({row, out_pos, slice_id, pat_pos});
      } else {
        entry_kind_[o] = kGPattern;
        entry_idx_[o] = bucket.gpatterns.size();
        bucket.gpatterns.push_back({slice_id, pat_pos, 1});
      }
      return;
    }
    // Later members: upgrade to a shared ProjSlice if not one already.
    if (entry_kind_[o] != kSlice) {
      ProjSlice shared{slice_id, pat_pos, 0, {}};
      if (entry_kind_[o] == kPaired) {
        PairedTail& old = bucket.paired[entry_idx_[o]];
        shared.tails.push_back({old.row, old.pos});
        old.row = UINT32_MAX;  // Tombstone.
      } else {
        GroupPattern& old = bucket.gpatterns[entry_idx_[o]];
        shared.full_count = old.count;
        old.count = 0;  // Tombstone.
      }
      entry_kind_[o] = kSlice;
      entry_idx_[o] = bucket.slices.size();
      bucket.slices.push_back(std::move(shared));
    }
    ProjSlice& entry = bucket.slices[entry_idx_[o]];
    if (out_left) {
      entry.tails.push_back({row, out_pos});
    } else {
      ++entry.full_count;
    }
  }

  enum EntryKind : uint8_t { kNone, kPaired, kGPattern, kSlice };

  const SliceDb& sdb_;
  const FlatOuts& fouts_;              // Shared flattened outlying rows.
  SliceMiningContext* base_;
  std::vector<uint64_t> counts_;       // Scratch, zero between calls.
  std::vector<uint32_t> local_of_;     // Scratch, UINT32_MAX between calls.
  std::vector<uint8_t> entry_kind_;    // Aggregation state per rank.
  std::vector<size_t> entry_idx_;
  std::vector<uint64_t> entry_stamp_;  // Last serial that touched each rank.
  // Strictly increasing id per source ProjSlice: a (rank, serial) match
  // identifies "this source already opened an entry for this rank".
  uint64_t serial_ = 0;
};

}  // namespace

bool MineSlicesHM(const SliceDb& sdb, const fpm::FList& flist,
                  uint64_t min_support,
                  const std::vector<fpm::Rank>& prefix_ranks,
                  fpm::PatternSet* out, fpm::MiningStats* stats,
                  RunContext* run_ctx) {
  SliceMiningContext base(flist, min_support, out, stats);
  base.BindRunContext(run_ctx);
  const FlatOuts fouts(sdb);
  RecycleHmContext root_ctx(sdb, fouts, &base);
  std::vector<Rank> prefix = prefix_ranks;
  const ProjectedDb root = root_ctx.Root();

  if (run_ctx == nullptr && !fpm::ParallelMiningEnabled()) {
    root_ctx.Mine(root, &prefix);
    return true;
  }

  // Expand the root level once, then fan the first-level projections out to
  // the pool. A plain-only root goes through the general Count/BuildBuckets
  // path here; it produces the same buckets, patterns, and counters as the
  // PlainMine shortcut (which only skips the species bookkeeping), so output
  // stays bit-identical to the sequential path.
  std::vector<uint64_t> freq_counts;
  const std::vector<Rank> frequent = root_ctx.Count(root, &freq_counts);
  if (frequent.empty()) return true;
  if (root_ctx.TrySingleGroup(root, frequent, freq_counts, &prefix)) {
    return true;
  }

  std::vector<ProjectedDb> buckets(frequent.size());
  root_ctx.BuildBuckets(root, frequent, &buckets);
  base.stats()->projections_built += frequent.size();

  // Lane-local contexts reuse their rank-indexed scratch across subtrees;
  // all of them share the read-only SliceDb and CSR.
  struct Lane {
    std::unique_ptr<SliceMiningContext> base;
    std::unique_ptr<RecycleHmContext> ctx;
  };
  const std::shared_ptr<ThreadPool> pool = ThreadPool::Global();
  std::vector<Lane> lanes(pool->threads());
  const auto mine_subtree = [&](fpm::MineShard* shard, size_t lane,
                                size_t i) -> bool {
    Lane& slot = lanes[lane];
    if (!slot.ctx) {
      slot.base = std::make_unique<SliceMiningContext>(
          flist, min_support, nullptr, nullptr);
      slot.base->BindRunContext(run_ctx);
      slot.ctx =
          std::make_unique<RecycleHmContext>(sdb, fouts, slot.base.get());
    }
    slot.base->SetSinks(&shard->patterns, &shard->stats);
    std::vector<Rank> sub_prefix = prefix;
    sub_prefix.push_back(frequent[i]);
    slot.base->EmitPattern(sub_prefix, freq_counts[i]);
    if (buckets[i].empty()) return true;
    return slot.ctx->Mine(buckets[i], &sub_prefix);
  };

  if (run_ctx == nullptr) {
    fpm::MineFirstLevelParallel(
        pool, frequent.size(),
        [&](fpm::MineShard* shard, size_t lane, size_t i) {
          mine_subtree(shard, lane, i);
        },
        out, stats);
    return true;
  }

  // Governed: root buckets stay live for the whole fan-out.
  size_t root_bytes = 0;
  for (const ProjectedDb& b : buckets) root_bytes += ProjectedDbBytes(b);
  const ScopedBytes root_charge(run_ctx, root_bytes);
  return fpm::MineFirstLevelGoverned(pool, frequent.size(), mine_subtree, out,
                                     stats, run_ctx, freq_counts,
                                     /*mark_frontier=*/prefix_ranks.empty());
}

Result<fpm::PatternSet> RecycleHMineMiner::MineCompressed(
    const CompressedDb& cdb, uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.recycle-hm");
  Timer timer;
  fpm::PatternSet out;

  const fpm::FList flist = fpm::FList::FromCounts(
      cdb.CountItemSupports(cdb.ItemUniverseSize()), min_support);
  if (check::ValidationEnabled()) {
    GOGREEN_VALIDATE_OR_DIE(check::ValidateCompressedDb(cdb, nullptr));
    GOGREEN_VALIDATE_OR_DIE(check::ValidateFList(flist, min_support));
  }
  if (!flist.empty()) {
    const SliceDb sdb = SliceDb::Build(cdb, flist);
    MineSlicesHM(sdb, flist, min_support, {}, &out, &stats_, run_ctx_);
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  fpm::RecordMiningStats(stats_);
  return out;
}

}  // namespace gogreen::core
