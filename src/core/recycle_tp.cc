#include "core/recycle_tp.h"

#include <algorithm>
#include <memory>

#include "check/check_db.h"
#include "core/slice_db.h"
#include "fpm/parallel_mine.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

using fpm::Rank;

/// Upper-triangular weighted pair-count matrix over n local items.
class PairMatrix {
 public:
  explicit PairMatrix(size_t n) : n_(n), counts_(n * (n - 1) / 2, 0) {}

  void Add(size_t i, size_t j, uint64_t w) { counts_[Index(i, j)] += w; }
  uint64_t Get(size_t i, size_t j) const { return counts_[Index(i, j)]; }

 private:
  size_t Index(size_t i, size_t j) const {
    GOGREEN_DCHECK(i < j && j < n_);
    return i * (2 * n_ - i - 1) / 2 + (j - i - 1);
  }

  size_t n_;
  std::vector<uint64_t> counts_;
};

class RecycleTpContext {
 public:
  explicit RecycleTpContext(SliceMiningContext* base)
      : base_(base), local_of_(base->flist().size(), UINT32_MAX) {}

  /// Processes one node: `ext` (ascending ranks) are the known-frequent
  /// extensions with supports `c1`; `slices` contain only ext items. Rows
  /// inside the slices are weighted (the bucketing the Tree Projection
  /// baseline also uses).
  /// Returns false iff a governed stop abandoned part of the subtree.
  bool Process(const std::vector<WeightedSlice>& slices,
               const std::vector<Rank>& ext, const std::vector<uint64_t>& c1,
               std::vector<Rank>* prefix) {
    if (base_->TrySingleGroupWeighted(slices, ext, c1, prefix)) return true;

    for (size_t i = 0; i < ext.size(); ++i) {
      prefix->push_back(ext[i]);
      base_->EmitPattern(*prefix, c1[i]);
      prefix->pop_back();
    }
    if (ext.size() < 2) return true;

    PairMatrix matrix(ext.size());
    FillMatrix(slices, ext, &matrix);

    bool completed = true;
    for (size_t i = 0; i + 1 < ext.size(); ++i) {
      if (base_->ShouldStop()) {
        completed = false;
        break;
      }
      if (!MineChild(slices, ext, matrix, i, prefix)) completed = false;
    }
    return completed;
  }

  /// One scan fills all pair supports. Pattern-internal pairs are counted
  /// once per slice with the slice weight (the group-counter saving);
  /// pairs touching outlying rows are counted once per distinct row with
  /// the row's multiplicity.
  void FillMatrix(const std::vector<WeightedSlice>& slices,
                  const std::vector<Rank>& ext, PairMatrix* matrix) {
    // Local index mapping for the matrix.
    for (size_t i = 0; i < ext.size(); ++i) {
      local_of_[ext[i]] = static_cast<uint32_t>(i);
    }

    std::vector<uint32_t> pat_local;
    std::vector<uint32_t> out_local;
    for (const WeightedSlice& s : slices) {
      pat_local.clear();
      for (Rank r : s.pattern) pat_local.push_back(local_of_[r]);
      base_->stats()->items_scanned += pat_local.size();
      const uint64_t weight = s.count();
      for (size_t a = 0; a < pat_local.size(); ++a) {
        for (size_t b = a + 1; b < pat_local.size(); ++b) {
          matrix->Add(pat_local[a], pat_local[b], weight);
        }
      }
      for (const auto& [row, w] : s.outs) {
        out_local.clear();
        for (Rank r : row) out_local.push_back(local_of_[r]);
        base_->stats()->items_scanned += out_local.size();
        for (size_t a = 0; a < out_local.size(); ++a) {
          for (size_t b = a + 1; b < out_local.size(); ++b) {
            matrix->Add(out_local[a], out_local[b], w);
          }
        }
        // Pattern and outlying ranks interleave; order each pair's locals.
        for (uint32_t p : pat_local) {
          for (uint32_t o : out_local) {
            matrix->Add(std::min(p, o), std::max(p, o), w);
          }
        }
      }
    }
    for (Rank r : ext) local_of_[r] = UINT32_MAX;
  }

  /// Builds and processes the child node for prefix + ext[i] from the
  /// parent's already-filled pair matrix. Reads `slices` and `matrix`
  /// without mutating them, so distinct children may run concurrently on
  /// distinct contexts.
  bool MineChild(const std::vector<WeightedSlice>& slices,
                 const std::vector<Rank>& ext, const PairMatrix& matrix,
                 size_t i, std::vector<Rank>* prefix) {
    std::vector<Rank> child_ext;
    std::vector<uint64_t> child_c1;
    for (size_t j = i + 1; j < ext.size(); ++j) {
      if (matrix.Get(i, j) >= base_->min_support()) {
        child_ext.push_back(ext[j]);
        child_c1.push_back(matrix.Get(i, j));
      }
    }
    if (child_ext.empty()) return true;

    const std::vector<WeightedSlice> child =
        ProjectAndFilter(slices, ext[i], child_ext);
    ++base_->stats()->projections_built;
    // The projected child slices are this step's dominant scratch; charge
    // them while the recursion below keeps them alive.
    const ScopedBytes charge(
        base_->run_context(),
        base_->run_context() != nullptr ? ApproxWeightedSliceBytes(child) : 0);
    prefix->push_back(ext[i]);
    const bool completed = Process(child, child_ext, child_c1, prefix);
    prefix->pop_back();
    return completed;
  }

 private:
  /// Projects onto `f` and keeps only items in `keep` (ascending ranks).
  std::vector<WeightedSlice> ProjectAndFilter(
      const std::vector<WeightedSlice>& slices, Rank f,
      const std::vector<Rank>& keep) {
    std::vector<WeightedSlice> base = ProjectWeightedSlices(slices, f);
    // Filter the survivors to the pruned extension set.
    std::vector<WeightedSlice> out;
    out.reserve(base.size());
    for (WeightedSlice& s : base) {
      WeightedSlice next;
      next.empty_count = s.empty_count;
      for (Rank r : s.pattern) {
        if (std::binary_search(keep.begin(), keep.end(), r)) {
          next.pattern.push_back(r);
        }
      }
      std::vector<Rank> row_buf;
      for (auto& [row, w] : s.outs) {
        row_buf.clear();
        for (Rank r : row) {
          if (std::binary_search(keep.begin(), keep.end(), r)) {
            row_buf.push_back(r);
          }
        }
        if (row_buf.empty()) {
          next.empty_count += w;
        } else {
          next.outs.emplace_back(row_buf, w);
        }
      }
      if (next.pattern.empty()) next.empty_count = 0;
      if (next.pattern.empty() && next.outs.empty()) continue;
      DedupeWeightedOuts(&next.outs);
      out.push_back(std::move(next));
    }
    return out;
  }

  SliceMiningContext* base_;
  std::vector<uint32_t> local_of_;  // Scratch, UINT32_MAX between calls.
};

}  // namespace

Result<fpm::PatternSet> RecycleTpMiner::MineCompressed(
    const CompressedDb& cdb, uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.recycle-tp");
  Timer timer;
  fpm::PatternSet out;

  const fpm::FList flist = fpm::FList::FromCounts(
      cdb.CountItemSupports(cdb.ItemUniverseSize()), min_support);
  if (check::ValidationEnabled()) {
    GOGREEN_VALIDATE_OR_DIE(check::ValidateCompressedDb(cdb, nullptr));
    GOGREEN_VALIDATE_OR_DIE(check::ValidateFList(flist, min_support));
  }
  if (!flist.empty()) {
    const SliceDb sdb = SliceDb::Build(cdb, flist);
    SliceMiningContext base(flist, min_support, &out, &stats_);
    base.BindRunContext(run_ctx_);
    RecycleTpContext ctx(&base);

    std::vector<Rank> ext(flist.size());
    std::vector<uint64_t> c1(flist.size());
    for (Rank r = 0; r < flist.size(); ++r) {
      ext[r] = r;
      c1[r] = flist.support(r);
    }
    std::vector<Rank> prefix;
    const std::vector<WeightedSlice> root = BuildWeightedSlices(sdb);

    if ((run_ctx_ == nullptr && !fpm::ParallelMiningEnabled()) ||
        ext.size() < 2) {
      ctx.Process(root, ext, c1, &prefix);
    } else if (!base.TrySingleGroupWeighted(root, ext, c1, &prefix)) {
      // Root expansion mirrors Process(): singletons, one matrix fill, then
      // the first-level children — fanned out to the pool, each only
      // reading the shared matrix and root slices. Ascending-child shard
      // merge reproduces the sequential emission order exactly.
      for (size_t i = 0; i < ext.size(); ++i) {
        prefix.push_back(ext[i]);
        base.EmitPattern(prefix, c1[i]);
        prefix.pop_back();
      }
      PairMatrix matrix(ext.size());
      ctx.FillMatrix(root, ext, &matrix);

      // Lane-local contexts reuse the rank-indexed scratch across subtrees.
      struct Lane {
        std::unique_ptr<SliceMiningContext> base;
        std::unique_ptr<RecycleTpContext> ctx;
      };
      const std::shared_ptr<ThreadPool> pool = ThreadPool::Global();
      std::vector<Lane> lanes(pool->threads());
      const auto mine_subtree = [&](fpm::MineShard* shard, size_t lane,
                                    size_t i) -> bool {
        Lane& slot = lanes[lane];
        if (!slot.ctx) {
          slot.base = std::make_unique<SliceMiningContext>(
              flist, min_support, nullptr, nullptr);
          slot.base->BindRunContext(run_ctx_);
          slot.ctx = std::make_unique<RecycleTpContext>(slot.base.get());
        }
        slot.base->SetSinks(&shard->patterns, &shard->stats);
        std::vector<Rank> sub_prefix;
        return slot.ctx->MineChild(root, ext, matrix, i, &sub_prefix);
      };

      if (run_ctx_ == nullptr) {
        fpm::MineFirstLevelParallel(
            pool, ext.size() - 1,
            [&](fpm::MineShard* shard, size_t lane, size_t i) {
              mine_subtree(shard, lane, i);
            },
            &out, &stats_);
      } else {
        // Governed: fan children descending. Child i's subtree holds the
        // patterns whose rarest item is ext[i], supported at most c1[i];
        // root slices and matrix stay live for the whole fan-out.
        const std::vector<uint64_t> level_supports(c1.begin(), c1.end() - 1);
        const ScopedBytes root_charge(
            run_ctx_, ApproxWeightedSliceBytes(root) +
                          ext.size() * (ext.size() - 1) / 2 *
                              sizeof(uint64_t));
        fpm::MineFirstLevelGoverned(pool, ext.size() - 1, mine_subtree, &out,
                                    &stats_, run_ctx_, level_supports,
                                    /*mark_frontier=*/true);
      }
    }
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  fpm::RecordMiningStats(stats_);
  return out;
}

}  // namespace gogreen::core
