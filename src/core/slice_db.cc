#include "core/slice_db.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace gogreen::core {

using fpm::Rank;

namespace {

/// Uniform access to a slice's out rows: Slice rows weigh 1, WeightedSlice
/// rows carry their multiplicity.
inline const std::vector<Rank>& RowOf(const std::vector<Rank>& row) {
  return row;
}
inline uint64_t WeightOf(const std::vector<Rank>&) { return 1; }

inline const std::vector<Rank>& RowOf(
    const std::pair<std::vector<Rank>, uint64_t>& row) {
  return row.first;
}
inline uint64_t WeightOf(const std::pair<std::vector<Rank>, uint64_t>& row) {
  return row.second;
}

struct RowHash {
  size_t operator()(const std::vector<Rank>& v) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (Rank x : v) {
      h ^= x;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

}  // namespace

SliceDb SliceDb::Build(const CompressedDb& cdb, const fpm::FList& flist) {
  SliceDb out;
  out.slices.reserve(cdb.NumGroups());
  for (GroupId g = 0; g < cdb.NumGroups(); ++g) {
    Slice slice;
    slice.pattern = flist.EncodeTransaction(cdb.PatternOf(g));
    for (uint64_t m = cdb.MemberBegin(g); m < cdb.MemberEnd(g); ++m) {
      std::vector<Rank> enc = flist.EncodeTransaction(cdb.Outlying(m));
      if (enc.empty()) {
        ++slice.empty_count;
      } else {
        slice.outs.push_back(std::move(enc));
      }
    }
    // A slice with no pattern carries information only through its outs;
    // with a pattern, even all-empty members contribute pattern counts.
    if (!slice.pattern.empty() || !slice.outs.empty()) {
      out.slices.push_back(std::move(slice));
    }
  }
  return out;
}

uint64_t SliceDb::StoredItems() const {
  uint64_t n = 0;
  for (const Slice& s : slices) {
    n += s.pattern.size();
    for (const auto& o : s.outs) n += o.size();
  }
  return n;
}

template <typename SliceT>
std::vector<Rank> SliceMiningContext::CountImpl(
    const std::vector<SliceT>& slices, std::vector<uint64_t>* counts_out) {
  if (scratch_counts_.size() < flist_.size()) {
    scratch_counts_.assign(flist_.size(), 0);
  }
  std::vector<Rank> touched;
  for (const SliceT& s : slices) {
    const uint64_t weight = s.count();
    for (Rank r : s.pattern) {
      if (scratch_counts_[r] == 0) touched.push_back(r);
      scratch_counts_[r] += weight;
      ++stats_->items_scanned;
    }
    for (const auto& out : s.outs) {
      const uint64_t w = WeightOf(out);
      for (Rank r : RowOf(out)) {
        if (scratch_counts_[r] == 0) touched.push_back(r);
        scratch_counts_[r] += w;
        ++stats_->items_scanned;
      }
    }
  }

  std::vector<Rank> frequent;
  for (Rank r : touched) {
    if (scratch_counts_[r] >= min_support_) frequent.push_back(r);
  }
  std::sort(frequent.begin(), frequent.end());

  counts_out->clear();
  counts_out->reserve(frequent.size());
  for (Rank r : frequent) counts_out->push_back(scratch_counts_[r]);
  for (Rank r : touched) scratch_counts_[r] = 0;
  return frequent;
}

std::vector<Rank> SliceMiningContext::CountFrequent(
    const std::vector<Slice>& slices, std::vector<uint64_t>* counts_out) {
  return CountImpl(slices, counts_out);
}

std::vector<Rank> SliceMiningContext::CountFrequentWeighted(
    const std::vector<WeightedSlice>& slices,
    std::vector<uint64_t>* counts_out) {
  return CountImpl(slices, counts_out);
}

template <typename SliceT>
bool SliceMiningContext::TrySingleGroupImpl(
    const std::vector<SliceT>& slices, const std::vector<Rank>& frequent,
    const std::vector<uint64_t>& counts, std::vector<Rank>* prefix) {
  if (frequent.empty()) return false;
  // Candidate slice: must contain every frequent item in its pattern and
  // account for its entire support. (Within one slice, outs are disjoint
  // from the pattern, so pattern membership already excludes out
  // occurrences in the same slice.)
  for (const SliceT& s : slices) {
    if (s.pattern.size() < frequent.size()) continue;
    if (!std::includes(s.pattern.begin(), s.pattern.end(), frequent.begin(),
                       frequent.end())) {
      continue;
    }
    const uint64_t weight = s.count();
    bool all_here = true;
    for (uint64_t c : counts) {
      if (c != weight) {
        all_here = false;
        break;
      }
    }
    if (all_here) {
      EmitCombinations(frequent, weight, prefix);
      return true;
    }
  }
  return false;
}

bool SliceMiningContext::TrySingleGroup(const std::vector<Slice>& slices,
                                        const std::vector<Rank>& frequent,
                                        const std::vector<uint64_t>& counts,
                                        std::vector<Rank>* prefix) {
  return TrySingleGroupImpl(slices, frequent, counts, prefix);
}

bool SliceMiningContext::TrySingleGroupWeighted(
    const std::vector<WeightedSlice>& slices,
    const std::vector<Rank>& frequent, const std::vector<uint64_t>& counts,
    std::vector<Rank>* prefix) {
  return TrySingleGroupImpl(slices, frequent, counts, prefix);
}

void SliceMiningContext::EmitPattern(const std::vector<Rank>& prefix,
                                     uint64_t support) {
  std::vector<fpm::ItemId> items = flist_.DecodeRanks(prefix);
  std::sort(items.begin(), items.end());
  out_->Add(std::move(items), support);
}

void SliceMiningContext::EmitCombinations(const std::vector<Rank>& items,
                                          uint64_t support,
                                          std::vector<Rank>* prefix) {
  const size_t k = items.size();
  GOGREEN_CHECK_LT(k, size_t{40});  // Combination explosion guard.
  for (uint64_t mask = 1; mask < (uint64_t{1} << k); ++mask) {
    size_t added = 0;
    for (size_t i = 0; i < k; ++i) {
      if ((mask >> i) & 1) {
        prefix->push_back(items[i]);
        ++added;
      }
    }
    EmitPattern(*prefix, support);
    for (size_t i = 0; i < added; ++i) prefix->pop_back();
  }
}

std::vector<Slice> ProjectSlices(const std::vector<Slice>& slices, Rank f) {
  std::vector<Slice> projected;
  for (const Slice& s : slices) {
    const auto pat_it =
        std::lower_bound(s.pattern.begin(), s.pattern.end(), f);
    const bool f_in_pattern = pat_it != s.pattern.end() && *pat_it == f;

    Slice next;
    if (f_in_pattern) {
      // Every member tuple contains f through the pattern.
      next.pattern.assign(pat_it + 1, s.pattern.end());
      next.empty_count = s.empty_count;
      for (const auto& out : s.outs) {
        const auto out_it = std::lower_bound(out.begin(), out.end(), f);
        if (out_it == out.end()) {
          ++next.empty_count;
        } else {
          next.outs.emplace_back(out_it, out.end());
        }
      }
      if (next.pattern.empty()) {
        // Members without remaining out items carry nothing.
        next.empty_count = 0;
      }
    } else {
      // Only members whose outlying part contains f qualify.
      next.pattern.assign(pat_it, s.pattern.end());
      for (const auto& out : s.outs) {
        const auto out_it = std::lower_bound(out.begin(), out.end(), f);
        if (out_it == out.end() || *out_it != f) continue;
        if (out_it + 1 == out.end()) {
          ++next.empty_count;
        } else {
          next.outs.emplace_back(out_it + 1, out.end());
        }
      }
      if (next.pattern.empty()) next.empty_count = 0;
      if (next.outs.empty() && next.empty_count == 0) continue;
    }
    if (next.pattern.empty() && next.outs.empty()) continue;
    projected.push_back(std::move(next));
  }
  return projected;
}

void DedupeWeightedOuts(
    std::vector<std::pair<std::vector<Rank>, uint64_t>>* outs) {
  if (outs->size() < 2) return;
  std::unordered_map<std::vector<Rank>, uint64_t, RowHash> merged;
  merged.reserve(outs->size());
  for (auto& [row, w] : *outs) merged[std::move(row)] += w;
  outs->clear();
  for (auto& [row, w] : merged) outs->emplace_back(row, w);
  // Canonical order: hash-map iteration order is an implementation detail,
  // and downstream scans must not depend on it.
  std::sort(outs->begin(), outs->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

std::vector<WeightedSlice> BuildWeightedSlices(const SliceDb& sdb) {
  std::vector<WeightedSlice> out;
  out.reserve(sdb.slices.size());
  for (const Slice& s : sdb.slices) {
    WeightedSlice ws;
    ws.pattern = s.pattern;
    ws.empty_count = s.empty_count;
    ws.outs.reserve(s.outs.size());
    for (const auto& row : s.outs) ws.outs.emplace_back(row, 1);
    DedupeWeightedOuts(&ws.outs);
    out.push_back(std::move(ws));
  }
  return out;
}

/// Merges slices with identical pattern suffixes: their member sets are
/// disjoint, so outs concatenate and counts add. Projections frequently
/// create such collisions (correlated recycled patterns share suffixes),
/// and merging restores the cross-group sharing an FP-tree gets from its
/// shared upper branches.
void MergeEqualPatterns(std::vector<WeightedSlice>* slices) {
  if (slices->size() < 2) return;
  std::unordered_map<std::vector<Rank>, size_t, RowHash> first;
  first.reserve(slices->size());
  std::vector<WeightedSlice> merged;
  merged.reserve(slices->size());
  for (WeightedSlice& s : *slices) {
    const auto [it, inserted] = first.try_emplace(s.pattern, merged.size());
    if (inserted) {
      merged.push_back(std::move(s));
    } else {
      WeightedSlice& dst = merged[it->second];
      dst.empty_count += s.empty_count;
      for (auto& out : s.outs) dst.outs.push_back(std::move(out));
      DedupeWeightedOuts(&dst.outs);
    }
  }
  *slices = std::move(merged);
}

std::vector<WeightedSlice> ProjectWeightedSlices(
    const std::vector<WeightedSlice>& slices, Rank f) {
  std::vector<WeightedSlice> projected;
  for (const WeightedSlice& s : slices) {
    const auto pat_it =
        std::lower_bound(s.pattern.begin(), s.pattern.end(), f);
    const bool f_in_pattern = pat_it != s.pattern.end() && *pat_it == f;

    WeightedSlice next;
    if (f_in_pattern) {
      next.pattern.assign(pat_it + 1, s.pattern.end());
      next.empty_count = s.empty_count;
      for (const auto& [row, w] : s.outs) {
        const auto it = std::lower_bound(row.begin(), row.end(), f);
        if (it == row.end()) {
          next.empty_count += w;
        } else {
          next.outs.emplace_back(std::vector<Rank>(it, row.end()), w);
        }
      }
      if (next.pattern.empty()) next.empty_count = 0;
    } else {
      next.pattern.assign(pat_it, s.pattern.end());
      for (const auto& [row, w] : s.outs) {
        const auto it = std::lower_bound(row.begin(), row.end(), f);
        if (it == row.end() || *it != f) continue;
        if (it + 1 == row.end()) {
          next.empty_count += w;
        } else {
          next.outs.emplace_back(std::vector<Rank>(it + 1, row.end()), w);
        }
      }
      if (next.pattern.empty()) next.empty_count = 0;
      if (next.outs.empty() && next.empty_count == 0) continue;
    }
    if (next.pattern.empty() && next.outs.empty()) continue;
    DedupeWeightedOuts(&next.outs);
    projected.push_back(std::move(next));
  }
  MergeEqualPatterns(&projected);
  return projected;
}

size_t ApproxWeightedSliceBytes(const std::vector<WeightedSlice>& slices) {
  size_t bytes = slices.size() * sizeof(WeightedSlice);
  for (const WeightedSlice& s : slices) {
    bytes += s.pattern.size() * sizeof(Rank);
    bytes += s.outs.size() *
             sizeof(std::pair<std::vector<Rank>, uint64_t>);
    for (const auto& [row, w] : s.outs) bytes += row.size() * sizeof(Rank);
  }
  return bytes;
}

}  // namespace gogreen::core
