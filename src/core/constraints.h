// Compatibility shim: the constraint framework moved to fpm/constraints.h
// so the unified fpm::MineRequest can carry a ConstraintSet without a
// layering inversion (constraints are predicates over fpm::Pattern and
// depend on nothing in core). Existing core:: spellings keep working
// through these aliases; new code should include "fpm/constraints.h".

#ifndef GOGREEN_CORE_CONSTRAINTS_H_
#define GOGREEN_CORE_CONSTRAINTS_H_

#include "fpm/constraints.h"

namespace gogreen::core {

using ConstraintCategory = fpm::ConstraintCategory;
using ConstraintDelta = fpm::ConstraintDelta;
using Constraint = fpm::Constraint;
using ConstraintSet = fpm::ConstraintSet;

using fpm::ConstraintCategoryName;
using fpm::ConstraintDeltaName;
using fpm::MakeItemSubset;
using fpm::MakeMaxLength;
using fpm::MakeMaxSum;
using fpm::MakeMinAvg;
using fpm::MakeMinLength;
using fpm::MakeRequiresAny;

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_CONSTRAINTS_H_
