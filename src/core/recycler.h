// The top-level recycling API: an interactive mining session over one
// database. The session caches the most recent complete pattern set and, on
// each query, chooses the cheapest correct path:
//
//   - first query            -> mine the raw database (any base algorithm);
//   - tightened constraints  -> filter the cached set (no database access);
//   - relaxed constraints    -> compress the database with the cached
//                               patterns (Figure 1) and mine the compressed
//                               database with an adapted algorithm
//                               (Sections 3.3 / 4) — the paper's
//                               contribution;
//   - incomparable change    -> relaxed-support handling if the support
//                               dropped, else a fresh mine, then post-filter.

#ifndef GOGREEN_CORE_RECYCLER_H_
#define GOGREEN_CORE_RECYCLER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/compressed_db.h"
#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/constraints.h"
#include "core/seed_selection.h"
#include "core/utility.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "fpm/transaction_db.h"
#include "util/status.h"

namespace gogreen::core {

struct RecyclerOptions {
  /// Compression strategy for the recycle path (MCP wins in the paper).
  CompressionStrategy strategy = CompressionStrategy::kMcp;
  MatcherKind matcher = MatcherKind::kAuto;
  /// Adapted algorithm used on compressed databases.
  RecycleAlgo algo = RecycleAlgo::kHMine;
  /// Algorithm for the initial (non-recycled) mining round.
  fpm::MinerKind base_miner = fpm::MinerKind::kHMine;
  /// Re-compress with the latest cached pattern set on every relaxation
  /// (compression is cheap — Table 3 — and fresher patterns compress
  /// better). When false, the first compressed image is reused.
  bool recompress_each_round = true;
  /// Disables recycling entirely (every round mines from scratch); used by
  /// benchmarks as the non-recycling baseline.
  bool enable_recycling = true;
};

/// Which path answered the last query.
enum class MiningPath {
  kInitial,   ///< First round: mined the raw database.
  kFiltered,  ///< Tightened: filtered the cached set.
  kRecycled,  ///< Relaxed: compressed + mined the compressed database.
  kScratch,   ///< Recycling disabled or unusable: mined the raw database.
};

const char* MiningPathName(MiningPath path);

/// Timings and context of the last Mine call.
struct SessionStats {
  MiningPath path = MiningPath::kInitial;
  ConstraintDelta delta = ConstraintDelta::kUnchanged;
  double mine_seconds = 0.0;      ///< Mining (or filtering) time.
  double compress_seconds = 0.0;  ///< Compression time (recycle path only).
  double compression_ratio = 1.0;
  uint64_t patterns_returned = 0;
  uint64_t cached_patterns = 0;  ///< Size of the cache after the call.
};

/// An interactive mining session. Not thread-safe; one user at a time.
class RecyclingSession {
 public:
  explicit RecyclingSession(fpm::TransactionDb db,
                            RecyclerOptions options = {});

  /// The unified entry point: one call covering support, constraints,
  /// governor, and per-request parallelism (see fpm::MineRequest). The
  /// session's cache always holds the support-complete set; non-support
  /// constraints are applied as a final filter (their tightening/relaxation
  /// only affects the reported delta, not correctness). Under a governor an
  /// early stop yields a partial-but-exact result at `frontier_support`,
  /// which is what gets cached — the next relaxation recycles it, the
  /// paper's own loop.
  Result<fpm::MineResult> Mine(const fpm::MineRequest& request);

  /// DEPRECATED: mines the complete set at an absolute support threshold.
  /// Thin wrapper over Mine(fpm::MineRequest); kept so existing callers
  /// migrate incrementally.
  Result<fpm::PatternSet> Mine(uint64_t min_support);

  /// Mines at a relative threshold (fraction of |DB|).
  Result<fpm::PatternSet> MineFraction(double fraction);

  /// DEPRECATED: constrained mining via a bare constraint set. Thin wrapper
  /// over Mine(fpm::MineRequest); kept so existing callers migrate
  /// incrementally.
  Result<fpm::PatternSet> Mine(const ConstraintSet& constraints);

  /// Seeds the cache with a pattern set mined elsewhere — e.g. by another
  /// user of the same database (the paper's multi-user motivation). The set
  /// must be the complete set of `db()` at `min_support`.
  void SeedCache(fpm::PatternSet fp, uint64_t min_support);

  /// Drops the cached patterns and compressed image.
  void InvalidateCache();

  const fpm::TransactionDb& db() const { return db_; }
  const SessionStats& last_stats() const { return last_stats_; }
  const RecyclerOptions& options() const { return options_; }
  bool has_cache() const { return cached_minsup_ != 0; }
  uint64_t cached_min_support() const { return cached_minsup_; }

 private:
  /// Support-only mining with path selection (via core::SelectSeed); the
  /// cache is updated to the returned set at its frontier support.
  Result<fpm::MineResult> MineSupport(uint64_t min_support);

  Result<fpm::MineResult> MineScratch(uint64_t min_support);
  Result<fpm::MineResult> MineRecycled(uint64_t min_support);

  fpm::TransactionDb db_;
  RecyclerOptions options_;

  fpm::PatternSet cached_fp_;
  uint64_t cached_minsup_ = 0;  ///< 0 = no cache.
  std::optional<CompressedDb> cdb_;
  std::optional<ConstraintSet> last_constraints_;
  SessionStats last_stats_;
  /// Governor of the in-flight unified Mine call; null otherwise.
  RunContext* active_ctx_ = nullptr;
};

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_RECYCLER_H_
