#include "core/recycle_fp.h"

#include <algorithm>
#include <memory>

#include "check/check_db.h"
#include "core/slice_db.h"
#include "fpm/parallel_mine.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

using fpm::Rank;

class RecycleFpContext {
 public:
  explicit RecycleFpContext(SliceMiningContext* base) : base_(base) {}

  /// Returns false iff a governed stop abandoned part of the subtree.
  bool Mine(const std::vector<WeightedSlice>& slices,
            std::vector<Rank>* prefix) {
    std::vector<uint64_t> freq_counts;
    const std::vector<Rank> frequent =
        base_->CountFrequentWeighted(slices, &freq_counts);
    if (frequent.empty()) return true;

    if (base_->TrySingleGroupWeighted(slices, frequent, freq_counts,
                                      prefix)) {
      return true;
    }

    bool completed = true;
    for (size_t i = 0; i < frequent.size(); ++i) {
      if (base_->ShouldStop()) {
        completed = false;
        break;
      }
      prefix->push_back(frequent[i]);
      base_->EmitPattern(*prefix, freq_counts[i]);
      const std::vector<WeightedSlice> projected =
          ProjectWeightedSlices(slices, frequent[i]);
      ++base_->stats()->projections_built;
      // The projected slices are this step's dominant scratch; charge them
      // while the recursion below keeps them alive.
      const ScopedBytes charge(base_->run_context(),
                               base_->run_context() != nullptr
                                   ? ApproxWeightedSliceBytes(projected)
                                   : 0);
      if (!projected.empty() && !Mine(projected, prefix)) completed = false;
      prefix->pop_back();
    }
    return completed;
  }

 private:
  SliceMiningContext* base_;
};

}  // namespace

Result<fpm::PatternSet> RecycleFpMiner::MineCompressed(
    const CompressedDb& cdb, uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.recycle-fp");
  Timer timer;
  fpm::PatternSet out;

  const fpm::FList flist = fpm::FList::FromCounts(
      cdb.CountItemSupports(cdb.ItemUniverseSize()), min_support);
  if (check::ValidationEnabled()) {
    GOGREEN_VALIDATE_OR_DIE(check::ValidateCompressedDb(cdb, nullptr));
    GOGREEN_VALIDATE_OR_DIE(check::ValidateFList(flist, min_support));
  }
  if (!flist.empty()) {
    const SliceDb sdb = SliceDb::Build(cdb, flist);
    SliceMiningContext base(flist, min_support, &out, &stats_);
    base.BindRunContext(run_ctx_);
    std::vector<Rank> prefix;
    const std::vector<WeightedSlice> root = BuildWeightedSlices(sdb);

    if (run_ctx_ == nullptr && !fpm::ParallelMiningEnabled()) {
      RecycleFpContext ctx(&base);
      ctx.Mine(root, &prefix);
    } else {
      // Expand the root level once (count + the Lemma 3.1 shortcut), then
      // fan the first-level projections out to the pool. Every worker
      // projects from the shared read-only root slices; ascending-rank
      // shard merge reproduces the sequential emission order exactly. A
      // governed run fans descending instead, so an early stop yields a
      // sound frontier.
      std::vector<uint64_t> freq_counts;
      const std::vector<Rank> frequent =
          base.CountFrequentWeighted(root, &freq_counts);
      if (!frequent.empty() &&
          !base.TrySingleGroupWeighted(root, frequent, freq_counts,
                                       &prefix)) {
        // Lane-local contexts reuse the counting scratch across subtrees.
        const std::shared_ptr<ThreadPool> pool = ThreadPool::Global();
        std::vector<std::unique_ptr<SliceMiningContext>> lanes(
            pool->threads());
        const auto mine_subtree = [&](fpm::MineShard* shard, size_t lane,
                                      size_t i) -> bool {
          auto& lane_base = lanes[lane];
          if (!lane_base) {
            lane_base = std::make_unique<SliceMiningContext>(
                flist, min_support, nullptr, nullptr);
            lane_base->BindRunContext(run_ctx_);
          }
          lane_base->SetSinks(&shard->patterns, &shard->stats);
          std::vector<Rank> sub_prefix;
          sub_prefix.push_back(frequent[i]);
          lane_base->EmitPattern(sub_prefix, freq_counts[i]);
          const std::vector<WeightedSlice> projected =
              ProjectWeightedSlices(root, frequent[i]);
          ++shard->stats.projections_built;
          if (projected.empty()) return true;
          const ScopedBytes charge(
              run_ctx_,
              run_ctx_ != nullptr ? ApproxWeightedSliceBytes(projected) : 0);
          RecycleFpContext ctx(lane_base.get());
          return ctx.Mine(projected, &sub_prefix);
        };

        if (run_ctx_ == nullptr) {
          fpm::MineFirstLevelParallel(
              pool, frequent.size(),
              [&](fpm::MineShard* shard, size_t lane, size_t i) {
                mine_subtree(shard, lane, i);
              },
              &out, &stats_);
        } else {
          // Root slices stay live for the whole fan-out.
          const ScopedBytes root_charge(run_ctx_,
                                        ApproxWeightedSliceBytes(root));
          fpm::MineFirstLevelGoverned(pool, frequent.size(), mine_subtree,
                                      &out, &stats_, run_ctx_, freq_counts,
                                      /*mark_frontier=*/true);
        }
      }
    }
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  fpm::RecordMiningStats(stats_);
  return out;
}

}  // namespace gogreen::core
