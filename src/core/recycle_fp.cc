#include "core/recycle_fp.h"

#include <algorithm>
#include <memory>

#include "core/slice_db.h"
#include "fpm/parallel_mine.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

using fpm::Rank;

class RecycleFpContext {
 public:
  explicit RecycleFpContext(SliceMiningContext* base) : base_(base) {}

  void Mine(const std::vector<WeightedSlice>& slices,
            std::vector<Rank>* prefix) {
    std::vector<uint64_t> freq_counts;
    const std::vector<Rank> frequent =
        base_->CountFrequentWeighted(slices, &freq_counts);
    if (frequent.empty()) return;

    if (base_->TrySingleGroupWeighted(slices, frequent, freq_counts,
                                      prefix)) {
      return;
    }

    for (size_t i = 0; i < frequent.size(); ++i) {
      prefix->push_back(frequent[i]);
      base_->EmitPattern(*prefix, freq_counts[i]);
      const std::vector<WeightedSlice> projected =
          ProjectWeightedSlices(slices, frequent[i]);
      ++base_->stats()->projections_built;
      if (!projected.empty()) Mine(projected, prefix);
      prefix->pop_back();
    }
  }

 private:
  SliceMiningContext* base_;
};

}  // namespace

Result<fpm::PatternSet> RecycleFpMiner::MineCompressed(
    const CompressedDb& cdb, uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.recycle-fp");
  Timer timer;
  fpm::PatternSet out;

  const fpm::FList flist = fpm::FList::FromCounts(
      cdb.CountItemSupports(cdb.ItemUniverseSize()), min_support);
  if (!flist.empty()) {
    const SliceDb sdb = SliceDb::Build(cdb, flist);
    SliceMiningContext base(flist, min_support, &out, &stats_);
    std::vector<Rank> prefix;
    const std::vector<WeightedSlice> root = BuildWeightedSlices(sdb);

    if (!fpm::ParallelMiningEnabled()) {
      RecycleFpContext ctx(&base);
      ctx.Mine(root, &prefix);
    } else {
      // Expand the root level once (count + the Lemma 3.1 shortcut), then
      // fan the first-level projections out to the pool. Every worker
      // projects from the shared read-only root slices; ascending-rank
      // shard merge reproduces the sequential emission order exactly.
      std::vector<uint64_t> freq_counts;
      const std::vector<Rank> frequent =
          base.CountFrequentWeighted(root, &freq_counts);
      if (!frequent.empty() &&
          !base.TrySingleGroupWeighted(root, frequent, freq_counts,
                                       &prefix)) {
        // Lane-local contexts reuse the counting scratch across subtrees.
        const std::shared_ptr<ThreadPool> pool = ThreadPool::Global();
        std::vector<std::unique_ptr<SliceMiningContext>> lanes(
            pool->threads());
        fpm::MineFirstLevelParallel(
            pool, frequent.size(),
            [&](fpm::MineShard* shard, size_t lane, size_t i) {
              auto& lane_base = lanes[lane];
              if (!lane_base) {
                lane_base = std::make_unique<SliceMiningContext>(
                    flist, min_support, nullptr, nullptr);
              }
              lane_base->SetSinks(&shard->patterns, &shard->stats);
              std::vector<Rank> sub_prefix;
              sub_prefix.push_back(frequent[i]);
              lane_base->EmitPattern(sub_prefix, freq_counts[i]);
              const std::vector<WeightedSlice> projected =
                  ProjectWeightedSlices(root, frequent[i]);
              ++shard->stats.projections_built;
              if (!projected.empty()) {
                RecycleFpContext ctx(lane_base.get());
                ctx.Mine(projected, &sub_prefix);
              }
            },
            &out, &stats_);
      }
    }
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  fpm::RecordMiningStats(stats_);
  return out;
}

}  // namespace gogreen::core
