// Recycle-TP (Section 4.2): the Tree Projection adaptation to compressed
// databases. Keeps Tree Projection's signature mechanism — a pair-count
// matrix per lexicographic-tree node that supplies every child's extension
// supports in one scan — but computes the matrix over slices: the pairs
// internal to a group pattern are counted once per slice with the slice's
// tuple weight, instead of once per member tuple.

#ifndef GOGREEN_CORE_RECYCLE_TP_H_
#define GOGREEN_CORE_RECYCLE_TP_H_

#include "core/compressed_miner.h"

namespace gogreen::core {

class RecycleTpMiner : public CompressedMiner {
 public:
  std::string name() const override { return "recycle-tp"; }

  Result<fpm::PatternSet> MineCompressed(const CompressedDb& cdb,
                                         uint64_t min_support) override;
};

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_RECYCLE_TP_H_
