#include "core/incremental.h"

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "util/timer.h"

namespace gogreen::core {

IncrementalSession::IncrementalSession(fpm::TransactionDb db,
                                       RecyclerOptions options)
    : db_(std::move(db)), options_(options) {}

void IncrementalSession::AddTransaction(std::vector<fpm::ItemId> items) {
  db_.AddTransaction(std::move(items));
}

void IncrementalSession::AddBatch(const fpm::TransactionDb& batch) {
  for (fpm::Tid t = 0; t < batch.NumTransactions(); ++t) {
    db_.AddCanonicalTransaction(batch.Transaction(t));
  }
}

size_t IncrementalSession::RemoveIf(
    const std::function<bool(fpm::Tid, fpm::ItemSpan)>& predicate) {
  fpm::TransactionDb survivor;
  survivor.Reserve(db_.NumTransactions(), db_.TotalItems());
  size_t removed = 0;
  for (fpm::Tid t = 0; t < db_.NumTransactions(); ++t) {
    const fpm::ItemSpan row = db_.Transaction(t);
    if (predicate(t, row)) {
      ++removed;
    } else {
      survivor.AddCanonicalTransaction(row);
    }
  }
  db_ = std::move(survivor);
  return removed;
}

Result<fpm::PatternSet> IncrementalSession::Mine(uint64_t min_support) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  last_stats_ = SessionStats();

  fpm::PatternSet fp;
  if (!has_cache_ || !options_.enable_recycling || cached_fp_.empty()) {
    Timer timer;
    auto miner = fpm::CreateMiner(options_.base_miner);
    GOGREEN_ASSIGN_OR_RETURN(fp, miner->Mine(db_, min_support));
    last_stats_.mine_seconds = timer.ElapsedSeconds();
    last_stats_.path =
        has_cache_ ? MiningPath::kScratch : MiningPath::kInitial;
  } else {
    // Compress the *current* database with the previous round's patterns.
    // Their stale supports only influence the utility ranking; the mined
    // supports come from the actual data.
    Timer timer;
    CompressionStats cstats;
    GOGREEN_ASSIGN_OR_RETURN(
        const CompressedDb cdb,
        CompressDatabase(db_, cached_fp_,
                         {options_.strategy, options_.matcher}, &cstats));
    last_stats_.compress_seconds = timer.ElapsedSeconds();
    last_stats_.compression_ratio = cstats.Ratio();

    timer.Restart();
    auto miner = CreateCompressedMiner(options_.algo);
    GOGREEN_ASSIGN_OR_RETURN(fp, miner->MineCompressed(cdb, min_support));
    last_stats_.mine_seconds = timer.ElapsedSeconds();
    last_stats_.path = MiningPath::kRecycled;
  }

  cached_fp_ = fp;
  has_cache_ = true;
  last_stats_.patterns_returned = fp.size();
  last_stats_.cached_patterns = cached_fp_.size();
  return fp;
}

}  // namespace gogreen::core
