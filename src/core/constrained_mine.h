// Constraint pushdown: mining with anti-monotone constraints enforced
// *during* the search (when a prefix fails an anti-monotone constraint, no
// extension can satisfy it, so the whole subtree is pruned), with the
// remaining constraint categories applied as a final filter. This is the
// "push constraints deep into the mining algorithm" technique the paper
// cites ([12, 14]) as the source of the iterative refinement workload that
// recycling accelerates.

#ifndef GOGREEN_CORE_CONSTRAINED_MINE_H_
#define GOGREEN_CORE_CONSTRAINED_MINE_H_

#include "core/compressed_db.h"
#include "core/constraints.h"
#include "fpm/miner.h"
#include "fpm/transaction_db.h"
#include "util/status.h"

namespace gogreen::core {

/// Mines the patterns of `db` satisfying `constraints`, pruning subtrees
/// with the anti-monotone members during an H-Mine-style search and
/// post-filtering with the rest. Exact: equals mining the complete set and
/// filtering, but can visit a much smaller search space.
Result<fpm::PatternSet> MineConstrained(const fpm::TransactionDb& db,
                                        const ConstraintSet& constraints,
                                        fpm::MiningStats* stats = nullptr);

/// The same, over a compressed database (recycling + pushdown combined):
/// slices are decoded lazily and subtrees failing the anti-monotone
/// constraints are pruned before projection.
Result<fpm::PatternSet> MineConstrainedCompressed(
    const CompressedDb& cdb, const ConstraintSet& constraints,
    fpm::MiningStats* stats = nullptr);

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_CONSTRAINED_MINE_H_
