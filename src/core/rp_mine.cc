#include "core/rp_mine.h"

#include "check/check_db.h"
#include "core/slice_db.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

using fpm::Rank;

void MineRec(SliceMiningContext* ctx, const std::vector<Slice>& slices,
             std::vector<Rank>* prefix) {
  std::vector<uint64_t> counts;
  const std::vector<Rank> frequent = ctx->CountFrequent(slices, &counts);
  if (frequent.empty()) return;

  if (ctx->TrySingleGroup(slices, frequent, counts, prefix)) return;

  for (size_t i = 0; i < frequent.size(); ++i) {
    prefix->push_back(frequent[i]);
    ctx->EmitPattern(*prefix, counts[i]);
    const std::vector<Slice> projected = ProjectSlices(slices, frequent[i]);
    ++ctx->stats()->projections_built;
    if (!projected.empty()) MineRec(ctx, projected, prefix);
    prefix->pop_back();
  }
}

}  // namespace

Result<fpm::PatternSet> RpMineMiner::MineCompressed(const CompressedDb& cdb,
                                                    uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.rp-mine");
  Timer timer;
  fpm::PatternSet out;

  const fpm::FList flist = fpm::FList::FromCounts(
      cdb.CountItemSupports(cdb.ItemUniverseSize()), min_support);
  if (check::ValidationEnabled()) {
    GOGREEN_VALIDATE_OR_DIE(check::ValidateCompressedDb(cdb, nullptr));
    GOGREEN_VALIDATE_OR_DIE(check::ValidateFList(flist, min_support));
  }
  if (!flist.empty()) {
    const SliceDb sdb = SliceDb::Build(cdb, flist);
    SliceMiningContext ctx(flist, min_support, &out, &stats_);
    std::vector<Rank> prefix;
    MineRec(&ctx, sdb.slices, &prefix);
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  fpm::RecordMiningStats(stats_);
  return out;
}

}  // namespace gogreen::core
