// Interface for miners that operate on a compressed database, plus a
// factory over the paper's adapted algorithms.

#ifndef GOGREEN_CORE_COMPRESSED_MINER_H_
#define GOGREEN_CORE_COMPRESSED_MINER_H_

#include <memory>
#include <string>

#include "core/compressed_db.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "util/status.h"

namespace gogreen::core {

/// Mines the complete frequent-pattern set of the database a CompressedDb
/// encodes, without decompressing it. The result is identical to mining the
/// original database (the compression is lossless); only the work differs.
class CompressedMiner {
 public:
  virtual ~CompressedMiner() = default;

  /// Algorithm name for reports ("rp-mine", "recycle-hm", ...).
  virtual std::string name() const = 0;

  /// Complete set with support >= min_support (absolute, >= 1).
  virtual Result<fpm::PatternSet> MineCompressed(const CompressedDb& cdb,
                                                 uint64_t min_support) = 0;

  /// The unified entry point (mirrors FrequentPatternMiner::Mine): one call
  /// covering support, constraints, governor, and per-request parallelism.
  /// Not virtual — wraps the MineCompressed implementation hook. Concrete
  /// miner classes hide this overload with their MineCompressed override;
  /// call it through the CompressedMiner interface.
  Result<fpm::MineResult> Mine(const CompressedDb& cdb,
                               const fpm::MineRequest& request);

  const fpm::MiningStats& stats() const { return stats_; }

 protected:
  static Status ValidateArgs(uint64_t min_support) {
    if (min_support == 0) {
      return Status::InvalidArgument("min_support must be >= 1");
    }
    return Status::OK();
  }

  fpm::MiningStats stats_;
  /// Governor of the in-flight Mine(cdb, request) call; bound for the span
  /// of that call only (implementation hooks read it, never write it).
  RunContext* run_ctx_ = nullptr;
};

/// The compressed-database mining algorithms (Sections 3.3 and 4).
enum class RecycleAlgo {
  kNaive,           ///< RP-Mine: physical slice projection (Figure 3).
  kHMine,           ///< Recycle-HM: pseudo-projection, H-Mine style (§4.1).
  kFpGrowth,        ///< Recycle-FP: shared-suffix (prefix-tree) slices (§4.2).
  kTreeProjection,  ///< Recycle-TP: pair-matrix pruning over slices (§4.2).
};

std::unique_ptr<CompressedMiner> CreateCompressedMiner(RecycleAlgo algo);

const char* RecycleAlgoName(RecycleAlgo algo);

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_COMPRESSED_MINER_H_
