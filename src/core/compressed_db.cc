#include "core/compressed_db.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "fpm/pattern.h"
#include "util/logging.h"

namespace gogreen::core {

GroupId CompressedDb::AddGroup(fpm::ItemSpan pattern) {
#ifndef NDEBUG
  // Finish any previous group implicitly; verify pattern canonical.
  for (size_t i = 1; i < pattern.size(); ++i) {
    GOGREEN_DCHECK(pattern[i - 1] < pattern[i]);
  }
#endif
  pattern_items_.insert(pattern_items_.end(), pattern.begin(), pattern.end());
  pattern_offsets_.push_back(pattern_items_.size());
  group_offsets_.push_back(member_tids_.size());
  if (!pattern.empty()) {
    item_universe_ = std::max(item_universe_,
                              static_cast<size_t>(pattern.back()) + 1);
  }
  return static_cast<GroupId>(NumGroups() - 1);
}

void CompressedDb::AddMember(fpm::Tid original_tid, fpm::ItemSpan outlying) {
  GOGREEN_DCHECK(NumGroups() > 0);
#ifndef NDEBUG
  for (size_t i = 1; i < outlying.size(); ++i) {
    GOGREEN_DCHECK(outlying[i - 1] < outlying[i]);
  }
#endif
  member_tids_.push_back(original_tid);
  outlying_items_.insert(outlying_items_.end(), outlying.begin(),
                         outlying.end());
  outlying_offsets_.push_back(outlying_items_.size());
  group_offsets_.back() = member_tids_.size();
  if (!outlying.empty()) {
    item_universe_ = std::max(item_universe_,
                              static_cast<size_t>(outlying.back()) + 1);
  }
}

std::vector<uint64_t> CompressedDb::CountItemSupports(
    size_t item_universe) const {
  std::vector<uint64_t> counts(std::max(item_universe, item_universe_), 0);
  for (GroupId g = 0; g < NumGroups(); ++g) {
    const GroupView view = Group(g);
    for (fpm::ItemId it : view.pattern) counts[it] += view.count;
  }
  for (fpm::ItemId it : outlying_items_) ++counts[it];
  return counts;
}

fpm::TransactionDb CompressedDb::Decompress() const {
  fpm::TransactionDb db;
  db.Reserve(NumTuples(), StoredItems());
  std::vector<fpm::ItemId> row;
  for (GroupId g = 0; g < NumGroups(); ++g) {
    const fpm::ItemSpan pattern = PatternOf(g);
    for (uint64_t m = MemberBegin(g); m < MemberEnd(g); ++m) {
      const fpm::ItemSpan out = Outlying(m);
      row.clear();
      row.reserve(pattern.size() + out.size());
      std::merge(pattern.begin(), pattern.end(), out.begin(), out.end(),
                 std::back_inserter(row));
      db.AddCanonicalTransaction(row);
    }
  }
  return db;
}

size_t CompressedDb::MemoryUsage() const {
  return pattern_items_.capacity() * sizeof(fpm::ItemId) +
         pattern_offsets_.capacity() * sizeof(uint64_t) +
         group_offsets_.capacity() * sizeof(uint64_t) +
         member_tids_.capacity() * sizeof(fpm::Tid) +
         outlying_items_.capacity() * sizeof(fpm::ItemId) +
         outlying_offsets_.capacity() * sizeof(uint64_t);
}

namespace {

constexpr uint64_t kMagic = 0x4742444347474F47ULL;  // "GOGGCDBG"

template <typename T>
void WriteVec(std::ofstream& out, const std::vector<T>& v) {
  const uint64_t n = v.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
bool ReadVec(std::ifstream& in, std::vector<T>* v) {
  uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in.good()) return false;
  // Sanity cap: refuse absurd sizes rather than bad_alloc on corrupt input.
  if (n > (uint64_t{1} << 40) / sizeof(T)) return false;
  v->resize(n);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  return in.good() || (n == 0 && in.eof());
}

}  // namespace

Result<uint64_t> CompressedDb::WriteTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const uint64_t universe = item_universe_;
  out.write(reinterpret_cast<const char*>(&universe), sizeof(universe));
  WriteVec(out, pattern_items_);
  WriteVec(out, pattern_offsets_);
  WriteVec(out, group_offsets_);
  WriteVec(out, member_tids_);
  WriteVec(out, outlying_items_);
  WriteVec(out, outlying_offsets_);
  out.flush();
  if (!out.good()) return Status::IOError("write error on " + path);
  return static_cast<uint64_t>(out.tellp());
}

Result<CompressedDb> CompressedDb::ReadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in.good() || magic != kMagic) {
    return Status::IOError("not a CompressedDb image: " + path);
  }
  CompressedDb db;
  uint64_t universe = 0;
  in.read(reinterpret_cast<char*>(&universe), sizeof(universe));
  db.item_universe_ = universe;
  if (!ReadVec(in, &db.pattern_items_) ||
      !ReadVec(in, &db.pattern_offsets_) ||
      !ReadVec(in, &db.group_offsets_) || !ReadVec(in, &db.member_tids_) ||
      !ReadVec(in, &db.outlying_items_) ||
      !ReadVec(in, &db.outlying_offsets_)) {
    return Status::IOError("truncated CompressedDb image: " + path);
  }
  // Structural validation so downstream code can trust offsets.
  if (db.pattern_offsets_.empty() || db.group_offsets_.empty() ||
      db.outlying_offsets_.empty() ||
      db.pattern_offsets_.front() != 0 || db.group_offsets_.front() != 0 ||
      db.outlying_offsets_.front() != 0 ||
      db.pattern_offsets_.back() != db.pattern_items_.size() ||
      db.group_offsets_.back() != db.member_tids_.size() ||
      db.outlying_offsets_.back() != db.outlying_items_.size() ||
      db.pattern_offsets_.size() != db.group_offsets_.size() ||
      db.outlying_offsets_.size() != db.member_tids_.size() + 1) {
    return Status::IOError("inconsistent CompressedDb image: " + path);
  }
  return db;
}

}  // namespace gogreen::core
