// SliceDb: the compressed database re-encoded onto an F-list for mining.
//
// Key invariant that makes compressed mining simple: once a group's pattern
// and each tuple's outlying items are sorted in F-list rank order, *every*
// projected database keeps only items ranked after the projection item —
// i.e. a suffix. A projected compressed database is therefore a set of
// *slices*: (pattern-suffix, member outlying-suffixes), and the paper's
// savings fall out naturally:
//   - support counting adds a pattern item's contribution once per slice
//     (weighted by the slice's tuple count) instead of once per tuple;
//   - projecting on a pattern item moves a whole slice in O(members) —
//     or O(1) in the pseudo-projection variant — instead of O(items).

#ifndef GOGREEN_CORE_SLICE_DB_H_
#define GOGREEN_CORE_SLICE_DB_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/compressed_db.h"
#include "fpm/flist.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "util/run_context.h"

namespace gogreen::core {

/// One group of the compressed database under a specific F-list: the group
/// pattern as ascending ranks, plus each member's (non-empty) outlying ranks.
/// Members whose outlying part encodes to nothing are only counted.
struct Slice {
  std::vector<fpm::Rank> pattern;
  std::vector<std::vector<fpm::Rank>> outs;  ///< Non-empty, each ascending.
  uint64_t empty_count = 0;  ///< Members with no frequent outlying items.

  uint64_t count() const { return outs.size() + empty_count; }
};

/// The ranked view of a whole compressed database.
struct SliceDb {
  std::vector<Slice> slices;

  /// Builds the view of `cdb` under `flist` (which is typically
  /// FList::FromCounts(cdb.CountItemSupports(...), xi_new)). Groups whose
  /// pattern and members all encode to nothing are dropped.
  static SliceDb Build(const CompressedDb& cdb, const fpm::FList& flist);

  /// Total encoded items across all slices (pattern stored once per slice).
  uint64_t StoredItems() const;
};

/// A slice whose outlying rows carry multiplicities: identical suffixes are
/// stored once. This is the flattened form of the path sharing an FP-tree
/// (or Tree Projection's transaction bucketing) provides, and it is what
/// makes the Recycle-FP / Recycle-TP adaptations competitive with their
/// heavily-sharing baselines.
struct WeightedSlice {
  std::vector<fpm::Rank> pattern;
  std::vector<std::pair<std::vector<fpm::Rank>, uint64_t>> outs;
  uint64_t empty_count = 0;

  uint64_t count() const {
    uint64_t n = empty_count;
    for (const auto& [row, w] : outs) n += w;
    return n;
  }
};

/// Shared machinery for the compressed-database miners: counting, the
/// single-group shortcut of Lemma 3.1, and pattern emission.
class SliceMiningContext {
 public:
  SliceMiningContext(const fpm::FList& flist, uint64_t min_support,
                     fpm::PatternSet* out, fpm::MiningStats* stats)
      : flist_(flist), min_support_(min_support), out_(out), stats_(stats) {}

  const fpm::FList& flist() const { return flist_; }
  uint64_t min_support() const { return min_support_; }
  fpm::MiningStats* stats() { return stats_; }

  /// Redirects emission and counters, e.g. into a per-worker shard. The
  /// context keeps its scratch buffers, so a lane-local context can serve
  /// successive first-level subtrees by re-pointing the sinks.
  void SetSinks(fpm::PatternSet* out, fpm::MiningStats* stats) {
    out_ = out;
    stats_ = stats;
  }

  /// Attaches the run governor; miners sharing this context poll it between
  /// subtrees and charge their scratch against its budget. Null detaches.
  void BindRunContext(RunContext* ctx) { run_ctx_ = ctx; }
  RunContext* run_context() const { return run_ctx_; }

  /// True when a governed run must stop at the next pattern-set boundary.
  bool ShouldStop() const {
    return run_ctx_ != nullptr && run_ctx_->ShouldStop();
  }

  /// Counts candidate-extension supports across `slices`. Pattern items are
  /// counted once per slice with the slice's tuple count — the group-counter
  /// trick of Section 3.1. Returns locally frequent ranks ascending and
  /// fills `counts_out[i]` with the support of the i-th of them.
  std::vector<fpm::Rank> CountFrequent(const std::vector<Slice>& slices,
                                       std::vector<uint64_t>* counts_out);

  /// Weighted-slice counterpart of CountFrequent.
  std::vector<fpm::Rank> CountFrequentWeighted(
      const std::vector<WeightedSlice>& slices,
      std::vector<uint64_t>* counts_out);

  /// Lemma 3.1: if every occurrence of every frequent item lies in a single
  /// slice's pattern, the complete extension set is all combinations of the
  /// frequent items, each supported by that slice's tuple count. Returns
  /// true (and emits all combinations under `prefix`) when the shortcut
  /// applies.
  bool TrySingleGroup(const std::vector<Slice>& slices,
                      const std::vector<fpm::Rank>& frequent,
                      const std::vector<uint64_t>& counts,
                      std::vector<fpm::Rank>* prefix);

  /// Weighted-slice counterpart of TrySingleGroup.
  bool TrySingleGroupWeighted(const std::vector<WeightedSlice>& slices,
                              const std::vector<fpm::Rank>& frequent,
                              const std::vector<uint64_t>& counts,
                              std::vector<fpm::Rank>* prefix);

  /// Emits `prefix` (ranks) as a pattern with the given support.
  void EmitPattern(const std::vector<fpm::Rank>& prefix, uint64_t support);

  /// Emits every non-empty combination of `items` appended to `prefix`,
  /// all with the same support (single-group enumeration).
  void EmitCombinations(const std::vector<fpm::Rank>& items, uint64_t support,
                        std::vector<fpm::Rank>* prefix);

 private:
  template <typename SliceT>
  std::vector<fpm::Rank> CountImpl(const std::vector<SliceT>& slices,
                                   std::vector<uint64_t>* counts_out);

  template <typename SliceT>
  bool TrySingleGroupImpl(const std::vector<SliceT>& slices,
                          const std::vector<fpm::Rank>& frequent,
                          const std::vector<uint64_t>& counts,
                          std::vector<fpm::Rank>* prefix);

  const fpm::FList& flist_;
  const uint64_t min_support_;
  fpm::PatternSet* out_;
  fpm::MiningStats* stats_;
  RunContext* run_ctx_ = nullptr;
  std::vector<uint64_t> scratch_counts_;  // Rank-indexed, zeroed after use.
};

/// Approximate heap footprint of a weighted slice database, for budget
/// accounting in governed runs.
size_t ApproxWeightedSliceBytes(const std::vector<WeightedSlice>& slices);

/// Physically projects `slices` onto rank `f` (Definition 3.2 lifted to
/// slices): keeps tuples containing f, with only items ranked after f.
/// Slices whose projection carries no items are dropped.
std::vector<Slice> ProjectSlices(const std::vector<Slice>& slices,
                                 fpm::Rank f);

/// Converts a slice database into weighted form, merging identical rows.
std::vector<WeightedSlice> BuildWeightedSlices(const SliceDb& sdb);

/// Merges identical out rows of one slice, summing weights.
void DedupeWeightedOuts(
    std::vector<std::pair<std::vector<fpm::Rank>, uint64_t>>* outs);

/// Projects weighted slices onto rank `f`, re-merging identical suffixes.
std::vector<WeightedSlice> ProjectWeightedSlices(
    const std::vector<WeightedSlice>& slices, fpm::Rank f);

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_SLICE_DB_H_
