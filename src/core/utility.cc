#include "core/utility.h"

#include <algorithm>
#include <cmath>

namespace gogreen::core {

const char* CompressionStrategyName(CompressionStrategy strategy) {
  switch (strategy) {
    case CompressionStrategy::kMcp:
      return "MCP";
    case CompressionStrategy::kMlp:
      return "MLP";
  }
  return "?";
}

double PatternUtility(const fpm::Pattern& pattern,
                      CompressionStrategy strategy, size_t db_size) {
  const double len = static_cast<double>(pattern.size());
  const double count = static_cast<double>(pattern.support);
  switch (strategy) {
    case CompressionStrategy::kMcp:
      return (std::ldexp(1.0, static_cast<int>(pattern.size())) - 1.0) *
             count;
    case CompressionStrategy::kMlp:
      return len * static_cast<double>(db_size) + count;
  }
  return 0.0;
}

std::vector<size_t> RankPatternsByUtility(const fpm::PatternSet& fp,
                                          CompressionStrategy strategy,
                                          size_t db_size) {
  std::vector<size_t> order(fp.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> utility(fp.size());
  for (size_t i = 0; i < fp.size(); ++i) {
    utility[i] = PatternUtility(fp[i], strategy, db_size);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (utility[a] != utility[b]) return utility[a] > utility[b];
    if (fp[a].support != fp[b].support) return fp[a].support > fp[b].support;
    if (fp[a].size() != fp[b].size()) return fp[a].size() < fp[b].size();
    return std::lexicographical_compare(fp[a].items.begin(),
                                        fp[a].items.end(),
                                        fp[b].items.begin(),
                                        fp[b].items.end());
  });
  return order;
}

}  // namespace gogreen::core
