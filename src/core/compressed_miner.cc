#include "core/compressed_miner.h"

#include <utility>

#include "core/recycle_fp.h"
#include "core/recycle_hmine.h"
#include "core/recycle_tp.h"
#include "core/rp_mine.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace gogreen::core {

Result<fpm::MineResult> CompressedMiner::Mine(const CompressedDb& cdb,
                                              const fpm::MineRequest& request) {
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t minsup,
                           request.EffectiveMinSupport());
  GOGREEN_TRACE_SPAN("run.governor");
  const ThreadPool::ScopedThreads scoped_threads(request.threads);
  RunContext* ctx = request.run_context;
  run_ctx_ = ctx;  // Bound for this call only; the hook below reads it.
  Result<fpm::PatternSet> mined = MineCompressed(cdb, minsup);
  run_ctx_ = nullptr;
  GOGREEN_ASSIGN_OR_RETURN(
      fpm::MineOutcome outcome,
      fpm::FinishGovernedOutcome(std::move(mined), minsup, ctx));
  fpm::MineResult result;
  result.patterns = std::move(outcome.patterns);
  result.partial = outcome.partial;
  result.frontier_support = outcome.frontier_support;
  result.stop_status = std::move(outcome.stop_status);
  result.stats = stats_;
  if (request.constraints != nullptr &&
      request.constraints->NumConstraints() > 0) {
    result.patterns = request.constraints->Filter(result.patterns);
  }
  return result;
}

std::unique_ptr<CompressedMiner> CreateCompressedMiner(RecycleAlgo algo) {
  switch (algo) {
    case RecycleAlgo::kNaive:
      return std::make_unique<RpMineMiner>();
    case RecycleAlgo::kHMine:
      return std::make_unique<RecycleHMineMiner>();
    case RecycleAlgo::kFpGrowth:
      return std::make_unique<RecycleFpMiner>();
    case RecycleAlgo::kTreeProjection:
      return std::make_unique<RecycleTpMiner>();
  }
  GOGREEN_CHECK(false) << "unknown RecycleAlgo";
  return nullptr;
}

const char* RecycleAlgoName(RecycleAlgo algo) {
  switch (algo) {
    case RecycleAlgo::kNaive:
      return "rp-mine";
    case RecycleAlgo::kHMine:
      return "recycle-hm";
    case RecycleAlgo::kFpGrowth:
      return "recycle-fp";
    case RecycleAlgo::kTreeProjection:
      return "recycle-tp";
  }
  return "?";
}

}  // namespace gogreen::core
