#include "core/compressed_miner.h"

#include <utility>

#include "core/recycle_fp.h"
#include "core/recycle_hmine.h"
#include "core/recycle_tp.h"
#include "core/rp_mine.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace gogreen::core {

Result<fpm::MineOutcome> CompressedMiner::MineCompressedGoverned(
    const CompressedDb& cdb, uint64_t min_support, RunContext* ctx) {
  GOGREEN_TRACE_SPAN("run.governor");
  SetRunContext(ctx);
  Result<fpm::PatternSet> result = MineCompressed(cdb, min_support);
  SetRunContext(nullptr);
  return fpm::FinishGovernedOutcome(std::move(result), min_support, ctx);
}

std::unique_ptr<CompressedMiner> CreateCompressedMiner(RecycleAlgo algo) {
  switch (algo) {
    case RecycleAlgo::kNaive:
      return std::make_unique<RpMineMiner>();
    case RecycleAlgo::kHMine:
      return std::make_unique<RecycleHMineMiner>();
    case RecycleAlgo::kFpGrowth:
      return std::make_unique<RecycleFpMiner>();
    case RecycleAlgo::kTreeProjection:
      return std::make_unique<RecycleTpMiner>();
  }
  GOGREEN_CHECK(false) << "unknown RecycleAlgo";
  return nullptr;
}

const char* RecycleAlgoName(RecycleAlgo algo) {
  switch (algo) {
    case RecycleAlgo::kNaive:
      return "rp-mine";
    case RecycleAlgo::kHMine:
      return "recycle-hm";
    case RecycleAlgo::kFpGrowth:
      return "recycle-fp";
    case RecycleAlgo::kTreeProjection:
      return "recycle-tp";
  }
  return "?";
}

}  // namespace gogreen::core
