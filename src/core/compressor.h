// The compression algorithm of Figure 1: rank recycled patterns by utility,
// then cover every tuple with the highest-utility pattern it contains.

#ifndef GOGREEN_CORE_COMPRESSOR_H_
#define GOGREEN_CORE_COMPRESSOR_H_

#include <cstdint>

#include "core/compressed_db.h"
#include "core/utility.h"
#include "fpm/pattern_set.h"
#include "fpm/transaction_db.h"
#include "util/run_context.h"
#include "util/status.h"

namespace gogreen::core {

/// How tuple-vs-pattern containment is evaluated.
enum class MatcherKind {
  /// Scan patterns in utility order per tuple, subset-testing against a
  /// per-tuple membership bitmap; stop at the first hit. Best on dense data,
  /// where the first few patterns cover almost everything.
  kLinear,
  /// Index patterns by their globally rarest item ("anchor"); a tuple only
  /// probes patterns anchored on one of its own items, merged across its
  /// items in utility order. Best on sparse data, where most tuples share
  /// no item with most patterns.
  kInvertedIndex,
  /// Choose per database: inverted for sparse, linear for dense.
  kAuto,
};

const char* MatcherKindName(MatcherKind kind);

struct CompressorOptions {
  CompressionStrategy strategy = CompressionStrategy::kMcp;
  MatcherKind matcher = MatcherKind::kAuto;
  /// Optional run governor. On a deadline/budget/cancel breach the cover
  /// loop stops matching: remaining tuples fall into the ungrouped trailing
  /// group, so the result is still a valid lossless CompressedDb — just less
  /// compressed. Degradation never marks the run's pattern output
  /// incomplete.
  RunContext* run_context = nullptr;
};

/// Outcome counters of one compression run.
struct CompressionStats {
  uint64_t covered_tuples = 0;    ///< Tuples assigned to a real group.
  uint64_t uncovered_tuples = 0;  ///< Tuples left as-is (no matching pattern).
  uint64_t groups = 0;            ///< Non-empty groups (excl. ungrouped).
  uint64_t original_items = 0;    ///< So, in item occurrences.
  uint64_t stored_items = 0;      ///< Sc, in item occurrences.
  double elapsed_seconds = 0.0;   ///< In-memory ("pipeline") time.

  /// R = Sc / So; < 1 means the CDB is smaller than the original.
  double Ratio() const {
    return original_items == 0
               ? 1.0
               : static_cast<double>(stored_items) /
                     static_cast<double>(original_items);
  }
};

/// Compresses `db` with the recycled pattern set `fp`. Patterns with empty
/// item lists are rejected. The group order of the result follows the
/// utility ranking (highest-utility group first), with the ungrouped tuples
/// in a trailing empty-pattern group; within a group, members keep their
/// original tid order.
Result<CompressedDb> CompressDatabase(const fpm::TransactionDb& db,
                                      const fpm::PatternSet& fp,
                                      const CompressorOptions& options,
                                      CompressionStats* stats = nullptr);

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_COMPRESSOR_H_
