#include "core/compressor.h"

#include <algorithm>
#include <numeric>

#include "check/check_db.h"
#include "fpm/pattern.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bitset.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::core {

namespace {

constexpr size_t kNoMatch = SIZE_MAX;

// Tuples per work unit of the parallel cover loop: large enough to amortize
// scheduling, small enough to balance skewed tuple lengths.
constexpr size_t kCoverChunk = 512;

/// Probes patterns (in utility order) against one tuple at a time.
/// `ranked[i]` is the pattern at utility position i.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Position (in utility order) of the best pattern contained in the
  /// tuple, or kNoMatch. The tuple is canonical.
  virtual size_t Match(fpm::ItemSpan tuple) = 0;
};

/// Shared bitmap-based subset test over the item universe.
class TupleBitmap {
 public:
  explicit TupleBitmap(size_t universe) : bits_(universe) {}

  void Load(fpm::ItemSpan tuple) {
    for (fpm::ItemId it : loaded_) bits_.Clear(it);
    loaded_.assign(tuple.begin(), tuple.end());
    for (fpm::ItemId it : loaded_) {
      if (it < bits_.size()) bits_.Set(it);
    }
  }

  bool ContainsAll(fpm::ItemSpan pattern) const {
    for (fpm::ItemId it : pattern) {
      if (it >= bits_.size() || !bits_.Test(it)) return false;
    }
    return true;
  }

 private:
  DynamicBitset bits_;
  std::vector<fpm::ItemId> loaded_;
};

class LinearMatcher : public Matcher {
 public:
  LinearMatcher(const std::vector<const fpm::Pattern*>& ranked,
                size_t universe)
      : ranked_(ranked), bitmap_(universe) {}

  size_t Match(fpm::ItemSpan tuple) override {
    bitmap_.Load(tuple);
    for (size_t pos = 0; pos < ranked_.size(); ++pos) {
      if (ranked_[pos]->size() <= tuple.size() &&
          bitmap_.ContainsAll(fpm::ItemSpan(ranked_[pos]->items))) {
        return pos;
      }
    }
    return kNoMatch;
  }

 private:
  const std::vector<const fpm::Pattern*>& ranked_;
  TupleBitmap bitmap_;
};

class InvertedIndexMatcher : public Matcher {
 public:
  InvertedIndexMatcher(const std::vector<const fpm::Pattern*>& ranked,
                       const std::vector<uint64_t>& item_supports,
                       size_t universe)
      : ranked_(ranked), bitmap_(universe), anchor_lists_(universe) {
    // Anchor each pattern on its rarest item: the item that prunes the most
    // tuples. Positions are appended ascending, so each list stays sorted by
    // utility rank.
    for (size_t pos = 0; pos < ranked_.size(); ++pos) {
      const fpm::Pattern& p = *ranked_[pos];
      fpm::ItemId anchor = p.items[0];
      for (fpm::ItemId it : p.items) {
        if (item_supports[it] < item_supports[anchor]) anchor = it;
      }
      anchor_lists_[anchor].push_back(pos);
    }
  }

  size_t Match(fpm::ItemSpan tuple) override {
    bitmap_.Load(tuple);
    // Probe the candidate positions anchored on this tuple's items in
    // ascending (best-utility-first) order via a k-way merge over the
    // per-item lists, stopping at the first containment — with good
    // coverage most tuples match within a handful of probes.
    heap_.clear();
    for (fpm::ItemId it : tuple) {
      if (it < anchor_lists_.size() && !anchor_lists_[it].empty()) {
        heap_.push_back({anchor_lists_[it].data(),
                         anchor_lists_[it].data() +
                             anchor_lists_[it].size()});
      }
    }
    const auto greater = [](const Cursor& a, const Cursor& b) {
      return *a.head > *b.head;
    };
    std::make_heap(heap_.begin(), heap_.end(), greater);
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), greater);
      Cursor& top = heap_.back();
      const size_t pos = *top.head;
      if (ranked_[pos]->size() <= tuple.size() &&
          bitmap_.ContainsAll(fpm::ItemSpan(ranked_[pos]->items))) {
        return pos;
      }
      if (++top.head == top.end) {
        heap_.pop_back();
      } else {
        std::push_heap(heap_.begin(), heap_.end(), greater);
      }
    }
    return kNoMatch;
  }

 private:
  struct Cursor {
    const size_t* head;
    const size_t* end;
  };

  const std::vector<const fpm::Pattern*>& ranked_;
  TupleBitmap bitmap_;
  std::vector<std::vector<size_t>> anchor_lists_;
  std::vector<Cursor> heap_;
};

/// Flushes one finished compression run into the global metric registry,
/// mirroring what fpm::RecordMiningStats does for miners.
void RecordCompressionStats(const CompressionStats& stats) {
  using obs::MetricRegistry;
  static obs::Counter* runs =
      MetricRegistry::Global().GetCounter("compress.runs");
  static obs::Counter* groups =
      MetricRegistry::Global().GetCounter("compress.groups_formed");
  static obs::Counter* covered =
      MetricRegistry::Global().GetCounter("compress.covered_tuples");
  static obs::Counter* uncovered =
      MetricRegistry::Global().GetCounter("compress.uncovered_tuples");
  static obs::Counter* original =
      MetricRegistry::Global().GetCounter("compress.original_items");
  static obs::Counter* stored =
      MetricRegistry::Global().GetCounter("compress.stored_items");
  static obs::Histogram* seconds =
      MetricRegistry::Global().GetHistogram("compress.seconds");
  runs->Add(1);
  groups->Add(stats.groups);
  covered->Add(stats.covered_tuples);
  uncovered->Add(stats.uncovered_tuples);
  original->Add(stats.original_items);
  stored->Add(stats.stored_items);
  seconds->Observe(stats.elapsed_seconds);
}

MatcherKind ResolveMatcher(MatcherKind requested,
                           const fpm::TransactionDb& db) {
  if (requested != MatcherKind::kAuto) return requested;
  // Sparse databases (tuples touch a tiny fraction of the universe) benefit
  // from anchoring; dense ones from the early-exit linear scan.
  const double universe = static_cast<double>(db.ItemUniverseSize());
  return (universe > 0 && db.AvgLength() / universe < 0.05)
             ? MatcherKind::kInvertedIndex
             : MatcherKind::kLinear;
}

}  // namespace

const char* MatcherKindName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kLinear:
      return "linear";
    case MatcherKind::kInvertedIndex:
      return "inverted-index";
    case MatcherKind::kAuto:
      return "auto";
  }
  return "?";
}

Result<CompressedDb> CompressDatabase(const fpm::TransactionDb& db,
                                      const fpm::PatternSet& fp,
                                      const CompressorOptions& options,
                                      CompressionStats* stats) {
  for (const fpm::Pattern& p : fp) {
    if (p.items.empty()) {
      return Status::InvalidArgument("recycled pattern with no items");
    }
  }

  GOGREEN_TRACE_SPAN("compress");
  Timer timer;

  // Steps 1-2 (Figure 1): utility ranking.
  const std::vector<size_t> order = [&] {
    GOGREEN_TRACE_SPAN("compress.rank");
    return RankPatternsByUtility(fp, options.strategy, db.NumTransactions());
  }();
  std::vector<const fpm::Pattern*> ranked(order.size());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    ranked[pos] = &fp[order[pos]];
  }

  // Steps 3-5: per-tuple best-pattern assignment. Matchers carry per-probe
  // scratch (tuple bitmap, merge heap), so the parallel path builds one per
  // lane; the item-support vector feeding the inverted index is computed
  // once and shared.
  const MatcherKind kind = ResolveMatcher(options.matcher, db);
  const std::vector<uint64_t> item_supports =
      kind == MatcherKind::kInvertedIndex ? db.CountItemSupports()
                                          : std::vector<uint64_t>();
  const auto make_matcher = [&]() -> std::unique_ptr<Matcher> {
    if (kind == MatcherKind::kInvertedIndex) {
      return std::make_unique<InvertedIndexMatcher>(ranked, item_supports,
                                                    db.ItemUniverseSize());
    }
    return std::make_unique<LinearMatcher>(ranked, db.ItemUniverseSize());
  };

  const size_t n = db.NumTransactions();
  std::vector<size_t> assignment(n, kNoMatch);
  std::vector<uint64_t> group_sizes(ranked.size() + 1, 0);  // +1: ungrouped.
  {
    GOGREEN_TRACE_SPAN("compress.cover");
    // One pinned pool for the whole cover pass: lane ids from ParallelFor
    // are guaranteed < pool->threads(), which sizes the lane accumulators.
    const std::shared_ptr<ThreadPool> pool = ThreadPool::Global();
    const size_t threads = pool->threads();
    RunContext* rctx = options.run_context;
    if (threads <= 1 || n < 2 * kCoverChunk) {
      const std::unique_ptr<Matcher> matcher = make_matcher();
      for (fpm::Tid t = 0; t < n; ++t) {
        // A governed stop leaves the remaining tuples unmatched (ungrouped):
        // the output stays a valid lossless encoding, just less compressed.
        if (rctx != nullptr && t % kCoverChunk == 0 && rctx->PollNow()) break;
        const size_t pos = matcher->Match(db.Transaction(t));
        assignment[t] = pos;
        ++group_sizes[pos == kNoMatch ? ranked.size() : pos];
      }
    } else {
      // Each tuple's match depends only on the tuple and the shared ranking,
      // so chunks of tids partition cleanly across lanes: disjoint writes to
      // `assignment`, per-lane group-size accumulators summed afterwards.
      // The result is identical to the sequential scan for any lane count.
      const size_t chunks = (n + kCoverChunk - 1) / kCoverChunk;
      std::vector<std::unique_ptr<Matcher>> lane_matchers(threads);
      std::vector<std::vector<uint64_t>> lane_sizes(threads);
      pool->ParallelFor(chunks, [&](size_t lane, size_t c) {
        // Chunk-granular governed stop; skipped chunks stay ungrouped.
        if (rctx != nullptr && rctx->PollNow()) return;
        if (!lane_matchers[lane]) {
          lane_matchers[lane] = make_matcher();
          lane_sizes[lane].assign(ranked.size() + 1, 0);
        }
        const size_t begin = c * kCoverChunk;
        const size_t end = std::min(n, begin + kCoverChunk);
        for (fpm::Tid t = static_cast<fpm::Tid>(begin); t < end; ++t) {
          const size_t pos = lane_matchers[lane]->Match(db.Transaction(t));
          assignment[t] = pos;
          ++lane_sizes[lane][pos == kNoMatch ? ranked.size() : pos];
        }
      });
      for (const std::vector<uint64_t>& sizes : lane_sizes) {
        for (size_t g = 0; g < sizes.size(); ++g) group_sizes[g] += sizes[g];
      }
    }
  }

  GOGREEN_TRACE_SPAN("compress.materialize");
  // Materialize groups in utility order; members in tid order per group.
  std::vector<std::vector<fpm::Tid>> members(ranked.size() + 1);
  for (size_t g = 0; g <= ranked.size(); ++g) {
    members[g].reserve(group_sizes[g]);
  }
  for (fpm::Tid t = 0; t < n; ++t) {
    members[assignment[t] == kNoMatch ? ranked.size() : assignment[t]]
        .push_back(t);
  }

  CompressedDb cdb;
  CompressionStats local;
  std::vector<fpm::ItemId> outlying;
  for (size_t pos = 0; pos <= ranked.size(); ++pos) {
    if (members[pos].empty()) continue;
    const bool ungrouped = pos == ranked.size();
    const fpm::ItemSpan pattern =
        ungrouped ? fpm::ItemSpan() : fpm::ItemSpan(ranked[pos]->items);
    cdb.AddGroup(pattern);
    if (!ungrouped) ++local.groups;
    for (fpm::Tid t : members[pos]) {
      const fpm::ItemSpan tuple = db.Transaction(t);
      outlying.clear();
      std::set_difference(tuple.begin(), tuple.end(), pattern.begin(),
                          pattern.end(), std::back_inserter(outlying));
      cdb.AddMember(t, outlying);
      if (ungrouped) {
        ++local.uncovered_tuples;
      } else {
        ++local.covered_tuples;
      }
    }
  }

  local.original_items = db.TotalItems();
  local.stored_items = cdb.StoredItems();
  local.elapsed_seconds = timer.ElapsedSeconds();
  RecordCompressionStats(local);
  if (stats != nullptr) *stats = local;
  // Lossless-cover check (tuple = pattern ∪ outlying, group counts sum to
  // |DB|) against the database just compressed.
  GOGREEN_VALIDATE_OR_DIE(check::ValidateCompressedDb(cdb, &db));
  return cdb;
}

}  // namespace gogreen::core
