// Recycle-FP (Section 4.2): the FP-tree adaptation to compressed databases.
//
// The paper treats each group head as a special item at the top of every
// FP-tree branch, so that the tuples of a group share both their pattern
// (via the head) and common outlying prefixes (via the tree). This
// implementation keeps the same sharing structure in flattened form: within
// every projected slice, identical outlying suffixes are merged into one
// weighted row — exactly the multiplicity-sharing an FP-tree's shared paths
// provide — while the group pattern stays factored out in the slice head.

#ifndef GOGREEN_CORE_RECYCLE_FP_H_
#define GOGREEN_CORE_RECYCLE_FP_H_

#include "core/compressed_miner.h"

namespace gogreen::core {

class RecycleFpMiner : public CompressedMiner {
 public:
  std::string name() const override { return "recycle-fp"; }

  Result<fpm::PatternSet> MineCompressed(const CompressedDb& cdb,
                                         uint64_t min_support) override;
};

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_RECYCLE_FP_H_
