#include "core/seed_selection.h"

namespace gogreen::core {

namespace {

/// True when `a` beats `b` within the same route. `a` and `b` are both
/// filter-down seeds or both recycle seeds for the same target.
bool BeatsWithinRoute(const SeedCandidate& a, const SeedCandidate& b,
                      SeedRoute route) {
  if (a.min_support != b.min_support) {
    // Filtering wants the largest support below the target (fewest patterns
    // to drop); recycling wants the smallest support above it (richest
    // pattern set -> best compression, the tightest-ξ_old rule).
    if (route == SeedRoute::kFilterDown) return a.min_support > b.min_support;
    return a.min_support < b.min_support;
  }
  if (a.has_compressed != b.has_compressed) return a.has_compressed;
  return a.last_used > b.last_used;
}

}  // namespace

const char* SeedRouteName(SeedRoute route) {
  switch (route) {
    case SeedRoute::kNone:
      return "none";
    case SeedRoute::kExact:
      return "exact";
    case SeedRoute::kFilterDown:
      return "filter-down";
    case SeedRoute::kRecycle:
      return "recycle";
  }
  return "?";
}

SeedChoice SelectSeed(const std::vector<SeedCandidate>& candidates,
                      uint64_t target_support) {
  SeedChoice choice;
  if (target_support == 0) return choice;
  const SeedCandidate* best = nullptr;
  SeedRoute best_route = SeedRoute::kNone;
  for (const SeedCandidate& cand : candidates) {
    if (cand.min_support == 0) continue;  // Empty slot.
    SeedRoute route;
    if (cand.min_support == target_support) {
      route = SeedRoute::kExact;
    } else if (cand.min_support < target_support) {
      route = SeedRoute::kFilterDown;
    } else {
      route = SeedRoute::kRecycle;
    }
    if (best == nullptr) {
      best = &cand;
      best_route = route;
      continue;
    }
    // Route cost order: exact < filter-down < recycle (enum order).
    if (route != best_route) {
      if (static_cast<int>(route) < static_cast<int>(best_route)) {
        best = &cand;
        best_route = route;
      }
      continue;
    }
    if (route == SeedRoute::kExact) {
      // Same support; prefer the one with a memoized image, then recency.
      if ((cand.has_compressed && !best->has_compressed) ||
          (cand.has_compressed == best->has_compressed &&
           cand.last_used > best->last_used)) {
        best = &cand;
      }
      continue;
    }
    if (BeatsWithinRoute(cand, *best, route)) best = &cand;
  }
  if (best != nullptr) {
    choice.route = best_route;
    choice.tag = best->tag;
    choice.min_support = best->min_support;
  }
  return choice;
}

}  // namespace gogreen::core
