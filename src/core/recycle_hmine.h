// Recycle-HM (Section 4.1): the H-Mine adaptation to compressed databases.
//
// The paper's RP-Struct threads group heads and group tails through
// item-links and group-links so that no item data is copied during
// projection. This implementation realizes the same decomposition with
// explicit reference lists: a projected database is a vector of ProjSlice =
// (slice id, pattern-suffix offset, exhausted-member count, tail references
// (member, outlying offset)). Pattern-suffix contributions are counted once
// per ProjSlice — the group-counter saving — and projection moves
// references, never items.

#ifndef GOGREEN_CORE_RECYCLE_HMINE_H_
#define GOGREEN_CORE_RECYCLE_HMINE_H_

#include "core/compressed_miner.h"
#include "core/slice_db.h"

namespace gogreen::core {

class RecycleHMineMiner : public CompressedMiner {
 public:
  std::string name() const override { return "recycle-hm"; }

  Result<fpm::PatternSet> MineCompressed(const CompressedDb& cdb,
                                         uint64_t min_support) override;
};

/// Mines a slice database in memory with the Recycle-HM core, prefixing
/// every emitted pattern with `prefix_ranks`. Exposed for the
/// memory-limited driver (Section 5.3), which mines disk partitions of
/// slices one at a time. `run_ctx` (optional) governs the run; returns
/// false iff a governed stop abandoned work — the caller owns the frontier
/// bookkeeping when `prefix_ranks` is non-empty.
bool MineSlicesHM(const SliceDb& sdb, const fpm::FList& flist,
                  uint64_t min_support,
                  const std::vector<fpm::Rank>& prefix_ranks,
                  fpm::PatternSet* out, fpm::MiningStats* stats,
                  RunContext* run_ctx = nullptr);

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_RECYCLE_HMINE_H_
