// The compressed database (Table 2 of the paper): tuples are partitioned
// into groups, each group sharing one covering pattern; a tuple stores only
// its *outlying items* (the items not in its group's pattern). Tuples
// matched by no pattern live in the trailing "ungrouped" section, modeled as
// a group with an empty pattern.
//
// Compression is lossless: tuple = group.pattern ∪ outlying. The outlying
// items are stored raw (including items that are infrequent at any
// threshold); the "(ordered) frequent outlying items" view of Table 2 is
// derived at mining time from the current F-list (see slice_db.h).

#ifndef GOGREEN_CORE_COMPRESSED_DB_H_
#define GOGREEN_CORE_COMPRESSED_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/item.h"
#include "fpm/transaction_db.h"
#include "util/status.h"

namespace gogreen::core {

/// Index of a group within a CompressedDb.
using GroupId = uint32_t;

/// One group: a shared pattern plus its member tuples' outlying items.
struct GroupView {
  fpm::ItemSpan pattern;  ///< Canonical (ascending) items; empty = ungrouped.
  uint64_t count;         ///< Number of member tuples.
};

/// Builder + read-only access for a compressed database. Construction
/// happens group-by-group through the Compressor; miners and tests read it.
class CompressedDb {
 public:
  CompressedDb() = default;

  // -- Construction (used by the Compressor and the deserializer) --

  /// Starts a new group with the given canonical pattern (possibly empty for
  /// the ungrouped section). Returns its id. Groups with equal patterns are
  /// not merged; the compressor never emits duplicates.
  GroupId AddGroup(fpm::ItemSpan pattern);

  /// Appends a member tuple to the most recently added group. `outlying`
  /// must be canonical and disjoint from the group pattern.
  void AddMember(fpm::Tid original_tid, fpm::ItemSpan outlying);

  // -- Read access --

  size_t NumGroups() const { return group_offsets_.size() - 1; }
  size_t NumTuples() const { return member_tids_.size(); }

  GroupView Group(GroupId g) const {
    return {PatternOf(g), MemberEnd(g) - MemberBegin(g)};
  }

  fpm::ItemSpan PatternOf(GroupId g) const {
    return {pattern_items_.data() + pattern_offsets_[g],
            pattern_offsets_[g + 1] - pattern_offsets_[g]};
  }

  /// Member index range [begin, end) of group g; pass indices in that range
  /// to MemberTid / Outlying.
  uint64_t MemberBegin(GroupId g) const { return group_offsets_[g]; }
  uint64_t MemberEnd(GroupId g) const { return group_offsets_[g + 1]; }

  fpm::Tid MemberTid(uint64_t member) const { return member_tids_[member]; }
  fpm::ItemSpan Outlying(uint64_t member) const {
    return {outlying_items_.data() + outlying_offsets_[member],
            outlying_offsets_[member + 1] - outlying_offsets_[member]};
  }

  /// Per-item support counts over the *reconstructed* database — each
  /// group's pattern counts once per member; outlying items count per tuple.
  /// This is the cheap F-list construction the paper describes (one pattern
  /// scan per group instead of per tuple).
  std::vector<uint64_t> CountItemSupports(size_t item_universe) const;

  /// One-past-the-largest item id stored anywhere (patterns or outlying).
  size_t ItemUniverseSize() const { return item_universe_; }

  /// Reconstructs the original database (tuples in *group* order, which
  /// generally differs from the original tid order; MemberTid gives the
  /// original ids). For tests and for migrating away from recycling.
  fpm::TransactionDb Decompress() const;

  /// Size in stored item occurrences: each group pattern once + all
  /// outlying items. Compression ratio (Table 3) = StoredItems(CDB) /
  /// TotalItems(DB).
  uint64_t StoredItems() const {
    return pattern_items_.size() + outlying_items_.size();
  }

  /// Approximate heap footprint.
  size_t MemoryUsage() const;

  // -- Serialization (for the "run time (I/O)" column of Table 3) --

  /// Writes a compact binary image; returns bytes written.
  Result<uint64_t> WriteTo(const std::string& path) const;

  /// Reads an image produced by WriteTo.
  static Result<CompressedDb> ReadFrom(const std::string& path);

 private:
  // Group patterns in CSR layout.
  std::vector<fpm::ItemId> pattern_items_;
  std::vector<uint64_t> pattern_offsets_{0};
  // Member range per group (indices into the member arrays).
  std::vector<uint64_t> group_offsets_{0};
  // Per member: original tid + outlying items (CSR).
  std::vector<fpm::Tid> member_tids_;
  std::vector<fpm::ItemId> outlying_items_;
  std::vector<uint64_t> outlying_offsets_{0};
  size_t item_universe_ = 0;
};

}  // namespace gogreen::core

#endif  // GOGREEN_CORE_COMPRESSED_DB_H_
