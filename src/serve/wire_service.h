// The wire protocol's server side: one WireSession turns net::WireRequest
// frames into net::WireResponse frames against a MiningService (and,
// optionally, its AdmissionController front door).
//
// A WireSession is the unit of client state — one per network connection
// (the daemon) or one per REPL (the session driver). It carries exactly
// two things between requests: the sticky tenant bound by the `tenant`
// verb, and the last mine's ServeStats for the `stats` verb. Everything
// else is per-request. It is NOT thread-safe; connections each own one.
//
// The Format* helpers render the human-readable lines the session REPL
// has always printed. They live here — next to the handler — so the
// in-process REPL and the remote `gogreen client` print byte-identical
// output from the same response.

#ifndef GOGREEN_SERVE_WIRE_SERVICE_H_
#define GOGREEN_SERVE_WIRE_SERVICE_H_

#include <string>

#include "net/wire.h"
#include "serve/admission.h"
#include "serve/mining_service.h"

namespace gogreen::serve {

/// Renders "mined support=... route=... seed=... patterns=... seconds=...
/// partial=...[ frontier=...]\n" from a mine response.
std::string FormatMineLine(const net::WireResponse& resp);

/// Renders the "last: route=..." stats line from a ServeStats snapshot.
std::string FormatStatsLine(const ServeStats& stats);

/// Renders the "store: entries=..." summary line.
std::string FormatStoreLine(const PatternStore& store);

class WireSession {
 public:
  /// `admission` may be null (requests go straight to the service).
  /// `tenant` is the initial binding, as if a `tenant` verb had run.
  WireSession(MiningService& service, AdmissionController* admission,
              std::string tenant = "");

  /// Answers one request. Never throws, never crashes on bad input: every
  /// failure comes back as an error-outcome response with the request's
  /// id echoed.
  net::WireResponse Handle(const net::WireRequest& request);

 private:
  net::WireResponse HandleMine(const net::WireRequest& request);

  MiningService& service_;
  AdmissionController* admission_;
  std::string tenant_;
  /// Most recent mine's stats (success or not-admitted alike keep the
  /// previous snapshot — only a completed mine updates it).
  ServeStats last_;
};

}  // namespace gogreen::serve

#endif  // GOGREEN_SERVE_WIRE_SERVICE_H_
