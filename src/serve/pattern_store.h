// The pattern store: a bounded, byte-accounted cache of complete pattern
// sets keyed by (dataset, constraint fingerprint, min_support), with
// optional memoized compressed images. This is the serving-layer shape of
// the paper's multi-user story (Section 2): patterns one query mined are the
// seeds later queries recycle, so keeping them around — within a budget —
// turns the recycling speedups from a per-session trick into a service
// property.
//
// Values are handed out as shared_ptr-to-const: eviction drops the store's
// reference, never a reader's. The store is lock-striped: entries hash to
// one of N shards (each a mutex + LRU list), so lookups on different keys
// never contend. Byte accounting lives in one global atomic ledger with a
// reserve-before-insert protocol — bytes are charged by a CAS that only
// succeeds while the total stays under the budget, so `bytes_in_use()`
// never exceeds the byte_budget at any observable instant, even mid-insert
// under concurrency. Eviction preserves the global LRU order across shards
// via per-entry recency stamps from a shared clock: the globally
// least-recently-used victim goes first (memoized compressed images before
// whole pattern sets; images are cheap to rebuild), and an entry that alone
// exceeds the budget is rejected outright.

#ifndef GOGREEN_SERVE_PATTERN_STORE_H_
#define GOGREEN_SERVE_PATTERN_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <vector>

#include "core/compressed_db.h"
#include "core/seed_selection.h"
#include "fpm/pattern_set.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace gogreen::serve {

/// Identity of a cached complete pattern set. `constraint_fingerprint` is
/// ConstraintSet::Fingerprint() — "" for support-only (unconstrained) sets,
/// which are the ones recycling and filter-down routes seed from.
struct StoreKey {
  std::string dataset_id;
  std::string constraint_fingerprint;
  uint64_t min_support = 0;

  friend bool operator==(const StoreKey&, const StoreKey&) = default;
  std::string ToString() const;
};

/// Aggregate store counters, for `store` introspection and tests.
struct StoreStats {
  size_t entries = 0;
  size_t compressed_images = 0;
  size_t bytes_in_use = 0;
  size_t byte_budget = 0;
  uint64_t evictions = 0;       ///< Whole entries dropped to make room.
  uint64_t image_evictions = 0; ///< Compressed images dropped to make room.
};

/// Bounded, sharded LRU cache of complete pattern sets. Thread-safe;
/// lookups bump recency. See the file comment for the eviction and
/// budget contracts.
class PatternStore {
 public:
  struct Options {
    /// Hard ceiling on the summed cost of cached pattern sets + compressed
    /// images. The store never holds more than this many accounted bytes.
    size_t byte_budget = size_t{64} << 20;
    /// Number of lock stripes. Keys hash across shards; 1 degenerates to
    /// the old single-mutex store (useful for tests).
    size_t shards = 8;
  };

  PatternStore();  ///< Default Options.
  explicit PatternStore(Options options);

  /// Inserts (or replaces) the complete set for `key`, evicting older
  /// entries as needed. Returns false — and caches nothing — when the set
  /// alone costs more than the byte budget. `num_transactions` is the |DB|
  /// the supports refer to; it travels with the entry into persistence.
  bool Put(const StoreKey& key, fpm::PatternSet patterns,
           uint64_t num_transactions);

  /// Memoizes the compressed image built from `key`'s pattern set (shared:
  /// the caller typically keeps mining from the same image). A miss (no
  /// such entry) or an over-budget image is a silent no-op: images are an
  /// optimization, never load-bearing.
  void PutCompressed(const StoreKey& key,
                     std::shared_ptr<const core::CompressedDb> cdb);

  /// The cached set for `key`, or null. Bumps recency.
  std::shared_ptr<const fpm::PatternSet> Get(const StoreKey& key);

  /// The memoized compressed image for `key`, or null. Bumps recency.
  std::shared_ptr<const core::CompressedDb> GetCompressed(const StoreKey& key);

  /// Number of transactions recorded with the entry (0 when absent).
  uint64_t NumTransactionsOf(const StoreKey& key) const;

  /// Seed candidates among the entries of (dataset_id, fingerprint), tagged
  /// with their min_support (tag == min_support), ready for
  /// core::SelectSeed. Does not bump recency.
  std::vector<core::SeedCandidate> Candidates(
      const std::string& dataset_id, const std::string& fingerprint) const;

  void Clear();

  StoreStats stats() const;
  size_t bytes_in_use() const;
  size_t byte_budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// Re-arms the byte budget at runtime. Shrinking below the current usage
  /// evicts globally-LRU victims (images first, then entries) until the
  /// ledger fits the new budget; growing takes effect immediately. The
  /// budget invariant — bytes_in_use() <= byte_budget() at every instant —
  /// holds again once this returns (concurrent inserts racing the shrink
  /// are bounded by whichever budget value their CAS observed).
  void SetByteBudget(size_t byte_budget);

  /// Persists every entry as a pattern file under `dir` (created if
  /// missing), one crash-safe file per entry. Compressed images are not
  /// persisted (they are cheap to rebuild). Returns the first write error.
  Status SaveTo(const std::string& dir) const;

  /// Loads every pattern file under `dir` into the store (normal insertion
  /// rules: eviction applies, oversized entries are skipped). Files that
  /// fail to parse — corrupted, truncated, foreign — are skipped, not
  /// fatal; `*skipped` (optional) counts them.
  Status LoadFrom(const std::string& dir, size_t* skipped = nullptr);

 private:
  struct Entry {
    StoreKey key;
    std::shared_ptr<const fpm::PatternSet> patterns;
    std::shared_ptr<const core::CompressedDb> cdb;  ///< May be null.
    uint64_t num_transactions = 0;
    size_t pattern_bytes = 0;
    size_t cdb_bytes = 0;
    /// Global recency stamp (bigger = more recently used). Eviction picks
    /// the smallest stamp across all shards, preserving the global LRU
    /// order the single-mutex store had.
    uint64_t stamp = 0;
  };

  // Each shard: one mutex over one LRU list (most-recent first).
  using EntryList = std::list<Entry>;
  struct Shard {
    mutable Mutex mu;
    EntryList entries GUARDED_BY(mu);
  };

  /// Scoped shard lock, the only way the store takes a shard mutex.
  /// Counts `serve.shard_contention` when the lock is not immediately
  /// available: the miss is recorded inside the constructor's TRY_ACQUIRE
  /// path, strictly before the blocking lock(), so a miss can never be
  /// counted while the lock is actually held.
  class SCOPED_CAPABILITY ShardLock {
   public:
    explicit ShardLock(const Shard& shard) ACQUIRE(shard.mu);
    ~ShardLock() RELEASE();
    ShardLock(const ShardLock&) = delete;
    ShardLock& operator=(const ShardLock&) = delete;

   private:
    const Shard& shard_;
  };

  Shard& ShardOf(const StoreKey& key) const;

  static EntryList::iterator FindInShard(Shard& shard, const StoreKey& key)
      REQUIRES(shard.mu);
  void TouchLocked(Shard& shard, EntryList::iterator it) REQUIRES(shard.mu);
  void DropEntryLocked(Shard& shard, EntryList::iterator it)
      REQUIRES(shard.mu);

  /// Charges `cost` bytes against the global ledger, evicting globally-LRU
  /// victims (images first, then whole entries; `keep` survives) until the
  /// CAS succeeds. Returns false — with nothing charged — when eviction
  /// cannot make room.
  ///
  /// Lock-ordering contract (DESIGN.md §15): the ledger `bytes_` is an
  /// atomic, never a lock, so it is by construction never "held" across a
  /// shard lock; and the eviction scan below takes one ShardLock at a
  /// time (lexically scoped per loop iteration — the analyzer cannot name
  /// a dynamically-indexed shard mutex in EXCLUDES, so the single-lock
  /// rule is enforced by ShardLock being the only lock path plus the
  /// negative compile tests).
  bool ReserveBytes(size_t cost, const StoreKey* keep);
  bool EvictOneImage(const StoreKey* keep);
  bool EvictOneEntry(const StoreKey* keep);

  uint64_t NextStamp() { return 1 + clock_.fetch_add(1); }

  Options options_;
  /// Live byte budget; starts at options_.byte_budget, re-armed by
  /// SetByteBudget. Atomic so the ReserveBytes CAS loop and concurrent
  /// readers see one coherent value.
  std::atomic<size_t> budget_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Global byte ledger: the sum of live entry costs plus in-flight
  /// reservations. Only ever grows via the budget-checked CAS in
  /// ReserveBytes, so it can never exceed options_.byte_budget.
  std::atomic<size_t> bytes_{0};
  std::atomic<uint64_t> clock_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> image_evictions_{0};
};

/// Cost model used for the store's accounting, exposed for tests.
size_t PatternSetCost(const fpm::PatternSet& fp);

}  // namespace gogreen::serve

#endif  // GOGREEN_SERVE_PATTERN_STORE_H_
