// The pattern store: a bounded, byte-accounted cache of complete pattern
// sets keyed by (dataset, constraint fingerprint, min_support), with
// optional memoized compressed images. This is the serving-layer shape of
// the paper's multi-user story (Section 2): patterns one query mined are the
// seeds later queries recycle, so keeping them around — within a budget —
// turns the recycling speedups from a per-session trick into a service
// property.
//
// Values are handed out as shared_ptr-to-const: eviction drops the store's
// reference, never a reader's. Entry costs are charged to an internal
// RunContext ledger (the same cooperative accounting the miners use), so
// `bytes_in_use()` is exactly the sum of live entry costs and the
// byte_budget is a hard ceiling — inserting evicts least-recently-used
// entries first (their memoized compressed images go before the pattern
// sets; images are cheap to rebuild) and an entry that alone exceeds the
// budget is rejected outright.

#ifndef GOGREEN_SERVE_PATTERN_STORE_H_
#define GOGREEN_SERVE_PATTERN_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/compressed_db.h"
#include "core/seed_selection.h"
#include "fpm/pattern_set.h"
#include "util/run_context.h"
#include "util/status.h"

namespace gogreen::serve {

/// Identity of a cached complete pattern set. `constraint_fingerprint` is
/// ConstraintSet::Fingerprint() — "" for support-only (unconstrained) sets,
/// which are the ones recycling and filter-down routes seed from.
struct StoreKey {
  std::string dataset_id;
  std::string constraint_fingerprint;
  uint64_t min_support = 0;

  friend bool operator==(const StoreKey&, const StoreKey&) = default;
  std::string ToString() const;
};

/// Aggregate store counters, for `store` introspection and tests.
struct StoreStats {
  size_t entries = 0;
  size_t compressed_images = 0;
  size_t bytes_in_use = 0;
  size_t byte_budget = 0;
  uint64_t evictions = 0;       ///< Whole entries dropped to make room.
  uint64_t image_evictions = 0; ///< Compressed images dropped to make room.
};

/// Bounded LRU cache of complete pattern sets. Thread-safe; lookups bump
/// recency. See the file comment for the eviction contract.
class PatternStore {
 public:
  struct Options {
    /// Hard ceiling on the summed cost of cached pattern sets + compressed
    /// images. The store never holds more than this many accounted bytes.
    size_t byte_budget = size_t{64} << 20;
  };

  PatternStore();  ///< Default Options.
  explicit PatternStore(Options options);

  /// Inserts (or replaces) the complete set for `key`, evicting older
  /// entries as needed. Returns false — and caches nothing — when the set
  /// alone costs more than the byte budget. `num_transactions` is the |DB|
  /// the supports refer to; it travels with the entry into persistence.
  bool Put(const StoreKey& key, fpm::PatternSet patterns,
           uint64_t num_transactions);

  /// Memoizes the compressed image built from `key`'s pattern set (shared:
  /// the caller typically keeps mining from the same image). A miss (no
  /// such entry) or an over-budget image is a silent no-op: images are an
  /// optimization, never load-bearing.
  void PutCompressed(const StoreKey& key,
                     std::shared_ptr<const core::CompressedDb> cdb);

  /// The cached set for `key`, or null. Bumps recency.
  std::shared_ptr<const fpm::PatternSet> Get(const StoreKey& key);

  /// The memoized compressed image for `key`, or null. Bumps recency.
  std::shared_ptr<const core::CompressedDb> GetCompressed(const StoreKey& key);

  /// Number of transactions recorded with the entry (0 when absent).
  uint64_t NumTransactionsOf(const StoreKey& key) const;

  /// Seed candidates among the entries of (dataset_id, fingerprint), tagged
  /// with their min_support (tag == min_support), ready for
  /// core::SelectSeed. Does not bump recency.
  std::vector<core::SeedCandidate> Candidates(
      const std::string& dataset_id, const std::string& fingerprint) const;

  void Clear();

  StoreStats stats() const;
  size_t bytes_in_use() const;
  size_t byte_budget() const { return options_.byte_budget; }

  /// Persists every entry as a pattern file under `dir` (created if
  /// missing), one crash-safe file per entry. Compressed images are not
  /// persisted (they are cheap to rebuild). Returns the first write error.
  Status SaveTo(const std::string& dir) const;

  /// Loads every pattern file under `dir` into the store (normal insertion
  /// rules: eviction applies, oversized entries are skipped). Files that
  /// fail to parse — corrupted, truncated, foreign — are skipped, not
  /// fatal; `*skipped` (optional) counts them.
  Status LoadFrom(const std::string& dir, size_t* skipped = nullptr);

 private:
  struct Entry {
    StoreKey key;
    std::shared_ptr<const fpm::PatternSet> patterns;
    std::shared_ptr<const core::CompressedDb> cdb;  ///< May be null.
    uint64_t num_transactions = 0;
    size_t pattern_bytes = 0;
    size_t cdb_bytes = 0;
  };

  // LRU list, most-recent first; the ledger tracks accounted bytes.
  using EntryList = std::list<Entry>;

  EntryList::iterator FindLocked(const StoreKey& key);
  EntryList::const_iterator FindLocked(const StoreKey& key) const;
  void TouchLocked(EntryList::iterator it);
  /// Frees accounted bytes until `needed` fits under the budget; images
  /// first (LRU order), then whole entries. `keep` survives eviction.
  void EvictForLocked(size_t needed, const StoreKey* keep);
  void DropEntryLocked(EntryList::iterator it);

  Options options_;
  mutable std::mutex mu_;
  EntryList entries_;
  /// Byte ledger (budget intentionally unarmed: the store enforces its
  /// ceiling by eviction, not by tripping a stop flag).
  RunContext ledger_;
  uint64_t evictions_ = 0;
  uint64_t image_evictions_ = 0;
};

/// Cost model used for the store's accounting, exposed for tests.
size_t PatternSetCost(const fpm::PatternSet& fp);

}  // namespace gogreen::serve

#endif  // GOGREEN_SERVE_PATTERN_STORE_H_
