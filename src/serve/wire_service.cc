#include "serve/wire_service.h"

#include <sstream>
#include <utility>

#include "core/seed_selection.h"
#include "obs/export.h"
#include "util/run_context.h"
#include "util/status_codes.h"

namespace gogreen::serve {

namespace {

/// Resolves the wire support field: < 1.0 is a fraction of the database,
/// otherwise an absolute count (same rule the CLI flag uses).
Result<uint64_t> ResolveSupport(double support, size_t num_transactions) {
  if (support <= 0.0) {
    return Status::InvalidArgument("mine expects a positive support");
  }
  if (support < 1.0) return fpm::AbsoluteSupport(support, num_transactions);
  return static_cast<uint64_t>(support);
}

/// Copies the ServeStats view of one finished request onto the response.
void FillFromStats(const ServeStats& stats, net::WireResponse* resp) {
  resp->route = core::SeedRouteName(stats.route);
  resp->seed_support = stats.seed_support;
  resp->coalesced = stats.coalesced;
  resp->degraded = stats.degraded;
  resp->shed = stats.shed;
  resp->retry_after_ms = stats.retry_after_ms;
  resp->seconds = stats.seconds;
  resp->compress_seconds = stats.compress_seconds;
  resp->compression_ratio = stats.compression_ratio;
  resp->bytes_peak = stats.bytes_peak;
  resp->threads = stats.threads;
  resp->evictions = stats.evictions;
  resp->request_id = stats.request_id;
  resp->queued_ms = stats.queued_ms;
  resp->tenant = stats.tenant;
}

}  // namespace

std::string FormatMineLine(const net::WireResponse& resp) {
  std::ostringstream out;
  out << "mined support=" << resp.min_support << " route=" << resp.route
      << " seed=" << resp.seed_support << " patterns=" << resp.patterns
      << " seconds=" << resp.seconds
      << " partial=" << (resp.partial ? 1 : 0);
  if (resp.partial) out << " frontier=" << resp.frontier_support;
  out << "\n";
  return out.str();
}

std::string FormatStatsLine(const ServeStats& stats) {
  std::ostringstream out;
  out << "last: route=" << core::SeedRouteName(stats.route)
      << " seed=" << stats.seed_support
      << " patterns=" << stats.patterns_returned
      << " seconds=" << stats.seconds
      << " compress_seconds=" << stats.compress_seconds
      << " ratio=" << stats.compression_ratio
      << " partial=" << (stats.partial ? 1 : 0)
      // Appended fields only (scripts grep the prefix above): the wide-
      // event view of the same request.
      << " request=" << stats.request_id << " threads=" << stats.threads
      << " bytes_peak=" << stats.bytes_peak
      << " evictions=" << stats.evictions
      << " outcome=" << (stats.outcome.empty() ? "none" : stats.outcome)
      << " coalesced=" << (stats.coalesced ? 1 : 0)
      << " tenant=" << (stats.tenant.empty() ? "-" : stats.tenant)
      << " queued_ms=" << stats.queued_ms
      << " degraded=" << (stats.degraded ? 1 : 0)
      << " shed=" << (stats.shed ? 1 : 0) << "\n";
  return out.str();
}

std::string FormatStoreLine(const PatternStore& store) {
  const StoreStats stats = store.stats();
  std::ostringstream out;
  out << "store: entries=" << stats.entries
      << " images=" << stats.compressed_images
      << " bytes=" << stats.bytes_in_use << "/" << stats.byte_budget
      << " evictions=" << stats.evictions
      << " image_evictions=" << stats.image_evictions << "\n";
  return out.str();
}

WireSession::WireSession(MiningService& service,
                         AdmissionController* admission, std::string tenant)
    : service_(service),
      admission_(admission),
      tenant_(std::move(tenant)) {}

net::WireResponse WireSession::Handle(const net::WireRequest& request) {
  net::WireResponse resp;
  resp.id = request.id;
  switch (request.verb) {
    case net::Verb::kMine:
      return HandleMine(request);
    case net::Verb::kStats:
      resp.body = FormatStatsLine(last_);
      return resp;
    case net::Verb::kMetrics:
      resp.body = obs::MetricsProm();
      return resp;
    case net::Verb::kStore:
      resp.body = FormatStoreLine(service_.store());
      return resp;
    case net::Verb::kPing:
      return resp;
    case net::Verb::kTenant:
      tenant_ = request.tenant;  // Empty rebinds to the anonymous tenant.
      resp.tenant = tenant_;
      return resp;
  }
  return net::MakeErrorResponse(
      request.id, Status::InvalidArgument("unknown verb"));
}

net::WireResponse WireSession::HandleMine(const net::WireRequest& request) {
  const auto minsup_or =
      ResolveSupport(request.support, service_.db().NumTransactions());
  if (!minsup_or.ok()) {
    return net::MakeErrorResponse(request.id, minsup_or.status());
  }
  const uint64_t minsup = minsup_or.value();

  RunContext ctx;
  fpm::MineRequest mine = fpm::MineRequest::At(minsup);
  mine.threads = static_cast<size_t>(request.threads);
  mine.tenant = request.tenant.empty() ? tenant_ : request.tenant;
  if (request.deadline_ms > 0 || request.budget_mb > 0) {
    if (request.deadline_ms > 0) {
      ctx.SetDeadlineAfterMillis(static_cast<int64_t>(request.deadline_ms));
    }
    if (request.budget_mb > 0) {
      ctx.SetMemoryBudget(static_cast<size_t>(request.budget_mb) << 20);
    }
    mine.run_context = &ctx;
  }

  ServeStats stats;
  const auto result = admission_ != nullptr
                          ? admission_->Mine(mine, &stats)
                          : service_.Mine(mine, &stats);

  net::WireResponse resp;
  resp.id = request.id;
  FillFromStats(stats, &resp);
  resp.min_support = minsup;
  // The service already classified this request (ServeStats::outcome is
  // filled on every path, including shed and injected errors); the wire
  // outcome is that label, parsed back into the typed enum.
  if (!stats.outcome.empty()) {
    ParseOutcomeLabel(stats.outcome, &resp.outcome, &resp.error_code);
  }
  if (!result.ok()) {
    if (stats.outcome.empty()) {
      resp.outcome = stats.shed ? Outcome::kShed : Outcome::kError;
      resp.error_code = result.status().code();
    }
    resp.error = result.status().message();
    return resp;
  }
  last_ = stats;
  resp.patterns = result->patterns.size();
  resp.partial = result->partial;
  resp.frontier_support = result->frontier_support;
  return resp;
}

}  // namespace gogreen::serve
