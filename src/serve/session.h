// Interactive / scripted driver for the wire protocol: the `gogreen
// session` REPL and the `gogreen client` script mode are the SAME loop —
// RunWireSession — differing only in the executor that answers each
// net::WireRequest. The session runs an in-process WireSession; the
// client sends frames to a daemon. Either way a support sweep exercises
// every route (scratch, recycle, filter-down, exact hit) the way the
// paper's interactive-mining story describes.
//
// Commands (blank lines and '#' comments are skipped):
//   mine <s>        mine at support <s> (fraction < 1.0, else absolute)
//   threads <n>     per-request thread count for following mines (0=global)
//   deadline <ms>   per-request deadline for following mines (0=off)
//   budget <mb>     per-request memory budget in MiB (0=off)
//   tenant <name>   tenant id stamped on following mines (admission quotas)
//   stats           route/timing of the most recent mine
//   \stats          process-wide metrics (Prometheus text format)
//   store           pattern-store contents and byte accounting
//   save <dir>      persist the store as pattern files (local session only)
//   load <dir>      load pattern files into the store (local session only)
//   help            command list
//   quit            end the session

#ifndef GOGREEN_SERVE_SESSION_H_
#define GOGREEN_SERVE_SESSION_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "net/wire.h"
#include "serve/mining_service.h"
#include "util/status.h"

namespace gogreen::serve {

class AdmissionController;

struct SessionConfig {
  /// Interactive mode prompts and keeps going after a failed command;
  /// script (batch) mode is strict — the first error aborts the session.
  bool interactive = false;
  /// When set, mines route through this admission controller (queueing,
  /// quotas, breaker, degradation) instead of calling the service
  /// directly. Borrowed; must outlive the session.
  AdmissionController* admission = nullptr;
  /// Initial tenant id stamped on mine requests (the `tenant` verb
  /// overrides it mid-session). "" = anonymous/default tenant.
  std::string tenant;
};

/// What a finished session did, for exit-code decisions and tests.
struct SessionSummary {
  uint64_t commands = 0;
  uint64_t mines = 0;
  uint64_t partials = 0;  ///< Mines stopped early by a governor.
  uint64_t errors = 0;    ///< Failed commands (interactive mode only).
};

/// Answers one wire request. The in-process form wraps WireSession; the
/// network form sends a frame and awaits the reply. A non-OK result is a
/// transport failure (the request never got an answer); application
/// failures come back inside the response's outcome.
using WireExecutor =
    std::function<Result<net::WireResponse>(const net::WireRequest&)>;

/// Handles the store-persistence verbs ("save"/"load"), which touch the
/// local filesystem and therefore never cross the wire. Null when the
/// executor is remote — the verbs then fail with a typed error.
using SaveLoadHandler = std::function<Status(
    const std::string& verb, const std::string& dir, std::ostream& out)>;

/// The command loop shared by `gogreen session` and `gogreen client`:
/// reads one command per line from `in`, answers each through `executor`,
/// writes results to `out`. Returns the summary, or the first error in
/// strict (non-interactive) mode.
Result<SessionSummary> RunWireSession(const WireExecutor& executor,
                                      const SaveLoadHandler& save_load,
                                      std::istream& in, std::ostream& out,
                                      const SessionConfig& config = {});

/// The in-process session: RunWireSession over a WireSession bound to
/// `service` (and `config.admission`, when set). save/load hit
/// `service.store()` directly.
Result<SessionSummary> RunSession(MiningService& service, std::istream& in,
                                  std::ostream& out,
                                  const SessionConfig& config = {});

}  // namespace gogreen::serve

#endif  // GOGREEN_SERVE_SESSION_H_
