// The mining service: answers fpm::MineRequest queries over one database by
// planning the cheapest correct route through the pattern store.
//
// Route decision (see DESIGN.md "Serving & the pattern store"):
//
//   1. exact hit      — the store holds the set for this exact
//                       (dataset, fingerprint, support) key: return it.
//   2. filter-down    — a support-only set cached at ξ' <= ξ_new exists:
//                       FilterBySupport, no database access.
//   3. recycle        — a support-only set cached at ξ_old > ξ_new exists:
//                       compress the database with it (memoizing the image)
//                       and mine the compressed image (Recycle-*).
//   4. scratch        — nothing usable: mine the raw database.
//
// The seed among multiple cached sets is picked by core::SelectSeed — the
// same policy the single-cache RecyclingSession uses. Every mined result is
// written back to the store (at its frontier support when a governor stopped
// the run early — a partial result is still exact at the frontier, so later
// queries recycle it, the paper's own loop). Constrained queries are served
// from support-complete sets and post-filtered; the filtered set is also
// cached under its fingerprint for exact repeats.
//
// Thread-safe and single-flight (DESIGN.md §13): concurrent Mine() calls
// share the sharded store, and identical in-flight requests — same
// (dataset, constraint fingerprint, support, governor class) — rendezvous
// on an in-flight table. Exactly one leader mines; followers wait on the
// leader's result (deadline-aware: a waiting follower's RunContext
// deadline still fires, yielding its own partial answer) and report route
// `exact` with `coalesced` set. A failed leader propagates its error to
// its own caller; followers elect a new leader instead of inheriting the
// failure. The `coalesce.leader` failpoint injects a leader failure for
// testing that election.

#ifndef GOGREEN_SERVE_MINING_SERVICE_H_
#define GOGREEN_SERVE_MINING_SERVICE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/recycler.h"
#include "core/seed_selection.h"
#include "fpm/miner.h"
#include "fpm/transaction_db.h"
#include "serve/pattern_store.h"
#include "util/thread_annotations.h"
#include "util/status.h"

namespace gogreen::serve {

struct ServiceOptions {
  PatternStore::Options store;
  /// Algorithm choices, shared with the session-level recycler: base miner
  /// for scratch rounds, compression strategy/matcher, and the adapted
  /// algorithm for compressed images.
  core::CompressionStrategy strategy = core::CompressionStrategy::kMcp;
  core::MatcherKind matcher = core::MatcherKind::kAuto;
  core::RecycleAlgo algo = core::RecycleAlgo::kHMine;
  fpm::MinerKind base_miner = fpm::MinerKind::kHMine;
};

/// How the service answered one request, for tests and the session REPL.
/// This is also the payload of the per-request wide event (obs::RequestLog):
/// Mine() fills it from route bookkeeping plus tracer/store/governor deltas
/// taken across the request.
struct ServeStats {
  uint64_t request_id = 0;    ///< obs::RequestLog id stamped on the request.
  core::SeedRoute route = core::SeedRoute::kNone;
  uint64_t seed_support = 0;  ///< Support of the seed entry (0 on scratch).
  bool coalesced = false;     ///< Adopted a concurrent identical mine.
  double seconds = 0.0;       ///< End-to-end service time.
  double compress_seconds = 0.0;  ///< Recycle route only.
  double compression_ratio = 1.0;
  uint64_t patterns_returned = 0;
  bool partial = false;
  uint64_t frontier_support = 0;  ///< Meaningful when partial.
  uint64_t bytes_peak = 0;    ///< Governor-accounted scratch high-water.
  uint64_t threads = 0;       ///< Effective mining parallelism.
  uint64_t evictions = 0;     ///< Store evictions this request triggered.
  uint64_t image_evictions = 0;
  std::string tenant;         ///< Tenant id ("" = anonymous/default).
  uint64_t queued_ms = 0;     ///< Admission-queue wait (0 = no queueing).
  bool degraded = false;      ///< Served a stale/frontier store entry
                              ///< instead of mining (admission layer).
  bool shed = false;          ///< Rejected by admission control.
  uint64_t retry_after_ms = 0;  ///< Hint accompanying a shed rejection.
  std::string outcome;        ///< "ok" | "partial" | "degraded" | "shed"
                              ///< | "error:<Code>".
  /// Per-request wall seconds of the disjoint serve.* phase spans (empty
  /// when the tracer is disabled). See obs::RequestEvent::phases.
  std::vector<std::pair<std::string, double>> phases;
};

class MiningService {
 public:
  /// `dataset_id` names the database in store keys (and thus in persisted
  /// pattern files): stores loaded from disk only seed requests whose
  /// service carries the same id.
  MiningService(fpm::TransactionDb db, std::string dataset_id,
                ServiceOptions options = {});

  /// Answers one query; see the file comment for the route plan. When
  /// `stats` is non-null it receives this call's per-request stats (always
  /// filled, including on error) — per-call by construction, so concurrent
  /// callers never read each other's stats.
  Result<fpm::MineResult> Mine(const fpm::MineRequest& request,
                               ServeStats* stats = nullptr);

  PatternStore& store() { return store_; }
  const fpm::TransactionDb& db() const { return db_; }
  const std::string& dataset_id() const { return dataset_id_; }
  const ServiceOptions& options() const { return options_; }

  // --- Test seams for the coalescing protocol (set before concurrent
  // traffic starts; never in production paths). ---

  /// Invoked on the leader thread right after it wins the in-flight slot
  /// and before it mines — a rendezvous window: tests block here until the
  /// expected followers have parked.
  void SetLeaderHoldForTest(std::function<void()> hook) {
    leader_hold_for_test_ = std::move(hook);
  }

  /// Followers currently parked on in-flight leaders, across all keys.
  size_t CoalesceWaitersForTest() const EXCLUDES(inflight_mu_);

 private:
  /// One in-flight mine: the leader publishes into `result`/`status` and
  /// flips `done` under `mu`; followers park on `cv` (deadline-aware).
  struct InFlight {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    bool ok GUARDED_BY(mu) = false;
    Status status GUARDED_BY(mu) = Status::OK();
    fpm::MineResult result GUARDED_BY(mu);
    size_t waiters GUARDED_BY(mu) = 0;
  };

  /// Single-flight rendezvous around MineRouted: elect a leader per
  /// coalesce key, park followers, propagate/elect on failure. Runs inside
  /// Mine()'s observability envelope.
  Result<fpm::MineResult> MineCoalesced(uint64_t min_support,
                                        const fpm::MineRequest& request,
                                        const std::string& fingerprint,
                                        RunContext* ctx, ServeStats* stats);
  /// The route plan from the file comment: exact-key lookup, then the
  /// support-complete ladder, then constraint post-filtering.
  Result<fpm::MineResult> MineRouted(uint64_t min_support,
                                     const fpm::MineRequest& request,
                                     const std::string& fingerprint,
                                     RunContext* ctx, ServeStats* stats);
  /// The support-complete set at `min_support` (fingerprint ""), via the
  /// cheapest route. `stats` accumulates route bookkeeping.
  Result<fpm::MineResult> MineSupportComplete(uint64_t min_support,
                                              RunContext* ctx,
                                              ServeStats* stats);
  Result<fpm::MineResult> MineRecycledFrom(const StoreKey& seed_key,
                                           uint64_t min_support,
                                           RunContext* ctx,
                                           ServeStats* stats);
  Result<fpm::MineResult> MineScratch(uint64_t min_support, RunContext* ctx);

  fpm::TransactionDb db_;
  std::string dataset_id_;
  ServiceOptions options_;
  PatternStore store_;
  /// Lock order (DESIGN.md §15): inflight_mu_ is only ever taken alone or
  /// before a flight->mu (leader election, retire); never after one — and
  /// never together with a PatternStore shard lock (the store is consulted
  /// strictly before the rendezvous).
  mutable Mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_
      GUARDED_BY(inflight_mu_);
  std::function<void()> leader_hold_for_test_;
};

}  // namespace gogreen::serve

#endif  // GOGREEN_SERVE_MINING_SERVICE_H_
