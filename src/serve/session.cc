#include "serve/session.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "serve/admission.h"
#include "serve/wire_service.h"

namespace gogreen::serve {

namespace {

constexpr const char* kHelp =
    "commands:\n"
    "  mine <s>        mine at support <s> (fraction < 1.0, else absolute)\n"
    "  threads <n>     per-request thread count (0 = global pool)\n"
    "  deadline <ms>   per-request deadline (0 = off)\n"
    "  budget <mb>     per-request memory budget in MiB (0 = off)\n"
    "  tenant <name>   tenant id for following mines (admission quotas)\n"
    "  stats           route/timing of the most recent mine\n"
    "  \\stats          process-wide metrics (Prometheus text format)\n"
    "  store           pattern-store contents and byte accounting\n"
    "  save <dir>      persist the store as pattern files\n"
    "  load <dir>      load pattern files into the store\n"
    "  help            this list\n"
    "  quit            end the session\n";

/// Sticky per-session knobs stamped onto every subsequent mine request.
/// The tenant binding, by contrast, lives on the other side of the
/// executor (per-connection state — see WireSession).
struct Knobs {
  uint64_t threads = 0;
  uint64_t deadline_ms = 0;
  uint64_t budget_mb = 0;
};

Result<uint64_t> ParseCount(const std::string& word, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(word.c_str(), &end, 10);
  if (word.empty() || word[0] == '-' || end == nullptr || *end != '\0' ||
      errno == ERANGE) {
    return Status::InvalidArgument(std::string(what) + " expects a number, "
                                   "got '" + word + "'");
  }
  return static_cast<uint64_t>(v);
}

/// The client-side half of support parsing: the word must be a positive
/// number. The fraction-vs-absolute resolution needs the database size,
/// so it happens on the serving side (WireSession::HandleMine).
Result<double> ParseSupport(const std::string& word) {
  char* end = nullptr;
  errno = 0;
  const double raw = std::strtod(word.c_str(), &end);
  if (word.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      raw <= 0.0) {
    return Status::InvalidArgument("mine expects a positive support, got '" +
                                   word + "'");
  }
  return raw;
}

Status DoMine(const WireExecutor& executor, const Knobs& knobs,
              uint64_t request_id, const std::string& arg, std::ostream& out,
              SessionSummary* summary) {
  GOGREEN_ASSIGN_OR_RETURN(const double support, ParseSupport(arg));
  net::WireRequest request;
  request.id = request_id;
  request.verb = net::Verb::kMine;
  request.support = support;
  request.threads = knobs.threads;
  request.deadline_ms = knobs.deadline_ms;
  request.budget_mb = knobs.budget_mb;
  GOGREEN_ASSIGN_OR_RETURN(const net::WireResponse resp, executor(request));
  GOGREEN_RETURN_NOT_OK(resp.ToStatus());
  ++summary->mines;
  if (resp.partial) ++summary->partials;
  out << FormatMineLine(resp);
  return Status::OK();
}

/// Sends a body-producing verb (stats/metrics/store) and prints the body.
Status DoBodyVerb(const WireExecutor& executor, net::Verb verb,
                  uint64_t request_id, std::ostream& out) {
  net::WireRequest request;
  request.id = request_id;
  request.verb = verb;
  GOGREEN_ASSIGN_OR_RETURN(const net::WireResponse resp, executor(request));
  GOGREEN_RETURN_NOT_OK(resp.ToStatus());
  out << resp.body;
  return Status::OK();
}

/// One command line. Returns OK on success; errors are fatal only in
/// strict mode (the caller decides).
Status RunCommand(const WireExecutor& executor,
                  const SaveLoadHandler& save_load, Knobs* knobs,
                  uint64_t request_id, const std::string& verb,
                  const std::string& arg, std::ostream& out,
                  SessionSummary* summary) {
  if (verb == "mine") {
    return DoMine(executor, *knobs, request_id, arg, out, summary);
  }
  if (verb == "threads") {
    GOGREEN_ASSIGN_OR_RETURN(const uint64_t n, ParseCount(arg, "threads"));
    if (n > 1024) {
      return Status::InvalidArgument("threads must be <= 1024");
    }
    knobs->threads = n;
    out << "threads=" << n << "\n";
    return Status::OK();
  }
  if (verb == "deadline") {
    GOGREEN_ASSIGN_OR_RETURN(knobs->deadline_ms, ParseCount(arg, "deadline"));
    out << "deadline_ms=" << knobs->deadline_ms << "\n";
    return Status::OK();
  }
  if (verb == "budget") {
    GOGREEN_ASSIGN_OR_RETURN(knobs->budget_mb, ParseCount(arg, "budget"));
    out << "budget_mb=" << knobs->budget_mb << "\n";
    return Status::OK();
  }
  if (verb == "tenant") {
    net::WireRequest request;
    request.id = request_id;
    request.verb = net::Verb::kTenant;
    request.tenant = arg;  // Empty arg resets to the anonymous tenant.
    GOGREEN_ASSIGN_OR_RETURN(const net::WireResponse resp, executor(request));
    GOGREEN_RETURN_NOT_OK(resp.ToStatus());
    out << "tenant=" << (arg.empty() ? "-" : arg) << "\n";
    return Status::OK();
  }
  if (verb == "stats") {
    return DoBodyVerb(executor, net::Verb::kStats, request_id, out);
  }
  if (verb == "\\stats") {
    return DoBodyVerb(executor, net::Verb::kMetrics, request_id, out);
  }
  if (verb == "store") {
    return DoBodyVerb(executor, net::Verb::kStore, request_id, out);
  }
  if (verb == "save" || verb == "load") {
    if (arg.empty()) {
      return Status::InvalidArgument(verb + " expects a dir");
    }
    if (save_load == nullptr) {
      return Status::InvalidArgument(
          verb + " is local-only (the store lives in the daemon's process)");
    }
    return save_load(verb, arg, out);
  }
  if (verb == "help") {
    out << kHelp;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown command '" + verb +
                                 "' (try 'help')");
}

}  // namespace

Result<SessionSummary> RunWireSession(const WireExecutor& executor,
                                      const SaveLoadHandler& save_load,
                                      std::istream& in, std::ostream& out,
                                      const SessionConfig& config) {
  SessionSummary summary;
  Knobs knobs;
  uint64_t next_request_id = 0;
  std::string line;
  if (config.interactive) out << "gogreen> " << std::flush;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string verb;
    std::string arg;
    words >> verb >> arg;
    if (!verb.empty() && verb[0] != '#') {
      if (verb == "quit" || verb == "exit") break;
      ++summary.commands;
      const Status status =
          RunCommand(executor, save_load, &knobs, ++next_request_id, verb,
                     arg, out, &summary);
      if (!status.ok()) {
        if (!config.interactive) return status;
        ++summary.errors;
        out << "error: " << status.ToString() << "\n";
      }
    }
    if (config.interactive) out << "gogreen> " << std::flush;
  }
  if (config.interactive) out << "\n";
  return summary;
}

Result<SessionSummary> RunSession(MiningService& service, std::istream& in,
                                  std::ostream& out,
                                  const SessionConfig& config) {
  // The in-process executor: the same WireSession a daemon connection
  // would own, minus the socket — requests and responses never serialize.
  // (The differential test round-trips them through JSON to prove the
  // encoding is faithful.)
  WireSession wire(service, config.admission, config.tenant);
  const WireExecutor executor =
      [&wire](const net::WireRequest& request) -> Result<net::WireResponse> {
    return wire.Handle(request);
  };
  const SaveLoadHandler save_load =
      [&service](const std::string& verb, const std::string& dir,
                 std::ostream& sink) -> Status {
    if (verb == "save") {
      GOGREEN_RETURN_NOT_OK(service.store().SaveTo(dir));
      sink << "saved " << service.store().stats().entries << " entries to "
           << dir << "\n";
      return Status::OK();
    }
    size_t skipped = 0;
    GOGREEN_RETURN_NOT_OK(service.store().LoadFrom(dir, &skipped));
    sink << "loaded store from " << dir << " ("
         << service.store().stats().entries << " entries, " << skipped
         << " skipped)\n";
    return Status::OK();
  };
  return RunWireSession(executor, save_load, in, out, config);
}

}  // namespace gogreen::serve
