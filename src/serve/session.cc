#include "serve/session.h"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "serve/admission.h"
#include "util/run_context.h"

namespace gogreen::serve {

namespace {

constexpr const char* kHelp =
    "commands:\n"
    "  mine <s>        mine at support <s> (fraction < 1.0, else absolute)\n"
    "  threads <n>     per-request thread count (0 = global pool)\n"
    "  deadline <ms>   per-request deadline (0 = off)\n"
    "  budget <mb>     per-request memory budget in MiB (0 = off)\n"
    "  tenant <name>   tenant id for following mines (admission quotas)\n"
    "  stats           route/timing of the most recent mine\n"
    "  \\stats          process-wide metrics (Prometheus text format)\n"
    "  store           pattern-store contents and byte accounting\n"
    "  save <dir>      persist the store as pattern files\n"
    "  load <dir>      load pattern files into the store\n"
    "  help            this list\n"
    "  quit            end the session\n";

/// Sticky per-session knobs applied to every subsequent mine.
struct Knobs {
  size_t threads = 0;
  uint64_t deadline_ms = 0;
  uint64_t budget_mb = 0;
  std::string tenant;
};

Result<uint64_t> ParseCount(const std::string& word, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(word.c_str(), &end, 10);
  if (word.empty() || word[0] == '-' || end == nullptr || *end != '\0' ||
      errno == ERANGE) {
    return Status::InvalidArgument(std::string(what) + " expects a number, "
                                   "got '" + word + "'");
  }
  return static_cast<uint64_t>(v);
}

Result<uint64_t> ParseSupport(const std::string& word,
                              size_t num_transactions) {
  char* end = nullptr;
  errno = 0;
  const double raw = std::strtod(word.c_str(), &end);
  if (word.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      raw <= 0.0) {
    return Status::InvalidArgument("mine expects a positive support, got '" +
                                   word + "'");
  }
  if (raw < 1.0) return fpm::AbsoluteSupport(raw, num_transactions);
  return static_cast<uint64_t>(raw);
}

Status DoMine(MiningService& service, AdmissionController* admission,
              const Knobs& knobs, const std::string& arg, std::ostream& out,
              SessionSummary* summary, ServeStats* last) {
  GOGREEN_ASSIGN_OR_RETURN(
      const uint64_t minsup,
      ParseSupport(arg, service.db().NumTransactions()));
  RunContext ctx;
  fpm::MineRequest request = fpm::MineRequest::At(minsup);
  request.threads = knobs.threads;
  request.tenant = knobs.tenant;
  if (knobs.deadline_ms > 0 || knobs.budget_mb > 0) {
    if (knobs.deadline_ms > 0) {
      ctx.SetDeadlineAfterMillis(static_cast<int64_t>(knobs.deadline_ms));
    }
    if (knobs.budget_mb > 0) {
      ctx.SetMemoryBudget(static_cast<size_t>(knobs.budget_mb) << 20);
    }
    request.run_context = &ctx;
  }
  ServeStats stats;
  GOGREEN_ASSIGN_OR_RETURN(const fpm::MineResult result,
                           admission != nullptr
                               ? admission->Mine(request, &stats)
                               : service.Mine(request, &stats));
  ++summary->mines;
  if (result.partial) ++summary->partials;
  *last = stats;
  out << "mined support=" << minsup
      << " route=" << core::SeedRouteName(stats.route)
      << " seed=" << stats.seed_support
      << " patterns=" << result.patterns.size()
      << " seconds=" << stats.seconds
      << " partial=" << (result.partial ? 1 : 0);
  if (result.partial) out << " frontier=" << result.frontier_support;
  out << "\n";
  return Status::OK();
}

void PrintStats(const ServeStats& stats, std::ostream& out) {
  out << "last: route=" << core::SeedRouteName(stats.route)
      << " seed=" << stats.seed_support
      << " patterns=" << stats.patterns_returned
      << " seconds=" << stats.seconds
      << " compress_seconds=" << stats.compress_seconds
      << " ratio=" << stats.compression_ratio
      << " partial=" << (stats.partial ? 1 : 0)
      // Appended fields only (scripts grep the prefix above): the wide-
      // event view of the same request.
      << " request=" << stats.request_id
      << " threads=" << stats.threads
      << " bytes_peak=" << stats.bytes_peak
      << " evictions=" << stats.evictions
      << " outcome=" << (stats.outcome.empty() ? "none" : stats.outcome)
      << " coalesced=" << (stats.coalesced ? 1 : 0)
      << " tenant=" << (stats.tenant.empty() ? "-" : stats.tenant)
      << " queued_ms=" << stats.queued_ms
      << " degraded=" << (stats.degraded ? 1 : 0)
      << " shed=" << (stats.shed ? 1 : 0)
      << "\n";
}

void PrintStore(const PatternStore& store, std::ostream& out) {
  const StoreStats stats = store.stats();
  out << "store: entries=" << stats.entries
      << " images=" << stats.compressed_images
      << " bytes=" << stats.bytes_in_use << "/" << stats.byte_budget
      << " evictions=" << stats.evictions
      << " image_evictions=" << stats.image_evictions << "\n";
}

/// One command line. Returns OK on success; errors are fatal only in
/// strict mode (the caller decides).
Status RunCommand(MiningService& service, AdmissionController* admission,
                  Knobs* knobs, const std::string& verb,
                  const std::string& arg, std::ostream& out,
                  SessionSummary* summary, ServeStats* last) {
  if (verb == "mine") {
    return DoMine(service, admission, *knobs, arg, out, summary, last);
  }
  if (verb == "threads") {
    GOGREEN_ASSIGN_OR_RETURN(const uint64_t n, ParseCount(arg, "threads"));
    if (n > 1024) {
      return Status::InvalidArgument("threads must be <= 1024");
    }
    knobs->threads = static_cast<size_t>(n);
    out << "threads=" << n << "\n";
    return Status::OK();
  }
  if (verb == "deadline") {
    GOGREEN_ASSIGN_OR_RETURN(knobs->deadline_ms, ParseCount(arg, "deadline"));
    out << "deadline_ms=" << knobs->deadline_ms << "\n";
    return Status::OK();
  }
  if (verb == "budget") {
    GOGREEN_ASSIGN_OR_RETURN(knobs->budget_mb, ParseCount(arg, "budget"));
    out << "budget_mb=" << knobs->budget_mb << "\n";
    return Status::OK();
  }
  if (verb == "tenant") {
    knobs->tenant = arg;  // Empty arg resets to the anonymous tenant.
    out << "tenant=" << (arg.empty() ? "-" : arg) << "\n";
    return Status::OK();
  }
  if (verb == "stats") {
    PrintStats(*last, out);
    return Status::OK();
  }
  if (verb == "\\stats") {
    out << obs::MetricsProm();
    return Status::OK();
  }
  if (verb == "store") {
    PrintStore(service.store(), out);
    return Status::OK();
  }
  if (verb == "save") {
    if (arg.empty()) return Status::InvalidArgument("save expects a dir");
    GOGREEN_RETURN_NOT_OK(service.store().SaveTo(arg));
    out << "saved " << service.store().stats().entries << " entries to "
        << arg << "\n";
    return Status::OK();
  }
  if (verb == "load") {
    if (arg.empty()) return Status::InvalidArgument("load expects a dir");
    size_t skipped = 0;
    GOGREEN_RETURN_NOT_OK(service.store().LoadFrom(arg, &skipped));
    out << "loaded store from " << arg << " ("
        << service.store().stats().entries << " entries, " << skipped
        << " skipped)\n";
    return Status::OK();
  }
  if (verb == "help") {
    out << kHelp;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown command '" + verb +
                                 "' (try 'help')");
}

}  // namespace

Result<SessionSummary> RunSession(MiningService& service, std::istream& in,
                                  std::ostream& out,
                                  const SessionConfig& config) {
  SessionSummary summary;
  Knobs knobs;
  knobs.tenant = config.tenant;
  // Per-session "most recent mine" stats for the `stats` verb: Mine()
  // returns stats by value, so this single-driver snapshot is race-free
  // even when other sessions share the service.
  ServeStats last;
  std::string line;
  if (config.interactive) out << "gogreen> " << std::flush;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string verb;
    std::string arg;
    words >> verb >> arg;
    if (!verb.empty() && verb[0] != '#') {
      if (verb == "quit" || verb == "exit") break;
      ++summary.commands;
      const Status status = RunCommand(service, config.admission, &knobs,
                                       verb, arg, out, &summary, &last);
      if (!status.ok()) {
        if (!config.interactive) return status;
        ++summary.errors;
        out << "error: " << status.ToString() << "\n";
      }
    }
    if (config.interactive) out << "gogreen> " << std::flush;
  }
  if (config.interactive) out << "\n";
  return summary;
}

}  // namespace gogreen::serve
