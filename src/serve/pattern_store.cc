#include "serve/pattern_store.h"

#include <filesystem>
#include <functional>
#include <utility>

#include "fpm/pattern.h"
#include "fpm/pattern_io.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace gogreen::serve {

namespace {

/// Gauge mirroring the ledger so `--metrics-json` shows the store load.
void RecordStoreBytes(size_t bytes) {
  static obs::Gauge* gauge =
      obs::MetricRegistry::Global().GetGauge("serve.store_bytes");
  gauge->Set(static_cast<int64_t>(bytes));
}

void RecordEviction(bool whole_entry) {
  static obs::Counter* entries =
      obs::MetricRegistry::Global().GetCounter("serve.evictions");
  static obs::Counter* images =
      obs::MetricRegistry::Global().GetCounter("serve.image_evictions");
  (whole_entry ? entries : images)->Add(1);
}

/// Filename for one persisted entry: a sanitized dataset id and the support
/// stay readable; the free-form parts (full id + fingerprint) are folded
/// into a hash for uniqueness. The authoritative key travels inside the
/// file (header.source), so the name only needs to be unique and stable.
std::string EntryFileName(const StoreKey& key) {
  std::string readable = key.dataset_id;
  for (char& c : readable) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    if (!safe) c = '_';
  }
  const size_t hash = std::hash<std::string>{}(
      key.dataset_id + "\n" + key.constraint_fingerprint);
  return readable + "-" + std::to_string(key.min_support) + "-" +
         std::to_string(hash) + ".gpat";
}

/// The key is serialized into the header's free-form source field as
/// "dataset\nfingerprint" (the fingerprint never contains a newline; it is
/// built from single-line constraint descriptions).
std::string EncodeSource(const StoreKey& key) {
  return key.dataset_id + "\n" + key.constraint_fingerprint;
}

bool DecodeSource(const std::string& source, uint64_t min_support,
                  StoreKey* key) {
  const size_t newline = source.find('\n');
  if (newline == std::string::npos) return false;
  key->dataset_id = source.substr(0, newline);
  key->constraint_fingerprint = source.substr(newline + 1);
  key->min_support = min_support;
  return !key->dataset_id.empty() && min_support > 0;
}

}  // namespace

std::string StoreKey::ToString() const {
  std::string s = dataset_id + "@" + std::to_string(min_support);
  if (!constraint_fingerprint.empty()) s += "[" + constraint_fingerprint + "]";
  return s;
}

size_t PatternSetCost(const fpm::PatternSet& fp) {
  size_t bytes = sizeof(fpm::PatternSet);
  for (const fpm::Pattern& p : fp) {
    bytes += sizeof(fpm::Pattern) + p.items.capacity() * sizeof(fpm::ItemId);
  }
  return bytes;
}

PatternStore::PatternStore() : PatternStore(Options()) {}

PatternStore::PatternStore(Options options) : options_(options) {}

PatternStore::EntryList::iterator PatternStore::FindLocked(
    const StoreKey& key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) return it;
  }
  return entries_.end();
}

PatternStore::EntryList::const_iterator PatternStore::FindLocked(
    const StoreKey& key) const {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) return it;
  }
  return entries_.end();
}

void PatternStore::TouchLocked(EntryList::iterator it) {
  entries_.splice(entries_.begin(), entries_, it);
}

void PatternStore::DropEntryLocked(EntryList::iterator it) {
  ledger_.ReleaseBytes(it->pattern_bytes + it->cdb_bytes);
  entries_.erase(it);
}

void PatternStore::EvictForLocked(size_t needed, const StoreKey* keep) {
  if (needed > options_.byte_budget) return;  // Caller rejects the insert.
  // Pass 1: drop memoized images, least-recently-used first.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (ledger_.bytes_in_use() + needed <= options_.byte_budget) return;
    if (it->cdb == nullptr) continue;
    if (keep != nullptr && it->key == *keep) continue;
    ledger_.ReleaseBytes(it->cdb_bytes);
    it->cdb.reset();
    it->cdb_bytes = 0;
    ++image_evictions_;
    RecordEviction(/*whole_entry=*/false);
  }
  // Pass 2: drop whole entries, least-recently-used first.
  while (ledger_.bytes_in_use() + needed > options_.byte_budget &&
         !entries_.empty()) {
    auto victim = std::prev(entries_.end());
    if (keep != nullptr && victim->key == *keep) {
      if (victim == entries_.begin()) break;  // Only the protected entry left.
      victim = std::prev(victim);
    }
    ++evictions_;
    RecordEviction(/*whole_entry=*/true);
    DropEntryLocked(victim);
  }
}

bool PatternStore::Put(const StoreKey& key, fpm::PatternSet patterns,
                       uint64_t num_transactions) {
  const size_t cost = PatternSetCost(patterns);
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = FindLocked(key);
  if (existing != entries_.end()) DropEntryLocked(existing);
  if (cost > options_.byte_budget) {
    RecordStoreBytes(ledger_.bytes_in_use());
    return false;
  }
  EvictForLocked(cost, /*keep=*/nullptr);
  Entry entry;
  entry.key = key;
  entry.patterns =
      std::make_shared<const fpm::PatternSet>(std::move(patterns));
  entry.num_transactions = num_transactions;
  entry.pattern_bytes = cost;
  ledger_.AddBytes(cost);
  entries_.push_front(std::move(entry));
  RecordStoreBytes(ledger_.bytes_in_use());
  return true;
}

void PatternStore::PutCompressed(
    const StoreKey& key, std::shared_ptr<const core::CompressedDb> cdb) {
  if (cdb == nullptr) return;
  const size_t cost = cdb->MemoryUsage();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = FindLocked(key);
  if (it == entries_.end()) return;
  if (it->cdb != nullptr) {
    ledger_.ReleaseBytes(it->cdb_bytes);
    it->cdb.reset();
    it->cdb_bytes = 0;
  }
  // The image must fit next to its own pattern set; if evicting *other*
  // entries cannot make room, skip the memoization.
  if (it->pattern_bytes + cost > options_.byte_budget) return;
  EvictForLocked(cost, /*keep=*/&key);
  if (ledger_.bytes_in_use() + cost > options_.byte_budget) return;
  it->cdb = std::move(cdb);
  it->cdb_bytes = cost;
  ledger_.AddBytes(cost);
  TouchLocked(it);
  RecordStoreBytes(ledger_.bytes_in_use());
}

std::shared_ptr<const fpm::PatternSet> PatternStore::Get(const StoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = FindLocked(key);
  if (it == entries_.end()) return nullptr;
  TouchLocked(it);
  return it->patterns;
}

std::shared_ptr<const core::CompressedDb> PatternStore::GetCompressed(
    const StoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = FindLocked(key);
  if (it == entries_.end()) return nullptr;
  TouchLocked(it);
  return it->cdb;
}

uint64_t PatternStore::NumTransactionsOf(const StoreKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = FindLocked(key);
  return it == entries_.end() ? 0 : it->num_transactions;
}

std::vector<core::SeedCandidate> PatternStore::Candidates(
    const std::string& dataset_id, const std::string& fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<core::SeedCandidate> candidates;
  // Recency from list position: the list is most-recent-first.
  uint64_t recency = entries_.size();
  for (const Entry& entry : entries_) {
    --recency;
    if (entry.key.dataset_id != dataset_id ||
        entry.key.constraint_fingerprint != fingerprint) {
      continue;
    }
    core::SeedCandidate cand;
    cand.min_support = entry.key.min_support;
    cand.has_compressed = entry.cdb != nullptr;
    cand.last_used = recency + 1;
    cand.tag = static_cast<size_t>(entry.key.min_support);
    candidates.push_back(cand);
  }
  return candidates;
}

void PatternStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!entries_.empty()) DropEntryLocked(entries_.begin());
  RecordStoreBytes(0);
}

StoreStats PatternStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats stats;
  stats.entries = entries_.size();
  for (const Entry& entry : entries_) {
    if (entry.cdb != nullptr) ++stats.compressed_images;
  }
  stats.bytes_in_use = ledger_.bytes_in_use();
  stats.byte_budget = options_.byte_budget;
  stats.evictions = evictions_;
  stats.image_evictions = image_evictions_;
  return stats;
}

size_t PatternStore::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.bytes_in_use();
}

Status PatternStore::SaveTo(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create store directory " + dir + ": " +
                           ec.message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& entry : entries_) {
    fpm::PatternSetHeader header;
    header.min_support = entry.key.min_support;
    header.num_transactions = entry.num_transactions;
    header.source = EncodeSource(entry.key);
    const std::string path = dir + "/" + EntryFileName(entry.key);
    GOGREEN_RETURN_NOT_OK(
        fpm::WritePatternFile(*entry.patterns, header, path).status());
  }
  return Status::OK();
}

Status PatternStore::LoadFrom(const std::string& dir, size_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot read store directory " + dir + ": " +
                           ec.message());
  }
  for (const auto& dirent : it) {
    if (!dirent.is_regular_file() ||
        dirent.path().extension() != ".gpat") {
      continue;
    }
    auto loaded = fpm::ReadPatternFile(dirent.path().string());
    StoreKey key;
    if (!loaded.ok() ||
        !DecodeSource(loaded->second.source, loaded->second.min_support,
                      &key)) {
      GOGREEN_LOG(Warning) << "skipping unreadable pattern file "
                           << dirent.path().string()
                           << (loaded.ok()
                                   ? ""
                                   : ": " + loaded.status().ToString());
      if (skipped != nullptr) ++*skipped;
      continue;
    }
    Put(key, std::move(loaded->first), loaded->second.num_transactions);
  }
  return Status::OK();
}

}  // namespace gogreen::serve
