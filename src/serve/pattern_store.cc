#include "serve/pattern_store.h"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <limits>
#include <utility>

#include "fpm/pattern.h"
#include "fpm/pattern_io.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace gogreen::serve {

namespace {

/// Gauge mirroring the ledger so `--metrics-json` shows the store load.
void RecordStoreBytes(size_t bytes) {
  static obs::Gauge* gauge =
      obs::MetricRegistry::Global().GetGauge("serve.store_bytes");
  gauge->Set(static_cast<int64_t>(bytes));
}

void RecordEviction(bool whole_entry) {
  static obs::Counter* entries =
      obs::MetricRegistry::Global().GetCounter("serve.evictions");
  static obs::Counter* images =
      obs::MetricRegistry::Global().GetCounter("serve.image_evictions");
  (whole_entry ? entries : images)->Add(1);
}

void RecordShardContention() {
  static obs::Counter* counter =
      obs::MetricRegistry::Global().GetCounter("serve.shard_contention");
  counter->Add(1);
}

/// Filename for one persisted entry: a sanitized dataset id and the support
/// stay readable; the free-form parts (full id + fingerprint) are folded
/// into a hash for uniqueness. The authoritative key travels inside the
/// file (header.source), so the name only needs to be unique and stable.
std::string EntryFileName(const StoreKey& key) {
  std::string readable = key.dataset_id;
  for (char& c : readable) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    if (!safe) c = '_';
  }
  const size_t hash = std::hash<std::string>{}(
      key.dataset_id + "\n" + key.constraint_fingerprint);
  return readable + "-" + std::to_string(key.min_support) + "-" +
         std::to_string(hash) + ".gpat";
}

/// The key is serialized into the header's free-form source field as
/// "dataset\nfingerprint" (the fingerprint never contains a newline; it is
/// built from single-line constraint descriptions).
std::string EncodeSource(const StoreKey& key) {
  return key.dataset_id + "\n" + key.constraint_fingerprint;
}

bool DecodeSource(const std::string& source, uint64_t min_support,
                  StoreKey* key) {
  const size_t newline = source.find('\n');
  if (newline == std::string::npos) return false;
  key->dataset_id = source.substr(0, newline);
  key->constraint_fingerprint = source.substr(newline + 1);
  key->min_support = min_support;
  return !key->dataset_id.empty() && min_support > 0;
}

}  // namespace

std::string StoreKey::ToString() const {
  std::string s = dataset_id + "@" + std::to_string(min_support);
  if (!constraint_fingerprint.empty()) s += "[" + constraint_fingerprint + "]";
  return s;
}

size_t PatternSetCost(const fpm::PatternSet& fp) {
  size_t bytes = sizeof(fpm::PatternSet);
  for (const fpm::Pattern& p : fp) {
    bytes += sizeof(fpm::Pattern) + p.items.capacity() * sizeof(fpm::ItemId);
  }
  return bytes;
}

PatternStore::PatternStore() : PatternStore(Options()) {}

PatternStore::PatternStore(Options options)
    : options_(options), budget_(options.byte_budget) {
  const size_t count = std::max<size_t>(1, options_.shards);
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PatternStore::Shard& PatternStore::ShardOf(const StoreKey& key) const {
  const size_t hash = std::hash<std::string>{}(
      key.dataset_id + "\n" + key.constraint_fingerprint + "\n" +
      std::to_string(key.min_support));
  return *shards_[hash % shards_.size()];
}

PatternStore::ShardLock::ShardLock(const Shard& shard) : shard_(shard) {
  if (!shard_.mu.try_lock()) {
    RecordShardContention();
    shard_.mu.lock();
  }
}

PatternStore::ShardLock::~ShardLock() { shard_.mu.unlock(); }

PatternStore::EntryList::iterator PatternStore::FindInShard(
    Shard& shard, const StoreKey& key) {
  for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
    if (it->key == key) return it;
  }
  return shard.entries.end();
}

void PatternStore::TouchLocked(Shard& shard, EntryList::iterator it) {
  it->stamp = NextStamp();
  shard.entries.splice(shard.entries.begin(), shard.entries, it);
}

void PatternStore::DropEntryLocked(Shard& shard, EntryList::iterator it) {
  bytes_.fetch_sub(it->pattern_bytes + it->cdb_bytes,
                   std::memory_order_relaxed);
  shard.entries.erase(it);
}

bool PatternStore::EvictOneImage(const StoreKey* keep) {
  while (true) {
    // Phase 1: find the globally least-recently-used entry holding an
    // image, locking one shard at a time. Within a shard the list is LRU
    // ordered, so the tail-most image is that shard's minimum.
    bool found = false;
    uint64_t best = std::numeric_limits<uint64_t>::max();
    size_t victim_shard = 0;
    StoreKey victim_key;
    for (size_t i = 0; i < shards_.size(); ++i) {
      Shard& scan = *shards_[i];
      ShardLock lock(scan);
      for (auto it = scan.entries.rbegin(); it != scan.entries.rend(); ++it) {
        if (it->cdb == nullptr) continue;
        if (keep != nullptr && it->key == *keep) continue;
        if (it->stamp < best) {
          best = it->stamp;
          victim_shard = i;
          victim_key = it->key;
          found = true;
        }
        break;
      }
    }
    if (!found) return false;
    // Phase 2: re-lock the winner and evict, unless a concurrent op raced
    // the image away — then rescan.
    Shard& shard = *shards_[victim_shard];
    ShardLock lock(shard);
    auto it = FindInShard(shard, victim_key);
    if (it == shard.entries.end() || it->cdb == nullptr) continue;
    bytes_.fetch_sub(it->cdb_bytes, std::memory_order_relaxed);
    it->cdb.reset();
    it->cdb_bytes = 0;
    image_evictions_.fetch_add(1, std::memory_order_relaxed);
    RecordEviction(/*whole_entry=*/false);
    return true;
  }
}

bool PatternStore::EvictOneEntry(const StoreKey* keep) {
  while (true) {
    bool found = false;
    uint64_t best = std::numeric_limits<uint64_t>::max();
    size_t victim_shard = 0;
    StoreKey victim_key;
    for (size_t i = 0; i < shards_.size(); ++i) {
      Shard& scan = *shards_[i];
      ShardLock lock(scan);
      for (auto it = scan.entries.rbegin(); it != scan.entries.rend(); ++it) {
        if (keep != nullptr && it->key == *keep) continue;
        if (it->stamp < best) {
          best = it->stamp;
          victim_shard = i;
          victim_key = it->key;
          found = true;
        }
        break;
      }
    }
    if (!found) return false;
    Shard& shard = *shards_[victim_shard];
    ShardLock lock(shard);
    auto it = FindInShard(shard, victim_key);
    if (it == shard.entries.end()) continue;  // Raced away; rescan.
    evictions_.fetch_add(1, std::memory_order_relaxed);
    RecordEviction(/*whole_entry=*/true);
    DropEntryLocked(shard, it);
    return true;
  }
}

bool PatternStore::ReserveBytes(size_t cost, const StoreKey* keep) {
  while (true) {
    size_t current = bytes_.load(std::memory_order_relaxed);
    if (current + cost <= budget_.load(std::memory_order_relaxed)) {
      if (bytes_.compare_exchange_weak(current, current + cost,
                                       std::memory_order_relaxed)) {
        return true;
      }
      continue;  // Lost the CAS; re-read and retry.
    }
    // Over budget: evict the globally-LRU victim — memoized images first
    // (cheap to rebuild), then whole entries.
    if (EvictOneImage(keep)) continue;
    if (EvictOneEntry(keep)) continue;
    return false;  // Nothing evictable remains.
  }
}

bool PatternStore::Put(const StoreKey& key, fpm::PatternSet patterns,
                       uint64_t num_transactions) {
  const size_t cost = PatternSetCost(patterns);
  Shard& shard = ShardOf(key);
  {
    ShardLock lock(shard);
    auto existing = FindInShard(shard, key);
    if (existing != shard.entries.end()) DropEntryLocked(shard, existing);
  }
  if (cost > byte_budget()) {
    RecordStoreBytes(bytes_in_use());
    return false;
  }
  if (!ReserveBytes(cost, /*keep=*/nullptr)) {
    RecordStoreBytes(bytes_in_use());
    return false;
  }
  Entry entry;
  entry.key = key;
  entry.patterns =
      std::make_shared<const fpm::PatternSet>(std::move(patterns));
  entry.num_transactions = num_transactions;
  entry.pattern_bytes = cost;
  entry.stamp = NextStamp();
  {
    ShardLock lock(shard);
    // A concurrent Put of the same key may have raced in after the drop
    // above; last writer wins.
    auto existing = FindInShard(shard, key);
    if (existing != shard.entries.end()) DropEntryLocked(shard, existing);
    shard.entries.push_front(std::move(entry));
  }
  RecordStoreBytes(bytes_in_use());
  return true;
}

void PatternStore::PutCompressed(
    const StoreKey& key, std::shared_ptr<const core::CompressedDb> cdb) {
  if (cdb == nullptr) return;
  const size_t cost = cdb->MemoryUsage();
  Shard& shard = ShardOf(key);
  {
    ShardLock lock(shard);
    auto it = FindInShard(shard, key);
    if (it == shard.entries.end()) return;
    if (it->cdb != nullptr) {
      bytes_.fetch_sub(it->cdb_bytes, std::memory_order_relaxed);
      it->cdb.reset();
      it->cdb_bytes = 0;
    }
    // The image must fit next to its own pattern set; if evicting *other*
    // entries cannot make room, skip the memoization.
    if (it->pattern_bytes + cost > byte_budget()) return;
  }
  if (!ReserveBytes(cost, /*keep=*/&key)) return;
  {
    ShardLock lock(shard);
    auto it = FindInShard(shard, key);
    if (it == shard.entries.end() || it->cdb != nullptr) {
      // The entry was evicted (or another thread memoized first) while we
      // held the reservation; give the bytes back.
      bytes_.fetch_sub(cost, std::memory_order_relaxed);
      return;
    }
    it->cdb = std::move(cdb);
    it->cdb_bytes = cost;
    TouchLocked(shard, it);
  }
  RecordStoreBytes(bytes_in_use());
}

std::shared_ptr<const fpm::PatternSet> PatternStore::Get(const StoreKey& key) {
  Shard& shard = ShardOf(key);
  ShardLock lock(shard);
  auto it = FindInShard(shard, key);
  if (it == shard.entries.end()) return nullptr;
  TouchLocked(shard, it);
  return it->patterns;
}

std::shared_ptr<const core::CompressedDb> PatternStore::GetCompressed(
    const StoreKey& key) {
  Shard& shard = ShardOf(key);
  ShardLock lock(shard);
  auto it = FindInShard(shard, key);
  if (it == shard.entries.end()) return nullptr;
  TouchLocked(shard, it);
  return it->cdb;
}

uint64_t PatternStore::NumTransactionsOf(const StoreKey& key) const {
  Shard& shard = ShardOf(key);
  ShardLock lock(shard);
  auto it = FindInShard(shard, key);
  return it == shard.entries.end() ? 0 : it->num_transactions;
}

std::vector<core::SeedCandidate> PatternStore::Candidates(
    const std::string& dataset_id, const std::string& fingerprint) const {
  std::vector<core::SeedCandidate> candidates;
  for (const auto& ptr : shards_) {
    const Shard& shard = *ptr;
    ShardLock lock(shard);
    for (const Entry& entry : shard.entries) {
      if (entry.key.dataset_id != dataset_id ||
          entry.key.constraint_fingerprint != fingerprint) {
        continue;
      }
      core::SeedCandidate cand;
      cand.min_support = entry.key.min_support;
      cand.has_compressed = entry.cdb != nullptr;
      cand.last_used = entry.stamp;  // Global recency: bigger = fresher.
      cand.tag = static_cast<size_t>(entry.key.min_support);
      candidates.push_back(cand);
    }
  }
  return candidates;
}

void PatternStore::Clear() {
  for (const auto& ptr : shards_) {
    Shard& shard = *ptr;
    ShardLock lock(shard);
    while (!shard.entries.empty()) {
      DropEntryLocked(shard, shard.entries.begin());
    }
  }
  RecordStoreBytes(bytes_in_use());
}

StoreStats PatternStore::stats() const {
  StoreStats stats;
  for (const auto& ptr : shards_) {
    const Shard& shard = *ptr;
    ShardLock lock(shard);
    stats.entries += shard.entries.size();
    for (const Entry& entry : shard.entries) {
      if (entry.cdb != nullptr) ++stats.compressed_images;
    }
  }
  stats.bytes_in_use = bytes_in_use();
  stats.byte_budget = byte_budget();
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.image_evictions = image_evictions_.load(std::memory_order_relaxed);
  return stats;
}

size_t PatternStore::bytes_in_use() const {
  return bytes_.load(std::memory_order_relaxed);
}

void PatternStore::SetByteBudget(size_t byte_budget) {
  budget_.store(byte_budget, std::memory_order_relaxed);
  // Shrink: evict (images first, then whole entries) until the ledger fits
  // the new budget. Nothing-evictable only happens once the store is
  // empty, at which point the ledger is 0 <= any budget.
  while (bytes_in_use() > byte_budget) {
    if (EvictOneImage(/*keep=*/nullptr)) continue;
    if (!EvictOneEntry(/*keep=*/nullptr)) break;
  }
  RecordStoreBytes(bytes_in_use());
}

Status PatternStore::SaveTo(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create store directory " + dir + ": " +
                           ec.message());
  }
  // Snapshot the entries under the shard locks (shared_ptr copies are
  // cheap), then write without holding any lock across file IO.
  std::vector<Entry> snapshot;
  for (const auto& ptr : shards_) {
    const Shard& shard = *ptr;
    ShardLock lock(shard);
    for (const Entry& entry : shard.entries) snapshot.push_back(entry);
  }
  for (const Entry& entry : snapshot) {
    fpm::PatternSetHeader header;
    header.min_support = entry.key.min_support;
    header.num_transactions = entry.num_transactions;
    header.source = EncodeSource(entry.key);
    const std::string path = dir + "/" + EntryFileName(entry.key);
    GOGREEN_RETURN_NOT_OK(
        fpm::WritePatternFile(*entry.patterns, header, path).status());
  }
  return Status::OK();
}

Status PatternStore::LoadFrom(const std::string& dir, size_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot read store directory " + dir + ": " +
                           ec.message());
  }
  for (const auto& dirent : it) {
    if (!dirent.is_regular_file() ||
        dirent.path().extension() != ".gpat") {
      continue;
    }
    auto loaded = fpm::ReadPatternFile(dirent.path().string());
    StoreKey key;
    if (!loaded.ok() ||
        !DecodeSource(loaded->second.source, loaded->second.min_support,
                      &key)) {
      GOGREEN_LOG(Warning) << "skipping unreadable pattern file "
                           << dirent.path().string()
                           << (loaded.ok()
                                   ? ""
                                   : ": " + loaded.status().ToString());
      if (skipped != nullptr) ++*skipped;
      continue;
    }
    Put(key, std::move(loaded->first), loaded->second.num_transactions);
  }
  return Status::OK();
}

}  // namespace gogreen::serve
