#include "serve/mining_service.h"

#include <chrono>
#include <utility>
#include <vector>

#include "core/compressor.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/run_context.h"
#include "util/status_codes.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::serve {

namespace {

/// Flushes the request into the serve.* counters. `serve.requests` and the
/// per-route counters count only completed (ok or partial) requests, so
/// the four route counters always sum to `serve.requests` exactly — the
/// reconciliation the request-log validator checks. Failures go to
/// `serve.errors` instead.
void RecordRoute(const ServeStats& stats, bool ok) {
  using obs::MetricRegistry;
  static obs::Counter* requests =
      MetricRegistry::Global().GetCounter("serve.requests");
  static obs::Counter* hits =
      MetricRegistry::Global().GetCounter("serve.cache_hits");
  static obs::Counter* filtered =
      MetricRegistry::Global().GetCounter("serve.filter_down");
  static obs::Counter* recycled =
      MetricRegistry::Global().GetCounter("serve.recycled");
  static obs::Counter* scratch =
      MetricRegistry::Global().GetCounter("serve.scratch");
  static obs::Counter* errors =
      MetricRegistry::Global().GetCounter("serve.errors");
  static obs::Histogram* seconds =
      MetricRegistry::Global().GetHistogram("serve.seconds");
  if (!ok) {
    errors->Add(1);
    return;
  }
  requests->Add(1);
  switch (stats.route) {
    case core::SeedRoute::kExact:
      hits->Add(1);
      break;
    case core::SeedRoute::kFilterDown:
      filtered->Add(1);
      break;
    case core::SeedRoute::kRecycle:
      recycled->Add(1);
      break;
    case core::SeedRoute::kNone:
      scratch->Add(1);
      break;
  }
  seconds->Observe(stats.seconds);
}

/// The serve-layer phase spans this request accumulated, from tracer
/// aggregate deltas. The envelope span (serve.request) is excluded; the
/// remaining serve.* spans are disjoint, so their sum approximates the
/// request's wall time from below.
std::vector<std::pair<std::string, double>> ServePhaseDeltas(
    const obs::Tracer::SpanSnapshot& before,
    const obs::Tracer::SpanSnapshot& after) {
  std::vector<std::pair<std::string, double>> phases;
  for (const auto& [name, seconds] :
       obs::Tracer::DeltaSeconds(before, after)) {
    if (name.rfind("serve.", 0) == 0 && name != "serve.request") {
      phases.emplace_back(name, seconds);
    }
  }
  return phases;
}

void RecordCoalesced() {
  static obs::Counter* coalesced =
      obs::MetricRegistry::Global().GetCounter("serve.coalesced");
  coalesced->Add(1);
}

/// Coalesce-key suffix classifying the request's governor: requests only
/// rendezvous within the same class, so an ungoverned request can never
/// adopt the partial result of a deadline- or budget-limited leader.
std::string GovernorClassOf(const RunContext* ctx) {
  if (ctx == nullptr) return "";
  std::string cls = "g";
  if (ctx->has_deadline()) cls += "d";
  if (ctx->memory_budget() > 0) cls += "m";
  return cls;
}

obs::RequestEvent BuildEvent(const obs::RequestContext& rctx,
                             const ServeStats& stats) {
  obs::RequestEvent event;
  event.request_id = rctx.request_id;
  event.dataset = rctx.dataset_id;
  event.min_support = rctx.min_support;
  event.fingerprint = rctx.constraint_fingerprint;
  event.route = core::SeedRouteName(stats.route);
  event.cache_hit = stats.route == core::SeedRoute::kExact;
  event.coalesced = stats.coalesced;
  event.seed_support = stats.seed_support;
  event.evictions = stats.evictions;
  event.image_evictions = stats.image_evictions;
  event.patterns = stats.patterns_returned;
  event.partial = stats.partial;
  event.frontier_support = stats.frontier_support;
  event.outcome = stats.outcome;
  event.seconds = stats.seconds;
  event.bytes_peak = stats.bytes_peak;
  event.threads = stats.threads;
  event.tenant = stats.tenant;
  event.queued_ms = stats.queued_ms;
  event.degraded = stats.degraded;
  event.shed = stats.shed;
  event.phases = stats.phases;
  return event;
}

}  // namespace

MiningService::MiningService(fpm::TransactionDb db, std::string dataset_id,
                             ServiceOptions options)
    : db_(std::move(db)),
      dataset_id_(std::move(dataset_id)),
      options_(options),
      store_(options.store) {}

Result<fpm::MineResult> MiningService::Mine(const fpm::MineRequest& request,
                                            ServeStats* stats_out) {
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t minsup,
                           request.EffectiveMinSupport());
  const bool constrained = request.constraints != nullptr &&
                           request.constraints->NumConstraints() > 0;
  const std::string fingerprint =
      constrained ? request.constraints->Fingerprint() : std::string();

  // Request identity, stamped before any routing so every span, metric
  // delta, and governor outcome below attributes to this id.
  obs::RequestContext rctx;
  rctx.request_id = obs::RequestLog::Global().NextRequestId();
  rctx.dataset_id = dataset_id_;
  rctx.constraint_fingerprint = fingerprint;
  rctx.min_support = minsup;

  // Ungoverned requests still get a context: it carries the request id
  // down the miner/compressor plumbing and collects the byte accounting
  // for the wide event, without arming any limit.
  RunContext local_ctx;
  RunContext* ctx =
      request.run_context != nullptr ? request.run_context : &local_ctx;
  ctx->SetRequestId(rctx.request_id);

  const obs::Tracer::SpanSnapshot spans_before =
      obs::Tracer::Global().AggregateSnapshot();
  const StoreStats store_before = store_.stats();
  ServeStats stats;
  stats.request_id = rctx.request_id;
  stats.tenant = request.tenant;
  stats.queued_ms = request.queued_ms;
  Timer total;
  Result<fpm::MineResult> outcome = [&]() -> Result<fpm::MineResult> {
    // Inner scope so the envelope span has closed (and flushed into the
    // aggregates) before the after-snapshot below.
    GOGREEN_TRACE_SPAN("serve.request");
    // One thread-override install up front; the per-stage sub-requests
    // inherit it (they run on this thread, where the override is visible).
    const ThreadPool::ScopedThreads scoped_threads(request.threads);
    stats.threads = ThreadPool::GlobalThreads();
    return MineCoalesced(minsup, request, fingerprint, ctx, &stats);
  }();
  stats.seconds = total.ElapsedSeconds();
  stats.phases = ServePhaseDeltas(spans_before,
                                  obs::Tracer::Global().AggregateSnapshot());
  const StoreStats store_after = store_.stats();
  stats.evictions = store_after.evictions - store_before.evictions;
  stats.image_evictions =
      store_after.image_evictions - store_before.image_evictions;
  stats.bytes_peak = ctx->bytes_peak();
  if (outcome.ok()) {
    stats.partial = outcome->partial;
    stats.frontier_support = outcome->frontier_support;
    stats.patterns_returned = outcome->patterns.size();
  }
  stats.outcome = OutcomeLabel(
      ClassifyOutcome(outcome.status(), stats.partial, stats.degraded,
                      stats.shed),
      outcome.status().code());
  RecordRoute(stats, outcome.ok());
  obs::RequestLog::Global().Record(BuildEvent(rctx, stats));
  if (stats_out != nullptr) *stats_out = stats;
  return outcome;
}

size_t MiningService::CoalesceWaitersForTest() const {
  MutexLock lock(inflight_mu_);
  size_t waiters = 0;
  for (const auto& [key, flight] : inflight_) {
    InFlight& f = *flight;
    MutexLock flight_lock(f.mu);
    waiters += f.waiters;
  }
  return waiters;
}

Result<fpm::MineResult> MiningService::MineCoalesced(
    uint64_t min_support, const fpm::MineRequest& request,
    const std::string& fingerprint, RunContext* ctx, ServeStats* stats) {
  // Fast path: an exact cached answer needs no rendezvous.
  {
    GOGREEN_TRACE_SPAN("serve.lookup");
    const StoreKey exact_key{dataset_id_, fingerprint, min_support};
    if (auto cached = store_.Get(exact_key); cached != nullptr) {
      fpm::MineResult result;
      result.patterns = *cached;
      result.frontier_support = min_support;
      stats->route = core::SeedRoute::kExact;
      stats->seed_support = min_support;
      return result;
    }
  }

  // The rendezvous key classifies the governor from the *caller's* context
  // (request.run_context; `ctx` may be the envelope's ungoverned local).
  const std::string key = fingerprint + "\n" + std::to_string(min_support) +
                          "\n" + GovernorClassOf(request.run_context);
  while (true) {
    std::shared_ptr<InFlight> flight;
    bool leader = false;
    {
      MutexLock lock(inflight_mu_);
      std::shared_ptr<InFlight>& slot = inflight_[key];
      if (slot == nullptr) {
        slot = std::make_shared<InFlight>();
        leader = true;
      }
      flight = slot;
    }

    if (leader) {
      if (leader_hold_for_test_) leader_hold_for_test_();
      Result<fpm::MineResult> outcome = [&]() -> Result<fpm::MineResult> {
        // Leader-failure seam: an injected error here kills the leader
        // (its caller sees the error) without touching the followers, who
        // elect a new leader.
        GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("coalesce.leader"));
        return MineRouted(min_support, request, fingerprint, ctx, stats);
      }();
      // Retire the flight before publishing: requests arriving from here
      // on start a fresh flight instead of adopting a finished one.
      {
        MutexLock lock(inflight_mu_);
        auto it = inflight_.find(key);
        if (it != inflight_.end() && it->second == flight) inflight_.erase(it);
      }
      {
        InFlight& f = *flight;
        MutexLock lock(f.mu);
        f.done = true;
        f.ok = outcome.ok();
        if (outcome.ok()) {
          f.result = *outcome;
        } else {
          f.status = outcome.status();
        }
        f.cv.NotifyAll();
      }
      return outcome;
    }

    // Follower: park on the leader, deadline-aware. The governed context's
    // wakeup hook covers cancellation and budget trips from other threads;
    // the timed wait covers the deadline itself (nobody polls the clock
    // for a parked thread). Lock order: RunContext wake mutex, then
    // flight->mu — so the wakeup is registered before flight->mu is taken
    // and cleared after it is released.
    bool leader_failed = false;
    bool adopted = false;
    fpm::MineResult result;
    {
      GOGREEN_TRACE_SPAN("serve.coalesce_wait");
      RunContext* governed = request.run_context;
      ScopedWakeup wakeup(governed, [flight] {
        MutexLock lock(flight->mu);
        flight->cv.NotifyAll();
      });
      InFlight& f = *flight;
      MutexLock lock(f.mu);
      ++f.waiters;
      while (!f.done && (governed == nullptr || !governed->stopped())) {
        if (governed != nullptr && governed->has_deadline()) {
          if (f.cv.WaitUntil(f.mu, governed->deadline()) ==
              std::cv_status::timeout) {
            // Trip the deadline ourselves — without holding flight->mu,
            // because the trip synchronously invokes the wakeup hook
            // above, which takes it.
            lock.Unlock();
            governed->PollNow();
            lock.Lock();
          }
        } else {
          f.cv.Wait(f.mu);
        }
      }
      --f.waiters;
      if (f.done) {
        if (f.ok) {
          adopted = true;
          result = f.result;
        } else {
          leader_failed = true;
        }
      }
      // Neither done nor failed: our own governor tripped while waiting —
      // fall through to mine with the tripped context below.
    }

    if (adopted) {
      stats->route = core::SeedRoute::kExact;
      stats->seed_support = min_support;
      stats->coalesced = true;
      RecordCoalesced();
      return result;
    }
    if (leader_failed) continue;  // Elect a new leader (maybe us).

    // The follower's own governor tripped. Mining with the already-tripped
    // context yields an immediate exact-at-frontier partial result through
    // the normal governed machinery — the follower's deadline fires even
    // though the leader is still mining.
    return MineRouted(min_support, request, fingerprint, ctx, stats);
  }
}

Result<fpm::MineResult> MiningService::MineRouted(
    uint64_t min_support, const fpm::MineRequest& request,
    const std::string& fingerprint, RunContext* ctx, ServeStats* stats) {
  // Exact hit on the (possibly constrained) key: no mining, no filtering.
  {
    GOGREEN_TRACE_SPAN("serve.lookup");
    const StoreKey exact_key{dataset_id_, fingerprint, min_support};
    if (auto cached = store_.Get(exact_key); cached != nullptr) {
      fpm::MineResult result;
      result.patterns = *cached;
      result.frontier_support = min_support;
      stats->route = core::SeedRoute::kExact;
      stats->seed_support = min_support;
      return result;
    }
  }

  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result,
                           MineSupportComplete(min_support, ctx, stats));
  if (request.constraints != nullptr &&
      request.constraints->NumConstraints() > 0) {
    GOGREEN_TRACE_SPAN("serve.constrain");
    result.patterns = request.constraints->Filter(result.patterns);
    // Cache the filtered set under its fingerprint for exact repeats; only
    // a complete-at-minsup set is a valid entry at this key.
    if (!result.partial) {
      store_.Put({dataset_id_, fingerprint, min_support}, result.patterns,
                 db_.NumTransactions());
    }
  }
  return result;
}

Result<fpm::MineResult> MiningService::MineSupportComplete(
    uint64_t min_support, RunContext* ctx, ServeStats* stats) {
  const StoreKey key{dataset_id_, "", min_support};
  {
    GOGREEN_TRACE_SPAN("serve.lookup");
    if (auto cached = store_.Get(key); cached != nullptr) {
      fpm::MineResult result;
      result.patterns = *cached;
      result.frontier_support = min_support;
      stats->route = core::SeedRoute::kExact;
      stats->seed_support = min_support;
      return result;
    }
  }

  const core::SeedChoice choice =
      core::SelectSeed(store_.Candidates(dataset_id_, ""), min_support);

  if (choice.route == core::SeedRoute::kFilterDown) {
    const StoreKey seed_key{dataset_id_, "", choice.min_support};
    if (auto seed = store_.Get(seed_key); seed != nullptr) {
      GOGREEN_TRACE_SPAN("serve.filter_down");
      fpm::MineResult result;
      result.patterns = seed->FilterBySupport(min_support);
      result.frontier_support = min_support;
      store_.Put(key, result.patterns, db_.NumTransactions());
      stats->route = core::SeedRoute::kFilterDown;
      stats->seed_support = choice.min_support;
      return result;
    }
    // Evicted between Candidates() and Get(): fall through to scratch.
  }

  if (choice.route == core::SeedRoute::kRecycle) {
    const StoreKey seed_key{dataset_id_, "", choice.min_support};
    Result<fpm::MineResult> recycled =
        MineRecycledFrom(seed_key, min_support, ctx, stats);
    if (recycled.ok() || stats->route == core::SeedRoute::kRecycle) {
      return recycled;
    }
    // Seed vanished under us: fall through to scratch.
  }

  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result,
                           MineScratch(min_support, ctx));
  stats->route = core::SeedRoute::kNone;
  stats->seed_support = 0;
  // A governed early stop still yields the exact set at the frontier; that
  // is what gets cached (and what the next relaxation recycles).
  {
    GOGREEN_TRACE_SPAN("serve.store_put");
    store_.Put({dataset_id_, "", result.frontier_support}, result.patterns,
               db_.NumTransactions());
  }
  return result;
}

Result<fpm::MineResult> MiningService::MineRecycledFrom(
    const StoreKey& seed_key, uint64_t min_support, RunContext* ctx,
    ServeStats* stats) {
  std::shared_ptr<const core::CompressedDb> cdb =
      store_.GetCompressed(seed_key);
  if (cdb == nullptr) {
    auto seed = store_.Get(seed_key);
    if (seed == nullptr) {
      // Evicted since selection; the caller falls back to scratch.
      return Status::NotFound("seed " + seed_key.ToString() + " evicted");
    }
    GOGREEN_TRACE_SPAN("serve.compress");
    Timer timer;
    core::CompressionStats cstats;
    core::CompressorOptions copts;
    copts.strategy = options_.strategy;
    copts.matcher = options_.matcher;
    copts.run_context = ctx;
    GOGREEN_ASSIGN_OR_RETURN(core::CompressedDb built,
                             core::CompressDatabase(db_, *seed, copts,
                                                    &cstats));
    stats->compress_seconds = timer.ElapsedSeconds();
    stats->compression_ratio = cstats.Ratio();
    cdb = std::make_shared<const core::CompressedDb>(std::move(built));
    store_.PutCompressed(seed_key, cdb);
  }
  // From here on the route is committed: errors below are mining errors,
  // not fall-back-to-scratch conditions.
  stats->route = core::SeedRoute::kRecycle;
  stats->seed_support = seed_key.min_support;
  GOGREEN_TRACE_SPAN("serve.recycle_mine");
  auto miner = core::CreateCompressedMiner(options_.algo);
  fpm::MineRequest subrequest = fpm::MineRequest::At(min_support);
  subrequest.run_context = ctx;
  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result,
                           miner->Mine(*cdb, subrequest));
  store_.Put({dataset_id_, "", result.frontier_support}, result.patterns,
             db_.NumTransactions());
  return result;
}

Result<fpm::MineResult> MiningService::MineScratch(uint64_t min_support,
                                                   RunContext* ctx) {
  GOGREEN_TRACE_SPAN("serve.scratch");
  auto miner = fpm::CreateMiner(options_.base_miner);
  fpm::MineRequest subrequest = fpm::MineRequest::At(min_support);
  subrequest.run_context = ctx;
  return miner->Mine(db_, subrequest);
}

}  // namespace gogreen::serve
