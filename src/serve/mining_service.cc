#include "serve/mining_service.h"

#include <utility>
#include <vector>

#include "core/compressor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::serve {

namespace {

void RecordRoute(const ServeStats& stats) {
  using obs::MetricRegistry;
  static obs::Counter* requests =
      MetricRegistry::Global().GetCounter("serve.requests");
  static obs::Counter* hits =
      MetricRegistry::Global().GetCounter("serve.cache_hits");
  static obs::Counter* filtered =
      MetricRegistry::Global().GetCounter("serve.filter_down");
  static obs::Counter* recycled =
      MetricRegistry::Global().GetCounter("serve.recycled");
  static obs::Counter* scratch =
      MetricRegistry::Global().GetCounter("serve.scratch");
  static obs::Histogram* seconds =
      MetricRegistry::Global().GetHistogram("serve.seconds");
  requests->Add(1);
  switch (stats.route) {
    case core::SeedRoute::kExact:
      hits->Add(1);
      break;
    case core::SeedRoute::kFilterDown:
      filtered->Add(1);
      break;
    case core::SeedRoute::kRecycle:
      recycled->Add(1);
      break;
    case core::SeedRoute::kNone:
      scratch->Add(1);
      break;
  }
  seconds->Observe(stats.seconds);
}

}  // namespace

MiningService::MiningService(fpm::TransactionDb db, std::string dataset_id,
                             ServiceOptions options)
    : db_(std::move(db)),
      dataset_id_(std::move(dataset_id)),
      options_(options),
      store_(options.store) {}

Result<fpm::MineResult> MiningService::Mine(const fpm::MineRequest& request) {
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t minsup,
                           request.EffectiveMinSupport());
  GOGREEN_TRACE_SPAN("serve.request");
  Timer total;
  // One install up front; the per-stage sub-requests inherit it (they run
  // on this thread, where the override is visible).
  const ThreadPool::ScopedThreads scoped_threads(request.threads);
  ServeStats stats;
  const bool constrained = request.constraints != nullptr &&
                           request.constraints->NumConstraints() > 0;
  const std::string fingerprint =
      constrained ? request.constraints->Fingerprint() : std::string();

  // Exact hit on the (possibly constrained) key: no mining, no filtering.
  const StoreKey exact_key{dataset_id_, fingerprint, minsup};
  if (auto cached = store_.Get(exact_key); cached != nullptr) {
    fpm::MineResult result;
    result.patterns = *cached;
    result.frontier_support = minsup;
    stats.route = core::SeedRoute::kExact;
    stats.seed_support = minsup;
    stats.patterns_returned = result.patterns.size();
    stats.seconds = total.ElapsedSeconds();
    RecordRoute(stats);
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_stats_ = stats;
    return result;
  }

  GOGREEN_ASSIGN_OR_RETURN(
      fpm::MineResult result,
      MineSupportComplete(minsup, request.run_context, &stats));
  if (constrained) {
    result.patterns = request.constraints->Filter(result.patterns);
    // Cache the filtered set under its fingerprint for exact repeats; only
    // a complete-at-minsup set is a valid entry at this key.
    if (!result.partial) {
      store_.Put({dataset_id_, fingerprint, minsup}, result.patterns,
                 db_.NumTransactions());
    }
  }
  stats.partial = result.partial;
  stats.patterns_returned = result.patterns.size();
  stats.seconds = total.ElapsedSeconds();
  RecordRoute(stats);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_stats_ = stats;
  }
  return result;
}

ServeStats MiningService::last_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_stats_;
}

Result<fpm::MineResult> MiningService::MineSupportComplete(
    uint64_t min_support, RunContext* ctx, ServeStats* stats) {
  const StoreKey key{dataset_id_, "", min_support};
  if (auto cached = store_.Get(key); cached != nullptr) {
    fpm::MineResult result;
    result.patterns = *cached;
    result.frontier_support = min_support;
    stats->route = core::SeedRoute::kExact;
    stats->seed_support = min_support;
    return result;
  }

  const core::SeedChoice choice =
      core::SelectSeed(store_.Candidates(dataset_id_, ""), min_support);

  if (choice.route == core::SeedRoute::kFilterDown) {
    const StoreKey seed_key{dataset_id_, "", choice.min_support};
    if (auto seed = store_.Get(seed_key); seed != nullptr) {
      GOGREEN_TRACE_SPAN("serve.filter_down");
      fpm::MineResult result;
      result.patterns = seed->FilterBySupport(min_support);
      result.frontier_support = min_support;
      store_.Put(key, result.patterns, db_.NumTransactions());
      stats->route = core::SeedRoute::kFilterDown;
      stats->seed_support = choice.min_support;
      return result;
    }
    // Evicted between Candidates() and Get(): fall through to scratch.
  }

  if (choice.route == core::SeedRoute::kRecycle) {
    const StoreKey seed_key{dataset_id_, "", choice.min_support};
    Result<fpm::MineResult> recycled =
        MineRecycledFrom(seed_key, min_support, ctx, stats);
    if (recycled.ok() || stats->route == core::SeedRoute::kRecycle) {
      return recycled;
    }
    // Seed vanished under us: fall through to scratch.
  }

  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result,
                           MineScratch(min_support, ctx));
  stats->route = core::SeedRoute::kNone;
  stats->seed_support = 0;
  // A governed early stop still yields the exact set at the frontier; that
  // is what gets cached (and what the next relaxation recycles).
  store_.Put({dataset_id_, "", result.frontier_support}, result.patterns,
             db_.NumTransactions());
  return result;
}

Result<fpm::MineResult> MiningService::MineRecycledFrom(
    const StoreKey& seed_key, uint64_t min_support, RunContext* ctx,
    ServeStats* stats) {
  std::shared_ptr<const core::CompressedDb> cdb =
      store_.GetCompressed(seed_key);
  if (cdb == nullptr) {
    auto seed = store_.Get(seed_key);
    if (seed == nullptr) {
      // Evicted since selection; the caller falls back to scratch.
      return Status::NotFound("seed " + seed_key.ToString() + " evicted");
    }
    GOGREEN_TRACE_SPAN("serve.compress");
    Timer timer;
    core::CompressionStats cstats;
    core::CompressorOptions copts;
    copts.strategy = options_.strategy;
    copts.matcher = options_.matcher;
    copts.run_context = ctx;
    GOGREEN_ASSIGN_OR_RETURN(core::CompressedDb built,
                             core::CompressDatabase(db_, *seed, copts,
                                                    &cstats));
    stats->compress_seconds = timer.ElapsedSeconds();
    stats->compression_ratio = cstats.Ratio();
    cdb = std::make_shared<const core::CompressedDb>(std::move(built));
    store_.PutCompressed(seed_key, cdb);
  }
  // From here on the route is committed: errors below are mining errors,
  // not fall-back-to-scratch conditions.
  stats->route = core::SeedRoute::kRecycle;
  stats->seed_support = seed_key.min_support;
  GOGREEN_TRACE_SPAN("serve.recycle_mine");
  auto miner = core::CreateCompressedMiner(options_.algo);
  fpm::MineRequest subrequest = fpm::MineRequest::At(min_support);
  subrequest.run_context = ctx;
  GOGREEN_ASSIGN_OR_RETURN(fpm::MineResult result,
                           miner->Mine(*cdb, subrequest));
  store_.Put({dataset_id_, "", result.frontier_support}, result.patterns,
             db_.NumTransactions());
  return result;
}

Result<fpm::MineResult> MiningService::MineScratch(uint64_t min_support,
                                                   RunContext* ctx) {
  GOGREEN_TRACE_SPAN("serve.scratch");
  auto miner = fpm::CreateMiner(options_.base_miner);
  fpm::MineRequest subrequest = fpm::MineRequest::At(min_support);
  subrequest.run_context = ctx;
  return miner->Mine(db_, subrequest);
}

}  // namespace gogreen::serve
