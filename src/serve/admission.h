// Admission control in front of MiningService::Mine: the overload armor
// for the serving layer (DESIGN.md §14).
//
// Every incoming MineRequest passes four gates before it may mine:
//
//   1. Cheap-route bypass — a request the store can answer without mining
//      (exact hit or filter-down seed) skips quotas and the queue
//      entirely, so a burst of expensive scratch mines can never starve
//      cache hits.
//   2. Circuit breaker — per (fingerprint, support) key. After
//      `breaker_threshold` consecutive mine failures the key opens for
//      `breaker_cooldown_ms`: requests for it are short-circuited into a
//      degraded serve (or a typed shed) without burning a slot. After the
//      cool-down one half-open probe mines for real; success closes the
//      breaker, failure re-opens it.
//   3. Per-tenant token bucket — `qps` sustained admissions with `burst`
//      headroom per tenant id. A tenant over quota is degraded/shed
//      without touching the shared queue, so one tenant's burst cannot
//      reject another tenant's in-quota traffic. Tenant quotas also map
//      onto per-request RunContext sub-budgets (deadline and byte-budget
//      clamps applied at dispatch).
//   4. Bounded deadline-aware wait queue — at most `max_concurrent`
//      requests mine at once; at most `max_queue` wait behind them, FIFO.
//      A request whose *projected* queue wait (Geerts et al. candidate-
//      bound cost estimate × an EWMA of observed seconds-per-unit) already
//      exceeds its RunContext deadline is rejected immediately with a
//      typed ResourceExhausted carrying a retry-after hint, instead of
//      timing out in the queue after burning a slot.
//
// Graceful degradation: when `degrade` is set, a request that would be
// shed (queue full, over quota, breaker open, deadline unmeetable) is
// first offered a stale answer from the PatternStore — an exact or
// filtered-down entry when one appears mid-flight, else the closest
// frontier entry above the target support — returned as an explicitly
// flagged `degraded` response (ServeStats::degraded, wide-event
// `degraded`, outcome "degraded"). Only when no stale entry exists does
// the request shed: a `ResourceExhausted` status whose message carries
// "retry-after-ms=<n>" (also in ServeStats::retry_after_ms), outcome
// "shed".
//
// Every request terminates with exactly one typed outcome — ok, partial,
// degraded, shed, or error — and exactly one wide event. The counters
// reconcile exactly: serve.admitted (ok|partial|degraded) + serve.shed +
// serve.errors == requests issued; tests/serve_chaos_test.cc proves it
// under randomized failpoint schedules.

#ifndef GOGREEN_SERVE_ADMISSION_H_
#define GOGREEN_SERVE_ADMISSION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "fpm/miner.h"
#include "serve/mining_service.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace gogreen::serve {

/// Resource envelope of one tenant. The zero value means "unlimited": no
/// rate limit, no sub-budget clamps.
struct TenantQuota {
  /// Sustained admissions per second through the token bucket; 0 disables
  /// rate limiting for the tenant.
  double qps = 0.0;
  /// Bucket capacity (burst headroom). <= 0 defaults to max(1, qps).
  double burst = 0.0;
  /// Clamp on the per-request deadline: a dispatched request never runs
  /// longer than this, even if its own RunContext allows more (a missing
  /// governor gets one). 0 = no clamp.
  uint64_t max_deadline_ms = 0;
  /// Clamp on the per-request mining byte budget. 0 = no clamp.
  size_t max_bytes = 0;
};

struct AdmissionOptions {
  /// Requests mining at once; arrivals beyond this wait in the queue.
  size_t max_concurrent = 4;
  /// Requests waiting behind the active set; arrivals beyond this shed.
  size_t max_queue = 16;
  /// Quota applied to tenants without an explicit SetTenantQuota entry.
  /// Unlimited by default.
  TenantQuota default_quota;
  /// Consecutive mine failures of one (fingerprint, support) key that
  /// open its circuit breaker.
  int breaker_threshold = 3;
  /// How long an open breaker short-circuits before the half-open probe.
  uint64_t breaker_cooldown_ms = 1000;
  /// Serve stale/frontier store entries (flagged degraded) instead of
  /// shedding when one exists.
  bool degrade = true;
};

/// Thread-safe admission layer wrapping one MiningService. See the file
/// comment for the gate order and the degradation model.
class AdmissionController {
 public:
  explicit AdmissionController(MiningService& service,
                               AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Installs (or replaces) `tenant`'s quota. Safe concurrently with
  /// Mine(); the bucket's accumulated tokens are reset.
  void SetTenantQuota(const std::string& tenant, const TenantQuota& quota);

  /// Admits, queues, degrades, or sheds one request; see the file comment.
  /// Shed requests return ResourceExhausted with "retry-after-ms=<n>" in
  /// the message; degraded serves return ok with stats->degraded set (and
  /// partial/frontier_support describing the staleness). `stats` is always
  /// filled when non-null.
  Result<fpm::MineResult> Mine(const fpm::MineRequest& request,
                               ServeStats* stats = nullptr);

  MiningService& service() { return service_; }
  const AdmissionOptions& options() const { return options_; }

  // --- Test seams (set before traffic starts). ---

  /// Overrides the EWMA of observed mine seconds per cost unit, so tests
  /// exercise the projected-wait rejection deterministically.
  void SeedCostEstimateForTest(double seconds_per_unit);
  /// Requests currently parked in the wait queue.
  size_t QueueDepthForTest() const;
  /// Whether the (fingerprint, support) breaker is currently open.
  bool BreakerOpenForTest(const std::string& fingerprint,
                          uint64_t min_support) const;
  /// The admission-time cost estimate (Geerts et al. candidate-bound
  /// units) for a support-only query at `min_support`.
  double CostUnitsForTest(uint64_t min_support) const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Token-bucket state of one tenant. Starts full on first touch and
  /// refills lazily on access.
  struct Bucket {
    TenantQuota quota;
    bool quota_set = false;  ///< SetTenantQuota installed `quota`; false
                             ///< falls back to options_.default_quota.
    double tokens = 0.0;
    Clock::time_point last{};  ///< Epoch value = untouched (prime full).
  };

  /// Per-(fingerprint, support) circuit-breaker state.
  struct Breaker {
    int consecutive_failures = 0;
    bool open = false;
    bool probe_inflight = false;  ///< Half-open: one probe mining now.
    Clock::time_point open_until{};
  };

  /// Context carried across the gates of one request.
  struct Gate {
    uint64_t min_support = 0;
    std::string fingerprint;
    std::string breaker_key;
    double cost_units = 1.0;
    uint64_t queued_ms = 0;
    bool probe = false;  ///< This request is a half-open breaker probe.
    Timer timer;         ///< Started at Mine() entry; stamps shed/degraded
                         ///< event seconds.
  };

  Result<fpm::MineResult> Dispatch(const fpm::MineRequest& request,
                                   const Gate& gate, ServeStats* stats_out);
  Result<fpm::MineResult> DegradeOrShed(const fpm::MineRequest& request,
                                        const Gate& gate,
                                        const std::string& reason,
                                        uint64_t retry_after_ms,
                                        ServeStats* stats_out);
  /// Serves a stale/frontier store entry as a degraded response. Sets
  /// `*served`; on false the return value is a placeholder error the
  /// caller must ignore (Result has no empty state).
  Result<fpm::MineResult> TryServeDegraded(const fpm::MineRequest& request,
                                           const Gate& gate, bool* served,
                                           ServeStats* stats_out);
  Result<fpm::MineResult> Shed(const Gate& gate, const std::string& tenant,
                               const std::string& reason,
                               uint64_t retry_after_ms,
                               ServeStats* stats_out);

  /// True when the store can answer without mining (exact hit or
  /// filter-down seed): such requests bypass quota and queue.
  bool CheapRouteAvailable(const Gate& gate) const;

  /// Takes one token from `tenant`'s bucket. On denial returns false and
  /// sets `*retry_after_ms` to the refill time of the missing fraction.
  bool TakeTokenLocked(const std::string& tenant, Clock::time_point now,
                       uint64_t* retry_after_ms) REQUIRES(mu_);
  TenantQuota QuotaForLocked(const std::string& tenant) const REQUIRES(mu_);

  /// Projected wait (ms) before a new arrival would start: pending work
  /// ahead of it (queued + active cost units) divided by the slot count,
  /// scaled by the observed seconds-per-unit EWMA.
  uint64_t ProjectedWaitMsLocked() const REQUIRES(mu_);
  void ObserveMineSecondsLocked(double seconds, double cost_units)
      REQUIRES(mu_);

  void OnMineSuccess(const Gate& gate, double seconds);
  void OnMineFailure(const Gate& gate);
  void ReleaseSlot(double cost_units);

  /// Emits the wide event for a request the service never saw (shed,
  /// degraded, or admission-injected error) and fills `stats_out`.
  void EmitAdmissionEvent(const Gate& gate, ServeStats stats,
                          ServeStats* stats_out);

  /// Admission-time cost estimate: Geerts–Goethals–Van den Bussche tight
  /// candidate-count bound for the number of frequent items at
  /// `min_support`, compressed to log scale.
  double CostUnits(uint64_t min_support) const;

  MiningService& service_;
  const AdmissionOptions options_;

  /// Item supports sorted ascending, precomputed once from the service
  /// database; the frequent-item count at any support is one binary
  /// search. Immutable after construction.
  std::vector<uint64_t> item_supports_;

  /// One lock for every admission gate. Lock order (DESIGN.md §15): mu_
  /// is taken after the RunContext wake mutex on the trip path (ScopedWakeup
  /// hook) and never the reverse; it is never held across a dispatch into
  /// the service (so it never nests with inflight_mu_ or a shard lock).
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<uint64_t> fifo_ GUARDED_BY(mu_);  ///< Waiting tickets, FIFO.
  uint64_t next_ticket_ GUARDED_BY(mu_) = 1;
  size_t active_ GUARDED_BY(mu_) = 0;  ///< Requests currently dispatched.
  double queued_cost_ GUARDED_BY(mu_) = 0.0;  ///< Cost waiting in fifo_.
  double active_cost_ GUARDED_BY(mu_) = 0.0;  ///< Cost currently mining.
  /// EWMA of observed mine seconds per cost unit (0 = no history yet:
  /// projected waits are 0 and everything admits).
  double ewma_seconds_per_unit_ GUARDED_BY(mu_) = 0.0;
  std::unordered_map<std::string, Bucket> buckets_ GUARDED_BY(mu_);
  std::unordered_map<std::string, Breaker> breakers_ GUARDED_BY(mu_);
};

}  // namespace gogreen::serve

#endif  // GOGREEN_SERVE_ADMISSION_H_
