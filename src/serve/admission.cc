#include "serve/admission.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/request_log.h"
#include "util/failpoint.h"
#include "util/run_context.h"
#include "util/status_codes.h"

namespace gogreen::serve {

namespace {

// --- Geerts–Goethals–Van den Bussche candidate-count bound. ---
//
// With n frequent items, the number of candidate itemsets Apriori-style
// level-wise mining can ever generate is bounded tightly by iterating the
// Kruskal–Katona-shaped recurrence: if m sets are frequent at level k, at
// most C(a_k, k+1) + C(a_{k-1}, k) + ... are candidates at level k+1,
// where m = C(a_k, k) + C(a_{k-1}, k-1) + ... is the largest-binomial
// (k-canonical) representation of m. Summing levels from n items down
// gives a cheap admission-time proxy for the worst-case work of a mine —
// exactly the bound the paper's related work uses to cost level-wise
// passes. All arithmetic saturates at kSaturated: beyond that scale the
// estimate is "huge" and precision is irrelevant.

constexpr uint64_t kSaturated = uint64_t{1} << 62;

uint64_t SatAdd(uint64_t a, uint64_t b) {
  const uint64_t sum = a + b;  // a, b <= kSaturated: no uint64 overflow.
  return sum >= kSaturated ? kSaturated : sum;
}

/// C(n, k), saturating at kSaturated.
uint64_t Binomial(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    const uint64_t factor = n - k + i;
    if (result > kSaturated / factor) return kSaturated;
    // Product of i consecutive integers is divisible by i!: exact.
    result = result * factor / i;
  }
  return std::min(result, kSaturated);
}

/// Largest a with C(a, k) <= m, for m >= 1 and k >= 2 (k == 1 is a == m,
/// special-cased by the caller to avoid a linear search).
uint64_t LargestBinomialBase(uint64_t m, uint64_t k) {
  uint64_t lo = k;  // C(k, k) == 1 <= m.
  uint64_t hi = k + 1;
  while (Binomial(hi, k) <= m) {
    lo = hi;
    if (hi > (uint64_t{1} << 33)) break;  // C(2^33, 2) already saturates.
    hi *= 2;
  }
  while (lo + 1 < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (Binomial(mid, k) <= m) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// The bound on level-(k+1) candidates given m frequent sets at level k.
uint64_t NextLevelBound(uint64_t m, uint64_t k) {
  if (m >= kSaturated) return kSaturated;
  uint64_t bound = 0;
  uint64_t level = k;
  uint64_t rest = m;
  while (rest > 0 && level >= 1) {
    const uint64_t a = level == 1 ? rest : LargestBinomialBase(rest, level);
    bound = SatAdd(bound, Binomial(a, level + 1));
    rest -= Binomial(a, level);
    if (level == 1) break;
    --level;
  }
  return bound;
}

/// Total candidates across all levels starting from n frequent items.
uint64_t TotalCandidateBound(uint64_t n) {
  uint64_t total = n;
  uint64_t m = n;
  for (uint64_t k = 1; m > 0 && k < 64; ++k) {
    m = NextLevelBound(m, k);
    total = SatAdd(total, m);
    if (total >= kSaturated) return kSaturated;
  }
  return total;
}

uint64_t CeilMillis(std::chrono::steady_clock::duration d) {
  if (d <= std::chrono::steady_clock::duration::zero()) return 0;
  return static_cast<uint64_t>(
      std::chrono::ceil<std::chrono::milliseconds>(d).count());
}

obs::Counter* AdmittedCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Global().GetCounter("serve.admitted");
  return c;
}

obs::Counter* ShedCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Global().GetCounter("serve.shed");
  return c;
}

obs::Counter* DegradedCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Global().GetCounter("serve.degraded");
  return c;
}

obs::Counter* BreakerOpenCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Global().GetCounter("serve.breaker_open");
  return c;
}

obs::Counter* ErrorsCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Global().GetCounter("serve.errors");
  return c;
}

obs::Histogram* QueueWaitHistogram() {
  static obs::Histogram* h =
      obs::MetricRegistry::Global().GetHistogram("serve.queue_wait");
  return h;
}

}  // namespace

AdmissionController::AdmissionController(MiningService& service,
                                         AdmissionOptions options)
    : service_(service), options_(options) {
  item_supports_ = service_.db().CountItemSupports();
  std::sort(item_supports_.begin(), item_supports_.end());
}

void AdmissionController::SetTenantQuota(const std::string& tenant,
                                         const TenantQuota& quota) {
  MutexLock lock(mu_);
  Bucket& bucket = buckets_[tenant];
  bucket.quota = quota;
  bucket.quota_set = true;
  bucket.tokens = 0.0;
  bucket.last = Clock::time_point{};  // Re-primes full on next touch.
}

Result<fpm::MineResult> AdmissionController::Mine(
    const fpm::MineRequest& request, ServeStats* stats_out) {
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t minsup,
                           request.EffectiveMinSupport());
  const bool constrained = request.constraints != nullptr &&
                           request.constraints->NumConstraints() > 0;
  Gate gate;
  gate.min_support = minsup;
  gate.fingerprint =
      constrained ? request.constraints->Fingerprint() : std::string();
  gate.breaker_key = gate.fingerprint + "\n" + std::to_string(minsup);
  gate.cost_units = CostUnits(minsup);

  // Gate 1: a request the store already answers (exact hit, filter-down
  // seed) costs no mining — serve it outside quota and queue so cache hits
  // never starve behind a burst of scratch mines.
  if (CheapRouteAvailable(gate)) {
    return Dispatch(request, gate, stats_out);
  }

  // Gate 2: circuit breaker for this (fingerprint, support) key. The
  // breaker decision is computed under mu_ and acted on after release, so
  // DegradeOrShed (which re-enters the store) never runs with mu_ held.
  {
    bool breaker_open = false;
    uint64_t retry_after_ms = 1;
    {
      MutexLock lock(mu_);
      auto it = breakers_.find(gate.breaker_key);
      if (it != breakers_.end() && it->second.open) {
        const Clock::time_point now = Clock::now();
        if (!it->second.probe_inflight && now >= it->second.open_until) {
          it->second.probe_inflight = true;
          gate.probe = true;
        } else {
          breaker_open = true;
          retry_after_ms =
              std::max<uint64_t>(1, CeilMillis(it->second.open_until - now));
        }
      }
    }
    if (breaker_open) {
      return DegradeOrShed(request, gate, "circuit breaker open",
                           retry_after_ms, stats_out);
    }
  }
  if (gate.probe) {
    // Half-open probe: dispatch directly. One probe per cool-down is the
    // breaker's own bounded traffic; skipping quota and queue means a shed
    // can never leave the breaker stuck half-open.
    return Dispatch(request, gate, stats_out);
  }

  // Gate 3: per-tenant token bucket.
  {
    uint64_t retry_after_ms = 1;
    bool denied = false;
    std::string reason;
    {
      MutexLock lock(mu_);
      if (!failpoint::MaybeFail("admission.quota").ok()) {
        denied = true;
        reason = "tenant quota failure injected";
      } else if (!TakeTokenLocked(request.tenant, Clock::now(),
                                  &retry_after_ms)) {
        denied = true;
        reason = "tenant \"" + request.tenant + "\" over quota";
      }
    }
    if (denied) {
      return DegradeOrShed(request, gate, reason, retry_after_ms, stats_out);
    }
  }

  // Gate 4: bounded deadline-aware wait queue in front of the mining slots.
  bool dispatched = false;
  std::string shed_reason;
  uint64_t shed_retry_ms = 0;
  Timer queue_timer;
  {
    RunContext* governed = request.run_context;
    // Registered before mu_ is taken, cleared after it is released: the
    // trip path locks the RunContext wake mutex then mu_, never the
    // reverse.
    ScopedWakeup wakeup(governed, [this] {
      MutexLock lock(mu_);
      cv_.NotifyAll();
    });
    MutexLock lock(mu_);
    if (!failpoint::MaybeFail("admission.queue").ok()) {
      shed_reason = "admission queue failure injected";
      shed_retry_ms = std::max<uint64_t>(1, ProjectedWaitMsLocked());
    } else if (active_ >= options_.max_concurrent &&
               fifo_.size() >= options_.max_queue) {
      shed_reason = "admission queue full";
      shed_retry_ms = std::max<uint64_t>(1, ProjectedWaitMsLocked());
    } else if (governed != nullptr && governed->has_deadline()) {
      const uint64_t projected_ms = ProjectedWaitMsLocked();
      const uint64_t remaining_ms =
          CeilMillis(governed->deadline() - Clock::now());
      if (projected_ms > remaining_ms) {
        shed_reason = "projected queue wait " + std::to_string(projected_ms) +
                      "ms exceeds deadline";
        shed_retry_ms = projected_ms;
      }
    }
    if (shed_reason.empty()) {
      const uint64_t ticket = next_ticket_++;
      fifo_.push_back(ticket);
      queued_cost_ += gate.cost_units;
      while (true) {
        if (fifo_.front() == ticket && active_ < options_.max_concurrent) {
          dispatched = true;
          break;
        }
        if (governed != nullptr && governed->stopped()) break;
        if (governed != nullptr && governed->has_deadline()) {
          // Compare the clock directly rather than PollNow(): tripping the
          // context here would invoke the wakeup hook above on this thread
          // while mu_ is held.
          if (Clock::now() >= governed->deadline()) break;
          cv_.WaitUntil(mu_, governed->deadline());
        } else {
          cv_.Wait(mu_);
        }
      }
      for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
        if (*it == ticket) {
          fifo_.erase(it);
          break;
        }
      }
      queued_cost_ -= gate.cost_units;
      if (queued_cost_ < 0) queued_cost_ = 0;
      if (dispatched) {
        ++active_;
        active_cost_ += gate.cost_units;
      }
      // We left the queue front (dispatched or abandoned): whoever is next
      // must re-check.
      cv_.NotifyAll();
      if (!dispatched) {
        shed_reason = governed != nullptr && governed->stopped()
                          ? "cancelled while queued"
                          : "deadline expired while queued";
        shed_retry_ms = std::max<uint64_t>(1, ProjectedWaitMsLocked());
      }
    }
  }
  gate.queued_ms = static_cast<uint64_t>(queue_timer.ElapsedMillis());
  if (!dispatched) {
    return DegradeOrShed(request, gate, shed_reason, shed_retry_ms,
                         stats_out);
  }
  QueueWaitHistogram()->Observe(queue_timer.ElapsedSeconds());
  Result<fpm::MineResult> outcome = Dispatch(request, gate, stats_out);
  ReleaseSlot(gate.cost_units);
  return outcome;
}

Result<fpm::MineResult> AdmissionController::Dispatch(
    const fpm::MineRequest& request, const Gate& gate,
    ServeStats* stats_out) {
  // Injected dispatch failure: the mine "fails" before the service sees
  // it, feeding the breaker exactly like a real mining error would.
  const Status inject = failpoint::MaybeFail("breaker.trip");
  if (!inject.ok()) {
    OnMineFailure(gate);
    ServeStats stats;
    stats.route = core::SeedRoute::kNone;
    stats.tenant = request.tenant;
    stats.queued_ms = gate.queued_ms;
    stats.seconds = gate.timer.ElapsedSeconds();
    stats.outcome = OutcomeLabel(Outcome::kError, inject.code());
    ErrorsCounter()->Add(1);
    EmitAdmissionEvent(gate, std::move(stats), stats_out);
    return inject;
  }

  fpm::MineRequest forward = request;
  forward.queued_ms = gate.queued_ms;

  // Map the tenant's quota onto per-request sub-budgets: the dispatched
  // mine never outlives max_deadline_ms or out-allocates max_bytes, even
  // when the caller's own governor allows more (an ungoverned request
  // gets a governor here).
  TenantQuota quota;
  {
    MutexLock lock(mu_);
    quota = QuotaForLocked(request.tenant);
  }
  RunContext local_ctx;
  if (quota.max_deadline_ms > 0 || quota.max_bytes > 0) {
    RunContext* ctx =
        request.run_context != nullptr ? request.run_context : &local_ctx;
    if (quota.max_deadline_ms > 0) {
      const Clock::time_point cap =
          Clock::now() + std::chrono::milliseconds(quota.max_deadline_ms);
      if (!ctx->has_deadline() || ctx->deadline() > cap) {
        ctx->SetDeadline(cap);
      }
    }
    if (quota.max_bytes > 0 && (ctx->memory_budget() == 0 ||
                                ctx->memory_budget() > quota.max_bytes)) {
      ctx->SetMemoryBudget(quota.max_bytes);
    }
    forward.run_context = ctx;
  }

  ServeStats stats;
  Result<fpm::MineResult> outcome = service_.Mine(forward, &stats);
  if (outcome.ok()) {
    OnMineSuccess(gate, stats.seconds);
    AdmittedCounter()->Add(1);
  } else {
    OnMineFailure(gate);
  }
  if (stats_out != nullptr) *stats_out = stats;
  return outcome;
}

Result<fpm::MineResult> AdmissionController::DegradeOrShed(
    const fpm::MineRequest& request, const Gate& gate,
    const std::string& reason, uint64_t retry_after_ms,
    ServeStats* stats_out) {
  if (options_.degrade) {
    bool served = false;
    Result<fpm::MineResult> degraded =
        TryServeDegraded(request, gate, &served, stats_out);
    if (served) return degraded;
  }
  return Shed(gate, request.tenant, reason, retry_after_ms, stats_out);
}

Result<fpm::MineResult> AdmissionController::TryServeDegraded(
    const fpm::MineRequest& request, const Gate& gate, bool* served,
    ServeStats* stats_out) {
  *served = false;
  PatternStore& store = service_.store();
  const std::string& dataset = service_.dataset_id();

  fpm::PatternSet patterns;
  uint64_t seed_support = gate.min_support;
  bool partial = false;
  bool found = false;

  // An exact answer that appeared mid-flight (e.g. a concurrent mine
  // finished while this request was being rejected).
  if (auto cached = store.Get({dataset, gate.fingerprint, gate.min_support});
      cached != nullptr) {
    patterns = *cached;
    found = true;
  } else {
    // Support-only shelf: a source at-or-below the target filters down to
    // the exact answer; failing that, the closest frontier entry above the
    // target is the stale-but-flagged serve.
    uint64_t below = 0;
    uint64_t above = std::numeric_limits<uint64_t>::max();
    for (const core::SeedCandidate& cand : store.Candidates(dataset, "")) {
      if (cand.min_support <= gate.min_support) {
        below = std::max(below, cand.min_support);
      } else {
        above = std::min(above, cand.min_support);
      }
    }
    if (below > 0) {
      if (auto seed = store.Get({dataset, "", below}); seed != nullptr) {
        patterns = seed->FilterBySupport(gate.min_support);
        seed_support = below;
        found = true;
      }
    }
    if (!found && above != std::numeric_limits<uint64_t>::max()) {
      if (auto seed = store.Get({dataset, "", above}); seed != nullptr) {
        patterns = *seed;
        seed_support = above;
        partial = true;
        found = true;
      }
    }
    if (found && request.constraints != nullptr &&
        request.constraints->NumConstraints() > 0) {
      patterns = request.constraints->Filter(patterns);
    }
  }
  if (!found) return Status::NotFound("no degradable store entry");

  ServeStats stats;
  stats.route = core::SeedRoute::kExact;
  stats.seed_support = seed_support;
  stats.tenant = request.tenant;
  stats.queued_ms = gate.queued_ms;
  stats.degraded = true;
  stats.partial = partial;
  stats.frontier_support = partial ? seed_support : gate.min_support;
  stats.patterns_returned = patterns.size();
  stats.outcome = OutcomeLabel(Outcome::kDegraded);
  stats.seconds = gate.timer.ElapsedSeconds();

  fpm::MineResult result;
  result.partial = partial;
  result.frontier_support = stats.frontier_support;
  if (partial) {
    result.stop_status = Status::ResourceExhausted(
        "degraded serve: complete only at support " +
        std::to_string(seed_support));
  }
  result.patterns = std::move(patterns);

  DegradedCounter()->Add(1);
  AdmittedCounter()->Add(1);
  EmitAdmissionEvent(gate, std::move(stats), stats_out);
  *served = true;
  return result;
}

Result<fpm::MineResult> AdmissionController::Shed(
    const Gate& gate, const std::string& tenant, const std::string& reason,
    uint64_t retry_after_ms, ServeStats* stats_out) {
  if (retry_after_ms == 0) retry_after_ms = 1;
  ServeStats stats;
  stats.route = core::SeedRoute::kNone;
  stats.tenant = tenant;
  stats.queued_ms = gate.queued_ms;
  stats.shed = true;
  stats.retry_after_ms = retry_after_ms;
  stats.outcome = OutcomeLabel(Outcome::kShed);
  stats.seconds = gate.timer.ElapsedSeconds();
  ShedCounter()->Add(1);
  EmitAdmissionEvent(gate, std::move(stats), stats_out);
  return Status::ResourceExhausted(
      reason + "; retry-after-ms=" + std::to_string(retry_after_ms));
}

bool AdmissionController::CheapRouteAvailable(const Gate& gate) const {
  PatternStore& store = service_.store();
  const std::string& dataset = service_.dataset_id();
  if (store.Get({dataset, gate.fingerprint, gate.min_support}) != nullptr) {
    return true;
  }
  // A support-only exact or filter-down seed answers constrained requests
  // too (post-filtering is linear). The store can evict between this check
  // and the dispatch — then the "cheap" request mines for real, which is
  // rare and merely optimistic, never incorrect.
  const core::SeedChoice choice =
      core::SelectSeed(store.Candidates(dataset, ""), gate.min_support);
  return choice.route == core::SeedRoute::kExact ||
         choice.route == core::SeedRoute::kFilterDown;
}

bool AdmissionController::TakeTokenLocked(const std::string& tenant,
                                          Clock::time_point now,
                                          uint64_t* retry_after_ms) {
  Bucket& bucket = buckets_[tenant];
  const TenantQuota& quota =
      bucket.quota_set ? bucket.quota : options_.default_quota;
  if (quota.qps <= 0.0) return true;  // Unlimited tenant.
  const double burst =
      quota.burst > 0.0 ? quota.burst : std::max(1.0, quota.qps);
  if (bucket.last == Clock::time_point{}) {
    bucket.tokens = burst;
  } else {
    const double dt =
        std::chrono::duration<double>(now - bucket.last).count();
    bucket.tokens = std::min(burst, bucket.tokens + dt * quota.qps);
  }
  bucket.last = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  *retry_after_ms = static_cast<uint64_t>(
      std::ceil((1.0 - bucket.tokens) / quota.qps * 1000.0));
  if (*retry_after_ms == 0) *retry_after_ms = 1;
  return false;
}

TenantQuota AdmissionController::QuotaForLocked(
    const std::string& tenant) const {
  const auto it = buckets_.find(tenant);
  if (it != buckets_.end() && it->second.quota_set) return it->second.quota;
  return options_.default_quota;
}

uint64_t AdmissionController::ProjectedWaitMsLocked() const {
  if (ewma_seconds_per_unit_ <= 0.0) return 0;  // No history: optimistic.
  const double pending = queued_cost_ + active_cost_;
  const double slots =
      static_cast<double>(std::max<size_t>(1, options_.max_concurrent));
  return static_cast<uint64_t>(pending * ewma_seconds_per_unit_ / slots *
                               1000.0);
}

void AdmissionController::ObserveMineSecondsLocked(double seconds,
                                                   double cost_units) {
  const double per_unit = seconds / std::max(cost_units, 1e-9);
  ewma_seconds_per_unit_ = ewma_seconds_per_unit_ <= 0.0
                               ? per_unit
                               : 0.8 * ewma_seconds_per_unit_ +
                                     0.2 * per_unit;
}

void AdmissionController::OnMineSuccess(const Gate& gate, double seconds) {
  MutexLock lock(mu_);
  ObserveMineSecondsLocked(seconds, gate.cost_units);
  breakers_.erase(gate.breaker_key);  // Success closes (and forgets).
}

void AdmissionController::OnMineFailure(const Gate& gate) {
  MutexLock lock(mu_);
  Breaker& breaker = breakers_[gate.breaker_key];
  breaker.probe_inflight = false;
  ++breaker.consecutive_failures;
  if (breaker.consecutive_failures >= options_.breaker_threshold ||
      gate.probe) {
    const bool opening = !breaker.open || gate.probe;
    breaker.open = true;
    breaker.open_until =
        Clock::now() + std::chrono::milliseconds(options_.breaker_cooldown_ms);
    if (opening) BreakerOpenCounter()->Add(1);
  }
}

void AdmissionController::ReleaseSlot(double cost_units) {
  MutexLock lock(mu_);
  --active_;
  active_cost_ -= cost_units;
  if (active_cost_ < 0) active_cost_ = 0;
  cv_.NotifyAll();
}

void AdmissionController::EmitAdmissionEvent(const Gate& gate,
                                             ServeStats stats,
                                             ServeStats* stats_out) {
  stats.request_id = obs::RequestLog::Global().NextRequestId();
  obs::RequestEvent event;
  event.request_id = stats.request_id;
  event.dataset = service_.dataset_id();
  event.min_support = gate.min_support;
  event.fingerprint = gate.fingerprint;
  event.route = core::SeedRouteName(stats.route);
  event.cache_hit = stats.route == core::SeedRoute::kExact;
  event.coalesced = false;
  event.seed_support = stats.seed_support;
  event.patterns = stats.patterns_returned;
  event.partial = stats.partial;
  event.frontier_support = stats.frontier_support;
  event.outcome = stats.outcome;
  event.seconds = stats.seconds;
  event.threads = stats.threads;
  event.tenant = stats.tenant;
  event.queued_ms = stats.queued_ms;
  event.degraded = stats.degraded;
  event.shed = stats.shed;
  obs::RequestLog::Global().Record(std::move(event));
  if (stats_out != nullptr) *stats_out = std::move(stats);
}

double AdmissionController::CostUnits(uint64_t min_support) const {
  const auto it = std::lower_bound(item_supports_.begin(),
                                   item_supports_.end(), min_support);
  const uint64_t frequent_items =
      static_cast<uint64_t>(item_supports_.end() - it);
  const uint64_t bound = TotalCandidateBound(frequent_items);
  // Log scale: the bound spans tens of orders of magnitude; queue math
  // wants something proportional to achievable work, not the astronomical
  // worst case.
  return 1.0 + std::log2(1.0 + static_cast<double>(bound));
}

void AdmissionController::SeedCostEstimateForTest(double seconds_per_unit) {
  MutexLock lock(mu_);
  ewma_seconds_per_unit_ = seconds_per_unit;
}

size_t AdmissionController::QueueDepthForTest() const {
  MutexLock lock(mu_);
  return fifo_.size();
}

bool AdmissionController::BreakerOpenForTest(const std::string& fingerprint,
                                             uint64_t min_support) const {
  MutexLock lock(mu_);
  const auto it =
      breakers_.find(fingerprint + "\n" + std::to_string(min_support));
  return it != breakers_.end() && it->second.open;
}

double AdmissionController::CostUnitsForTest(uint64_t min_support) const {
  return CostUnits(min_support);
}

}  // namespace gogreen::serve
