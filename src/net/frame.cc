#include "net/frame.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

namespace gogreen::net {

namespace {

/// recv/send with EINTR retry. MSG_NOSIGNAL keeps a peer that closed
/// mid-write from killing the process with SIGPIPE.
ssize_t RecvSome(int fd, char* buf, size_t len) {
  while (true) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t SendSome(int fd, const char* buf, size_t len) {
  while (true) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// Reads exactly `len` bytes. Returns 1 on success, 0 on EOF before the
/// first byte, -1 on EOF mid-read or error (errno preserved; 0 on EOF).
int RecvExact(int fd, char* buf, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = RecvSome(fd, buf + got, len - got);
    if (n == 0) {
      errno = 0;
      return got == 0 ? 0 : -1;
    }
    if (n < 0) return -1;
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

bool ValidUtf8(std::string_view payload) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data());
  size_t i = 0;
  const size_t n = payload.size();
  while (i < n) {
    const unsigned char c = p[i];
    if (c < 0x80) {
      ++i;
      continue;
    }
    size_t len;
    uint32_t cp;
    if ((c & 0xE0) == 0xC0) {
      len = 2;
      cp = c & 0x1F;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      cp = c & 0x0F;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      cp = c & 0x07;
    } else {
      return false;  // Bare continuation byte or 5+/invalid lead byte.
    }
    if (i + len > n) return false;
    for (size_t k = 1; k < len; ++k) {
      if ((p[i + k] & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (p[i + k] & 0x3F);
    }
    // Overlong encodings, UTF-16 surrogates, and out-of-range values are
    // not UTF-8 even though the byte shapes decode.
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || cp > 0x10FFFF ||
        (cp >= 0xD800 && cp <= 0xDFFF)) {
      return false;
    }
    i += len;
  }
  return true;
}

Status ValidateFramePayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::InvalidArgument("frame payload is empty");
  }
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
        "-byte frame limit");
  }
  if (payload.find('\0') != std::string_view::npos) {
    return Status::InvalidArgument("frame payload contains a NUL byte");
  }
  if (!ValidUtf8(payload)) {
    return Status::InvalidArgument("frame payload is not valid UTF-8");
  }
  return Status::OK();
}

Result<std::string> EncodeFrame(std::string_view payload) {
  GOGREEN_RETURN_NOT_OK(ValidateFramePayload(payload));
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  frame.push_back(static_cast<char>((len >> 24) & 0xFF));
  frame.push_back(static_cast<char>((len >> 16) & 0xFF));
  frame.push_back(static_cast<char>((len >> 8) & 0xFF));
  frame.push_back(static_cast<char>(len & 0xFF));
  frame.append(payload);
  return frame;
}

Result<bool> TryDecodeFrame(std::string_view buffer, std::string* payload,
                            size_t* consumed) {
  if (buffer.size() < kFrameHeaderBytes) return false;
  const unsigned char* h =
      reinterpret_cast<const unsigned char*>(buffer.data());
  const uint32_t len = (uint32_t{h[0]} << 24) | (uint32_t{h[1]} << 16) |
                       (uint32_t{h[2]} << 8) | uint32_t{h[3]};
  if (len == 0) {
    return Status::InvalidArgument("frame declares a zero-length payload");
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame declares " + std::to_string(len) + " payload bytes, over "
        "the " + std::to_string(kMaxFrameBytes) + "-byte frame limit");
  }
  if (buffer.size() < kFrameHeaderBytes + len) return false;
  const std::string_view body = buffer.substr(kFrameHeaderBytes, len);
  GOGREEN_RETURN_NOT_OK(ValidateFramePayload(body));
  payload->assign(body);
  *consumed = kFrameHeaderBytes + len;
  return true;
}

Status WriteFrame(int fd, std::string_view payload) {
  GOGREEN_ASSIGN_OR_RETURN(const std::string frame, EncodeFrame(payload));
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = SendSome(fd, frame.data() + sent, frame.size() - sent);
    if (n <= 0) {
      return Status::IOError(std::string("frame write failed: ") +
                             (n < 0 ? std::strerror(errno)
                                    : "connection closed"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<bool> ReadFrame(int fd, std::string* payload) {
  char header[kFrameHeaderBytes];
  const int got = RecvExact(fd, header, kFrameHeaderBytes);
  if (got == 0) return false;  // Clean EOF on a frame boundary.
  if (got < 0) {
    return Status::IOError(errno == 0
                               ? "truncated frame: EOF inside the header"
                               : std::string("frame read failed: ") +
                                     std::strerror(errno));
  }
  // Decode the declared length through the shared buffer decoder so the
  // length-validation behavior cannot drift between the two paths.
  const unsigned char* h = reinterpret_cast<const unsigned char*>(header);
  const uint32_t len = (uint32_t{h[0]} << 24) | (uint32_t{h[1]} << 16) |
                       (uint32_t{h[2]} << 8) | uint32_t{h[3]};
  if (len == 0) {
    return Status::InvalidArgument("frame declares a zero-length payload");
  }
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame declares " + std::to_string(len) + " payload bytes, over "
        "the " + std::to_string(kMaxFrameBytes) + "-byte frame limit");
  }
  payload->resize(len);
  const int body = RecvExact(fd, payload->data(), len);
  if (body <= 0) {
    return Status::IOError(errno == 0
                               ? "truncated frame: EOF inside the payload"
                               : std::string("frame read failed: ") +
                                     std::strerror(errno));
  }
  GOGREEN_RETURN_NOT_OK(ValidateFramePayload(*payload));
  return true;
}

}  // namespace gogreen::net
