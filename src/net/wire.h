// Wire messages of the gogreen protocol (DESIGN.md §16).
//
// One request frame carries one WireRequest; the server answers with one
// WireResponse frame carrying the same `id`. The payload is a single flat
// JSON object — string, number, and boolean values only, no nesting — so
// the codec stays hand-written and auditable. Parsing is fail-closed: an
// unknown key is an InvalidArgument naming the key, not a silent skip, so
// a field added by a newer peer can never be dropped on the floor. Adding
// a field therefore bumps kProtocolVersion, and a server rejects requests
// whose `v` it does not speak.
//
// This request/response pair IS the mining API's public surface: the
// session REPL, the daemon, and the client CLI all speak it (the session
// in-process, the others over a socket), and the `outcome` field is the
// one place the ok/partial/degraded/shed/error vocabulary of
// util/status_codes.h crosses a process boundary.

#ifndef GOGREEN_NET_WIRE_H_
#define GOGREEN_NET_WIRE_H_

#include <cstdint>
#include <string>

#include "util/status.h"
#include "util/status_codes.h"

namespace gogreen::net {

/// Protocol revision. Bump whenever a field is added or its meaning
/// changes; peers reject versions they do not speak (fail closed).
inline constexpr int kProtocolVersion = 1;

/// What the client asks the daemon to do.
enum class Verb {
  kMine,     // run one governed mine at `support`
  kStats,    // return the last-mine stats line in `body`
  kMetrics,  // return the process metrics snapshot (Prometheus) in `body`
  kStore,    // return the PatternStore summary line in `body`
  kPing,     // liveness probe; echoes ok
  kTenant,   // bind this connection to `tenant` for subsequent requests
};

const char* VerbName(Verb verb);
Status ParseVerb(const std::string& name, Verb* verb);

/// One request frame. Absent optional fields keep their zero defaults and
/// are omitted from the encoded JSON.
struct WireRequest {
  int v = kProtocolVersion;
  uint64_t id = 0;  // echoed in the response; correlation only
  Verb verb = Verb::kPing;

  // mine: threshold — a value < 1.0 is a fraction of the database size,
  // >= 1.0 an absolute count (same rule the CLI and session use).
  double support = 0.0;
  uint64_t deadline_ms = 0;  // 0 = no deadline
  uint64_t budget_mb = 0;    // 0 = no byte budget
  uint64_t threads = 0;      // 0 = server default
  std::string tenant;        // tenant verb: the principal to bind

  std::string ToJson() const;
  static Result<WireRequest> FromJson(const std::string& json);
};

/// One response frame. `outcome` carries the typed result vocabulary; on
/// "error:<Code>" outcomes, `error` holds the human-readable message and
/// the code rides inside the outcome label itself.
struct WireResponse {
  int v = kProtocolVersion;
  uint64_t id = 0;
  Outcome outcome = Outcome::kOk;
  StatusCode error_code = StatusCode::kOk;
  std::string error;  // message; only meaningful when outcome == kError

  // mine results (mirrors serve::ServeStats).
  std::string route;
  uint64_t min_support = 0;
  uint64_t seed_support = 0;
  uint64_t patterns = 0;  // count; pattern bytes stay in the PatternStore
  bool partial = false;
  uint64_t frontier_support = 0;
  bool coalesced = false;
  bool degraded = false;
  bool shed = false;
  uint64_t retry_after_ms = 0;
  double seconds = 0.0;
  double compress_seconds = 0.0;
  double compression_ratio = 0.0;
  uint64_t bytes_peak = 0;
  uint64_t threads = 0;
  uint64_t evictions = 0;
  uint64_t request_id = 0;  // obs::RequestLog id stamped on the request
  uint64_t queued_ms = 0;
  std::string tenant;

  // stats / store verbs: the formatted text the client prints verbatim.
  std::string body;

  std::string ToJson() const;
  static Result<WireResponse> FromJson(const std::string& json);

  /// Projects an error/shed outcome back onto a Status so in-process
  /// callers (the session REPL) keep their exact pre-wire error handling.
  /// Ok/partial/degraded outcomes project to OK.
  Status ToStatus() const;
};

/// Builds the error response for `request` (id echoed when the request
/// parsed far enough to have one).
WireResponse MakeErrorResponse(uint64_t id, const Status& status);

}  // namespace gogreen::net

#endif  // GOGREEN_NET_WIRE_H_
