// Frame codec of the gogreen wire protocol (DESIGN.md §16).
//
// A frame is a 4-byte big-endian payload length followed by that many
// payload bytes. The payload is one UTF-8 JSON document (net/wire.h); the
// codec enforces the transport-level invariants so the parser above it
// never sees garbage:
//
//   - declared length in [1, kMaxFrameBytes] — a zero or oversized length
//     is a malformed frame, not a request;
//   - payload contains no NUL byte and is valid UTF-8.
//
// Error contract (tests/net_frame_test.cc): a malformed frame is a typed
// InvalidArgument. At the buffer level a short frame is simply "need more
// bytes"; at the socket level an EOF that splits a frame is an IOError
// ("truncated frame"), while an EOF on a frame boundary is a clean close.
// Framing errors desynchronize the stream, so connections close after one;
// payload-level errors (bad JSON in a well-delimited frame) do not — that
// split is the server's job, not the codec's.

#ifndef GOGREEN_NET_FRAME_H_
#define GOGREEN_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace gogreen::net {

/// Hard ceiling on one frame's payload. Large enough for any stats dump or
/// error message the protocol produces; small enough that a corrupt length
/// prefix cannot make a connection handler allocate gigabytes.
inline constexpr size_t kMaxFrameBytes = size_t{8} << 20;  // 8 MiB

/// Bytes of the length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

/// True when `payload` is well-formed UTF-8 (rejects overlong encodings,
/// surrogate code points, and values above U+10FFFF).
bool ValidUtf8(std::string_view payload);

/// Validates one payload against the framing invariants (size bound, no
/// NUL, valid UTF-8). Shared by the encoder and both decoders.
Status ValidateFramePayload(std::string_view payload);

/// Frames `payload` (header + bytes). InvalidArgument when the payload
/// violates the framing invariants — the sender's bug is caught before it
/// desynchronizes a peer.
Result<std::string> EncodeFrame(std::string_view payload);

/// Attempts to extract one complete frame from the front of `buffer`.
/// Returns true and fills `*payload` / `*consumed` (header + payload
/// bytes) when one is present; false (outputs untouched) when the buffer
/// holds only a prefix; InvalidArgument on a malformed frame (bad length,
/// NUL, invalid UTF-8) — the caller must then drop the connection, since
/// the stream position is no longer trustworthy.
Result<bool> TryDecodeFrame(std::string_view buffer, std::string* payload,
                            size_t* consumed);

// --- Blocking socket I/O (used by Server and Client). ---

/// Writes one frame to `fd`, handling short writes; never raises SIGPIPE.
/// InvalidArgument on an invalid payload, IOError on a write failure.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd`. Returns true and fills `*payload`; false on
/// a clean EOF at a frame boundary (peer closed); IOError on EOF mid-frame
/// ("truncated frame") or a read failure; InvalidArgument on a malformed
/// frame.
Result<bool> ReadFrame(int fd, std::string* payload);

}  // namespace gogreen::net

#endif  // GOGREEN_NET_FRAME_H_
