// Client side of the gogreen wire protocol: connect to a daemon and
// exchange one request frame for one response frame per Call. Blocking,
// not thread-safe — one Client per thread (or per `gogreen client`
// process). Request ids are stamped and checked on the way back, so a
// desequenced server is reported as an error instead of silently
// mismatching answers to questions.

#ifndef GOGREEN_NET_CLIENT_H_
#define GOGREEN_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/wire.h"
#include "util/status.h"

namespace gogreen::net {

class Client {
 public:
  static Result<Client> ConnectUnix(const std::string& path);
  /// Loopback only, matching the server's bind.
  static Result<Client> ConnectTcp(int port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `request` (id assigned here) and awaits the matching response.
  /// IOError on a transport failure — including a server that closed the
  /// connection after a malformed frame — and InvalidArgument when the
  /// response itself cannot be decoded.
  Result<WireResponse> Call(WireRequest request);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  uint64_t next_id_ = 0;
};

}  // namespace gogreen::net

#endif  // GOGREEN_NET_CLIENT_H_
