#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "net/frame.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/wire_service.h"

namespace gogreen::net {

namespace {

obs::Counter* ConnectionsCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Global().GetCounter("net.connections");
  return c;
}

obs::Counter* FramesCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Global().GetCounter("net.frames");
  return c;
}

obs::Counter* FrameErrorsCounter() {
  static obs::Counter* c =
      obs::MetricRegistry::Global().GetCounter("net.frame_errors");
  return c;
}

Result<int> ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // Stale socket from a previous run.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const Status status = Status::IOError("bind " + path + ": " +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> ListenTcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  // Loopback only: the daemon has no authentication, so it never listens
  // on a routable interface.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const Status status = Status::IOError(
        "bind port " + std::to_string(port) + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

}  // namespace

Server::Server(serve::MiningService& service,
               serve::AdmissionController* admission, ServerOptions options)
    : service_(service),
      admission_(admission),
      options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  const bool want_unix = !options_.unix_path.empty();
  const bool want_tcp = options_.tcp_port >= 0;
  if (want_unix == want_tcp) {
    return Status::InvalidArgument(
        "serve needs exactly one of --socket and --port");
  }
  GOGREEN_ASSIGN_OR_RETURN(
      listen_fd_, want_unix ? ListenUnix(options_.unix_path)
                            : ListenTcp(options_.tcp_port));
  if (::listen(listen_fd_, static_cast<int>(options_.max_connections)) < 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (want_tcp) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (options_.mine_hold_ms > 0) {
    const uint64_t hold_ms = options_.mine_hold_ms;
    service_.SetLeaderHoldForTest([hold_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    });
  }
  // max_connections handler lanes + the accept loop; the "+2" keeps one
  // lane free because ThreadPool spawns threads-1 workers (the last lane
  // belongs to a Wait()ing caller, which here is only Stop()).
  pool_ = std::make_unique<ThreadPool>(options_.max_connections + 2);
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  pool_->Submit(&wg_, [this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Wake the accept loop, then half-close every live connection: handlers
  // mid-request finish and write their response; their next read sees a
  // clean EOF and the task exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    MutexLock lock(conns_mu_);
    for (const int fd : conns_) ::shutdown(fd, SHUT_RD);
  }
  pool_->Wait(&wg_);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  started_ = false;
}

void Server::Register(int fd) {
  MutexLock lock(conns_mu_);
  conns_.push_back(fd);
}

void Server::Unregister(int fd) {
  MutexLock lock(conns_mu_);
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i] == fd) {
      conns_[i] = conns_.back();
      conns_.pop_back();
      break;
    }
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (Stop) or unrecoverable.
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    ConnectionsCounter()->Add(1);
    Register(fd);
    pool_->Submit(&wg_, [this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  serve::WireSession session(service_, admission_);
  std::string payload;
  while (true) {
    const Result<bool> got = ReadFrame(fd, &payload);
    if (!got.ok()) {
      FrameErrorsCounter()->Add(1);
      if (got.status().code() == StatusCode::kInvalidArgument) {
        // Malformed frame: the stream position is untrustworthy. One
        // best-effort typed error, then close.
        const WireResponse err = MakeErrorResponse(0, got.status());
        (void)WriteFrame(fd, err.ToJson());
      }
      break;
    }
    if (!got.value()) break;  // Clean EOF: peer (or Stop) closed.
    FramesCounter()->Add(1);
    const Result<WireRequest> request = WireRequest::FromJson(payload);
    WireResponse resp;
    if (request.ok()) {
      resp = session.Handle(request.value());
    } else {
      // Well-framed but invalid payload: typed error, connection lives.
      resp = MakeErrorResponse(0, request.status());
    }
    if (!WriteFrame(fd, resp.ToJson()).ok()) break;
  }
  Unregister(fd);
  ::close(fd);
}

}  // namespace gogreen::net
