#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/frame.h"

namespace gogreen::net {

Result<Client> Client::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    const Status status = Status::IOError("connect " + path + ": " +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Result<Client> Client::ConnectTcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    const Status status =
        Status::IOError("connect port " + std::to_string(port) + ": " +
                        std::strerror(errno));
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
  }
  return *this;
}

Result<WireResponse> Client::Call(WireRequest request) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  request.id = ++next_id_;
  GOGREEN_RETURN_NOT_OK(WriteFrame(fd_, request.ToJson()));
  std::string payload;
  GOGREEN_ASSIGN_OR_RETURN(const bool got, ReadFrame(fd_, &payload));
  if (!got) {
    return Status::IOError("server closed the connection mid-call");
  }
  GOGREEN_ASSIGN_OR_RETURN(WireResponse resp,
                           WireResponse::FromJson(payload));
  // id 0 is the server's "request never parsed far enough to have an id"
  // answer (e.g. bad JSON) — still this call's response on a serial
  // connection.
  if (resp.id != 0 && resp.id != request.id) {
    return Status::Internal(
        "response id " + std::to_string(resp.id) + " does not match "
        "request id " + std::to_string(request.id));
  }
  return resp;
}

}  // namespace gogreen::net
