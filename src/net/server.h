// The gogreen daemon: serves the wire protocol (net/wire.h) for one
// MiningService over a unix socket or loopback TCP.
//
// Concurrency model: no raw threads — the server owns a ThreadPool and
// submits one long-running accept-loop task plus one task per accepted
// connection. Each connection task owns a serve::WireSession (sticky
// tenant, last-mine stats) and loops read-frame → handle → write-frame.
// The pool is sized max_connections + 2, so up to max_connections
// handlers mine concurrently while the accept loop keeps its own lane;
// further connections queue in the pool — admission-by-backpressure at
// the transport, before AdmissionController sees a request.
//
// Graceful shutdown (Stop): new accepts stop, every open connection gets
// SHUT_RD — a handler mid-mine finishes, writes its response, then reads
// a clean EOF and exits — and Stop blocks until the pool drains. In-
// flight leaders are never abandoned: their followers (possibly on other
// connections) still get the coalesced result.
//
// Error discipline mirrors the frame codec's contract: a malformed frame
// desynchronizes the byte stream, so the handler sends one best-effort
// error response and closes; a well-framed but invalid payload (bad
// JSON, unknown field, unknown verb, wrong version) gets a typed error
// response and the connection lives on.
//
// Counters (DESIGN.md §12): net.connections, net.frames,
// net.frame_errors.

#ifndef GOGREEN_NET_SERVER_H_
#define GOGREEN_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "serve/mining_service.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace gogreen::net {

struct ServerOptions {
  /// Exactly one of unix_path / tcp_port must be set.
  std::string unix_path;  ///< Unix-domain socket path ("" = use TCP).
  int tcp_port = -1;      ///< Loopback TCP port (0 = kernel-assigned).
  size_t max_connections = 8;
  /// Test/CI seam: before mining, a leader holds this long in the
  /// single-flight rendezvous window, so concurrently launched identical
  /// clients deterministically coalesce. 0 = no hold (production).
  uint64_t mine_hold_ms = 0;
};

class Server {
 public:
  /// `admission` may be null (requests bypass admission control).
  /// Borrowed; both must outlive the server.
  Server(serve::MiningService& service,
         serve::AdmissionController* admission, ServerOptions options);
  ~Server();  // Stop()s if still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts accepting. InvalidArgument on a bad
  /// options combination, IOError on a socket failure.
  Status Start();

  /// Graceful shutdown; see the file comment. Idempotent, and safe to
  /// call from a signal-watching loop while handlers are mid-mine.
  void Stop();

  /// The bound TCP port (tcp_port resolved when 0 was asked). 0 when
  /// serving a unix socket.
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Registers/unregisters a live connection fd so Stop() can SHUT_RD it.
  void Register(int fd);
  void Unregister(int fd);

  serve::MiningService& service_;
  serve::AdmissionController* admission_;
  const ServerOptions options_;

  std::unique_ptr<ThreadPool> pool_;
  WaitGroup wg_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  int listen_fd_ = -1;
  int port_ = 0;

  Mutex conns_mu_;
  std::vector<int> conns_ GUARDED_BY(conns_mu_);
};

}  // namespace gogreen::net

#endif  // GOGREEN_NET_SERVER_H_
