#include "net/wire.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace gogreen::net {

namespace {

// --- Encoding helpers. -----------------------------------------------------

void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (const char ch : value) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out->append(buf);
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

class JsonWriter {
 public:
  void String(const char* key, const std::string& value) {
    Key(key);
    AppendJsonString(&out_, value);
  }
  void Uint(const char* key, uint64_t value) {
    Key(key);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out_.append(buf);
  }
  void Int(const char* key, int value) { Uint(key, uint64_t(value)); }
  void Double(const char* key, double value) {
    Key(key);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out_.append(buf);
  }
  void Bool(const char* key, bool value) {
    Key(key);
    out_.append(value ? "true" : "false");
  }
  std::string Finish() && { return std::move(out_) + "}"; }

 private:
  void Key(const char* key) {
    out_.append(out_.empty() ? "{" : ",");
    AppendJsonString(&out_, key);
    out_.push_back(':');
  }
  std::string out_;
};

// --- Strict flat-object parser. --------------------------------------------

struct JsonValue {
  enum class Kind { kString, kNumber, kBool } kind = Kind::kString;
  std::string str;
  double num = 0.0;
  bool boolean = false;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses `{"key": value, ...}` with string/number/bool values only.
  /// Duplicate keys and nested containers are malformed.
  Status Parse(std::map<std::string, JsonValue>* out) {
    SkipSpace();
    if (!Consume('{')) return Malformed("expected '{'");
    SkipSpace();
    if (Consume('}')) return Trailing();
    while (true) {
      std::string key;
      GOGREEN_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Malformed("expected ':' after key");
      SkipSpace();
      JsonValue value;
      GOGREEN_RETURN_NOT_OK(ParseValue(&value));
      if (!out->emplace(key, std::move(value)).second) {
        return Status::InvalidArgument("malformed request: duplicate key '" +
                                       key + "'");
      }
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume('}')) return Trailing();
      return Malformed("expected ',' or '}'");
    }
  }

 private:
  Status Malformed(const std::string& what) const {
    return Status::InvalidArgument("malformed request: " + what +
                                   " at byte " + std::to_string(pos_));
  }
  Status Trailing() {
    SkipSpace();
    if (pos_ != text_.size()) return Malformed("trailing bytes after object");
    return Status::OK();
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ParseString(std::string* out) {
    if (!Consume('"')) return Malformed("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return Status::OK();
      if (ch != '\\') {
        out->push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Malformed("short \\u escape");
          char* end = nullptr;
          const std::string hex = text_.substr(pos_, 4);
          const long cp = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return Malformed("bad \\u escape");
          pos_ += 4;
          // The writer only emits \u for control characters; reject
          // anything that would need surrogate-pair reassembly.
          if (cp >= 0x80) return Malformed("unsupported \\u escape");
          out->push_back(static_cast<char>(cp));
          break;
        }
        default:
          return Malformed("unknown escape");
      }
    }
    return Malformed("unterminated string");
  }
  Status ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Malformed("expected a value");
    const char ch = text_[pos_];
    if (ch == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (ch == 't' || ch == 'f') {
      const char* word = ch == 't' ? "true" : "false";
      const size_t len = ch == 't' ? 4 : 5;
      if (text_.compare(pos_, len, word) != 0) {
        return Malformed("expected a literal");
      }
      pos_ += len;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = ch == 't';
      return Status::OK();
    }
    if (ch == '-' || (ch >= '0' && ch <= '9')) {
      const char* begin = text_.c_str() + pos_;
      char* end = nullptr;
      out->num = std::strtod(begin, &end);
      if (end == begin || !std::isfinite(out->num)) {
        return Malformed("bad number");
      }
      pos_ += static_cast<size_t>(end - begin);
      out->kind = JsonValue::Kind::kNumber;
      return Status::OK();
    }
    // Flat protocol: no nested objects/arrays, no null.
    return Malformed("unsupported value (only strings, numbers, booleans)");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Pulls typed fields out of the parsed map, erasing consumed keys so the
/// caller can reject whatever is left over by name.
class FieldReader {
 public:
  explicit FieldReader(std::map<std::string, JsonValue>* fields)
      : fields_(fields) {}

  Status String(const char* key, std::string* out) {
    return Take(key, JsonValue::Kind::kString,
                [&](const JsonValue& v) { *out = v.str; });
  }
  Status Uint(const char* key, uint64_t* out) {
    return Take(key, JsonValue::Kind::kNumber, [&](const JsonValue& v) {
      *out = v.num < 0 ? 0 : static_cast<uint64_t>(v.num);
    });
  }
  Status Int(const char* key, int* out) {
    return Take(key, JsonValue::Kind::kNumber,
                [&](const JsonValue& v) { *out = static_cast<int>(v.num); });
  }
  Status Double(const char* key, double* out) {
    return Take(key, JsonValue::Kind::kNumber,
                [&](const JsonValue& v) { *out = v.num; });
  }
  Status Bool(const char* key, bool* out) {
    return Take(key, JsonValue::Kind::kBool,
                [&](const JsonValue& v) { *out = v.boolean; });
  }

  /// After all known fields are consumed: anything left is an unknown
  /// field, rejected by name (fail closed — see the header comment).
  Status RejectUnknown(const char* message_kind) const {
    if (fields_->empty()) return Status::OK();
    return Status::InvalidArgument(std::string("unknown ") + message_kind +
                                   " field '" + fields_->begin()->first +
                                   "'");
  }

 private:
  template <typename Fn>
  Status Take(const char* key, JsonValue::Kind kind, Fn assign) {
    auto it = fields_->find(key);
    if (it == fields_->end()) return Status::OK();  // optional, keep default
    if (it->second.kind != kind) {
      return Status::InvalidArgument(std::string("field '") + key +
                                     "' has the wrong type");
    }
    assign(it->second);
    fields_->erase(it);
    return Status::OK();
  }

  std::map<std::string, JsonValue>* fields_;
};

Status CheckVersion(int v) {
  if (v != kProtocolVersion) {
    return Status::InvalidArgument(
        "unsupported protocol version " + std::to_string(v) + " (this peer "
        "speaks v" + std::to_string(kProtocolVersion) + ")");
  }
  return Status::OK();
}

}  // namespace

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kMine:
      return "mine";
    case Verb::kStats:
      return "stats";
    case Verb::kMetrics:
      return "metrics";
    case Verb::kStore:
      return "store";
    case Verb::kPing:
      return "ping";
    case Verb::kTenant:
      return "tenant";
  }
  return "ping";
}

Status ParseVerb(const std::string& name, Verb* verb) {
  for (Verb candidate : {Verb::kMine, Verb::kStats, Verb::kMetrics,
                         Verb::kStore, Verb::kPing, Verb::kTenant}) {
    if (name == VerbName(candidate)) {
      *verb = candidate;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown verb '" + name + "'");
}

std::string WireRequest::ToJson() const {
  JsonWriter w;
  w.Int("v", v);
  w.Uint("id", id);
  w.String("verb", VerbName(verb));
  if (support > 0.0) w.Double("support", support);
  if (deadline_ms > 0) w.Uint("deadline_ms", deadline_ms);
  if (budget_mb > 0) w.Uint("budget_mb", budget_mb);
  if (threads > 0) w.Uint("threads", threads);
  if (!tenant.empty()) w.String("tenant", tenant);
  return std::move(w).Finish();
}

Result<WireRequest> WireRequest::FromJson(const std::string& json) {
  std::map<std::string, JsonValue> fields;
  GOGREEN_RETURN_NOT_OK(JsonParser(json).Parse(&fields));
  WireRequest req;
  FieldReader r(&fields);
  GOGREEN_RETURN_NOT_OK(r.Int("v", &req.v));
  GOGREEN_RETURN_NOT_OK(r.Uint("id", &req.id));
  std::string verb = "ping";
  GOGREEN_RETURN_NOT_OK(r.String("verb", &verb));
  GOGREEN_RETURN_NOT_OK(r.Double("support", &req.support));
  GOGREEN_RETURN_NOT_OK(r.Uint("deadline_ms", &req.deadline_ms));
  GOGREEN_RETURN_NOT_OK(r.Uint("budget_mb", &req.budget_mb));
  GOGREEN_RETURN_NOT_OK(r.Uint("threads", &req.threads));
  GOGREEN_RETURN_NOT_OK(r.String("tenant", &req.tenant));
  GOGREEN_RETURN_NOT_OK(r.RejectUnknown("request"));
  GOGREEN_RETURN_NOT_OK(CheckVersion(req.v));
  GOGREEN_RETURN_NOT_OK(ParseVerb(verb, &req.verb));
  return req;
}

std::string WireResponse::ToJson() const {
  JsonWriter w;
  w.Int("v", v);
  w.Uint("id", id);
  w.String("outcome", OutcomeLabel(outcome, error_code));
  if (!error.empty()) w.String("error", error);
  if (!route.empty()) w.String("route", route);
  if (min_support > 0) w.Uint("min_support", min_support);
  if (seed_support > 0) w.Uint("seed_support", seed_support);
  if (patterns > 0) w.Uint("patterns", patterns);
  if (partial) w.Bool("partial", partial);
  if (frontier_support > 0) w.Uint("frontier_support", frontier_support);
  if (coalesced) w.Bool("coalesced", coalesced);
  if (degraded) w.Bool("degraded", degraded);
  if (shed) w.Bool("shed", shed);
  if (retry_after_ms > 0) w.Uint("retry_after_ms", retry_after_ms);
  if (seconds > 0.0) w.Double("seconds", seconds);
  if (compress_seconds > 0.0) w.Double("compress_seconds", compress_seconds);
  if (compression_ratio > 0.0) {
    w.Double("compression_ratio", compression_ratio);
  }
  if (bytes_peak > 0) w.Uint("bytes_peak", bytes_peak);
  if (threads > 0) w.Uint("threads", threads);
  if (evictions > 0) w.Uint("evictions", evictions);
  if (request_id > 0) w.Uint("request_id", request_id);
  if (queued_ms > 0) w.Uint("queued_ms", queued_ms);
  if (!tenant.empty()) w.String("tenant", tenant);
  if (!body.empty()) w.String("body", body);
  return std::move(w).Finish();
}

Result<WireResponse> WireResponse::FromJson(const std::string& json) {
  std::map<std::string, JsonValue> fields;
  GOGREEN_RETURN_NOT_OK(JsonParser(json).Parse(&fields));
  WireResponse resp;
  FieldReader r(&fields);
  GOGREEN_RETURN_NOT_OK(r.Int("v", &resp.v));
  GOGREEN_RETURN_NOT_OK(r.Uint("id", &resp.id));
  std::string outcome = "ok";
  GOGREEN_RETURN_NOT_OK(r.String("outcome", &outcome));
  GOGREEN_RETURN_NOT_OK(r.String("error", &resp.error));
  GOGREEN_RETURN_NOT_OK(r.String("route", &resp.route));
  GOGREEN_RETURN_NOT_OK(r.Uint("min_support", &resp.min_support));
  GOGREEN_RETURN_NOT_OK(r.Uint("seed_support", &resp.seed_support));
  GOGREEN_RETURN_NOT_OK(r.Uint("patterns", &resp.patterns));
  GOGREEN_RETURN_NOT_OK(r.Bool("partial", &resp.partial));
  GOGREEN_RETURN_NOT_OK(r.Uint("frontier_support", &resp.frontier_support));
  GOGREEN_RETURN_NOT_OK(r.Bool("coalesced", &resp.coalesced));
  GOGREEN_RETURN_NOT_OK(r.Bool("degraded", &resp.degraded));
  GOGREEN_RETURN_NOT_OK(r.Bool("shed", &resp.shed));
  GOGREEN_RETURN_NOT_OK(r.Uint("retry_after_ms", &resp.retry_after_ms));
  GOGREEN_RETURN_NOT_OK(r.Double("seconds", &resp.seconds));
  GOGREEN_RETURN_NOT_OK(r.Double("compress_seconds", &resp.compress_seconds));
  GOGREEN_RETURN_NOT_OK(
      r.Double("compression_ratio", &resp.compression_ratio));
  GOGREEN_RETURN_NOT_OK(r.Uint("bytes_peak", &resp.bytes_peak));
  GOGREEN_RETURN_NOT_OK(r.Uint("threads", &resp.threads));
  GOGREEN_RETURN_NOT_OK(r.Uint("evictions", &resp.evictions));
  GOGREEN_RETURN_NOT_OK(r.Uint("request_id", &resp.request_id));
  GOGREEN_RETURN_NOT_OK(r.Uint("queued_ms", &resp.queued_ms));
  GOGREEN_RETURN_NOT_OK(r.String("tenant", &resp.tenant));
  GOGREEN_RETURN_NOT_OK(r.String("body", &resp.body));
  GOGREEN_RETURN_NOT_OK(r.RejectUnknown("response"));
  GOGREEN_RETURN_NOT_OK(CheckVersion(resp.v));
  if (!ParseOutcomeLabel(outcome, &resp.outcome, &resp.error_code)) {
    return Status::InvalidArgument("unknown outcome label '" + outcome + "'");
  }
  return resp;
}

Status WireResponse::ToStatus() const {
  switch (outcome) {
    case Outcome::kOk:
    case Outcome::kPartial:
    case Outcome::kDegraded:
      return Status::OK();
    case Outcome::kShed:
      return Status::ResourceExhausted(
          error.empty() ? "request shed" : error);
    case Outcome::kError:
      return Status(error_code == StatusCode::kOk ? StatusCode::kInternal
                                                  : error_code,
                    error.empty() ? "remote error" : error);
  }
  return Status::OK();
}

WireResponse MakeErrorResponse(uint64_t id, const Status& status) {
  WireResponse resp;
  resp.id = id;
  if (status.code() == StatusCode::kResourceExhausted) {
    resp.outcome = Outcome::kShed;
    resp.shed = true;
  } else {
    resp.outcome = Outcome::kError;
    resp.error_code = status.code();
  }
  resp.error = status.message();
  return resp;
}

}  // namespace gogreen::net
