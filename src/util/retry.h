// Bounded retry with exponential backoff and deterministic jitter,
// generalized from the ad-hoc spill-IO loop that used to live in
// disk_recycle.cc. Shared by the spill writer/reader, pattern_io's write
// path, and any future IO seam that wants the same policy.
//
// The contract that matters: only *transient* failures are retried.
// `IsTransient` classifies IOError and ResourceExhausted as worth another
// attempt; InvalidArgument, NotFound, and the rest can never succeed on a
// retry, so the first such status is returned immediately (retrying an
// InvalidArgument was the bug this header's extraction fixed).
//
// Backoff is exponential (base * 2^(attempt-1), capped) plus a
// deterministic jitter derived from a splitmix64 hash of (seed, attempt):
// two retry loops armed with different seeds desynchronize instead of
// thundering in lockstep, yet a fixed seed reproduces the exact sleep
// schedule — tests stay deterministic.

#ifndef GOGREEN_UTIL_RETRY_H_
#define GOGREEN_UTIL_RETRY_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "util/status.h"

namespace gogreen {

/// Policy for one retry loop. The defaults reproduce the historical spill
/// policy: 3 attempts total, sleeping ~1/2 ms between them.
struct RetryPolicy {
  /// Total attempts, including the first (>= 1). 3 means "retry twice".
  int max_attempts = 3;
  /// Backoff before the first retry; doubles per subsequent retry.
  std::chrono::milliseconds base_backoff{1};
  /// Ceiling on a single backoff sleep (pre-jitter).
  std::chrono::milliseconds max_backoff{64};
  /// Seed for the deterministic jitter. Loops with distinct seeds spread
  /// out; a fixed seed gives a reproducible sleep schedule.
  uint64_t jitter_seed = 0;
};

/// True for failures a retry can plausibly outlast: transient IO errors and
/// resource exhaustion. Everything else — malformed input, missing files,
/// programmer errors — fails the loop on the first occurrence.
inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kResourceExhausted;
}

/// The backoff to sleep before retry number `retry` (1-based): exponential
/// in the retry index, capped, plus up to +50% deterministic jitter.
inline std::chrono::milliseconds BackoffDelay(const RetryPolicy& policy,
                                              int retry) {
  int64_t base = policy.base_backoff.count();
  for (int i = 1; i < retry && base < policy.max_backoff.count(); ++i) {
    base *= 2;
  }
  if (base > policy.max_backoff.count()) base = policy.max_backoff.count();
  // splitmix64 over (seed, retry): platform-stable, stateless.
  uint64_t z = policy.jitter_seed + 0x9e3779b97f4a7c15ULL *
                                        static_cast<uint64_t>(retry);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const int64_t jitter =
      base > 0 ? static_cast<int64_t>(z % (static_cast<uint64_t>(base) / 2 +
                                           1))
               : 0;
  return std::chrono::milliseconds(base + jitter);
}

/// Runs `fn` (returning Status) up to `policy.max_attempts` times, sleeping
/// the backoff between attempts. Returns the first success, the first
/// non-transient failure, or the last transient failure once attempts are
/// exhausted.
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, Fn&& fn) {
  Status status = Status::OK();
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    if (attempt > 1) std::this_thread::sleep_for(BackoffDelay(policy,
                                                              attempt - 1));
    status = fn();
    if (status.ok() || !IsTransient(status)) return status;
  }
  return status;
}

/// Result<T> flavor of RetryTransient: `fn` returns Result<T>; the same
/// transient-only retry rules apply to its status.
template <typename T, typename Fn>
Result<T> RetryTransientResult(const RetryPolicy& policy, Fn&& fn) {
  Result<T> result = fn();
  for (int attempt = 2;
       !result.ok() && IsTransient(result.status()) &&
       attempt <= policy.max_attempts;
       ++attempt) {
    std::this_thread::sleep_for(BackoffDelay(policy, attempt - 1));
    result = fn();
  }
  return result;
}

}  // namespace gogreen

#endif  // GOGREEN_UTIL_RETRY_H_
