// Dynamic bitset sized at runtime. Used by the compressor's pattern matchers
// (tuple-membership tests) and by the Eclat miner's tid-bitmaps.

#ifndef GOGREEN_UTIL_BITSET_H_
#define GOGREEN_UTIL_BITSET_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace gogreen {

/// Fixed-capacity bitset whose size is chosen at construction.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }

  void Set(size_t i) {
    GOGREEN_DCHECK(i < num_bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Clear(size_t i) {
    GOGREEN_DCHECK(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    GOGREEN_DCHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Sets every bit to zero without changing capacity.
  void Reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// this &= other. Sizes must match.
  void IntersectWith(const DynamicBitset& other) {
    GOGREEN_DCHECK(num_bits_ == other.num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// Number of set bits in (this & other) without materializing it.
  size_t IntersectionCount(const DynamicBitset& other) const {
    GOGREEN_DCHECK(num_bits_ == other.num_bits_);
    size_t n = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      n += static_cast<size_t>(__builtin_popcountll(words_[i] &
                                                    other.words_[i]));
    }
    return n;
  }

  /// Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gogreen

#endif  // GOGREEN_UTIL_BITSET_H_
