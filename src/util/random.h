// Deterministic pseudo-random number generation for data generators and
// property tests. A small xoshiro256** implementation is used instead of
// std::mt19937 so that sequences are identical across standard libraries.

#ifndef GOGREEN_UTIL_RANDOM_H_
#define GOGREEN_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "util/logging.h"

namespace gogreen {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
/// Deterministic across platforms for a given seed.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t Uniform(uint64_t bound) {
    GOGREEN_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method would be faster; modulo bias is
    // negligible for bound << 2^64 and keeps the generator simple.
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    GOGREEN_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Poisson-distributed value with the given mean (Knuth's method for small
  /// means, normal approximation above 30).
  uint32_t Poisson(double mean) {
    GOGREEN_DCHECK(mean >= 0.0);
    if (mean <= 0.0) return 0;
    if (mean > 30.0) {
      double v = mean + std::sqrt(mean) * Gaussian();
      return v <= 0.0 ? 0u : static_cast<uint32_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    uint32_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= NextDouble();
    }
    return n;
  }

  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double Gaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace gogreen

#endif  // GOGREEN_UTIL_RANDOM_H_
