#include "util/thread_pool.h"

#include <cstdlib>
#include <map>

#include "util/env.h"
#include "util/logging.h"

namespace gogreen {

namespace {

// Worker identity of the current thread, for nested submission and stealing
// order. Null on threads that do not belong to a pool.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;

struct GlobalPoolState {
  Mutex mu;
  std::shared_ptr<ThreadPool> pool GUARDED_BY(mu);
};

GlobalPoolState& GlobalState() {
  // gogreen-lint: allow(naked-new): intentionally leaked process singleton
  static GlobalPoolState* state = new GlobalPoolState();
  return *state;
}

// Per-thread override installed by ThreadPool::ScopedThreads; consulted by
// Global()/GlobalThreads() before the process-wide pool.
thread_local std::shared_ptr<ThreadPool> tls_override_pool;

// Cache of override pools keyed by lane count, so a service handling many
// requests at the same few thread counts spawns each pool once. Bounded in
// practice by the distinct counts callers ask for.
struct OverridePoolCache {
  Mutex mu;
  std::map<size_t, std::shared_ptr<ThreadPool>> pools GUARDED_BY(mu);
};

OverridePoolCache& OverrideCache() {
  // gogreen-lint: allow(naked-new): intentionally leaked process singleton
  static OverridePoolCache* cache = new OverridePoolCache();
  return *cache;
}

std::shared_ptr<ThreadPool> OverridePoolFor(size_t threads) {
  OverridePoolCache& cache = OverrideCache();
  MutexLock lock(cache.mu);
  std::shared_ptr<ThreadPool>& slot = cache.pools[threads];
  if (!slot) slot = std::make_shared<ThreadPool>(threads);
  return slot;
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) : threads_(threads < 1 ? 1 : threads) {
  const size_t num_workers = threads_ - 1;
  queues_.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    MutexLock lock(idle_mu_);
    idle_cv_.NotifyAll();
  }
  for (std::thread& t : workers_) t.join();
  // Drain anything still queued so no WaitGroup is left hanging.
  Task task;
  while (TryGetTask(&task)) RunTask(std::move(task));
}

void ThreadPool::RunTask(Task task) {
  try {
    task.fn();
  } catch (...) {
    task.wg->CaptureException(std::current_exception());
  }
  task.wg->Done();
}

void ThreadPool::Push(Task task) {
  // A worker pushes to the back of its own deque (it will pop from the back
  // too, keeping nested work depth-first and cache-hot); siblings steal from
  // the front. External submissions round-robin over the worker deques.
  size_t target;
  if (tls_pool == this) {
    target = tls_worker;
  } else {
    static std::atomic<size_t> rr{0};
    target = rr.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    WorkerQueue& q = *queues_[target];
    MutexLock lock(q.mu);
    q.dq.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    MutexLock lock(idle_mu_);
    idle_cv_.NotifyOne();
  }
}

bool ThreadPool::TryGetTask(Task* out) {
  const size_t n = queues_.size();
  if (n == 0) return false;
  const bool is_worker = tls_pool == this;
  // Own queue first (back = most recently pushed), then steal round-robin
  // from the front of the siblings' queues.
  if (is_worker) {
    WorkerQueue& own = *queues_[tls_worker];
    MutexLock lock(own.mu);
    if (!own.dq.empty()) {
      *out = std::move(own.dq.back());
      own.dq.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  const size_t start = is_worker ? tls_worker + 1 : 0;
  for (size_t k = 0; k < n; ++k) {
    WorkerQueue& q = *queues_[(start + k) % n];
    MutexLock lock(q.mu);
    if (!q.dq.empty()) {
      *out = std::move(q.dq.front());
      q.dq.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker) {
  tls_pool = this;
  tls_worker = worker;
  Task task;
  for (;;) {
    if (TryGetTask(&task)) {
      RunTask(std::move(task));
      continue;
    }
    MutexLock lock(idle_mu_);
    while (queued_.load(std::memory_order_acquire) == 0 &&
           !stop_.load(std::memory_order_acquire)) {
      idle_cv_.Wait(idle_mu_);
    }
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::Submit(WaitGroup* wg, std::function<void()> fn) {
  wg->Add(1);
  Task task{std::move(fn), wg};
  if (queues_.empty()) {
    // Single-thread pool: run inline, at the submission point — the
    // deterministic sequential fallback.
    RunTask(std::move(task));
    return;
  }
  Push(std::move(task));
}

void ThreadPool::Wait(WaitGroup* wg) {
  // Help execute queued tasks while the group is open. If no task is
  // available the group's remaining tasks are already running on workers,
  // so blocking is safe.
  Task task;
  while (!wg->Finished()) {
    if (TryGetTask(&task)) {
      RunTask(std::move(task));
    } else {
      wg->BlockUntilFinished();
    }
  }
  wg->RethrowIfError();
}

bool ThreadPool::WaitFor(WaitGroup* wg, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  Task task;
  while (!wg->Finished()) {
    if (std::chrono::steady_clock::now() >= deadline) break;
    if (TryGetTask(&task)) {
      RunTask(std::move(task));
    } else {
      wg->BlockUntilFinishedUntil(deadline);
    }
  }
  if (!wg->Finished()) return false;
  wg->RethrowIfError();
  return true;
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t lane, size_t i)>& fn) {
  if (n == 0) return;
  const size_t lanes = threads_ < n ? threads_ : n;
  if (lanes <= 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  // Dynamic scheduling: lanes claim indices from a shared cursor, so a
  // skewed iteration (one huge first-level projection) does not leave the
  // other lanes idle. Each lane is one task; the caller runs lane 0.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  WaitGroup wg;
  const auto lane_body = [&fn, next, n](size_t lane) {
    size_t i;
    while ((i = next->fetch_add(1, std::memory_order_relaxed)) < n) {
      fn(lane, i);
    }
  };
  for (size_t lane = 1; lane < lanes; ++lane) {
    Submit(&wg, [lane_body, lane] { lane_body(lane); });
  }
  try {
    lane_body(0);
  } catch (...) {
    wg.CaptureException(std::current_exception());
  }
  Wait(&wg);
}

std::shared_ptr<ThreadPool> ThreadPool::Global() {
  if (tls_override_pool) return tls_override_pool;
  GlobalPoolState& state = GlobalState();
  MutexLock lock(state.mu);
  if (!state.pool) {
    state.pool = std::make_shared<ThreadPool>(DefaultThreads());
  }
  return state.pool;
}

void ThreadPool::SetGlobalThreads(size_t threads) {
  GlobalPoolState& state = GlobalState();
  const size_t n = threads == 0 ? DefaultThreads() : threads;
  std::shared_ptr<ThreadPool> old;
  {
    MutexLock lock(state.mu);
    if (state.pool && state.pool->threads() == n) return;
    old = std::move(state.pool);
    state.pool = std::make_shared<ThreadPool>(n);
  }
  // The old pool is released outside the lock; it is destroyed (joining
  // its workers) when the last run still holding it drops its reference.
}

size_t ThreadPool::GlobalThreads() {
  if (tls_override_pool) return tls_override_pool->threads();
  GlobalPoolState& state = GlobalState();
  MutexLock lock(state.mu);
  return state.pool ? state.pool->threads() : DefaultThreads();
}

ThreadPool::ScopedThreads::ScopedThreads(size_t threads) {
  if (threads == 0) return;
  active_ = true;
  previous_ = std::move(tls_override_pool);
  tls_override_pool = OverridePoolFor(threads);
}

ThreadPool::ScopedThreads::~ScopedThreads() {
  if (active_) tls_override_pool = std::move(previous_);
}

size_t ThreadPool::DefaultThreads() {
  const std::string env = GetEnvOrEmpty("GOGREEN_THREADS");
  if (!env.empty()) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<size_t>(v);
    }
    GOGREEN_LOG(Warning) << "ignoring invalid GOGREEN_THREADS='" << env
                         << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw < 1 ? 1 : static_cast<size_t>(hw);
}

}  // namespace gogreen
