// Status and Result<T>: exception-free error propagation in the style of
// Apache Arrow / RocksDB. Library code returns Status (or Result<T>) for any
// operation that can fail for reasons other than programmer error; programmer
// errors are checked with assertions (see logging.h).

#ifndef GOGREEN_UTIL_STATUS_H_
#define GOGREEN_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace gogreen {

/// Broad classification of an error. Kept deliberately small: callers almost
/// always branch only on ok()/!ok(), codes exist for tests and diagnostics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// An immutable (success | error) outcome. Cheap to copy in the success case:
/// the OK status carries no allocation. [[nodiscard]]: silently dropping an
/// error is the bug class the annotation exists to kill — callers must
/// propagate, handle, or explicitly void-cast a Status.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    assert(code != StatusCode::kOk);
    rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null iff OK; shared so Status copies are cheap and value-semantic.
  std::shared_ptr<const Rep> rep_;
};

/// Either a value of type T or an error Status. Mirrors arrow::Result.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from error Status: lets functions `return value;`
  /// or `return Status::...;` directly (the Arrow idiom).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Value access; asserts ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status to the caller.
#define GOGREEN_RETURN_NOT_OK(expr)           \
  do {                                        \
    ::gogreen::Status _st = (expr);           \
    if (!_st.ok()) return _st;                \
  } while (false)

#define GOGREEN_CONCAT_IMPL(x, y) x##y
#define GOGREEN_CONCAT(x, y) GOGREEN_CONCAT_IMPL(x, y)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define GOGREEN_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto GOGREEN_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (!GOGREEN_CONCAT(_res_, __LINE__).ok())                        \
    return GOGREEN_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(GOGREEN_CONCAT(_res_, __LINE__)).value()

}  // namespace gogreen

#endif  // GOGREEN_UTIL_STATUS_H_
