#include "util/run_context.h"

#include "util/failpoint.h"

namespace gogreen {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kDeadlineExceeded:
      return "deadline-exceeded";
    case StopReason::kMemoryBudgetExceeded:
      return "memory-budget-exceeded";
  }
  return "?";
}

Status RunContext::StopStatus() const {
  switch (stop_reason()) {
    case StopReason::kNone:
      return Status::OK();
    case StopReason::kCancelled:
      return Status::Cancelled("run cancelled");
    case StopReason::kDeadlineExceeded:
      return Status::DeadlineExceeded("run deadline exceeded");
    case StopReason::kMemoryBudgetExceeded:
      return Status::ResourceExhausted("run memory budget exceeded");
  }
  return Status::Internal("unknown stop reason");
}

void RunContext::SetWakeup(std::function<void()> wakeup) {
  bool fire_now = false;
  {
    MutexLock lock(wake_mu_);
    wakeup_ = std::move(wakeup);
    fire_now = wakeup_ != nullptr && stopped();
  }
  // Registered after the trip: deliver the (single) wakeup immediately so
  // the caller never parks waiting for a notification that already fired.
  if (fire_now) NotifyWakeup();
}

void RunContext::NotifyWakeup() {
  // Invoke under wake_mu_: SetWakeup(nullptr) then blocks until the
  // callback returns, which is what makes ScopedWakeup's captures safe to
  // destroy after scope exit. Callbacks must therefore stay tiny.
  MutexLock lock(wake_mu_);
  if (wakeup_) wakeup_();
}

void RunContext::AddBytes(size_t n) {
  const size_t now = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  if (budget_ != 0 && now > budget_) {
    Trip(StopReason::kMemoryBudgetExceeded);
  }
  if (failpoint::Enabled() && !failpoint::MaybeFail("alloc.charge").ok()) {
    Trip(StopReason::kMemoryBudgetExceeded);
  }
}

void RunContext::MarkIncomplete(uint64_t frontier_support) {
  uint64_t seen = frontier_.load(std::memory_order_relaxed);
  while (frontier_support > seen &&
         !frontier_.compare_exchange_weak(seen, frontier_support,
                                          std::memory_order_release)) {
  }
  incomplete_.store(true, std::memory_order_release);
}

}  // namespace gogreen
