// Bump-pointer arena allocator with byte accounting. Used by the tree-based
// miners (FP-tree, Tree Projection) so that node allocation is cheap and the
// memory-limited drivers can observe actual structure sizes.

#ifndef GOGREEN_UTIL_ARENA_H_
#define GOGREEN_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "util/logging.h"

namespace gogreen {

/// Monotonic allocator: individual objects are never freed; Reset() releases
/// everything at once. Objects allocated from an Arena must be trivially
/// destructible or have their destructors managed by the caller.
class Arena {
 public:
  explicit Arena(size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` with the given alignment (power of two).
  void* Allocate(size_t bytes, size_t alignment = alignof(std::max_align_t)) {
    GOGREEN_DCHECK((alignment & (alignment - 1)) == 0);
    // Align the actual address, not the block offset: operator new[] only
    // guarantees alignof(max_align_t).
    size_t pos = AlignedCursor(alignment);
    if (current_ == nullptr || pos + bytes > current_size_) {
      NewBlock(bytes + alignment);
      pos = AlignedCursor(alignment);
    }
    void* out = current_ + pos;
    cursor_ = pos + bytes;
    allocated_bytes_ += bytes;
    return out;
  }

  /// Allocates and default-constructs a T. T must be trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena-allocated types must be trivially destructible");
    return new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Allocates an uninitialized array of n Ts.
  template <typename T>
  T* NewArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena-allocated types must be trivially destructible");
    return static_cast<T*>(Allocate(sizeof(T) * n, alignof(T)));
  }

  /// Total bytes handed out to callers (excludes block slack).
  size_t allocated_bytes() const { return allocated_bytes_; }

  /// Total bytes reserved from the system (includes slack).
  size_t reserved_bytes() const { return reserved_bytes_; }

  /// Frees all blocks; outstanding pointers become dangling.
  void Reset() {
    blocks_.clear();
    current_ = nullptr;
    current_size_ = 0;
    cursor_ = 0;
    allocated_bytes_ = 0;
    reserved_bytes_ = 0;
  }

 private:
  static constexpr size_t kDefaultBlockSize = 1u << 16;

  /// Smallest cursor position >= cursor_ whose address is aligned.
  size_t AlignedCursor(size_t alignment) const {
    if (current_ == nullptr) return cursor_;
    const uintptr_t addr = reinterpret_cast<uintptr_t>(current_) + cursor_;
    const uintptr_t aligned = (addr + alignment - 1) & ~(alignment - 1);
    return cursor_ + static_cast<size_t>(aligned - addr);
  }

  void NewBlock(size_t min_bytes) {
    size_t size = block_size_;
    if (size < min_bytes) size = min_bytes;
    blocks_.push_back(std::make_unique<char[]>(size));
    current_ = blocks_.back().get();
    current_size_ = size;
    cursor_ = 0;
    reserved_bytes_ += size;
  }

  size_t block_size_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* current_ = nullptr;
  size_t current_size_ = 0;
  size_t cursor_ = 0;
  size_t allocated_bytes_ = 0;
  size_t reserved_bytes_ = 0;
};

}  // namespace gogreen

#endif  // GOGREEN_UTIL_ARENA_H_
