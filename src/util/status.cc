#include "util/status.h"

namespace gogreen {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace gogreen
