#include "util/status_codes.h"

#include <array>
#include <utility>

namespace gogreen {

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kPartial:
      return "partial";
    case Outcome::kDegraded:
      return "degraded";
    case Outcome::kShed:
      return "shed";
    case Outcome::kError:
      return "error";
  }
  return "error";
}

std::string OutcomeLabel(Outcome outcome, StatusCode error_code) {
  if (outcome != Outcome::kError) return OutcomeName(outcome);
  return std::string("error:") + StatusCodeToString(error_code);
}

bool ParseOutcomeLabel(const std::string& label, Outcome* outcome,
                       StatusCode* error_code) {
  if (label == "ok") {
    *outcome = Outcome::kOk;
    *error_code = StatusCode::kOk;
    return true;
  }
  if (label == "partial") {
    *outcome = Outcome::kPartial;
    *error_code = StatusCode::kOk;
    return true;
  }
  if (label == "degraded") {
    *outcome = Outcome::kDegraded;
    *error_code = StatusCode::kOk;
    return true;
  }
  if (label == "shed") {
    *outcome = Outcome::kShed;
    *error_code = StatusCode::kOk;
    return true;
  }
  if (label.rfind("error", 0) == 0 &&
      (label.size() == 5 || label[5] == ':')) {
    *outcome = Outcome::kError;
    *error_code = label.size() > 6 ? StatusCodeFromString(label.substr(6))
                                   : StatusCode::kInternal;
    return true;
  }
  return false;
}

StatusCode StatusCodeFromString(const std::string& name) {
  static constexpr std::array<StatusCode, 10> kCodes = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kIOError,      StatusCode::kNotFound,
      StatusCode::kOutOfRange,   StatusCode::kResourceExhausted,
      StatusCode::kInternal,     StatusCode::kNotImplemented,
      StatusCode::kCancelled,    StatusCode::kDeadlineExceeded,
  };
  for (const StatusCode code : kCodes) {
    if (name == StatusCodeToString(code)) return code;
  }
  return StatusCode::kInternal;
}

Outcome ClassifyOutcome(const Status& status, bool partial, bool degraded,
                        bool shed) {
  if (shed) return Outcome::kShed;
  if (!status.ok()) return Outcome::kError;
  if (degraded) return Outcome::kDegraded;
  if (partial) return Outcome::kPartial;
  return Outcome::kOk;
}

int ExitCodeForStatus(const Status& status, bool data_error, bool partial) {
  if (status.ok()) return partial ? kExitPartial : kExitOk;
  if (data_error) return kExitData;
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return kExitUsage;
    case StatusCode::kIOError:
    case StatusCode::kNotFound:
      return kExitIo;
    default:
      return kExitInternal;
  }
}

int ExitCodeForOutcome(Outcome outcome, StatusCode error_code) {
  switch (outcome) {
    case Outcome::kOk:
    case Outcome::kDegraded:  // An answer was served, just flagged stale.
      return kExitOk;
    case Outcome::kPartial:
    case Outcome::kShed:  // EX_TEMPFAIL: retrying later can succeed.
      return kExitPartial;
    case Outcome::kError:
      return ExitCodeForStatus(Status(error_code == StatusCode::kOk
                                          ? StatusCode::kInternal
                                          : error_code,
                                      "wire error"));
  }
  return kExitInternal;
}

}  // namespace gogreen
