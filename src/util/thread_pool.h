// A small work-stealing thread pool shared by the parallel mining engine.
//
// Design constraints (see DESIGN.md "Parallel execution"):
//   - Deterministic single-thread fallback: a pool configured with one
//     thread spawns no workers at all; Submit() runs the task inline at the
//     submission point, so `--threads 1` IS the sequential code path.
//   - Caller participation: Wait() and ParallelFor() execute queued tasks
//     on the waiting thread, so nested fan-outs cannot deadlock and the
//     calling thread is one of the N lanes (a pool of N threads means N
//     busy CPUs, not N+1).
//   - Work stealing: each worker owns a deque (LIFO for its own pushes,
//     which keeps nested submissions cache-hot) and steals FIFO from its
//     siblings when dry, which balances skewed first-level projections.
//   - Exceptions propagate: the first exception thrown by any task of a
//     WaitGroup is captured and rethrown by Wait() on the waiting thread.
//
// The global pool is sized by, in priority order: SetGlobalThreads(),
// the GOGREEN_THREADS environment variable, std::thread::hardware_concurrency.

#ifndef GOGREEN_UTIL_THREAD_POOL_H_
#define GOGREEN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace gogreen {

/// Completion tracker for a batch of tasks. Counts submissions and
/// completions and stores the first exception any task threw. A WaitGroup
/// may be reused after a Wait() that returned normally.
///
/// The pending count is guarded by mu_ (not an atomic) so that the zero
/// transition is only observable after the final Done() has released the
/// mutex: once any thread sees Finished() == true, no task is still inside
/// the group's critical section, and the group may be destroyed. This is
/// what lets ParallelFor keep its WaitGroup on the stack.
class WaitGroup {
 public:
  WaitGroup() = default;
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  /// True once every submitted task has finished. Acquires the group's
  /// mutex, so a true return also means the last Done() has fully exited.
  bool Finished() const {
    MutexLock lock(mu_);
    return pending_ == 0;
  }

  /// Blocks until every task finished or `timeout` elapsed, returning
  /// Finished() at that moment. Does not execute tasks and does not rethrow
  /// task exceptions — governed drivers that also want to help-execute use
  /// ThreadPool::WaitFor instead.
  bool WaitFor(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (pending_ != 0) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
    }
    return pending_ == 0;
  }

 private:
  friend class ThreadPool;

  void Add(size_t n) {
    MutexLock lock(mu_);
    pending_ += n;
  }

  void Done() {
    MutexLock lock(mu_);
    if (--pending_ == 0) {
      // PR 2 destruction-race invariant, pinned for the analyzer: the
      // zero transition happens strictly under mu_, so it is observable
      // to Finished()/the wait loops only after this final Done() has
      // released the lock — which is what makes a stack-allocated
      // WaitGroup (ParallelFor) safe to destroy right after a true
      // Finished(). If this notify ever moves outside the critical
      // section, the destruction race comes back.
      mu_.AssertHeld();
      cv_.NotifyAll();
    }
  }

  void CaptureException(std::exception_ptr e) {
    MutexLock lock(mu_);
    if (!first_error_) first_error_ = std::move(e);
  }

  /// Blocks until every task finished; does not execute tasks
  /// (ThreadPool::Wait interleaves this with helping).
  void BlockUntilFinished() {
    MutexLock lock(mu_);
    while (pending_ != 0) cv_.Wait(mu_);
  }

  /// Like BlockUntilFinished but gives up at `deadline`; returns Finished().
  bool BlockUntilFinishedUntil(std::chrono::steady_clock::time_point deadline) {
    MutexLock lock(mu_);
    while (pending_ != 0) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
    }
    return pending_ == 0;
  }

  /// Rethrows the first captured exception, clearing it.
  void RethrowIfError() {
    std::exception_ptr e;
    {
      MutexLock lock(mu_);
      e = std::move(first_error_);
      first_error_ = nullptr;
    }
    if (e) std::rethrow_exception(e);
  }

  mutable Mutex mu_;
  size_t pending_ GUARDED_BY(mu_) = 0;
  CondVar cv_;
  std::exception_ptr first_error_ GUARDED_BY(mu_);
};

class ThreadPool {
 public:
  /// A pool with `threads` lanes of parallelism (>= 1). `threads - 1`
  /// worker threads are spawned; the thread calling Wait()/ParallelFor()
  /// supplies the remaining lane. threads == 1 spawns nothing and runs
  /// every task inline at its submission point.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (>= 1). ParallelFor lane ids are < threads().
  size_t threads() const { return threads_; }

  /// Enqueues `fn`, tracked by `wg`. With a single-thread pool the task
  /// runs inline before Submit returns. Safe to call from inside a task
  /// (nested submission goes to the submitting worker's own deque).
  void Submit(WaitGroup* wg, std::function<void()> fn);

  /// Blocks until every task of `wg` finished, executing queued tasks on
  /// this thread while waiting. Rethrows the first exception any task of
  /// the group threw.
  void Wait(WaitGroup* wg);

  /// Deadline-aware Wait: helps execute queued tasks like Wait(), but gives
  /// up roughly `timeout` after the call (a task already started on this
  /// thread runs to completion first). Returns true — after rethrowing the
  /// group's first task exception, like Wait() — once the group finished;
  /// false on timeout, without consuming any captured exception, so a later
  /// WaitFor/Wait still observes it. Governed runs loop on this to re-poll
  /// their RunContext between waits.
  bool WaitFor(WaitGroup* wg, std::chrono::milliseconds timeout);

  /// Runs fn(lane, i) for every i in [0, n), dynamically load-balanced
  /// across up to threads() lanes; blocks until all iterations finished.
  /// `lane` < threads() identifies the executing lane: no two concurrent
  /// iterations share a lane, so lane-indexed scratch needs no locking.
  /// With one lane, iterations run in order on the caller — the
  /// deterministic sequential fallback. Exceptions propagate (iterations
  /// already started still complete).
  void ParallelFor(size_t n,
                   const std::function<void(size_t lane, size_t i)>& fn);

  /// The process-wide pool used by the parallel miners and compressor.
  /// Created on first use with DefaultThreads() lanes. Returned as a
  /// shared_ptr: callers pin the pool for the duration of a run, so a
  /// concurrent SetGlobalThreads() cannot destroy a pool still in use —
  /// the old pool dies when its last user drops the reference.
  static std::shared_ptr<ThreadPool> Global();

  /// Replaces the global pool with one of `threads` lanes (0 = reset to
  /// DefaultThreads()). Runs already holding a pool from Global() keep
  /// using it; the new size applies to subsequent Global() calls.
  /// Intended for CLI/bench flag handling and tests.
  static void SetGlobalThreads(size_t threads);

  /// Lane count of the global pool without forcing its creation.
  static size_t GlobalThreads();

  /// GOGREEN_THREADS when set to a positive integer, else
  /// hardware_concurrency (at least 1).
  static size_t DefaultThreads();

  /// Calling-thread-scoped parallelism override: while alive, Global() and
  /// GlobalThreads() on *this thread* resolve to a pool of `threads` lanes
  /// instead of the process-wide pool, so concurrent requests with
  /// different thread counts (fpm::MineRequest::threads) never fight over
  /// SetGlobalThreads. Pools are drawn from a small process-wide cache
  /// keyed by lane count, so repeated overrides do not respawn workers.
  /// `threads == 0` is a no-op (the global default stays in effect).
  /// Scopes nest; the previous override is restored on destruction. The
  /// override is only consulted by the requesting thread — pool workers
  /// never resolve Global() — so it composes with the pinned-pool contract
  /// of MineFirstLevelParallel.
  class ScopedThreads {
   public:
    explicit ScopedThreads(size_t threads);
    ~ScopedThreads();
    ScopedThreads(const ScopedThreads&) = delete;
    ScopedThreads& operator=(const ScopedThreads&) = delete;

   private:
    std::shared_ptr<ThreadPool> previous_;
    bool active_ = false;
  };

 private:
  struct Task {
    std::function<void()> fn;
    WaitGroup* wg;
  };

  struct WorkerQueue {
    Mutex mu;
    std::deque<Task> dq GUARDED_BY(mu);
  };

  /// Lane-exclusivity contract (PR 2): the worker loop holds no lock
  /// while running a task — queue mutexes cover only the push/pop, and
  /// idle_mu_ only the sleep — so a task may re-enter Submit()/Wait()
  /// on its own lane without self-deadlock. REQUIRES(!idle_mu_) pins
  /// the "no lock across RunTask" half the analyzer can name.
  void WorkerLoop(size_t worker) REQUIRES(!idle_mu_);
  void RunTask(Task task) REQUIRES(!idle_mu_);
  bool TryGetTask(Task* out) REQUIRES(!idle_mu_);
  void Push(Task task) REQUIRES(!idle_mu_);

  const size_t threads_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // One per worker.
  /// Sleep/wake handshake for idle workers only: the waited-on state
  /// (queued_, stop_) is atomic, so no field names this mutex as its
  /// guard — the lock exists to close the check-then-sleep window.
  // gogreen-lint: allow(orphan-mutex): wait-only mutex pairing idle_cv_
  Mutex idle_mu_;
  CondVar idle_cv_;
  std::atomic<size_t> queued_{0};  // Tasks sitting in some queue.
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace gogreen

#endif  // GOGREEN_UTIL_THREAD_POOL_H_
