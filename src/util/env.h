// Small environment helpers shared by benchmark harnesses: scale factors,
// temp-directory selection.

#ifndef GOGREEN_UTIL_ENV_H_
#define GOGREEN_UTIL_ENV_H_

#include <string>

namespace gogreen {

/// Benchmark dataset scale selected via the GOGREEN_SCALE environment
/// variable: "smoke" (tiny, CI), "default", or "full" (paper-size datasets).
enum class BenchScale { kSmoke, kDefault, kFull };

/// Reads GOGREEN_SCALE (case-insensitive); unknown values map to kDefault.
BenchScale GetBenchScale();

/// Human-readable name of a scale.
const char* BenchScaleName(BenchScale scale);

/// Directory for spill files (TMPDIR or /tmp).
std::string TempDir();

/// Value of an environment variable, or "" when unset.
std::string GetEnvOrEmpty(const char* name);

}  // namespace gogreen

#endif  // GOGREEN_UTIL_ENV_H_
