// Small environment helpers shared by benchmark harnesses: scale factors,
// temp-directory selection, scoped temporary directories.

#ifndef GOGREEN_UTIL_ENV_H_
#define GOGREEN_UTIL_ENV_H_

#include <string>

#include "util/status.h"

namespace gogreen {

/// Benchmark dataset scale selected via the GOGREEN_SCALE environment
/// variable: "smoke" (tiny, CI), "default", or "full" (paper-size datasets).
enum class BenchScale { kSmoke, kDefault, kFull };

/// Reads GOGREEN_SCALE (case-insensitive); unknown values map to kDefault.
BenchScale GetBenchScale();

/// Human-readable name of a scale.
const char* BenchScaleName(BenchScale scale);

/// Directory for spill files (TMPDIR or /tmp).
std::string TempDir();

/// Value of an environment variable, or "" when unset.
std::string GetEnvOrEmpty(const char* name);

/// A uniquely named directory under a parent, removed (with its regular
/// files — contents are expected flat, as the spill writers produce) when
/// the object goes out of scope, whatever the exit path. Moved-from
/// instances own nothing and clean up nothing.
class ScopedTempDir {
 public:
  /// Creates `<parent>/<prefix>XXXXXX` via mkdtemp.
  static Result<ScopedTempDir> Create(const std::string& parent,
                                      const std::string& prefix);

  ScopedTempDir(ScopedTempDir&& other) noexcept : path_(other.path_) {
    other.path_.clear();
  }
  ScopedTempDir& operator=(ScopedTempDir&& other) noexcept;
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;
  ~ScopedTempDir() { Remove(); }

  const std::string& path() const { return path_; }

  /// Releases ownership: the directory is no longer removed on destruction.
  std::string Release();

 private:
  explicit ScopedTempDir(std::string path) : path_(std::move(path)) {}
  void Remove();

  std::string path_;
};

}  // namespace gogreen

#endif  // GOGREEN_UTIL_ENV_H_
