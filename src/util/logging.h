// Minimal logging and checked assertions. GOGREEN_DCHECK* compile away in
// NDEBUG builds; GOGREEN_CHECK* always abort with a message on failure (used
// for invariants whose violation would corrupt results silently).

#ifndef GOGREEN_UTIL_LOGGING_H_
#define GOGREEN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace gogreen {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level actually emitted. Default: kInfo, or the
/// GOGREEN_LOG_LEVEL environment variable when set (see
/// InitLogLevelFromEnv). Each emitted line carries a timestamp, a severity
/// tag, and the source location:
///   [2026-08-06 12:34:56.789 INFO compressor.cc:42] message
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error",
/// case-insensitive. Returns false (leaving `out` untouched) on anything
/// else, including "".
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// Re-reads GOGREEN_LOG_LEVEL (via util/env.h) and applies it; unset or
/// unparseable values leave the current level unchanged. Called
/// automatically before the first log line, and callable again after the
/// environment changes (tests).
void InitLogLevelFromEnv();

namespace internal {

/// Accumulates one log line and flushes it (with prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after flushing.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define GOGREEN_LOG(level)                                              \
  ::gogreen::internal::LogMessage(::gogreen::LogLevel::k##level,        \
                                  __FILE__, __LINE__)

#define GOGREEN_CHECK(cond)                                             \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::gogreen::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define GOGREEN_CHECK_EQ(a, b) GOGREEN_CHECK((a) == (b))
#define GOGREEN_CHECK_NE(a, b) GOGREEN_CHECK((a) != (b))
#define GOGREEN_CHECK_LT(a, b) GOGREEN_CHECK((a) < (b))
#define GOGREEN_CHECK_LE(a, b) GOGREEN_CHECK((a) <= (b))
#define GOGREEN_CHECK_GT(a, b) GOGREEN_CHECK((a) > (b))
#define GOGREEN_CHECK_GE(a, b) GOGREEN_CHECK((a) >= (b))

#ifdef NDEBUG
#define GOGREEN_DCHECK(cond) \
  while (false) GOGREEN_CHECK(cond)
#else
#define GOGREEN_DCHECK(cond) GOGREEN_CHECK(cond)
#endif

#define GOGREEN_DCHECK_EQ(a, b) GOGREEN_DCHECK((a) == (b))
#define GOGREEN_DCHECK_LT(a, b) GOGREEN_DCHECK((a) < (b))
#define GOGREEN_DCHECK_LE(a, b) GOGREEN_DCHECK((a) <= (b))

}  // namespace gogreen

#endif  // GOGREEN_UTIL_LOGGING_H_
