// Clang Thread Safety Analysis vocabulary for the whole tree (DESIGN.md
// §15). Every mutex in the codebase is a `gogreen::Mutex` (or
// `SharedMutex`), every guarded field carries `GUARDED_BY`, and every
// lock-requiring helper carries `REQUIRES` — so a clang++ build with
// `-Wthread-safety -Wthread-safety-beta -Werror` (the `thread-safety` CI
// leg, CMake option GOGREEN_THREAD_SAFETY) *proves* the lock discipline at
// compile time instead of sampling it at runtime the way TSan does.
//
// Under GCC (the local toolchain) every attribute expands to nothing, so
// the wrappers cost exactly one non-virtual call over the std primitives
// they delegate to.
//
// Policy, enforced by gogreen_lint.py:
//   - raw std::mutex / std::shared_mutex / std::condition_variable are
//     forbidden everywhere outside this header (rule `raw-mutex`);
//   - every Mutex member must be referenced by at least one GUARDED_BY /
//     PT_GUARDED_BY field in the same file (rule `orphan-mutex`);
//   - every NO_THREAD_SAFETY_ANALYSIS carries a written invariant
//     explaining why the analyzer cannot model the function.

#ifndef GOGREEN_UTIL_THREAD_ANNOTATIONS_H_
#define GOGREEN_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define GOGREEN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GOGREEN_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) GOGREEN_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define SCOPED_CAPABILITY GOGREEN_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define GUARDED_BY(x) GOGREEN_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x` (the pointer itself is
/// not).
#define PT_GUARDED_BY(x) GOGREEN_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Caller must hold the listed capabilities exclusively (or, with a `!`
/// prefix, must NOT hold them).
#define REQUIRES(...) \
  GOGREEN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Caller must hold the listed capabilities at least in shared mode.
#define REQUIRES_SHARED(...) \
  GOGREEN_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively) and does not release it.
#define ACQUIRE(...) \
  GOGREEN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function acquires the capability in shared mode.
#define ACQUIRE_SHARED(...) \
  GOGREEN_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive or shared).
#define RELEASE(...) \
  GOGREEN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function releases a shared hold of the capability.
#define RELEASE_SHARED(...) \
  GOGREEN_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value that means "acquired".
#define TRY_ACQUIRE(...) \
  GOGREEN_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock / lock-ordering
/// guard; see DESIGN.md §15 for the orderings this encodes).
#define EXCLUDES(...) GOGREEN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares (to the analyzer) that the capability is held at this point;
/// a runtime assertion backs the claim.
#define ASSERT_CAPABILITY(x) \
  GOGREEN_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) GOGREEN_THREAD_ANNOTATION__(lock_returned(x))

/// Turns the analysis off for one function. POLICY: every use carries a
/// comment starting "Invariant:" explaining why the analyzer cannot model
/// the function and what actually keeps it safe.
#define NO_THREAD_SAFETY_ANALYSIS \
  GOGREEN_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace gogreen {

/// Annotated exclusive mutex. Delegates to std::mutex; the capability
/// attribute is what lets clang track which fields it guards.
///
/// Invariant (for the NO_THREAD_SAFETY_ANALYSIS on the bodies below and
/// in SharedMutex): this is the bottom of the wrapper stack — the bodies
/// delegate to the unannotated libstdc++ primitives, which the analyzer
/// cannot see acquire or release anything. The attribute on each
/// declaration is the ground truth the rest of the tree is checked
/// against.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() RELEASE() NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) NO_THREAD_SAFETY_ANALYSIS {
    return mu_.try_lock();
  }

  /// Tells the analyzer the lock is held on this path (e.g. reached only
  /// via a caller that holds it through a non-annotatable indirection).
  /// No runtime check: std::mutex cannot report its owner portably.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  /// For CondVar, which needs the underlying BasicLockable.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Annotated reader/writer mutex over std::shared_mutex.
class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  // Invariant: bottom-of-stack delegation to unannotated std primitives;
  // see the Mutex class comment.
  void lock() ACQUIRE() NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() RELEASE() NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) NO_THREAD_SAFETY_ANALYSIS {
    return mu_.try_lock();
  }

  void lock_shared() ACQUIRE_SHARED() NO_THREAD_SAFETY_ANALYSIS {
    mu_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock_shared();
  }
  bool try_lock_shared() TRY_ACQUIRE(true) NO_THREAD_SAFETY_ANALYSIS {
    return mu_.try_lock_shared();
  }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock. Relockable: Unlock()/Lock() let a scope drop the
/// lock across a blocking call (the mining_service follower poll) while
/// the analyzer still tracks the held/released state.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  void Lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  // Invariant: conditional release — `held_` is only false after an
  // explicit Unlock(), which already told the analyzer the lock was
  // dropped, so the runtime branch and the analyzer's model agree on
  // every path even though the analyzer cannot read `held_`.
  ~MutexLock() RELEASE() NO_THREAD_SAFETY_ANALYSIS {
    if (held_) mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  ~WriterLock() RELEASE() { mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to gogreen::Mutex. Wait/WaitUntil/WaitFor
/// require the mutex held on entry and hold it again on return, exactly
/// like std::condition_variable — the temporary release inside the wait
/// is invisible to callers and to the analyzer alike.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Invariant: the wait atomically releases `mu` and re-acquires it
  // before returning; the analyzer cannot model a release-then-reacquire
  // inside one call, so callers see (correctly) "held before, held
  // after".
  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Invariant: same release-then-reacquire shape as Wait(Mutex&).
  //
  // No predicate overloads on purpose: the analyzer checks lambda bodies
  // standalone, so a predicate reading a guarded field would be flagged
  // even though the wait holds the lock when it runs. Callers write the
  // `while (!cond) cv.Wait(mu);` loop inline, where the analysis sees the
  // lock correctly.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::time_point<Clock, Duration> deadline)
      REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gogreen

#endif  // GOGREEN_UTIL_THREAD_ANNOTATIONS_H_
