// Run governor: a per-run context carrying a deadline, a memory budget, and
// a cooperative cancel flag, threaded through the miners, the compressor
// cover loop, and the disk-spill driver.
//
// Cooperation model (see DESIGN.md "Run governance & fault injection"):
//   - Workers call ShouldStop() at recursion entries and between sibling
//     subtrees. It is cheap — two relaxed atomic reads plus an amortized
//     clock read — so it may sit in per-extension loops without measurable
//     overhead; with no context attached the miners skip it entirely.
//   - Drivers call PollNow() at shard/partition boundaries; it always reads
//     the clock, so a deadline trips within one shard boundary even if no
//     inner check happens to sample the clock.
//   - The stop flag is sticky: once any of the three conditions trips, every
//     subsequent check returns true and the first reason is kept.
//   - Memory accounting is cooperative too: miners charge their dominant
//     scratch structures (suffix buckets, conditional trees, projected
//     slices) through AddBytes/ReleaseBytes, usually via ScopedBytes. A
//     charge that lands above the budget trips the stop flag; the charge
//     itself always succeeds, so the structure that tripped the budget stays
//     valid while the run unwinds to a pattern-set boundary.
//   - A stopped run is not automatically a partial result. Drivers that had
//     to abandon work call MarkIncomplete(frontier) with the support level
//     down to which the emitted set is complete; a run that tripped the
//     deadline after the last subtree finished stays complete.

#ifndef GOGREEN_UTIL_RUN_CONTEXT_H_
#define GOGREEN_UTIL_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace gogreen {

/// Why a governed run stopped early. The first condition to trip wins.
enum class StopReason : uint8_t {
  kNone = 0,
  kCancelled,
  kDeadlineExceeded,
  kMemoryBudgetExceeded,
};

const char* StopReasonName(StopReason reason);

class RunContext {
 public:
  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // --- Configuration (set before the run starts; not thread-safe). ---

  /// Arms a deadline `millis` from now (monotonic clock).
  void SetDeadlineAfterMillis(int64_t millis) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(millis));
  }

  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Arms a budget on cooperatively-accounted bytes. 0 disarms.
  void SetMemoryBudget(size_t bytes) { budget_ = bytes; }

  bool has_deadline() const { return has_deadline_; }

  /// Meaningful only when has_deadline(): the armed absolute deadline, for
  /// waiters that want to sleep until it (rather than poll ShouldStop).
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// The armed byte budget; 0 when disarmed.
  size_t memory_budget() const { return budget_; }

  /// Tags this run with the serving-layer request id so trace spans,
  /// metric deltas, and governor outcomes attribute back to one wide
  /// event (obs::RequestLog). 0 = not request-scoped.
  void SetRequestId(uint64_t id) { request_id_ = id; }
  uint64_t request_id() const { return request_id_; }

  // --- Cancellation (thread-safe). ---

  /// Requests cooperative cancellation; workers stop at their next check.
  void RequestCancel() { Trip(StopReason::kCancelled); }

  /// Registers a callback invoked exactly once when the stop flag trips
  /// (from whichever thread trips it), so blocked waiters — e.g. a
  /// coalesced follower parked on a condition variable — can be woken
  /// instead of polling. If the context is already stopped the callback
  /// fires immediately. Pass nullptr to clear; clearing blocks until any
  /// in-flight invocation returns, so after SetWakeup(nullptr) the
  /// callback's captures are safe to destroy. The callback runs under an
  /// internal mutex: keep it tiny (lock + notify) and never call back
  /// into SetWakeup from inside it.
  void SetWakeup(std::function<void()> wakeup);

  // --- Polling (thread-safe; called from worker lanes). ---

  /// Cheap sticky stop check for inner loops: always sees cancellation and
  /// budget breaches, samples the deadline clock once every few calls.
  bool ShouldStop() {
    if (stopped()) return true;
    if (budget_ != 0 && bytes_.load(std::memory_order_relaxed) > budget_) {
      Trip(StopReason::kMemoryBudgetExceeded);
      return true;
    }
    if (has_deadline_ &&
        (poll_counter_.fetch_add(1, std::memory_order_relaxed) &
         kClockPollMask) == 0) {
      return CheckDeadline();
    }
    return false;
  }

  /// Stop check for shard/partition boundaries: like ShouldStop() but always
  /// reads the clock, so deadline detection latency is bounded by the shard
  /// granularity rather than the inner-poll cadence.
  bool PollNow() {
    if (ShouldStop()) return true;
    return has_deadline_ ? CheckDeadline() : false;
  }

  /// True once any stop condition tripped (no side effects).
  bool stopped() const {
    return reason_.load(std::memory_order_acquire) !=
           static_cast<uint8_t>(StopReason::kNone);
  }

  StopReason stop_reason() const {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

  /// The error status describing why the run stopped; OK if it did not.
  Status StopStatus() const;

  // --- Memory accounting (thread-safe). ---

  /// Charges `n` bytes of scratch against the budget. Never fails; a charge
  /// that exceeds the budget trips the stop flag instead (the caller's
  /// structure stays live while the run unwinds). Also the seam for the
  /// `alloc.charge` failpoint, which forces a budget trip.
  void AddBytes(size_t n);

  void ReleaseBytes(size_t n) {
    bytes_.fetch_sub(n, std::memory_order_relaxed);
  }

  size_t bytes_in_use() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// High-water mark of cooperatively-accounted bytes over the run.
  size_t bytes_peak() const { return peak_.load(std::memory_order_relaxed); }

  // --- Partial-result bookkeeping (thread-safe). ---

  /// Records that mining work was abandoned and the emitted set is only
  /// guaranteed complete for supports >= `frontier_support`. Multiple marks
  /// keep the largest (most conservative) frontier.
  void MarkIncomplete(uint64_t frontier_support);

  bool incomplete() const {
    return incomplete_.load(std::memory_order_acquire);
  }

  /// Meaningful only when incomplete(): the support level down to which the
  /// emitted patterns form the complete frequent set.
  uint64_t frontier_support() const {
    return frontier_.load(std::memory_order_acquire);
  }

 private:
  // ShouldStop() samples the clock once per (mask + 1) calls.
  static constexpr uint32_t kClockPollMask = 15;

  bool CheckDeadline() {
    if (std::chrono::steady_clock::now() >= deadline_) {
      Trip(StopReason::kDeadlineExceeded);
      return true;
    }
    return false;
  }

  void Trip(StopReason reason) {
    uint8_t expected = static_cast<uint8_t>(StopReason::kNone);
    if (reason_.compare_exchange_strong(expected,
                                        static_cast<uint8_t>(reason),
                                        std::memory_order_acq_rel)) {
      NotifyWakeup();  // First (and only) trip wakes any parked waiter.
    }
  }

  void NotifyWakeup();

  Mutex wake_mu_;
  std::function<void()> wakeup_ GUARDED_BY(wake_mu_);

  std::atomic<uint8_t> reason_{static_cast<uint8_t>(StopReason::kNone)};
  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint32_t> poll_counter_{0};
  std::atomic<bool> incomplete_{false};
  std::atomic<uint64_t> frontier_{0};

  // Written once before the run; read-only from worker lanes.
  uint64_t request_id_ = 0;
  size_t budget_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// RAII wakeup registration against a (possibly null) RunContext: clears
/// the callback on scope exit (blocking until any in-flight invocation
/// returns), so captures never outlive the scope. No-op with a null
/// context.
class ScopedWakeup {
 public:
  ScopedWakeup(RunContext* ctx, std::function<void()> wakeup) : ctx_(ctx) {
    if (ctx_ != nullptr) ctx_->SetWakeup(std::move(wakeup));
  }
  ~ScopedWakeup() {
    if (ctx_ != nullptr) ctx_->SetWakeup(nullptr);
  }
  ScopedWakeup(const ScopedWakeup&) = delete;
  ScopedWakeup& operator=(const ScopedWakeup&) = delete;

 private:
  RunContext* ctx_;
};

/// RAII byte charge against a (possibly null) RunContext. With a null
/// context both ends are no-ops, so ungoverned runs pay nothing.
class ScopedBytes {
 public:
  ScopedBytes(RunContext* ctx, size_t n) : ctx_(ctx), n_(n) {
    if (ctx_ != nullptr) ctx_->AddBytes(n_);
  }
  ~ScopedBytes() {
    if (ctx_ != nullptr) ctx_->ReleaseBytes(n_);
  }
  ScopedBytes(const ScopedBytes&) = delete;
  ScopedBytes& operator=(const ScopedBytes&) = delete;

 private:
  RunContext* ctx_;
  size_t n_;
};

}  // namespace gogreen

#endif  // GOGREEN_UTIL_RUN_CONTEXT_H_
