// Failpoints: deterministic fault injection at IO, allocation, and
// thread-pool seams, so error-recovery paths are exercised by tests and CI
// rather than only by real hardware faults.
//
// A site is a short dotted name compiled into the code next to the operation
// it guards ("spill.write", "dat_io.read", ...). Sites are armed from the
// GOGREEN_FAILPOINTS environment variable (read once, lazily) or from tests
// via ScopedFailpoints. Spec syntax, comma-separated:
//
//   site:action[@probability]
//
// e.g. GOGREEN_FAILPOINTS="dat_io.read:ioerror@0.3,spill.write:ioerror"
//
// Actions: `ioerror` injects Status::IOError, `oom` injects
// Status::ResourceExhausted. The probability defaults to 1.0; rolls come
// from a process-wide deterministic PRNG, so a fixed spec yields a
// reproducible fault sequence. Disarmed sites cost one relaxed atomic load.

#ifndef GOGREEN_UTIL_FAILPOINT_H_
#define GOGREEN_UTIL_FAILPOINT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/status.h"

namespace gogreen::failpoint {

/// True when any site is armed (fast path; inlined check before the
/// registry lookup inside MaybeFail, exposed for callers that want to skip
/// work when injection is off).
bool Enabled();

/// Returns the injected error if `site` is armed and its probability roll
/// fires; OK otherwise. Call at the top of the guarded operation.
Status MaybeFail(std::string_view site);

/// Replaces the armed set with `spec` (empty disarms everything). Invalid
/// entries are skipped with a warning. The GOGREEN_FAILPOINTS environment
/// variable is applied once, before the first Arm/MaybeFail/Enabled call.
void Arm(const std::string& spec);

/// Disarms every site.
void Clear();

/// The currently armed spec, normalized ("" when disarmed).
std::string CurrentSpec();

/// Every failpoint site compiled into the tree, sorted, one entry per
/// MaybeFail call site. This is the authoritative registry:
/// tools/lint/gogreen_lint.py fails CI when the call-site literals and this
/// list drift apart, and Arm() warns when a spec names a site that is not
/// listed (almost always a typo that would silently inject nothing).
std::span<const std::string_view> KnownSites();

/// True when `site` names a compiled-in failpoint.
bool IsKnownSite(std::string_view site);

/// Number of times `site` actually injected a failure.
uint64_t HitCount(const std::string& site);

/// RAII spec override for tests: arms `spec` on construction and restores
/// the previously armed spec (e.g. the environment's) on destruction.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec);
  ~ScopedFailpoints();
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

 private:
  std::string previous_;
};

}  // namespace gogreen::failpoint

#endif  // GOGREEN_UTIL_FAILPOINT_H_
