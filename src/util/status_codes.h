// The one Status ↔ sysexits ↔ wire-outcome mapping (DESIGN.md §16).
//
// Three views of "how did this request end" used to live in three places:
// the CLI's sysexits switch (gogreen_cli.cc), the serving layer's outcome
// strings (ServeStats::outcome, the wide-event `outcome` field), and the
// session REPL's exit-code decisions. They are the same five-way
// classification:
//
//   ok        — complete answer
//   partial   — governor stopped the run early; exact at the frontier
//   degraded  — admission served a stale/frontier store entry instead of
//               mining (DESIGN.md §14)
//   shed      — admission rejected the request (retry-after hint attached)
//   error:<C> — typed failure, <C> a StatusCode name
//
// This header owns that classification: the typed `Outcome` enum, its
// canonical wire labels, the parse back from a label, and the sysexits
// projection. CLI, session driver, daemon, and client all include it, so a
// new outcome (or a changed exit code) is one edit.

#ifndef GOGREEN_UTIL_STATUS_CODES_H_
#define GOGREEN_UTIL_STATUS_CODES_H_

#include <string>

#include "util/status.h"

namespace gogreen {

// Process exit codes, sysexits.h where one fits (see the table in
// tools/gogreen_cli.cc's file comment).
inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 64;     ///< EX_USAGE: bad command line.
inline constexpr int kExitData = 65;      ///< EX_DATAERR: malformed input.
inline constexpr int kExitInternal = 70;  ///< EX_SOFTWARE.
inline constexpr int kExitIo = 74;        ///< EX_IOERR.
inline constexpr int kExitPartial = 75;   ///< EX_TEMPFAIL: partial result.

/// Typed request outcome shared by ServeStats, the wide-event schema, the
/// wire protocol, and exit-code decisions.
enum class Outcome {
  kOk = 0,
  kPartial,
  kDegraded,
  kShed,
  kError,
};

/// Canonical label: "ok" | "partial" | "degraded" | "shed" | "error".
const char* OutcomeName(Outcome outcome);

/// The wire/wide-event form: OutcomeName, except kError renders as
/// "error:<Code>" ("error:IOError"). These are exactly the strings
/// ServeStats::outcome has always carried.
std::string OutcomeLabel(Outcome outcome,
                         StatusCode error_code = StatusCode::kOk);

/// Inverse of OutcomeLabel. Returns false (outputs untouched) on an
/// unrecognized label; "error" with an unknown code parses as kInternal.
bool ParseOutcomeLabel(const std::string& label, Outcome* outcome,
                       StatusCode* error_code);

/// Inverse of StatusCodeToString; unrecognized names map to kInternal (the
/// conservative reading of an error we cannot classify).
StatusCode StatusCodeFromString(const std::string& name);

/// Classifies a finished request. `status` is the terminal Status,
/// `partial`/`degraded`/`shed` the ServeStats flags. A shed request carries
/// a non-OK status but is its own outcome, not an error.
Outcome ClassifyOutcome(const Status& status, bool partial, bool degraded,
                        bool shed);

/// The sysexits projection of a terminal Status. `data_error` routes an
/// InvalidArgument to EX_DATAERR (malformed file content, not a bad
/// command line); `partial` turns an OK into EX_TEMPFAIL.
int ExitCodeForStatus(const Status& status, bool data_error = false,
                      bool partial = false);

/// The sysexits projection of a wire outcome, as `gogreen client` reports
/// it: ok/degraded exit 0 (an answer was served), partial/shed exit
/// EX_TEMPFAIL (retry relaxes or retries), error projects its StatusCode.
int ExitCodeForOutcome(Outcome outcome,
                       StatusCode error_code = StatusCode::kOk);

}  // namespace gogreen

#endif  // GOGREEN_UTIL_STATUS_CODES_H_
