#include "util/env.h"

#include <cstdlib>

#include <algorithm>
#include <cctype>

namespace gogreen {

BenchScale GetBenchScale() {
  const char* raw = std::getenv("GOGREEN_SCALE");
  if (raw == nullptr) return BenchScale::kDefault;
  std::string v(raw);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "smoke") return BenchScale::kSmoke;
  if (v == "full") return BenchScale::kFull;
  return BenchScale::kDefault;
}

const char* BenchScaleName(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return "smoke";
    case BenchScale::kDefault:
      return "default";
    case BenchScale::kFull:
      return "full";
  }
  return "?";
}

std::string TempDir() {
  const char* tmp = std::getenv("TMPDIR");
  if (tmp != nullptr && tmp[0] != '\0') return tmp;
  return "/tmp";
}

std::string GetEnvOrEmpty(const char* name) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? std::string() : std::string(raw);
}

}  // namespace gogreen
