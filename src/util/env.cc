#include "util/env.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <algorithm>
#include <cctype>
#include <vector>

namespace gogreen {

BenchScale GetBenchScale() {
  const char* raw = std::getenv("GOGREEN_SCALE");
  if (raw == nullptr) return BenchScale::kDefault;
  std::string v(raw);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "smoke") return BenchScale::kSmoke;
  if (v == "full") return BenchScale::kFull;
  return BenchScale::kDefault;
}

const char* BenchScaleName(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return "smoke";
    case BenchScale::kDefault:
      return "default";
    case BenchScale::kFull:
      return "full";
  }
  return "?";
}

std::string TempDir() {
  const char* tmp = std::getenv("TMPDIR");
  if (tmp != nullptr && tmp[0] != '\0') return tmp;
  return "/tmp";
}

std::string GetEnvOrEmpty(const char* name) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? std::string() : std::string(raw);
}

Result<ScopedTempDir> ScopedTempDir::Create(const std::string& parent,
                                            const std::string& prefix) {
  std::string templ = parent + "/" + prefix + "XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) {
    return Status::IOError("cannot create temp directory under " + parent +
                           ": " + std::strerror(errno));
  }
  return ScopedTempDir(std::string(buf.data()));
}

ScopedTempDir& ScopedTempDir::operator=(ScopedTempDir&& other) noexcept {
  if (this != &other) {
    Remove();
    path_ = other.path_;
    other.path_.clear();
  }
  return *this;
}

std::string ScopedTempDir::Release() {
  std::string released = path_;
  path_.clear();
  return released;
}

void ScopedTempDir::Remove() {
  if (path_.empty()) return;
  if (DIR* dir = opendir(path_.c_str())) {
    while (const dirent* entry = readdir(dir)) {
      const char* name = entry->d_name;
      if (std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) {
        continue;
      }
      std::remove((path_ + "/" + name).c_str());
    }
    closedir(dir);
  }
  rmdir(path_.c_str());
  path_.clear();
}

}  // namespace gogreen
