#include "util/failpoint.h"

#include <atomic>
#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/env.h"
#include "util/thread_annotations.h"
#include "util/logging.h"
#include "util/random.h"

namespace gogreen::failpoint {

namespace {

// Authoritative list of the failpoint sites compiled into the tree, one
// entry per MaybeFail call site, sorted. tools/lint/gogreen_lint.py
// cross-checks the call-site literals against this list; update both when
// adding or removing a seam.
constexpr std::string_view kKnownSites[] = {
    "admission.queue",  // admission.cc: wait-queue admission decision
    "admission.quota",  // admission.cc: per-tenant token-bucket check
    "alloc.charge",  // run_context.cc: cooperative byte charge
    "breaker.trip",  // admission.cc: forced failure of a dispatched mine
    "coalesce.leader",  // mining_service.cc: single-flight leader mine
    "dat_io.open",   // dat_io.cc: dataset open
    "dat_io.read",   // dat_io.cc: dataset read
    "dat_io.write",  // dat_io.cc: dataset write
    "pattern_io.rename",  // pattern_io.cc: atomic-publish commit
    "pattern_io.write",   // pattern_io.cc: pattern-file write open
    "spill.finish",  // disk_recycle.cc: spill-partition finalize
    "spill.open",    // disk_recycle.cc: spill-partition open
    "spill.read",    // disk_recycle.cc: spill-partition read
    "spill.write",   // disk_recycle.cc: spill-partition write
};

enum class Action { kIOError, kOom };

struct Site {
  Action action = Action::kIOError;
  double probability = 1.0;
  uint64_t hits = 0;
};

// Fast path: a single relaxed load decides whether any registry work is
// needed; disarmed builds pay nothing else.
std::atomic<bool> g_enabled{false};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, Site> sites GUARDED_BY(mu);
  std::string spec GUARDED_BY(mu);
  // Rolls are deterministic for a fixed spec and call sequence.
  Random rng GUARDED_BY(mu){0x90559eef0aULL};
};

Registry& GetRegistry() {
  // gogreen-lint: allow(naked-new): intentionally leaked process singleton
  static Registry* registry = new Registry();
  return *registry;
}

// Applies `spec` to the registry. Caller holds reg.mu.
void ArmLocked(Registry& reg, const std::string& spec) REQUIRES(reg.mu) {
  reg.sites.clear();
  reg.spec.clear();
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      GOGREEN_LOG(Warning) << "ignoring malformed failpoint entry '" << entry
                           << "' (want site:action[@prob])";
      continue;
    }
    Site site;
    std::string action = entry.substr(colon + 1);
    const size_t at = action.find('@');
    if (at != std::string::npos) {
      const std::string prob = action.substr(at + 1);
      action.resize(at);
      char* end = nullptr;
      site.probability = std::strtod(prob.c_str(), &end);
      if (end == prob.c_str() || *end != '\0' || site.probability < 0.0 ||
          site.probability > 1.0) {
        GOGREEN_LOG(Warning) << "ignoring failpoint entry '" << entry
                             << "': bad probability '" << prob << "'";
        continue;
      }
    }
    if (action == "ioerror") {
      site.action = Action::kIOError;
    } else if (action == "oom") {
      site.action = Action::kOom;
    } else {
      GOGREEN_LOG(Warning) << "ignoring failpoint entry '" << entry
                           << "': unknown action '" << action << "'";
      continue;
    }
    const std::string name = entry.substr(0, colon);
    if (!IsKnownSite(name)) {
      // Still armed (tests probe synthetic sites), but almost always a typo
      // that would otherwise inject nothing, silently.
      GOGREEN_LOG(Warning) << "arming unknown failpoint site '" << name
                           << "' (not compiled into this binary)";
    }
    reg.sites[name] = site;
    if (!reg.spec.empty()) reg.spec += ',';
    reg.spec += entry;
  }
  g_enabled.store(!reg.sites.empty(), std::memory_order_release);
}

// Arms GOGREEN_FAILPOINTS once, before the first registry use.
void InitFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const std::string spec = GetEnvOrEmpty("GOGREEN_FAILPOINTS");
    if (!spec.empty()) {
      Registry& reg = GetRegistry();
      MutexLock lock(reg.mu);
      ArmLocked(reg, spec);
      GOGREEN_LOG(Info) << "failpoints armed from environment: " << reg.spec;
    }
  });
}

}  // namespace

bool Enabled() {
  InitFromEnvOnce();
  return g_enabled.load(std::memory_order_acquire);
}

Status MaybeFail(std::string_view site) {
  if (!Enabled()) return Status::OK();
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  const auto it = reg.sites.find(std::string(site));
  if (it == reg.sites.end()) return Status::OK();
  Site& armed = it->second;
  if (armed.probability < 1.0 && !reg.rng.Bernoulli(armed.probability)) {
    return Status::OK();
  }
  ++armed.hits;
  const std::string msg = "injected fault at " + std::string(site);
  return armed.action == Action::kIOError ? Status::IOError(msg)
                                          : Status::ResourceExhausted(msg);
}

void Arm(const std::string& spec) {
  InitFromEnvOnce();
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  ArmLocked(reg, spec);
}

void Clear() { Arm(""); }

std::string CurrentSpec() {
  InitFromEnvOnce();
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  return reg.spec;
}

std::span<const std::string_view> KnownSites() { return kKnownSites; }

bool IsKnownSite(std::string_view site) {
  return std::find(std::begin(kKnownSites), std::end(kKnownSites), site) !=
         std::end(kKnownSites);
}

uint64_t HitCount(const std::string& site) {
  InitFromEnvOnce();
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

ScopedFailpoints::ScopedFailpoints(const std::string& spec)
    : previous_(CurrentSpec()) {
  Arm(spec);
}

ScopedFailpoints::~ScopedFailpoints() { Arm(previous_); }

}  // namespace gogreen::failpoint
