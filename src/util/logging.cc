#include "util/logging.h"

#include <sys/time.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "util/env.h"

namespace gogreen {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::once_flag g_env_once;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// "2026-08-06 12:34:56.789" in local time.
std::string Timestamp() {
  struct timeval tv;
  ::gettimeofday(&tv, nullptr);
  struct tm tm_buf;
  ::localtime_r(&tv.tv_sec, &tm_buf);
  char buf[40];
  const size_t len = std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S",
                                   &tm_buf);
  std::snprintf(buf + len, sizeof(buf) - len, ".%03d",
                static_cast<int>(tv.tv_usec / 1000));
  return buf;
}

void EnsureEnvLevel() {
  std::call_once(g_env_once, InitLogLevelFromEnv);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  EnsureEnvLevel();
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string v = name;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "debug") {
    *out = LogLevel::kDebug;
  } else if (v == "info") {
    *out = LogLevel::kInfo;
  } else if (v == "warning" || v == "warn") {
    *out = LogLevel::kWarning;
  } else if (v == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  LogLevel level;
  if (ParseLogLevel(GetEnvOrEmpty("GOGREEN_LOG_LEVEL"), &level)) {
    SetLogLevel(level);
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GetLogLevel())),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << Timestamp() << " " << LevelName(level_) << " " << base
            << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[" << Timestamp() << " FATAL " << file << ":" << line
          << "] Check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace gogreen
