// Wall-clock timing helpers for the benchmark harnesses.

#ifndef GOGREEN_UTIL_TIMER_H_
#define GOGREEN_UTIL_TIMER_H_

#include <chrono>

namespace gogreen {

/// Measures elapsed wall-clock time from construction (or the last Restart).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gogreen

#endif  // GOGREEN_UTIL_TIMER_H_
