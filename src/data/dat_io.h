// Reader/writer for the FIMI transaction file format: one transaction per
// line, whitespace-separated non-negative item ids.

#ifndef GOGREEN_DATA_DAT_IO_H_
#define GOGREEN_DATA_DAT_IO_H_

#include <string>

#include "fpm/transaction_db.h"
#include "util/status.h"

namespace gogreen::data {

/// Parses a `.dat` transaction file. Blank lines become empty transactions.
/// Malformed content — non-numeric tokens, item ids that overflow ItemId
/// (or hit the reserved sentinel), lines over 1 MiB, embedded NUL bytes —
/// produces an InvalidArgument naming the offending line; unreadable files
/// produce an IOError.
Result<fpm::TransactionDb> ReadDatFile(const std::string& path);

/// Writes `db` in `.dat` format. Returns the number of bytes written, which
/// the compression-ratio bookkeeping (Table 3) uses as the on-disk size.
Result<uint64_t> WriteDatFile(const fpm::TransactionDb& db,
                              const std::string& path);

}  // namespace gogreen::data

#endif  // GOGREEN_DATA_DAT_IO_H_
