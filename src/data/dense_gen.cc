#include "data/dense_gen.h"

#include <numeric>

#include "util/random.h"

namespace gogreen::data {

DenseConfig DenseConfig::Uniform(size_t num_transactions, size_t num_attrs,
                                 uint32_t values_per_attr, uint64_t seed) {
  DenseConfig cfg;
  cfg.num_transactions = num_transactions;
  cfg.cardinalities.assign(num_attrs, values_per_attr);
  cfg.seed = seed;
  return cfg;
}

Result<fpm::TransactionDb> GenerateDense(const DenseConfig& cfg) {
  if (cfg.cardinalities.empty()) {
    return Status::InvalidArgument("cardinalities must be non-empty");
  }
  for (uint32_t c : cfg.cardinalities) {
    if (c == 0) return Status::InvalidArgument("attribute cardinality 0");
  }
  if (!cfg.dominant_probs.empty() &&
      cfg.dominant_probs.size() != cfg.cardinalities.size()) {
    return Status::InvalidArgument(
        "dominant_probs must match cardinalities in size");
  }

  // Attribute-major item id layout.
  const size_t num_attrs = cfg.cardinalities.size();
  std::vector<fpm::ItemId> offsets(num_attrs);
  fpm::ItemId next = 0;
  for (size_t a = 0; a < num_attrs; ++a) {
    offsets[a] = next;
    next += cfg.cardinalities[a];
  }

  Random rng(cfg.seed);
  fpm::TransactionDb db;
  db.Reserve(cfg.num_transactions, cfg.num_transactions * num_attrs);

  std::vector<fpm::ItemId> row(num_attrs);
  for (size_t t = 0; t < cfg.num_transactions; ++t) {
    bool in_run = rng.Bernoulli(cfg.run_start_prob);
    for (size_t a = 0; a < num_attrs; ++a) {
      const uint32_t card = cfg.cardinalities[a];
      double p_dom;
      if (!cfg.dominant_probs.empty()) {
        p_dom = cfg.dominant_probs[a] + (in_run ? cfg.run_boost : 0.0);
        if (p_dom > 1.0) p_dom = 1.0;
      } else {
        p_dom = in_run ? cfg.dominant_prob : cfg.background_dominant_prob;
      }
      uint32_t value;
      if (card == 1 || rng.Bernoulli(p_dom)) {
        value = 0;  // Value 0 is each attribute's dominant value.
      } else {
        value = 1 + static_cast<uint32_t>(rng.Uniform(card - 1));
      }
      row[a] = offsets[a] + value;
      // Advance the Markov chain for the next attribute.
      in_run = rng.Bernoulli(in_run ? cfg.run_continue_prob
                                    : cfg.run_start_prob);
    }
    db.AddCanonicalTransaction(row);  // Attribute-major => already sorted.
  }
  return db;
}

}  // namespace gogreen::data
