#include "data/quest_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fpm/pattern.h"
#include "util/random.h"

namespace gogreen::data {

namespace {

/// The hidden table of potentially frequent itemsets with sampling weights.
struct PatternTable {
  std::vector<std::vector<fpm::ItemId>> itemsets;
  std::vector<double> corruption;  // Per-pattern drop probability.
  std::vector<double> cum_weight;  // Cumulative, normalized to [0,1].
};

PatternTable BuildPatternTable(const QuestConfig& cfg, Random* rng) {
  PatternTable table;
  table.itemsets.reserve(cfg.num_patterns);
  table.corruption.reserve(cfg.num_patterns);
  std::vector<double> weights;
  weights.reserve(cfg.num_patterns);

  const std::vector<fpm::ItemId>* prev = nullptr;
  for (size_t p = 0; p < cfg.num_patterns; ++p) {
    size_t len = static_cast<size_t>(
        std::max(1.0, std::round(rng->Exponential(cfg.avg_pattern_len))));
    len = std::min(len, cfg.num_items);
    if (cfg.max_pattern_len > 0) len = std::min(len, cfg.max_pattern_len);

    std::vector<fpm::ItemId> items;
    items.reserve(len);
    // A fraction of the items come from the previous itemset (correlation);
    // the rest are fresh uniform draws.
    if (prev != nullptr && !prev->empty()) {
      for (fpm::ItemId it : *prev) {
        if (items.size() < len && rng->Bernoulli(cfg.correlation)) {
          items.push_back(it);
        }
      }
    }
    while (items.size() < len) {
      items.push_back(static_cast<fpm::ItemId>(rng->Uniform(cfg.num_items)));
    }
    fpm::CanonicalizeItems(&items);
    table.itemsets.push_back(std::move(items));
    prev = &table.itemsets.back();

    // Corruption level: clamped normal around the mean, as in Quest.
    double corr = cfg.corruption_mean + 0.1 * rng->Gaussian();
    table.corruption.push_back(std::clamp(corr, 0.0, 0.95));

    // Exponential weights raised to weight_skew concentrate mass.
    weights.push_back(std::pow(rng->Exponential(1.0), cfg.weight_skew));
  }

  double total = 0;
  for (double w : weights) total += w;
  table.cum_weight.reserve(weights.size());
  double acc = 0;
  for (double w : weights) {
    acc += w / total;
    table.cum_weight.push_back(acc);
  }
  if (!table.cum_weight.empty()) table.cum_weight.back() = 1.0;
  return table;
}

size_t SamplePattern(const PatternTable& table, Random* rng) {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(table.cum_weight.begin(),
                                   table.cum_weight.end(), u);
  return static_cast<size_t>(it - table.cum_weight.begin());
}

}  // namespace

Result<fpm::TransactionDb> GenerateQuest(const QuestConfig& cfg) {
  if (cfg.num_items == 0) {
    return Status::InvalidArgument("num_items must be positive");
  }
  if (cfg.num_patterns == 0) {
    return Status::InvalidArgument("num_patterns must be positive");
  }
  if (cfg.avg_transaction_len < 1.0) {
    return Status::InvalidArgument("avg_transaction_len must be >= 1");
  }

  Random rng(cfg.seed);
  const PatternTable table = [&] {
    if (cfg.table_seed == 0) return BuildPatternTable(cfg, &rng);
    Random table_rng(cfg.table_seed);
    return BuildPatternTable(cfg, &table_rng);
  }();

  fpm::TransactionDb db;
  db.Reserve(cfg.num_transactions,
             static_cast<size_t>(static_cast<double>(cfg.num_transactions) *
                                 cfg.avg_transaction_len));

  std::vector<fpm::ItemId> row;
  for (size_t t = 0; t < cfg.num_transactions; ++t) {
    const uint32_t noise = rng.Poisson(cfg.noise_mean);
    const size_t full_target =
        std::max<uint32_t>(1, rng.Poisson(cfg.avg_transaction_len));
    const size_t target = full_target > noise ? full_target - noise : 1;
    row.clear();
    // Fill with corrupted potential itemsets until the target is reached.
    // Quest allows one overshooting pattern half the time; we keep a pattern
    // that overshoots with probability 0.5, otherwise discard it and stop.
    size_t guard = 0;
    while (row.size() < target && ++guard < 50) {
      const size_t pi = SamplePattern(table, &rng);
      const auto& pattern = table.itemsets[pi];
      const double drop = table.corruption[pi];
      std::vector<fpm::ItemId> kept;
      kept.reserve(pattern.size());
      for (fpm::ItemId it : pattern) {
        if (!rng.Bernoulli(drop)) kept.push_back(it);
      }
      if (kept.empty()) continue;
      if (row.size() + kept.size() > target + 1 && !row.empty()) {
        if (rng.Bernoulli(0.5)) {
          row.insert(row.end(), kept.begin(), kept.end());
        }
        break;
      }
      row.insert(row.end(), kept.begin(), kept.end());
    }
    for (uint32_t k = 0; k < noise; ++k) {
      row.push_back(static_cast<fpm::ItemId>(rng.Uniform(cfg.num_items)));
    }
    if (row.empty()) {
      row.push_back(static_cast<fpm::ItemId>(rng.Uniform(cfg.num_items)));
    }
    db.AddTransaction(row);
  }
  return db;
}

}  // namespace gogreen::data
