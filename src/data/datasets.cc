#include "data/datasets.h"

#include "data/dense_gen.h"
#include "data/quest_gen.h"
#include "util/logging.h"

namespace gogreen::data {

namespace {

const DatasetSpec kSpecs[] = {
    {DatasetId::kWeatherSub,
     "weather-sub",
     "Weather",
     /*dense=*/false,
     /*xi_old=*/0.05,
     {0.04, 0.03, 0.02, 0.015, 0.01}},
    {DatasetId::kForestSub,
     "forest-sub",
     "Forest",
     /*dense=*/false,
     /*xi_old=*/0.01,
     {0.008, 0.006, 0.004, 0.003, 0.002}},
    {DatasetId::kConnect4Sub,
     "connect4-sub",
     "Connect-4",
     /*dense=*/true,
     /*xi_old=*/0.95,
     {0.93, 0.92, 0.91, 0.90, 0.88, 0.85}},
    {DatasetId::kPumsbSub,
     "pumsb-sub",
     "Pumsb",
     /*dense=*/true,
     /*xi_old=*/0.90,
     {0.88, 0.87, 0.86, 0.85, 0.84, 0.82}},
};

/// Pumsb-like attribute cardinalities: 74 attributes totalling ~7117 items —
/// half low-cardinality census-style codes, half high-cardinality ones.
std::vector<uint32_t> PumsbCardinalities() {
  std::vector<uint32_t> card;
  card.reserve(74);
  uint32_t total = 0;
  for (size_t a = 0; a < 37; ++a) {
    const uint32_t c = 2 + static_cast<uint32_t>(a % 10);  // 2..11
    card.push_back(c);
    total += c;
  }
  const uint32_t remaining = 7117 - total;
  for (size_t a = 0; a < 37; ++a) {
    uint32_t c = remaining / 37;
    if (a < remaining % 37) ++c;
    card.push_back(c);
  }
  return card;
}

size_t ScaleTransactions(BenchScale scale, size_t smoke, size_t dflt,
                         size_t full) {
  switch (scale) {
    case BenchScale::kSmoke:
      return smoke;
    case BenchScale::kDefault:
      return dflt;
    case BenchScale::kFull:
      return full;
  }
  return dflt;
}

}  // namespace

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  for (const DatasetSpec& spec : kSpecs) {
    if (spec.id == id) return spec;
  }
  GOGREEN_CHECK(false) << "unknown DatasetId";
  return kSpecs[0];
}

size_t DatasetTransactions(DatasetId id, BenchScale scale) {
  switch (id) {
    case DatasetId::kWeatherSub:
      return ScaleTransactions(scale, 5000, 100000, 1015367);
    case DatasetId::kForestSub:
      return ScaleTransactions(scale, 5000, 80000, 581012);
    case DatasetId::kConnect4Sub:
      return ScaleTransactions(scale, 3000, 10000, 67557);
    case DatasetId::kPumsbSub:
      return ScaleTransactions(scale, 2000, 8000, 49446);
  }
  return 0;
}

Result<fpm::TransactionDb> MakeDataset(DatasetId id, BenchScale scale) {
  const size_t n = DatasetTransactions(id, scale);
  switch (id) {
    case DatasetId::kWeatherSub: {
      QuestConfig cfg;
      cfg.num_transactions = n;
      cfg.avg_transaction_len = 15.0;
      cfg.num_items = 7959;
      cfg.num_patterns = 100;
      cfg.avg_pattern_len = 9.0;
      cfg.max_pattern_len = 10;
      cfg.correlation = 0.5;
      cfg.corruption_mean = 0.10;
      cfg.weight_skew = 2.5;
      cfg.noise_mean = 1.0;
      cfg.seed = 20040301;
      return GenerateQuest(cfg);
    }
    case DatasetId::kForestSub: {
      QuestConfig cfg;
      cfg.num_transactions = n;
      cfg.avg_transaction_len = 13.0;
      cfg.num_items = 15970;
      cfg.num_patterns = 900;
      cfg.avg_pattern_len = 3.5;
      cfg.max_pattern_len = 8;
      cfg.correlation = 0.4;
      cfg.corruption_mean = 0.35;
      cfg.weight_skew = 1.6;
      cfg.noise_mean = 2.0;
      cfg.seed = 20040302;
      return GenerateQuest(cfg);
    }
    case DatasetId::kConnect4Sub: {
      // A core of near-deterministic attributes (mirroring Connect-4's
      // mostly-blank cells) plus mid- and low-frequency tiers.
      DenseConfig cfg = DenseConfig::Uniform(n, 43, 3, 20040303);
      cfg.dominant_probs.resize(43);
      for (size_t a = 0; a < 43; ++a) {
        if (a % 4 == 0 || a == 1) {  // 12 core attributes.
          cfg.dominant_probs[a] = 0.9965;
        } else if (a % 4 == 1) {
          cfg.dominant_probs[a] = 0.93;  // 11 mid attributes.
        } else if (a % 4 == 2) {
          cfg.dominant_probs[a] = 0.80;
        } else {
          cfg.dominant_probs[a] = 0.55;
        }
      }
      cfg.run_boost = 0.0;
      return GenerateDense(cfg);
    }
    case DatasetId::kPumsbSub: {
      DenseConfig cfg;
      cfg.num_transactions = n;
      cfg.cardinalities = PumsbCardinalities();
      cfg.dominant_probs.resize(cfg.cardinalities.size());
      for (size_t a = 0; a < cfg.dominant_probs.size(); ++a) {
        if (a % 7 == 0) {
          cfg.dominant_probs[a] = 0.9915;  // 11 core attributes.
        } else if (a % 7 <= 2) {
          cfg.dominant_probs[a] = 0.915;
        } else {
          cfg.dominant_probs[a] = 0.55;
        }
      }
      cfg.run_boost = 0.0;
      cfg.seed = 20040304;
      return GenerateDense(cfg);
    }
  }
  return Status::InvalidArgument("unknown dataset id");
}

}  // namespace gogreen::data
