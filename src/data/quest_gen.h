// IBM Quest-style synthetic market-basket generator (Agrawal & Srikant,
// VLDB'94, Section 4.1). Produces sparse transaction data whose frequent
// patterns come from a hidden table of "potentially frequent itemsets".
// Stands in for the paper's Weather and Forest datasets (see DESIGN.md §3).

#ifndef GOGREEN_DATA_QUEST_GEN_H_
#define GOGREEN_DATA_QUEST_GEN_H_

#include <cstdint>

#include "fpm/transaction_db.h"
#include "util/status.h"

namespace gogreen::data {

/// Parameters mirroring the original generator's knobs.
struct QuestConfig {
  /// |D|: number of transactions.
  size_t num_transactions = 100000;
  /// |T|: average transaction length (Poisson-distributed).
  double avg_transaction_len = 10.0;
  /// N: size of the item universe.
  size_t num_items = 1000;
  /// |L|: number of potentially frequent itemsets in the hidden table.
  size_t num_patterns = 500;
  /// |I|: average size of a potential itemset (exponential, >= 1).
  double avg_pattern_len = 4.0;
  /// Hard cap on a potential itemset's size (0 = only capped by num_items).
  /// Exponential lengths have a long tail; very long near-uncorrupted
  /// patterns make the frequent-pattern count blow up combinatorially.
  size_t max_pattern_len = 0;
  /// Fraction of a new potential itemset's items drawn from its predecessor
  /// (drives cross-pattern correlation).
  double correlation = 0.5;
  /// Mean corruption level: the per-pattern probability that items are
  /// dropped when the pattern is placed in a transaction.
  double corruption_mean = 0.5;
  /// Pattern weights are Exp(1) with this skew exponent applied; larger
  /// values concentrate probability mass on few patterns, producing more
  /// high-support patterns.
  double weight_skew = 1.0;
  /// Mean number of uniform background-noise items appended per transaction
  /// (Poisson). Noise widens the distinct-item footprint towards the full
  /// universe without creating frequent patterns.
  double noise_mean = 0.0;
  uint64_t seed = 1;
  /// When non-zero, the hidden pattern table is drawn from this separate
  /// seed so several databases (e.g. daily batches) can share one table
  /// while their transactions differ (vary `seed`, fix `table_seed`).
  /// 0 keeps the single-stream behaviour (table and data from `seed`).
  uint64_t table_seed = 0;
};

/// Generates a database according to `config`. Deterministic per seed.
Result<fpm::TransactionDb> GenerateQuest(const QuestConfig& config);

}  // namespace gogreen::data

#endif  // GOGREEN_DATA_QUEST_GEN_H_
