// Dense categorical dataset generator. Every tuple carries exactly one value
// per attribute (as in UCI Connect-4 or census data such as Pumsb), with a
// skewed per-attribute value distribution and Markov-correlated "dominant"
// runs across adjacent attributes — the structure that gives those datasets
// their long high-support patterns. Stands in for Connect-4 and Pumsb
// (see DESIGN.md §3).

#ifndef GOGREEN_DATA_DENSE_GEN_H_
#define GOGREEN_DATA_DENSE_GEN_H_

#include <cstdint>
#include <vector>

#include "fpm/transaction_db.h"
#include "util/status.h"

namespace gogreen::data {

struct DenseConfig {
  /// Number of transactions (each has exactly num_attrs items).
  size_t num_transactions = 50000;
  /// Cardinality of each attribute; attribute a's values get the item ids
  /// [offset_a, offset_a + cardinality_a).
  std::vector<uint32_t> cardinalities;
  /// Probability that a tuple's value for an attribute is the attribute's
  /// dominant value *when the tuple is in a dominant run* at that attribute.
  double dominant_prob = 0.95;
  /// Probability of the dominant value outside a run.
  double background_dominant_prob = 0.4;
  /// Markov chain over attributes: P(run continues) and P(run starts).
  double run_continue_prob = 0.92;
  double run_start_prob = 0.45;
  /// Optional per-attribute dominant probabilities. When non-empty (size must
  /// equal cardinalities.size()), attribute a's value is dominant with
  /// probability dominant_probs[a] (+ run_boost inside a run, clamped to 1)
  /// and the two global probabilities above are ignored. This models real
  /// dense datasets, where a core of attributes is nearly deterministic
  /// (Connect-4's perpetually blank cells) and drives the long
  /// high-support patterns.
  std::vector<double> dominant_probs;
  double run_boost = 0.0;
  uint64_t seed = 1;

  /// Convenience: n attributes of equal cardinality v.
  static DenseConfig Uniform(size_t num_transactions, size_t num_attrs,
                             uint32_t values_per_attr, uint64_t seed);
};

/// Generates a dense database per `config`. Item ids are assigned
/// attribute-major: attribute a's values occupy a contiguous id range.
Result<fpm::TransactionDb> GenerateDense(const DenseConfig& config);

}  // namespace gogreen::data

#endif  // GOGREEN_DATA_DENSE_GEN_H_
