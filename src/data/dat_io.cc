#include "data/dat_io.h"

#include <charconv>
#include <fstream>
#include <string>
#include <vector>

namespace gogreen::data {

Result<fpm::TransactionDb> ReadDatFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  fpm::TransactionDb db;
  std::string line;
  std::vector<fpm::ItemId> row;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    row.clear();
    const char* p = line.data();
    const char* end = p + line.size();
    while (p < end) {
      while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
      if (p == end) break;
      uint32_t value = 0;
      auto [next, ec] = std::from_chars(p, end, value);
      if (ec != std::errc()) {
        return Status::IOError("malformed item at " + path + ":" +
                               std::to_string(line_no));
      }
      row.push_back(value);
      p = next;
    }
    db.AddTransaction(row);
  }
  if (in.bad()) return Status::IOError("read error on " + path);
  return db;
}

Result<uint64_t> WriteDatFile(const fpm::TransactionDb& db,
                              const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  uint64_t bytes = 0;
  std::string buf;
  for (fpm::Tid t = 0; t < db.NumTransactions(); ++t) {
    buf.clear();
    const fpm::ItemSpan row = db.Transaction(t);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) buf += ' ';
      buf += std::to_string(row[i]);
    }
    buf += '\n';
    out << buf;
    bytes += buf.size();
  }
  out.flush();
  if (!out.good()) return Status::IOError("write error on " + path);
  return bytes;
}

}  // namespace gogreen::data
