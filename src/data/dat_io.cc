#include "data/dat_io.h"

#include <charconv>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fpm/item.h"
#include "util/failpoint.h"

namespace gogreen::data {

namespace {

// Hard cap on one transaction line. Real FIMI lines are a few KiB; anything
// beyond this is treated as malformed input rather than ballooning memory.
constexpr size_t kMaxLineBytes = size_t{1} << 20;  // 1 MiB

std::string At(const std::string& path, size_t line_no) {
  return path + ":" + std::to_string(line_no);
}

}  // namespace

Result<fpm::TransactionDb> ReadDatFile(const std::string& path) {
  GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("dat_io.open"));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("dat_io.read"));
  fpm::TransactionDb db;
  std::vector<char> buf(kMaxLineBytes);
  std::vector<fpm::ItemId> row;
  size_t line_no = 0;
  while (true) {
    in.getline(buf.data(), static_cast<std::streamsize>(buf.size()));
    const size_t count = static_cast<size_t>(in.gcount());
    if (in.fail()) {
      if (in.eof()) break;  // Clean end of file.
      // getline filled the buffer without finding a newline: the line is
      // over the cap. Reject instead of reading unbounded input.
      return Status::InvalidArgument("line too long (over " +
                                     std::to_string(kMaxLineBytes) +
                                     " bytes) at " + At(path, line_no + 1));
    }
    ++line_no;
    // gcount includes the consumed '\n' except on a final unterminated line.
    const size_t len = (!in.eof() && count > 0) ? count - 1 : count;
    if (std::memchr(buf.data(), '\0', len) != nullptr) {
      return Status::InvalidArgument("embedded NUL byte at " +
                                     At(path, line_no));
    }

    row.clear();
    const char* p = buf.data();
    const char* end = p + len;
    while (p < end) {
      while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
      if (p == end) break;
      fpm::ItemId value = 0;
      auto [next, ec] = std::from_chars(p, end, value);
      if (ec == std::errc::result_out_of_range ||
          (ec == std::errc() && value == fpm::kInvalidItem)) {
        return Status::InvalidArgument("item id out of range at " +
                                       At(path, line_no));
      }
      if (ec != std::errc()) {
        return Status::InvalidArgument("malformed item at " +
                                       At(path, line_no));
      }
      row.push_back(value);
      p = next;
    }
    db.AddTransaction(row);
  }
  if (in.bad()) return Status::IOError("read error on " + path);
  return db;
}

Result<uint64_t> WriteDatFile(const fpm::TransactionDb& db,
                              const std::string& path) {
  GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("dat_io.write"));
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  uint64_t bytes = 0;
  std::string buf;
  for (fpm::Tid t = 0; t < db.NumTransactions(); ++t) {
    buf.clear();
    const fpm::ItemSpan row = db.Transaction(t);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) buf += ' ';
      buf += std::to_string(row[i]);
    }
    buf += '\n';
    out << buf;
    bytes += buf.size();
  }
  out.flush();
  if (!out.good()) return Status::IOError("write error on " + path);
  return bytes;
}

}  // namespace gogreen::data
