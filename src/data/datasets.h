// Named benchmark datasets: deterministic synthetic substitutes for the four
// datasets of the paper's evaluation (Table 3). See DESIGN.md §3 for the
// substitution rationale.

#ifndef GOGREEN_DATA_DATASETS_H_
#define GOGREEN_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "fpm/transaction_db.h"
#include "util/env.h"
#include "util/status.h"

namespace gogreen::data {

enum class DatasetId {
  kWeatherSub,   ///< Sparse; stands in for Weather (1M x 15, 7959 items).
  kForestSub,    ///< Sparse; stands in for Forest/CoverType (581K x 13).
  kConnect4Sub,  ///< Dense; stands in for Connect-4 (67K x 43, 130 items).
  kPumsbSub,     ///< Dense; stands in for Pumsb (49K x 74, 7117 items).
};

inline constexpr DatasetId kAllDatasets[] = {
    DatasetId::kWeatherSub, DatasetId::kForestSub, DatasetId::kConnect4Sub,
    DatasetId::kPumsbSub};

/// Static description of a dataset: its identity and the support thresholds
/// the paper's experiments use on it.
struct DatasetSpec {
  DatasetId id;
  const char* name;        ///< e.g. "weather-sub"
  const char* paper_name;  ///< e.g. "Weather"
  bool dense;
  /// xi_old: the initial support (fraction) whose patterns are recycled.
  double xi_old;
  /// xi_new sweep for the runtime figures, descending (relaxation).
  std::vector<double> xi_new_sweep;
};

/// Spec for a dataset id.
const DatasetSpec& GetDatasetSpec(DatasetId id);

/// Generates the dataset at the given bench scale (smoke/default/full;
/// full reproduces the paper's tuple counts). Deterministic.
Result<fpm::TransactionDb> MakeDataset(DatasetId id, BenchScale scale);

/// Number of transactions the dataset has at a scale (without generating).
size_t DatasetTransactions(DatasetId id, BenchScale scale);

}  // namespace gogreen::data

#endif  // GOGREEN_DATA_DATASETS_H_
