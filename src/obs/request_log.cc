#include "obs/request_log.h"

#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace gogreen::obs {

namespace {

/// Same formatting contract as the metrics JSON: plain decimal, enough
/// digits to round-trip timings.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const std::vector<std::string>& RequestEvent::SchemaKeys() {
  // gogreen-lint: allow(naked-new): intentionally leaked process singleton
  static const std::vector<std::string>* keys = new std::vector<std::string>{
      "request_id",    "dataset",         "min_support", "fingerprint",
      "route",         "cache_hit",       "coalesced",   "seed_support",
      "evictions",     "image_evictions", "patterns",    "partial",
      "frontier_support", "outcome",      "seconds",     "bytes_peak",
      "threads",       "tenant",          "queued_ms",   "degraded",
      "shed",          "phases",
  };
  return *keys;
}

std::string RequestEvent::ToJsonLine() const {
  std::ostringstream os;
  os << "{\"request_id\":" << request_id
     << ",\"dataset\":\"" << JsonEscape(dataset) << "\""
     << ",\"min_support\":" << min_support
     << ",\"fingerprint\":\"" << JsonEscape(fingerprint) << "\""
     << ",\"route\":\"" << JsonEscape(route) << "\""
     << ",\"cache_hit\":" << (cache_hit ? "true" : "false")
     << ",\"coalesced\":" << (coalesced ? "true" : "false")
     << ",\"seed_support\":" << seed_support
     << ",\"evictions\":" << evictions
     << ",\"image_evictions\":" << image_evictions
     << ",\"patterns\":" << patterns
     << ",\"partial\":" << (partial ? "true" : "false")
     << ",\"frontier_support\":" << frontier_support
     << ",\"outcome\":\"" << JsonEscape(outcome) << "\""
     << ",\"seconds\":" << FormatDouble(seconds)
     << ",\"bytes_peak\":" << bytes_peak
     << ",\"threads\":" << threads
     << ",\"tenant\":\"" << JsonEscape(tenant) << "\""
     << ",\"queued_ms\":" << queued_ms
     << ",\"degraded\":" << (degraded ? "true" : "false")
     << ",\"shed\":" << (shed ? "true" : "false")
     << ",\"phases\":{";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(phases[i].first)
       << "\":" << FormatDouble(phases[i].second);
  }
  os << "}}";
  return os.str();
}

RequestLog& RequestLog::Global() {
  // gogreen-lint: allow(naked-new): intentionally leaked process singleton
  static RequestLog* log = new RequestLog();
  return *log;
}

void RequestLog::Record(RequestEvent event) {
  MutexLock lock(mu_);
  if (sink_ != nullptr) {
    const std::string line = event.ToJsonLine();
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);
  }
  ring_.push_back(std::move(event));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

std::vector<RequestEvent> RequestLog::Events() const {
  MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t RequestLog::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

size_t RequestLog::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

void RequestLog::SetCapacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity < 1 ? 1 : capacity;
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

Status RequestLog::AttachSink(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::IOError("cannot open request log: " + path);
  }
  MutexLock lock(mu_);
  if (sink_ != nullptr) std::fclose(sink_);
  sink_ = f;
  return Status::OK();
}

void RequestLog::DetachSink() {
  MutexLock lock(mu_);
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
}

void RequestLog::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  dropped_ = 0;
}

}  // namespace gogreen::obs
