#include "obs/export.h"

#include <cstdio>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gogreen::obs {

std::string MetricsJson() {
  UpdateProcessGauges();
  const std::string base = MetricRegistry::Global().Snapshot().ToJson();
  // Splice the span aggregates into the registry document, before its
  // closing brace.
  std::ostringstream os;
  os << base.substr(0, base.size() - 1) << ",\"spans\":{";
  const auto spans = Tracer::Global().AggregateSeconds();
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << ",";
    char secs[48];
    std::snprintf(secs, sizeof(secs), "%.9g", spans[i].second);
    os << "\"" << JsonEscape(spans[i].first) << "\":" << secs;
  }
  os << "}}";
  return os.str();
}

Status WriteMetricsJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics file: " + path);
  }
  const std::string json = MetricsJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to metrics file: " + path);
  }
  return Status::OK();
}

}  // namespace gogreen::obs
