#include "obs/export.h"

#include <cstdio>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gogreen::obs {

std::string MetricsJson() {
  UpdateProcessGauges();
  const std::string base = MetricRegistry::Global().Snapshot().ToJson();
  // Splice the span aggregates into the registry document, before its
  // closing brace.
  std::ostringstream os;
  os << base.substr(0, base.size() - 1) << ",\"spans\":{";
  const auto spans = Tracer::Global().AggregateSeconds();
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << ",";
    char secs[48];
    std::snprintf(secs, sizeof(secs), "%.9g", spans[i].second);
    os << "\"" << JsonEscape(spans[i].first) << "\":" << secs;
  }
  os << "}}";
  return os.str();
}

namespace {

Status WriteAll(const std::string& text, const std::string& path,
                const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError(std::string("cannot open ") + what + " file: " +
                           path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IOError(std::string("short write to ") + what +
                           " file: " + path);
  }
  return Status::OK();
}

/// `mine.items_scanned` -> `gogreen_mine_items_scanned`. Dots and dashes
/// both map to underscores (Prometheus names are [a-zA-Z0-9_:]).
std::string PromName(const std::string& name) {
  std::string out = "gogreen_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out += (c == '.' || c == '-') ? '_' : c;
  }
  return out;
}

std::string PromDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Status WriteMetricsJson(const std::string& path) {
  return WriteAll(MetricsJson(), path, "metrics");
}

std::string MetricsProm() {
  UpdateProcessGauges();
  const MetricsSnapshot snap = MetricRegistry::Global().Snapshot();
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PromName(name) + "_total";
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string prom = PromName(h.name);
    os << "# TYPE " << prom << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      os << prom << "_bucket{le=\"" << PromDouble(h.bounds[i]) << "\"} "
         << cumulative << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << prom << "_sum " << PromDouble(h.sum) << "\n"
       << prom << "_count " << h.count << "\n";
  }
  const auto spans = Tracer::Global().AggregateSeconds();
  if (!spans.empty()) {
    os << "# TYPE gogreen_span_seconds_total counter\n";
    for (const auto& [name, seconds] : spans) {
      os << "gogreen_span_seconds_total{name=\"" << JsonEscape(name)
         << "\"} " << PromDouble(seconds) << "\n";
    }
  }
  return os.str();
}

Status WriteMetricsProm(const std::string& path) {
  return WriteAll(MetricsProm(), path, "metrics");
}

}  // namespace gogreen::obs
