// One-call JSON export of the whole observability state: the global metric
// registry, per-span aggregate timings, and process gauges. This is what
// `gogreen --metrics-json` and the bench harness write.

#ifndef GOGREEN_OBS_EXPORT_H_
#define GOGREEN_OBS_EXPORT_H_

#include <string>

#include "util/status.h"

namespace gogreen::obs {

/// The combined document:
///   {"counters":{...},"gauges":{...},"histograms":{...},"spans":{...}}
/// `spans` maps span name -> total seconds (from Tracer aggregates).
/// Refreshes process gauges (peak RSS) before snapshotting.
std::string MetricsJson();

/// Writes MetricsJson() to `path`.
Status WriteMetricsJson(const std::string& path);

/// Prometheus text-exposition rendering of the same state. Metric names
/// are prefixed `gogreen_` with dots mapped to underscores; counters get a
/// `_total` suffix, histograms the standard cumulative
/// `_bucket{le=...}`/`_sum`/`_count` series, and span aggregates become one
/// labeled family `gogreen_span_seconds_total{name="<span>"}`. Refreshes
/// process gauges before snapshotting.
std::string MetricsProm();

/// Writes MetricsProm() to `path`.
Status WriteMetricsProm(const std::string& path);

}  // namespace gogreen::obs

#endif  // GOGREEN_OBS_EXPORT_H_
