// One-call JSON export of the whole observability state: the global metric
// registry, per-span aggregate timings, and process gauges. This is what
// `gogreen --metrics-json` and the bench harness write.

#ifndef GOGREEN_OBS_EXPORT_H_
#define GOGREEN_OBS_EXPORT_H_

#include <string>

#include "util/status.h"

namespace gogreen::obs {

/// The combined document:
///   {"counters":{...},"gauges":{...},"histograms":{...},"spans":{...}}
/// `spans` maps span name -> total seconds (from Tracer aggregates).
/// Refreshes process gauges (peak RSS) before snapshotting.
std::string MetricsJson();

/// Writes MetricsJson() to `path`.
Status WriteMetricsJson(const std::string& path);

}  // namespace gogreen::obs

#endif  // GOGREEN_OBS_EXPORT_H_
