#include "obs/metrics.h"

#include <sys/resource.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace gogreen::obs {

namespace {

/// Formats a double the way the JSON emitters need it: plain decimal,
/// enough digits to round-trip timings, no trailing-zero noise control
/// needed by any consumer.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  double old_value;
  uint64_t new_bits;
  do {
    std::memcpy(&old_value, &old_bits, sizeof(old_value));
    const double new_value = old_value + delta;
    std::memcpy(&new_bits, &new_value, sizeof(new_bits));
  } while (!bits->compare_exchange_weak(old_bits, new_bits,
                                        std::memory_order_relaxed));
}

double LoadDouble(const std::atomic<uint64_t>& bits) {
  const uint64_t raw = bits.load(std::memory_order_relaxed);
  double value;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  const size_t i =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, value);
}

uint64_t Histogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return LoadDouble(sum_bits_); }

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  // 1ms .. 100s, half-decade steps: coarse enough to stay cheap, fine
  // enough to see an order-of-magnitude regression between PRs.
  return {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0};
}

MetricRegistry& MetricRegistry::Global() {
  // gogreen-lint: allow(naked-new): intentionally leaked process singleton
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.bounds = h->bounds();
    data.buckets.reserve(data.bounds.size() + 1);
    for (size_t i = 0; i <= data.bounds.size(); ++i) {
      data.buckets.push_back(h->BucketCount(i));
    }
    data.count = h->TotalCount();
    data.sum = h->Sum();
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

void MetricRegistry::ResetValues() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name,
                                       uint64_t dflt) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return dflt;
}

double MetricsSnapshot::HistogramData::Quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (cumulative + in_bucket >= rank && in_bucket > 0.0) {
      if (i >= bounds.size()) return bounds.back();  // Overflow: clamp.
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      return lo + (hi - lo) * ((rank - cumulative) / in_bucket);
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name,
                                    int64_t dflt) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return dflt;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(counters[i].first)
       << "\":" << counters[i].second;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(gauges[i].first) << "\":" << gauges[i].second;
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramData& h = histograms[i];
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(h.name) << "\":{\"bounds\":[";
    for (size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) os << ",";
      os << FormatDouble(h.bounds[j]);
    }
    os << "],\"buckets\":[";
    for (size_t j = 0; j < h.buckets.size(); ++j) {
      if (j > 0) os << ",";
      os << h.buckets[j];
    }
    os << "],\"count\":" << h.count << ",\"sum\":" << FormatDouble(h.sum)
       << ",\"p50\":" << FormatDouble(h.Quantile(0.50))
       << ",\"p95\":" << FormatDouble(h.Quantile(0.95))
       << ",\"p99\":" << FormatDouble(h.Quantile(0.99)) << "}";
  }
  os << "}}";
  return os.str();
}

int64_t ReadPeakRssBytes() {
  // VmHWM from /proc/self/status is the high-water mark in kB.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    int64_t kb = -1;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %" SCNd64 " kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb >= 0) return kb * 1024;
  }
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // Linux: kB.
  }
  return 0;
}

void UpdateProcessGauges() {
  static Gauge* peak_rss =
      MetricRegistry::Global().GetGauge("process.peak_rss_bytes");
  peak_rss->UpdateMax(ReadPeakRssBytes());
}

}  // namespace gogreen::obs
