// Scoped-span tracing: RAII spans (`GOGREEN_TRACE_SPAN("compress.cover")`)
// that record per-phase wall time with nesting, aggregate per span name,
// and optionally export Chrome `trace_event` JSON (load the file at
// chrome://tracing or https://ui.perfetto.dev for a flame graph).
//
// The tracer is off by default: a disabled span costs one relaxed atomic
// load in its constructor and nothing in its destructor, which keeps the
// instrumented library inside the observability overhead budget (< 2% on
// micro_substrate; spans are placed at phase granularity, never per item).
//
// Span naming convention mirrors the metric scheme: `<subsystem>.<phase>`,
// e.g. `mine.h-mine`, `compress.cover`, `recycle.filter`. Nested spans are
// recorded with their depth so the Chrome export reconstructs the stack.

#ifndef GOGREEN_OBS_TRACE_H_
#define GOGREEN_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace gogreen::obs {

/// One finished span.
struct TraceEvent {
  std::string name;
  double start_us = 0.0;  ///< Microseconds since tracer enable.
  double dur_us = 0.0;
  uint32_t tid = 0;   ///< Small dense per-thread id.
  uint32_t depth = 0;  ///< Nesting depth within its thread at entry.
};

/// Collects spans while enabled. Aggregation by name is always maintained;
/// full event recording (needed for the Chrome export) is opt-in because a
/// long mining run can produce many spans.
class Tracer {
 public:
  static Tracer& Global();

  /// Starts collecting. With `record_events` false only per-name aggregate
  /// durations are kept (enough for --metrics-json and the bench phase
  /// split); with true, every span is stored for ChromeTraceJson().
  void Enable(bool record_events);
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Called by TraceSpan on destruction; not part of the public surface.
  void Record(const char* name, double start_us, double dur_us,
              uint32_t depth);

  /// Total seconds spent per span name (inclusive of nested spans), sorted
  /// by name. Includes only spans finished since Enable()/Reset().
  std::vector<std::pair<std::string, double>> AggregateSeconds() const;

  /// Point-in-time copy of the per-name aggregate microseconds. Two
  /// snapshots bracket a unit of work; DeltaSeconds attributes the span
  /// time in between to it. This is how the service keeps one request's
  /// phase timings from including its predecessors' in a long session
  /// (the aggregates themselves are cumulative for the process).
  using SpanSnapshot = std::map<std::string, double, std::less<>>;
  SpanSnapshot AggregateSnapshot() const;

  /// Per-name seconds accumulated between `before` and `after`, sorted by
  /// name; names whose delta is zero are omitted.
  static std::vector<std::pair<std::string, double>> DeltaSeconds(
      const SpanSnapshot& before, const SpanSnapshot& after);

  /// Total seconds recorded for one span name (0 if never seen).
  double SecondsFor(std::string_view name) const;

  /// Recorded events (empty unless enabled with record_events=true).
  std::vector<TraceEvent> Events() const;

  /// Chrome trace_event JSON ("traceEvents" array of complete "X" events).
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Drops all aggregates and events; keeps the enabled state.
  void Reset();

  /// Microseconds since the tracer's epoch (process-stable timebase).
  double NowMicros() const;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;

  mutable Mutex mu_;
  bool record_events_ GUARDED_BY(mu_) = false;
  std::map<std::string, double, std::less<>> aggregate_us_ GUARDED_BY(mu_);
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
};

/// RAII span. Construct on the stack; the time between construction and
/// destruction is attributed to `name`. `name` must outlive the span
/// (string literals in practice).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  double start_us_ = 0.0;
  uint32_t depth_ = 0;
  bool active_;
};

#define GOGREEN_OBS_CONCAT_INNER(a, b) a##b
#define GOGREEN_OBS_CONCAT(a, b) GOGREEN_OBS_CONCAT_INNER(a, b)

/// Opens a scoped span covering the rest of the enclosing block.
#define GOGREEN_TRACE_SPAN(name) \
  ::gogreen::obs::TraceSpan GOGREEN_OBS_CONCAT(gogreen_span_, __LINE__)(name)

}  // namespace gogreen::obs

#endif  // GOGREEN_OBS_TRACE_H_
