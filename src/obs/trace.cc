#include "obs/trace.h"

#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace gogreen::obs {

namespace {

/// Small dense thread ids for the Chrome export (std::thread::id is opaque).
uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Per-thread span nesting depth.
thread_local uint32_t t_depth = 0;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  // gogreen-lint: allow(naked-new): intentionally leaked process singleton
  static Tracer* tracer = new Tracer();
  return *tracer;
}

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Enable(bool record_events) {
  {
    MutexLock lock(mu_);
    record_events_ = record_events;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Record(const char* name, double start_us, double dur_us,
                    uint32_t depth) {
  MutexLock lock(mu_);
  auto it = aggregate_us_.find(name);
  if (it == aggregate_us_.end()) {
    aggregate_us_.emplace(name, dur_us);
  } else {
    it->second += dur_us;
  }
  if (record_events_) {
    events_.push_back({name, start_us, dur_us, CurrentThreadId(), depth});
  }
}

std::vector<std::pair<std::string, double>> Tracer::AggregateSeconds() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(aggregate_us_.size());
  for (const auto& [name, us] : aggregate_us_) {
    out.emplace_back(name, us * 1e-6);
  }
  return out;
}

Tracer::SpanSnapshot Tracer::AggregateSnapshot() const {
  MutexLock lock(mu_);
  return aggregate_us_;
}

std::vector<std::pair<std::string, double>> Tracer::DeltaSeconds(
    const SpanSnapshot& before, const SpanSnapshot& after) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, after_us] : after) {
    const auto it = before.find(name);
    const double delta_us = after_us - (it == before.end() ? 0.0 : it->second);
    if (delta_us > 0.0) out.emplace_back(name, delta_us * 1e-6);
  }
  return out;
}

double Tracer::SecondsFor(std::string_view name) const {
  MutexLock lock(mu_);
  const auto it = aggregate_us_.find(name);
  return it == aggregate_us_.end() ? 0.0 : it->second * 1e-6;
}

std::vector<TraceEvent> Tracer::Events() const {
  MutexLock lock(mu_);
  return events_;
}

std::string Tracer::ChromeTraceJson() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) os << ",";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u}}",
                  JsonEscape(e.name).c_str(), e.start_us, e.dur_us, e.tid,
                  e.depth);
    os << buf;
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  const std::string json = ChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

void Tracer::Reset() {
  MutexLock lock(mu_);
  aggregate_us_.clear();
  events_.clear();
}

TraceSpan::TraceSpan(const char* name)
    : name_(name), active_(Tracer::Global().enabled()) {
  if (!active_) return;
  start_us_ = Tracer::Global().NowMicros();
  depth_ = t_depth++;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --t_depth;
  Tracer& tracer = Tracer::Global();
  tracer.Record(name_, start_us_, tracer.NowMicros() - start_us_, depth_);
}

}  // namespace gogreen::obs
