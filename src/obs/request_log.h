// Request-scoped observability: one structured "wide event" per served
// MineRequest, capturing everything the process-global metrics cannot
// attribute — which route answered the query, which cached seed it reused,
// what the request evicted, how long each serve phase took, and how many
// bytes the governed run charged at peak.
//
// The pipeline (see DESIGN.md "Request observability & perf trajectory"):
//   - MiningService stamps a RequestContext (monotonic request id, dataset
//     id, support, constraint fingerprint) on every request and threads the
//     id through the existing RunContext plumbing.
//   - On completion — success, partial, or error — it emits one
//     RequestEvent into the global RequestLog.
//   - The log is a bounded in-memory ring (default 256 events; oldest
//     dropped first, with a drop counter) plus an optional append-only
//     file sink (`gogreen --request-log <path>`) that writes each event as
//     a single line of JSON, flushed per line so a crashed run keeps its
//     tail.
//
// The event schema is fixed: every event serializes the same key set in
// the same order regardless of route or outcome (RequestEvent::SchemaKeys
// is the authoritative list; tests and the CI log validator check against
// it). Only the *values* vary — an exact hit reports seed_support == its
// own support, a scratch miss reports 0, and the `phases` object contains
// whichever serve.* spans actually ran.

#ifndef GOGREEN_OBS_REQUEST_LOG_H_
#define GOGREEN_OBS_REQUEST_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace gogreen::obs {

/// Identity of one request, stamped by the service before routing. The id
/// is process-unique and monotonic (RequestLog::NextRequestId), so log
/// lines order and join with traces without a clock.
struct RequestContext {
  uint64_t request_id = 0;
  std::string dataset_id;
  std::string constraint_fingerprint;  ///< "" for support-only queries.
  uint64_t min_support = 0;
};

/// One finished request, wide-event style: every dimension a post-hoc
/// "why was this query slow?" investigation needs, in one record.
struct RequestEvent {
  uint64_t request_id = 0;
  std::string dataset;
  uint64_t min_support = 0;
  std::string fingerprint;
  std::string route;          ///< core::SeedRouteName: none|exact|....
  bool cache_hit = false;     ///< True when the route was an exact hit.
  bool coalesced = false;     ///< Adopted a concurrent identical mine
                              ///< (single-flight follower; implies exact).
  uint64_t seed_support = 0;  ///< Support of the reused seed (0 = scratch).
  uint64_t evictions = 0;     ///< Store evictions this request triggered.
  uint64_t image_evictions = 0;
  uint64_t patterns = 0;
  bool partial = false;
  uint64_t frontier_support = 0;  ///< Meaningful when partial.
  std::string outcome;        ///< "ok" | "partial" | "degraded" | "shed"
                              ///< | "error:<Code>".
  double seconds = 0.0;       ///< End-to-end service wall time.
  uint64_t bytes_peak = 0;    ///< Governor-accounted scratch high-water.
  uint64_t threads = 0;       ///< Effective mining parallelism.
  std::string tenant;         ///< Tenant id ("" = anonymous/default).
  uint64_t queued_ms = 0;     ///< Admission-queue wait before dispatch.
  bool degraded = false;      ///< Stale/frontier store entry served under
                              ///< shed pressure or an open breaker.
  bool shed = false;          ///< Rejected by admission (no mining ran).
  /// Wall seconds per serve-layer phase span (serve.exact, serve.scratch,
  /// serve.compress, ...) for *this* request, from tracer aggregate deltas.
  /// The phase spans are disjoint, so their sum approximates `seconds`
  /// from below (the gap is routing/bookkeeping overhead). Empty when the
  /// tracer is disabled; exact only for single-driver (serial) sessions.
  std::vector<std::pair<std::string, double>> phases;

  /// Single-line JSON with SchemaKeys() in order, no trailing newline.
  std::string ToJsonLine() const;

  /// The fixed top-level key set every event emits, in serialization
  /// order. The golden-schema test and the CI log validator pin this.
  static const std::vector<std::string>& SchemaKeys();
};

/// Process-global bounded event log. Thread-safe; Record() under one mutex
/// is fine because the service emits once per request, not per item.
class RequestLog {
 public:
  static RequestLog& Global();

  RequestLog() = default;
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  /// Next process-unique request id (1, 2, 3, ...).
  uint64_t NextRequestId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Appends one event to the ring (dropping the oldest past capacity) and
  /// to the file sink when one is attached.
  void Record(RequestEvent event) EXCLUDES(mu_);

  /// Ring contents, oldest first.
  std::vector<RequestEvent> Events() const;

  /// Events rotated out of the ring since the last Clear().
  uint64_t dropped() const;

  size_t capacity() const;
  /// Resizes the ring (>= 1), dropping oldest events if shrinking.
  void SetCapacity(size_t capacity);

  /// Opens `path` for appending and mirrors every subsequent event to it,
  /// one JSON line each, flushed per line. Replaces any previous sink.
  Status AttachSink(const std::string& path);
  void DetachSink();

  /// Drops ring contents and the drop counter. The id counter keeps
  /// going: request ids stay unique for the process lifetime.
  void Clear();

 private:
  static constexpr size_t kDefaultCapacity = 256;

  std::atomic<uint64_t> next_id_{0};
  mutable Mutex mu_;
  std::deque<RequestEvent> ring_ GUARDED_BY(mu_);
  size_t capacity_ GUARDED_BY(mu_) = kDefaultCapacity;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  /// The FILE handle itself is swapped under mu_ and only ever written
  /// under mu_ (per-line flush), hence guarded rather than pt-guarded.
  std::FILE* sink_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace gogreen::obs

#endif  // GOGREEN_OBS_REQUEST_LOG_H_
