// Library-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms, collected in a process-global (or test-local) MetricRegistry.
//
// Design constraints (see DESIGN.md "Observability"):
//   - Near-zero overhead when nothing reads the metrics. Hot loops keep
//     their local counters (fpm::MiningStats etc.) and flush totals into
//     the registry once per run; registry instruments are plain relaxed
//     atomics, so a flush is a handful of uncontended atomic adds.
//   - Thread-safe without locking on the update path. The registry map is
//     mutex-protected, but instrument pointers are stable for the life of
//     the registry, so callers cache `Counter*` in function-local statics.
//   - Snapshot-able: `Snapshot()` copies every instrument into a plain
//     struct that serializes to JSON (`MetricsSnapshot::ToJson()`).
//
// Metric naming scheme: `<subsystem>.<what>` in snake_case, e.g.
// `mine.items_scanned`, `compress.groups_formed`, `recycle.cache_hits`,
// `process.peak_rss_bytes`. Histograms of durations end in `_seconds`.

#ifndef GOGREEN_OBS_METRICS_H_
#define GOGREEN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace gogreen::obs {

/// Monotonically increasing counter. Relaxed atomics: totals are exact once
/// all writers have finished, which is all the harnesses need.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (also supports monotone max updates,
/// e.g. for peak RSS).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if it is currently lower.
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are set at creation and
/// never change, so observation is a binary search plus one atomic add.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t TotalCount() const;
  double Sum() const;
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

  /// Default bounds for `*_seconds` histograms: 1ms .. ~100s, log-spaced.
  static std::vector<double> DefaultLatencyBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1 entries.
  std::atomic<uint64_t> count_{0};
  // Sum accumulated as a compare-exchange loop over a double bit pattern.
  std::atomic<uint64_t> sum_bits_{0};
};

/// Plain-struct copy of a registry at one instant.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;  ///< bounds.size() + 1 (overflow last).
    uint64_t count = 0;
    double sum = 0.0;

    /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
    /// the bucket the rank falls in (Prometheus histogram_quantile
    /// semantics): the first bucket interpolates from 0, and a rank in
    /// the overflow bucket clamps to the largest finite bound. 0 when the
    /// histogram is empty.
    double Quantile(double q) const;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;  // Name-sorted.
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramData> histograms;

  uint64_t CounterValue(std::string_view name, uint64_t dflt = 0) const;
  int64_t GaugeValue(std::string_view name, int64_t dflt = 0) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{...}}}.
  std::string ToJson() const;
};

/// Name -> instrument map. Instruments are created on first use and live as
/// long as the registry; returned pointers stay valid, so hot paths should
/// resolve a name once and cache the pointer.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry every library component reports into.
  static MetricRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` only applies on first creation of the histogram.
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds =
                              Histogram::DefaultLatencyBounds());

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument (pointers stay valid). For tests and for
  /// harnesses that measure deltas across repeated runs.
  void ResetValues();

 private:
  /// Guards the name -> instrument maps only; the instruments themselves
  /// are lock-free atomics updated without mu_.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

/// Peak resident set size of this process in bytes (VmHWM on Linux,
/// ru_maxrss fallback); 0 if unavailable.
int64_t ReadPeakRssBytes();

/// Refreshes process-level gauges (`process.peak_rss_bytes`) in the global
/// registry. Call before snapshotting.
void UpdateProcessGauges();

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes). Shared by the metrics and trace serializers.
std::string JsonEscape(std::string_view s);

}  // namespace gogreen::obs

#endif  // GOGREEN_OBS_METRICS_H_
