// First-level fan-out shared by the parallel miners.
//
// Every projection-based miner in the substrate has the same outer shape:
// one root pass discovers the frequent first-level extensions, then each
// extension's projected database is mined independently. The fan-out here
// runs those subtrees on the global ThreadPool, each into a private
// (PatternSet, MiningStats) shard, and merges the shards back in ascending
// extension order — exactly the order the sequential loop emits — so the
// result is bit-identical for every thread count.

#ifndef GOGREEN_FPM_PARALLEL_MINE_H_
#define GOGREEN_FPM_PARALLEL_MINE_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "util/thread_pool.h"

namespace gogreen::fpm {

/// Private output of one first-level subtree.
struct MineShard {
  PatternSet patterns;
  MiningStats stats;
};

/// True when a first-level fan-out would actually run concurrently (the
/// global pool has more than one lane). Miners use this to keep the
/// unmodified sequential recursion as the single-thread path.
bool ParallelMiningEnabled();

/// Runs `mine(shard, lane, i)` for each first-level extension i in [0, n)
/// on `pool`, then appends each shard's patterns to `out` and sums its work
/// counters into `stats`, in ascending i order. Callers obtain `pool` from
/// ThreadPool::Global() and hold it across the call (plus any lane-indexed
/// scratch sized from pool->threads()), so a concurrent SetGlobalThreads()
/// can neither destroy the pool mid-run nor desynchronize lane ids from
/// the scratch size. `lane` < pool->threads(); no two concurrent calls
/// share a lane, so lane-indexed scratch contexts need no locking.
/// Exceptions from `mine` propagate after all started subtrees finish.
void MineFirstLevelParallel(
    const std::shared_ptr<ThreadPool>& pool, size_t n,
    const std::function<void(MineShard* shard, size_t lane, size_t i)>& mine,
    PatternSet* out, MiningStats* stats);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_PARALLEL_MINE_H_
