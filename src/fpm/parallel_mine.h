// First-level fan-out shared by the parallel miners.
//
// Every projection-based miner in the substrate has the same outer shape:
// one root pass discovers the frequent first-level extensions, then each
// extension's projected database is mined independently. The fan-out here
// runs those subtrees on the global ThreadPool, each into a private
// (PatternSet, MiningStats) shard, and merges the shards back in ascending
// extension order — exactly the order the sequential loop emits — so the
// result is bit-identical for every thread count.
//
// Lock-discipline audit (DESIGN.md §15): this layer holds no mutex of its
// own. Each shard is written by exactly one lane (the ThreadPool lane-
// exclusivity contract) and merged only after the WaitGroup barrier; the
// shared cursor is a relaxed atomic. The thread-safety build verifies the
// layer stays that way — any future guarded state must come through
// util/thread_annotations.h.

#ifndef GOGREEN_FPM_PARALLEL_MINE_H_
#define GOGREEN_FPM_PARALLEL_MINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "util/run_context.h"
#include "util/thread_pool.h"

namespace gogreen::fpm {

/// Private output of one first-level subtree.
struct MineShard {
  PatternSet patterns;
  MiningStats stats;
};

/// True when a first-level fan-out would actually run concurrently (the
/// global pool has more than one lane). Miners use this to keep the
/// unmodified sequential recursion as the single-thread path.
bool ParallelMiningEnabled();

/// Runs `mine(shard, lane, i)` for each first-level extension i in [0, n)
/// on `pool`, then appends each shard's patterns to `out` and sums its work
/// counters into `stats`, in ascending i order. Callers obtain `pool` from
/// ThreadPool::Global() and hold it across the call (plus any lane-indexed
/// scratch sized from pool->threads()), so a concurrent SetGlobalThreads()
/// can neither destroy the pool mid-run nor desynchronize lane ids from
/// the scratch size. `lane` < pool->threads(); no two concurrent calls
/// share a lane, so lane-indexed scratch contexts need no locking.
/// Exceptions from `mine` propagate after all started subtrees finish.
void MineFirstLevelParallel(
    const std::shared_ptr<ThreadPool>& pool, size_t n,
    const std::function<void(MineShard* shard, size_t lane, size_t i)>& mine,
    PatternSet* out, MiningStats* stats);

/// Governed first-level fan-out. Differs from MineFirstLevelParallel in
/// three ways that together make an early stop sound:
///   - Subtrees are claimed in DESCENDING index order. The F-list is
///     support-ascending, so the most frequent extensions — whose subtrees
///     contain every high-support pattern — are mined first.
///   - `ctx` is polled between claims, and the caller's wait on the fan-out
///     is deadline-aware (ThreadPool::WaitFor in a poll loop), so a breach
///     trips within one shard boundary.
///   - `mine` returns whether it ran subtree i to completion. After the
///     fan-out, if the contiguously completed subtrees counted from the top
///     do not cover all n, the run is marked incomplete on `ctx` with
///     frontier support level_supports[j] + 1, where j is the highest
///     uncompleted index — every pattern with support above that level lives
///     entirely inside the completed top region, so the emitted set filtered
///     to the frontier is exact. `level_supports[i]` is the support of
///     extension i (ascending, F-list order).
/// Nested (non-root) callers pass mark_frontier = false: they report
/// completion through the return value and leave the frontier bookkeeping
/// to their root driver. All shards, complete or not, are merged into `out`
/// (partially mined subtrees still emitted genuine patterns; the outcome
/// filter drops whatever falls below the frontier). Returns true iff every
/// subtree completed. With a 1-lane pool the caller mines every subtree
/// itself — the governed sequential path.
bool MineFirstLevelGoverned(
    const std::shared_ptr<ThreadPool>& pool, size_t n,
    const std::function<bool(MineShard* shard, size_t lane, size_t i)>& mine,
    PatternSet* out, MiningStats* stats, RunContext* ctx,
    const std::vector<uint64_t>& level_supports, bool mark_frontier);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_PARALLEL_MINE_H_
