// Tree Projection (Agarwal, Aggarwal, Prasad — JPDC'01), depth-first
// variant: the lexicographic tree is explored with transactions physically
// projected at every node, and a triangular pair-count matrix at each node
// supplies the supports of all grandchildren in one scan.

#ifndef GOGREEN_FPM_TREE_PROJECTION_H_
#define GOGREEN_FPM_TREE_PROJECTION_H_

#include "fpm/miner.h"

namespace gogreen::fpm {

class TreeProjectionMiner : public FrequentPatternMiner {
 public:
  std::string name() const override { return "tree-projection"; }

  Result<PatternSet> Mine(const TransactionDb& db,
                          uint64_t min_support) override;
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_TREE_PROJECTION_H_
