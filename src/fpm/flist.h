// F-list (Definition 3.1 of the paper): frequent items ordered by ascending
// support, plus rank lookups and transaction re-encoding helpers.

#ifndef GOGREEN_FPM_FLIST_H_
#define GOGREEN_FPM_FLIST_H_

#include <cstdint>
#include <vector>

#include "fpm/item.h"
#include "fpm/transaction_db.h"

namespace gogreen::fpm {

/// The frequent list of a database at a given minimum support.
///
/// Items are ordered support-ascending (ties broken by ascending item id for
/// determinism). The *candidate extensions* of the item at rank r are exactly
/// the items at ranks > r (Definition 3.3), so the projection-based miners
/// work on suffixes of rank-sorted transactions.
class FList {
 public:
  FList() = default;

  /// Builds the F-list of `db` at absolute support threshold `min_support`
  /// (an item is frequent iff its support >= min_support).
  static FList Build(const TransactionDb& db, uint64_t min_support);

  /// Builds an F-list directly from per-item support counts.
  static FList FromCounts(const std::vector<uint64_t>& counts,
                          uint64_t min_support);

  /// Number of frequent items.
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// The item at rank r (rank 0 = lowest support).
  ItemId item(Rank r) const { return items_[r]; }

  /// Support of the item at rank r.
  uint64_t support(Rank r) const { return supports_[r]; }

  /// Rank of an item, or kNoRank if the item is not frequent (or out of the
  /// universe this F-list was built over).
  Rank rank(ItemId it) const {
    return it < ranks_.size() ? ranks_[it] : kNoRank;
  }

  bool IsFrequent(ItemId it) const { return rank(it) != kNoRank; }

  /// All frequent items in F-list (support-ascending) order.
  const std::vector<ItemId>& items() const { return items_; }

  /// Re-encodes a canonical transaction into ascending *ranks*, dropping
  /// infrequent items. The result is sorted ascending by rank, i.e. rarest
  /// item first — the order in which projections peel off prefixes.
  std::vector<Rank> EncodeTransaction(ItemSpan items) const;

  /// Appends the rank encoding of `items` to `*out` (no clear), returning the
  /// number of ranks appended. Avoids per-transaction allocation in loaders.
  size_t AppendEncoded(ItemSpan items, std::vector<Rank>* out) const;

  /// Maps a vector of ranks back to item ids (any order preserved).
  std::vector<ItemId> DecodeRanks(const std::vector<Rank>& ranks) const;

 private:
  std::vector<ItemId> items_;      // rank -> item id
  std::vector<uint64_t> supports_;  // rank -> support
  std::vector<Rank> ranks_;        // item id -> rank (kNoRank if infrequent)
};

/// A transaction database re-encoded onto an F-list: every transaction holds
/// the ranks of its frequent items, sorted ascending (support-ascending item
/// order). This is the working representation for all projection miners.
class RankedDb {
 public:
  /// Builds the ranked view of `db` under `flist`. Transactions that contain
  /// no frequent item become empty rows (kept so Tids remain stable).
  static RankedDb Build(const TransactionDb& db, const FList& flist);

  size_t NumTransactions() const { return offsets_.size() - 1; }

  std::span<const Rank> Transaction(Tid t) const {
    return {ranks_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]};
  }

  size_t TotalItems() const { return ranks_.size(); }

  size_t MemoryUsage() const {
    return ranks_.capacity() * sizeof(Rank) +
           offsets_.capacity() * sizeof(uint64_t);
  }

 private:
  std::vector<Rank> ranks_;
  std::vector<uint64_t> offsets_{0};
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_FLIST_H_
