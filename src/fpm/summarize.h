// Condensed pattern representations: closed and maximal pattern extraction
// plus summary statistics over a complete frequent-pattern set. Interactive
// sessions (the paper's motivating scenario) typically inspect these
// condensed views between refinement rounds.

#ifndef GOGREEN_FPM_SUMMARIZE_H_
#define GOGREEN_FPM_SUMMARIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/pattern_set.h"

namespace gogreen::fpm {

/// Patterns with no proper superset of equal support in `fp`. For a
/// complete input this is exactly the set of closed frequent patterns;
/// it determines every pattern's support losslessly.
PatternSet ClosedPatterns(const PatternSet& fp);

/// Patterns with no proper superset at all in `fp`. For a complete input
/// this is the set of maximal frequent patterns (the frequent border).
PatternSet MaximalPatterns(const PatternSet& fp);

/// Descriptive statistics of a pattern set.
struct PatternSetSummary {
  uint64_t count = 0;
  size_t max_length = 0;
  double avg_length = 0;
  uint64_t max_support = 0;
  uint64_t min_support = 0;
  /// histogram[k] = number of patterns with exactly k items (index 0
  /// unused).
  std::vector<uint64_t> length_histogram;

  std::string ToString() const;
};

PatternSetSummary Summarize(const PatternSet& fp);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_SUMMARIZE_H_
