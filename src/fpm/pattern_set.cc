#include "fpm/pattern_set.h"

#include <algorithm>

namespace gogreen::fpm {

void PatternSet::SortCanonical() {
  std::sort(patterns_.begin(), patterns_.end(), PatternLess);
}

bool PatternSet::Equal(PatternSet* a, PatternSet* b) {
  a->SortCanonical();
  b->SortCanonical();
  return a->patterns_ == b->patterns_;
}

std::vector<Pattern> PatternSet::Difference(PatternSet* a, PatternSet* b) {
  a->SortCanonical();
  b->SortCanonical();
  std::vector<Pattern> out;
  std::set_difference(a->patterns_.begin(), a->patterns_.end(),
                      b->patterns_.begin(), b->patterns_.end(),
                      std::back_inserter(out), PatternLess);
  return out;
}

PatternSet PatternSet::FilterBySupport(uint64_t min_support) const {
  PatternSet out;
  for (const Pattern& p : patterns_) {
    if (p.support >= min_support) out.Add(p);
  }
  return out;
}

PatternSet PatternSet::FilterByMinLength(size_t min_len) const {
  PatternSet out;
  for (const Pattern& p : patterns_) {
    if (p.size() >= min_len) out.Add(p);
  }
  return out;
}

size_t PatternSet::MaxLength() const {
  size_t max_len = 0;
  for (const Pattern& p : patterns_) max_len = std::max(max_len, p.size());
  return max_len;
}

uint64_t PatternSet::SupportOf(ItemSpan items) const {
  for (const Pattern& p : patterns_) {
    if (p.items.size() == items.size() &&
        std::equal(items.begin(), items.end(), p.items.begin())) {
      return p.support;
    }
  }
  return 0;
}

std::string PatternSet::ToString() const {
  std::string out;
  for (const Pattern& p : patterns_) {
    out += p.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace gogreen::fpm
