#include "fpm/constraints.h"

#include <algorithm>
#include <sstream>

#include "fpm/pattern.h"

namespace gogreen::fpm {

const char* ConstraintCategoryName(ConstraintCategory category) {
  switch (category) {
    case ConstraintCategory::kAntiMonotone:
      return "anti-monotone";
    case ConstraintCategory::kMonotone:
      return "monotone";
    case ConstraintCategory::kSuccinct:
      return "succinct";
    case ConstraintCategory::kConvertible:
      return "convertible";
  }
  return "?";
}

const char* ConstraintDeltaName(ConstraintDelta delta) {
  switch (delta) {
    case ConstraintDelta::kUnchanged:
      return "unchanged";
    case ConstraintDelta::kTightened:
      return "tightened";
    case ConstraintDelta::kRelaxed:
      return "relaxed";
    case ConstraintDelta::kIncomparable:
      return "incomparable";
  }
  return "?";
}

namespace {

ConstraintDelta DeltaFromBounds(double new_bound, double old_bound,
                                bool larger_is_relaxed) {
  if (new_bound == old_bound) return ConstraintDelta::kUnchanged;
  const bool relaxed = larger_is_relaxed ? new_bound > old_bound
                                         : new_bound < old_bound;
  return relaxed ? ConstraintDelta::kRelaxed : ConstraintDelta::kTightened;
}

class MaxLengthConstraint : public Constraint {
 public:
  explicit MaxLengthConstraint(size_t max_len) : max_len_(max_len) {}

  ConstraintCategory category() const override {
    return ConstraintCategory::kAntiMonotone;
  }
  std::string kind() const override { return "max-length"; }
  std::string Describe() const override {
    return "|X| <= " + std::to_string(max_len_);
  }
  bool Satisfies(const Pattern& p) const override {
    return p.size() <= max_len_;
  }
  ConstraintDelta CompareTo(const Constraint& old) const override {
    const auto& o = static_cast<const MaxLengthConstraint&>(old);
    return DeltaFromBounds(static_cast<double>(max_len_),
                           static_cast<double>(o.max_len_),
                           /*larger_is_relaxed=*/true);
  }
  std::unique_ptr<Constraint> Clone() const override {
    return std::make_unique<MaxLengthConstraint>(max_len_);
  }

 private:
  size_t max_len_;
};

class MinLengthConstraint : public Constraint {
 public:
  explicit MinLengthConstraint(size_t min_len) : min_len_(min_len) {}

  ConstraintCategory category() const override {
    return ConstraintCategory::kMonotone;
  }
  std::string kind() const override { return "min-length"; }
  std::string Describe() const override {
    return "|X| >= " + std::to_string(min_len_);
  }
  bool Satisfies(const Pattern& p) const override {
    return p.size() >= min_len_;
  }
  ConstraintDelta CompareTo(const Constraint& old) const override {
    const auto& o = static_cast<const MinLengthConstraint&>(old);
    return DeltaFromBounds(static_cast<double>(min_len_),
                           static_cast<double>(o.min_len_),
                           /*larger_is_relaxed=*/false);
  }
  std::unique_ptr<Constraint> Clone() const override {
    return std::make_unique<MinLengthConstraint>(min_len_);
  }

 private:
  size_t min_len_;
};

class ItemSubsetConstraint : public Constraint {
 public:
  explicit ItemSubsetConstraint(std::vector<ItemId> allowed)
      : allowed_(std::move(allowed)) {
    CanonicalizeItems(&allowed_);
  }

  ConstraintCategory category() const override {
    return ConstraintCategory::kSuccinct;
  }
  std::string kind() const override { return "item-subset"; }
  std::string Describe() const override {
    return "X subset-of S (|S|=" + std::to_string(allowed_.size()) + ")";
  }
  bool Satisfies(const Pattern& p) const override {
    return IsSubsetSorted(ItemSpan(p.items),
                               ItemSpan(allowed_));
  }
  ConstraintDelta CompareTo(const Constraint& old) const override {
    const auto& o = static_cast<const ItemSubsetConstraint&>(old);
    if (allowed_ == o.allowed_) return ConstraintDelta::kUnchanged;
    const bool new_in_old = IsSubsetSorted(ItemSpan(allowed_),
                                                ItemSpan(o.allowed_));
    const bool old_in_new = IsSubsetSorted(ItemSpan(o.allowed_),
                                                ItemSpan(allowed_));
    if (new_in_old) return ConstraintDelta::kTightened;
    if (old_in_new) return ConstraintDelta::kRelaxed;
    return ConstraintDelta::kIncomparable;
  }
  std::unique_ptr<Constraint> Clone() const override {
    return std::make_unique<ItemSubsetConstraint>(allowed_);
  }

 private:
  std::vector<ItemId> allowed_;
};

class RequiresAnyConstraint : public Constraint {
 public:
  explicit RequiresAnyConstraint(std::vector<ItemId> required)
      : required_(std::move(required)) {
    CanonicalizeItems(&required_);
  }

  ConstraintCategory category() const override {
    return ConstraintCategory::kSuccinct;
  }
  std::string kind() const override { return "requires-any"; }
  std::string Describe() const override {
    return "X intersects R (|R|=" + std::to_string(required_.size()) + ")";
  }
  bool Satisfies(const Pattern& p) const override {
    // Both sorted: any common element?
    size_t i = 0;
    size_t j = 0;
    while (i < p.items.size() && j < required_.size()) {
      if (p.items[i] < required_[j]) {
        ++i;
      } else if (p.items[i] > required_[j]) {
        ++j;
      } else {
        return true;
      }
    }
    return false;
  }
  ConstraintDelta CompareTo(const Constraint& old) const override {
    const auto& o = static_cast<const RequiresAnyConstraint&>(old);
    if (required_ == o.required_) return ConstraintDelta::kUnchanged;
    // A larger required set accepts more patterns.
    const bool new_in_old = IsSubsetSorted(ItemSpan(required_),
                                                ItemSpan(o.required_));
    const bool old_in_new = IsSubsetSorted(ItemSpan(o.required_),
                                                ItemSpan(required_));
    if (new_in_old) return ConstraintDelta::kTightened;
    if (old_in_new) return ConstraintDelta::kRelaxed;
    return ConstraintDelta::kIncomparable;
  }
  std::unique_ptr<Constraint> Clone() const override {
    return std::make_unique<RequiresAnyConstraint>(required_);
  }

 private:
  std::vector<ItemId> required_;
};

class MaxSumConstraint : public Constraint {
 public:
  MaxSumConstraint(std::vector<double> values, double max_sum)
      : values_(std::move(values)), max_sum_(max_sum) {}

  ConstraintCategory category() const override {
    return ConstraintCategory::kAntiMonotone;
  }
  std::string kind() const override { return "max-sum"; }
  std::string Describe() const override {
    return "sum(v[X]) <= " + std::to_string(max_sum_);
  }
  bool Satisfies(const Pattern& p) const override {
    double sum = 0;
    for (ItemId it : p.items) {
      if (it < values_.size()) sum += values_[it];
    }
    return sum <= max_sum_;
  }
  ConstraintDelta CompareTo(const Constraint& old) const override {
    const auto& o = static_cast<const MaxSumConstraint&>(old);
    if (values_ != o.values_) return ConstraintDelta::kIncomparable;
    return DeltaFromBounds(max_sum_, o.max_sum_, /*larger_is_relaxed=*/true);
  }
  std::unique_ptr<Constraint> Clone() const override {
    return std::make_unique<MaxSumConstraint>(values_, max_sum_);
  }

 private:
  std::vector<double> values_;
  double max_sum_;
};

class MinAvgConstraint : public Constraint {
 public:
  MinAvgConstraint(std::vector<double> values, double min_avg)
      : values_(std::move(values)), min_avg_(min_avg) {}

  ConstraintCategory category() const override {
    return ConstraintCategory::kConvertible;
  }
  std::string kind() const override { return "min-avg"; }
  std::string Describe() const override {
    return "avg(v[X]) >= " + std::to_string(min_avg_);
  }
  bool Satisfies(const Pattern& p) const override {
    if (p.items.empty()) return false;
    double sum = 0;
    for (ItemId it : p.items) {
      if (it < values_.size()) sum += values_[it];
    }
    return sum / static_cast<double>(p.size()) >= min_avg_;
  }
  ConstraintDelta CompareTo(const Constraint& old) const override {
    const auto& o = static_cast<const MinAvgConstraint&>(old);
    if (values_ != o.values_) return ConstraintDelta::kIncomparable;
    return DeltaFromBounds(min_avg_, o.min_avg_, /*larger_is_relaxed=*/false);
  }
  std::unique_ptr<Constraint> Clone() const override {
    return std::make_unique<MinAvgConstraint>(values_, min_avg_);
  }

 private:
  std::vector<double> values_;
  double min_avg_;
};

}  // namespace

std::unique_ptr<Constraint> MakeMaxLength(size_t max_len) {
  return std::make_unique<MaxLengthConstraint>(max_len);
}

std::unique_ptr<Constraint> MakeMinLength(size_t min_len) {
  return std::make_unique<MinLengthConstraint>(min_len);
}

std::unique_ptr<Constraint> MakeItemSubset(std::vector<ItemId> allowed) {
  return std::make_unique<ItemSubsetConstraint>(std::move(allowed));
}

std::unique_ptr<Constraint> MakeRequiresAny(
    std::vector<ItemId> required) {
  return std::make_unique<RequiresAnyConstraint>(std::move(required));
}

std::unique_ptr<Constraint> MakeMaxSum(std::vector<double> values,
                                       double max_sum) {
  return std::make_unique<MaxSumConstraint>(std::move(values), max_sum);
}

std::unique_ptr<Constraint> MakeMinAvg(std::vector<double> values,
                                       double min_avg) {
  return std::make_unique<MinAvgConstraint>(std::move(values), min_avg);
}

ConstraintSet::ConstraintSet(const ConstraintSet& other)
    : min_support_(other.min_support_) {
  constraints_.reserve(other.constraints_.size());
  for (const auto& c : other.constraints_) constraints_.push_back(c->Clone());
}

ConstraintSet& ConstraintSet::operator=(const ConstraintSet& other) {
  if (this == &other) return *this;
  min_support_ = other.min_support_;
  constraints_.clear();
  constraints_.reserve(other.constraints_.size());
  for (const auto& c : other.constraints_) constraints_.push_back(c->Clone());
  return *this;
}

ConstraintSet& ConstraintSet::Add(std::unique_ptr<Constraint> constraint) {
  constraints_.push_back(std::move(constraint));
  return *this;
}

bool ConstraintSet::Satisfies(const Pattern& pattern) const {
  for (const auto& c : constraints_) {
    if (!c->Satisfies(pattern)) return false;
  }
  return true;
}

PatternSet ConstraintSet::Filter(const PatternSet& fp) const {
  PatternSet out;
  for (const Pattern& p : fp) {
    if (p.support >= min_support_ && Satisfies(p)) out.Add(p);
  }
  return out;
}

ConstraintDelta ConstraintSet::CompareTo(const ConstraintSet& old) const {
  bool any_tightened = false;
  bool any_relaxed = false;
  bool any_incomparable = false;

  const auto note = [&](ConstraintDelta d) {
    switch (d) {
      case ConstraintDelta::kTightened:
        any_tightened = true;
        break;
      case ConstraintDelta::kRelaxed:
        any_relaxed = true;
        break;
      case ConstraintDelta::kIncomparable:
        any_incomparable = true;
        break;
      case ConstraintDelta::kUnchanged:
        break;
    }
  };

  // Support: a higher threshold shrinks the solution space.
  if (min_support_ > old.min_support_) {
    note(ConstraintDelta::kTightened);
  } else if (min_support_ < old.min_support_) {
    note(ConstraintDelta::kRelaxed);
  }

  // Match constraints by kind; first match wins (one constraint per kind is
  // the expected usage).
  std::vector<bool> old_matched(old.constraints_.size(), false);
  for (const auto& mine : constraints_) {
    bool found = false;
    for (size_t j = 0; j < old.constraints_.size(); ++j) {
      if (!old_matched[j] && old.constraints_[j]->kind() == mine->kind()) {
        old_matched[j] = true;
        note(mine->CompareTo(*old.constraints_[j]));
        found = true;
        break;
      }
    }
    if (!found) note(ConstraintDelta::kTightened);  // Newly added constraint.
  }
  for (size_t j = 0; j < old.constraints_.size(); ++j) {
    if (!old_matched[j]) note(ConstraintDelta::kRelaxed);  // Dropped.
  }

  if (any_incomparable || (any_tightened && any_relaxed)) {
    return ConstraintDelta::kIncomparable;
  }
  if (any_tightened) return ConstraintDelta::kTightened;
  if (any_relaxed) return ConstraintDelta::kRelaxed;
  return ConstraintDelta::kUnchanged;
}

std::string ConstraintSet::Fingerprint() const {
  if (constraints_.empty()) return "";
  std::vector<std::string> parts;
  parts.reserve(constraints_.size());
  for (const auto& c : constraints_) {
    parts.push_back(c->kind() + "=" + c->Describe());
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ';';
    out += p;
  }
  return out;
}

std::string ConstraintSet::Describe() const {
  std::ostringstream out;
  out << "support >= " << min_support_;
  for (const auto& c : constraints_) {
    out << " AND " << c->Describe() << " [" <<
        ConstraintCategoryName(c->category()) << "]";
  }
  return out.str();
}

}  // namespace gogreen::fpm
