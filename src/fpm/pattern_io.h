// Persistence for pattern sets: the multi-user recycling story (Section 2)
// needs discovered patterns to outlive the process that mined them.

#ifndef GOGREEN_FPM_PATTERN_IO_H_
#define GOGREEN_FPM_PATTERN_IO_H_

#include <string>

#include "fpm/pattern_set.h"
#include "util/status.h"

namespace gogreen::fpm {

/// Metadata stored alongside a pattern set so a consumer can judge whether
/// the set is recyclable for its own query.
struct PatternSetHeader {
  uint64_t min_support = 0;      ///< Threshold the set is complete at.
  uint64_t num_transactions = 0; ///< |DB| the supports refer to.
  std::string source;            ///< Free-form provenance tag.
};

/// Writes `fp` with its header in a compact binary format; returns bytes
/// written. The write is crash-safe: data goes to `path + ".tmp"`, is
/// fsynced, and is renamed into place (then the directory is fsynced), so
/// `path` only ever holds the previous file or the complete new one. A
/// checksum trailer lets ReadPatternFile reject torn or corrupted files.
/// Concurrent writers of the same `path` are not supported (they share the
/// temp name).
Result<uint64_t> WritePatternFile(const PatternSet& fp,
                                  const PatternSetHeader& header,
                                  const std::string& path);

/// Reads a file produced by WritePatternFile, verifying its checksum.
Result<std::pair<PatternSet, PatternSetHeader>> ReadPatternFile(
    const std::string& path);

/// Writes `fp` as text, one pattern per line: "item item ... (support)".
/// The format FIM implementations conventionally exchange. Crash-safe via
/// the same tmp+rename publish as WritePatternFile (no checksum: the text
/// format is for interchange).
Result<uint64_t> WritePatternText(const PatternSet& fp,
                                  const std::string& path);

/// Reads the text format (header-less; returns only the patterns).
Result<PatternSet> ReadPatternText(const std::string& path);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_PATTERN_IO_H_
