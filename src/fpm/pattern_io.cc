#include "fpm/pattern_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <fstream>

#include "fpm/pattern.h"
#include "util/failpoint.h"
#include "util/retry.h"

namespace gogreen::fpm {

namespace {

constexpr uint64_t kMagic = 0x544150474F474F47ULL;  // "GOGOGPAT"

/// Writes retry under the shared transient-only policy (util/retry.h): each
/// attempt rebuilds the temp file from scratch (O_TRUNC), so retries are
/// idempotent. A non-transient failure — e.g. an InvalidArgument — returns
/// immediately; only IO faults get the extra attempts.
RetryPolicy WriteRetryPolicy() {
  RetryPolicy policy;
  policy.jitter_seed = 0x9a77e121700ULL;
  return policy;
}

/// FNV-1a over every payload byte; stored as the file's trailer so a torn
/// or bit-flipped file is rejected instead of silently mis-seeding a cache.
struct Fnv1a {
  uint64_t hash = 1469598103934665603ULL;
  void Update(const void* p, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  }
};

Status SyncFd(int fd, const std::string& what) {
  if (fd < 0) return Status::IOError("cannot open for fsync: " + what);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed on " + what);
  return Status::OK();
}

/// Durably publishes `tmp` as `path`: fsync the data, rename into place
/// (atomic on POSIX — readers only ever see the old file or the complete
/// new one), then fsync the directory so the new name survives a crash.
Status CommitTempFile(const std::string& tmp, const std::string& path) {
  const Status inject = failpoint::MaybeFail("pattern_io.rename");
  if (!inject.ok()) {
    std::remove(tmp.c_str());
    return inject;
  }
  GOGREEN_RETURN_NOT_OK(SyncFd(::open(tmp.c_str(), O_RDONLY), tmp));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " -> " + path);
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  return SyncFd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY), dir);
}

Result<uint64_t> WritePatternFileOnce(const PatternSet& fp,
                                      const PatternSetHeader& header,
                                      const std::string& path) {
  GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("pattern_io.write"));
  const std::string tmp = path + ".tmp";
  uint64_t bytes = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot open for writing: " + tmp);
    }
    Fnv1a sum;
    const auto put = [&out, &sum](const void* p, size_t n) {
      out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
      sum.Update(p, n);
    };
    put(&kMagic, sizeof(kMagic));
    put(&header.min_support, sizeof(header.min_support));
    put(&header.num_transactions, sizeof(header.num_transactions));
    const uint64_t source_len = header.source.size();
    put(&source_len, sizeof(source_len));
    put(header.source.data(), header.source.size());

    const uint64_t count = fp.size();
    put(&count, sizeof(count));
    for (const Pattern& p : fp) {
      const uint32_t len = static_cast<uint32_t>(p.items.size());
      put(&len, sizeof(len));
      put(p.items.data(), len * sizeof(ItemId));
      put(&p.support, sizeof(p.support));
    }
    // Trailer: checksum of everything above (not of itself).
    const uint64_t checksum = sum.hash;
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::IOError("write error on " + tmp);
    }
    bytes = static_cast<uint64_t>(out.tellp());
  }
  GOGREEN_RETURN_NOT_OK(CommitTempFile(tmp, path));
  return bytes;
}

}  // namespace

Result<uint64_t> WritePatternFile(const PatternSet& fp,
                                  const PatternSetHeader& header,
                                  const std::string& path) {
  return RetryTransientResult<uint64_t>(WriteRetryPolicy(), [&] {
    return WritePatternFileOnce(fp, header, path);
  });
}

Result<std::pair<PatternSet, PatternSetHeader>> ReadPatternFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  Fnv1a sum;
  const auto get = [&in, &sum](void* p, size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (in.good()) sum.Update(p, n);
    return in.good();
  };
  uint64_t magic = 0;
  if (!get(&magic, sizeof(magic)) || magic != kMagic) {
    return Status::IOError("not a pattern file: " + path);
  }
  PatternSetHeader header;
  uint64_t source_len = 0;
  if (!get(&header.min_support, sizeof(header.min_support)) ||
      !get(&header.num_transactions, sizeof(header.num_transactions)) ||
      !get(&source_len, sizeof(source_len)) ||
      source_len > (1u << 20)) {
    return Status::IOError("corrupt pattern file header: " + path);
  }
  header.source.resize(source_len);
  if (source_len > 0 && !get(header.source.data(), source_len)) {
    return Status::IOError("corrupt pattern file header: " + path);
  }

  uint64_t count = 0;
  if (!get(&count, sizeof(count)) || count > (uint64_t{1} << 32)) {
    return Status::IOError("corrupt pattern count: " + path);
  }
  PatternSet fp;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!get(&len, sizeof(len)) || len > (1u << 24)) {
      return Status::IOError("corrupt pattern record: " + path);
    }
    std::vector<ItemId> items(len);
    uint64_t support = 0;
    if ((len > 0 && !get(items.data(), len * sizeof(ItemId))) ||
        !get(&support, sizeof(support))) {
      return Status::IOError("truncated pattern file: " + path);
    }
    fp.Add(std::move(items), support);
  }
  // Trailer: the stored checksum must match the payload just read.
  const uint64_t expected = sum.hash;
  uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in.good() || checksum != expected) {
    return Status::IOError("pattern file checksum mismatch: " + path);
  }
  return std::make_pair(std::move(fp), std::move(header));
}

namespace {

Result<uint64_t> WritePatternTextOnce(const PatternSet& fp,
                                      const std::string& path) {
  GOGREEN_RETURN_NOT_OK(failpoint::MaybeFail("pattern_io.write"));
  const std::string tmp = path + ".tmp";
  uint64_t bytes = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) {
      return Status::IOError("cannot open for writing: " + tmp);
    }
    std::string line;
    for (const Pattern& p : fp) {
      line.clear();
      for (size_t i = 0; i < p.items.size(); ++i) {
        if (i > 0) line += ' ';
        line += std::to_string(p.items[i]);
      }
      line += " (";
      line += std::to_string(p.support);
      line += ")\n";
      out << line;
      bytes += line.size();
    }
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::IOError("write error on " + tmp);
    }
  }
  GOGREEN_RETURN_NOT_OK(CommitTempFile(tmp, path));
  return bytes;
}

}  // namespace

Result<uint64_t> WritePatternText(const PatternSet& fp,
                                  const std::string& path) {
  return RetryTransientResult<uint64_t>(
      WriteRetryPolicy(),
      [&fp, &path] { return WritePatternTextOnce(fp, path); });
}

Result<PatternSet> ReadPatternText(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  PatternSet fp;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<ItemId> items;
    const char* p = line.data();
    const char* end = p + line.size();
    uint64_t support = 0;
    bool have_support = false;
    while (p < end) {
      while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
      if (p == end) break;
      if (*p == '(') {
        ++p;
        auto [next, ec] = std::from_chars(p, end, support);
        if (ec != std::errc() || next == end || *next != ')') {
          return Status::IOError("malformed support at " + path + ":" +
                                 std::to_string(line_no));
        }
        have_support = true;
        p = next + 1;
        continue;
      }
      uint32_t value = 0;
      auto [next, ec] = std::from_chars(p, end, value);
      if (ec != std::errc()) {
        return Status::IOError("malformed item at " + path + ":" +
                               std::to_string(line_no));
      }
      items.push_back(value);
      p = next;
    }
    if (items.empty() || !have_support) {
      return Status::IOError("malformed pattern at " + path + ":" +
                             std::to_string(line_no));
    }
    CanonicalizeItems(&items);
    fp.Add(std::move(items), support);
  }
  if (in.bad()) return Status::IOError("read error on " + path);
  return fp;
}

}  // namespace gogreen::fpm
