#include "fpm/pattern_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>

#include "fpm/pattern.h"

namespace gogreen::fpm {

namespace {
constexpr uint64_t kMagic = 0x544150474F474F47ULL;  // "GOGOGPAT"
}  // namespace

Result<uint64_t> WritePatternFile(const PatternSet& fp,
                                  const PatternSetHeader& header,
                                  const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  const auto put = [&out](const void* p, size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  };
  put(&kMagic, sizeof(kMagic));
  put(&header.min_support, sizeof(header.min_support));
  put(&header.num_transactions, sizeof(header.num_transactions));
  const uint64_t source_len = header.source.size();
  put(&source_len, sizeof(source_len));
  put(header.source.data(), header.source.size());

  const uint64_t count = fp.size();
  put(&count, sizeof(count));
  for (const Pattern& p : fp) {
    const uint32_t len = static_cast<uint32_t>(p.items.size());
    put(&len, sizeof(len));
    put(p.items.data(), len * sizeof(ItemId));
    put(&p.support, sizeof(p.support));
  }
  out.flush();
  if (!out.good()) return Status::IOError("write error on " + path);
  return static_cast<uint64_t>(out.tellp());
}

Result<std::pair<PatternSet, PatternSetHeader>> ReadPatternFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  const auto get = [&in](void* p, size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    return in.good();
  };
  uint64_t magic = 0;
  if (!get(&magic, sizeof(magic)) || magic != kMagic) {
    return Status::IOError("not a pattern file: " + path);
  }
  PatternSetHeader header;
  uint64_t source_len = 0;
  if (!get(&header.min_support, sizeof(header.min_support)) ||
      !get(&header.num_transactions, sizeof(header.num_transactions)) ||
      !get(&source_len, sizeof(source_len)) ||
      source_len > (1u << 20)) {
    return Status::IOError("corrupt pattern file header: " + path);
  }
  header.source.resize(source_len);
  if (source_len > 0 && !get(header.source.data(), source_len)) {
    return Status::IOError("corrupt pattern file header: " + path);
  }

  uint64_t count = 0;
  if (!get(&count, sizeof(count)) || count > (uint64_t{1} << 32)) {
    return Status::IOError("corrupt pattern count: " + path);
  }
  PatternSet fp;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!get(&len, sizeof(len)) || len > (1u << 24)) {
      return Status::IOError("corrupt pattern record: " + path);
    }
    std::vector<ItemId> items(len);
    uint64_t support = 0;
    if ((len > 0 && !get(items.data(), len * sizeof(ItemId))) ||
        !get(&support, sizeof(support))) {
      return Status::IOError("truncated pattern file: " + path);
    }
    fp.Add(std::move(items), support);
  }
  return std::make_pair(std::move(fp), std::move(header));
}

Result<uint64_t> WritePatternText(const PatternSet& fp,
                                  const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  uint64_t bytes = 0;
  std::string line;
  for (const Pattern& p : fp) {
    line.clear();
    for (size_t i = 0; i < p.items.size(); ++i) {
      if (i > 0) line += ' ';
      line += std::to_string(p.items[i]);
    }
    line += " (";
    line += std::to_string(p.support);
    line += ")\n";
    out << line;
    bytes += line.size();
  }
  out.flush();
  if (!out.good()) return Status::IOError("write error on " + path);
  return bytes;
}

Result<PatternSet> ReadPatternText(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  PatternSet fp;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<ItemId> items;
    const char* p = line.data();
    const char* end = p + line.size();
    uint64_t support = 0;
    bool have_support = false;
    while (p < end) {
      while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
      if (p == end) break;
      if (*p == '(') {
        ++p;
        auto [next, ec] = std::from_chars(p, end, support);
        if (ec != std::errc() || next == end || *next != ')') {
          return Status::IOError("malformed support at " + path + ":" +
                                 std::to_string(line_no));
        }
        have_support = true;
        p = next + 1;
        continue;
      }
      uint32_t value = 0;
      auto [next, ec] = std::from_chars(p, end, value);
      if (ec != std::errc()) {
        return Status::IOError("malformed item at " + path + ":" +
                               std::to_string(line_no));
      }
      items.push_back(value);
      p = next;
    }
    if (items.empty() || !have_support) {
      return Status::IOError("malformed pattern at " + path + ":" +
                             std::to_string(line_no));
    }
    CanonicalizeItems(&items);
    fp.Add(std::move(items), support);
  }
  if (in.bad()) return Status::IOError("read error on " + path);
  return fp;
}

}  // namespace gogreen::fpm
