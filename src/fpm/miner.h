// Common interface for frequent-pattern miners plus a factory.

#ifndef GOGREEN_FPM_MINER_H_
#define GOGREEN_FPM_MINER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "fpm/constraints.h"
#include "fpm/pattern_set.h"
#include "fpm/transaction_db.h"
#include "util/run_context.h"
#include "util/status.h"

namespace gogreen::fpm {

/// Counters describing the work a mining run performed. Used by tests and by
/// the experiment harness to demonstrate where the recycling savings come
/// from (support counting and projection construction, Section 3.1).
struct MiningStats {
  uint64_t patterns_emitted = 0;
  uint64_t projections_built = 0;  ///< Projected databases / conditional trees
  uint64_t items_scanned = 0;      ///< Item occurrences touched while counting
  double elapsed_seconds = 0.0;

  void Reset() { *this = MiningStats(); }
};

/// Flushes one finished mining run into the global metric registry
/// (`mine.runs`, `mine.items_scanned`, `mine.projections_built`,
/// `mine.patterns_emitted`, and the `mine.seconds` histogram). Miners call
/// this once per Mine() so hot loops keep their cheap local counters; the
/// registry view stays consistent with the `stats()` accessors.
void RecordMiningStats(const MiningStats& stats);

/// Outcome of a governed mining run. A partial outcome is still exact: when
/// a deadline/budget/cancel stops the run early, the governed drivers
/// process first-level subtrees most-frequent-first, so the emitted set
/// filtered to `frontier_support` is precisely the complete frequent set at
/// that (higher) support — the caller can keep it, or recycle it and rerun
/// at a tightened threshold, which is the paper's own loop.
struct [[nodiscard]] MineOutcome {
  PatternSet patterns;
  /// True when the run was stopped before covering the requested support.
  bool partial = false;
  /// The support level the patterns are complete for. Equals the requested
  /// min_support when the run completed; higher when partial.
  uint64_t frontier_support = 0;
  /// OK when complete; DeadlineExceeded / ResourceExhausted / Cancelled
  /// when partial.
  Status stop_status;
};

/// Shared epilogue of the governed entry points: turns a raw mined set into
/// a MineOutcome using the context's incompleteness bookkeeping (filtering
/// the set to the frontier support when partial) and flushes the `run.*`
/// metrics. `ctx` may be null (never-partial passthrough).
Result<MineOutcome> FinishGovernedOutcome(Result<PatternSet> result,
                                          uint64_t min_support,
                                          RunContext* ctx);

/// One mining query, in full. This is the single entry shape shared by
/// FrequentPatternMiner, core::CompressedMiner, core::RecyclingSession,
/// serve::MiningService, and the wire protocol's serialized form
/// (net/wire.h); the deprecated governed/attach-detach wrappers it
/// subsumed are gone. All referenced objects are
/// borrowed: they must outlive the call, and the request itself is a cheap
/// value (copying it never copies a constraint set or a context).
struct MineRequest {
  /// Absolute support threshold (>= 1). When `constraints` also carries a
  /// minimum support, the effective threshold is the maximum of the two —
  /// either field may be left 0 if the other supplies it.
  uint64_t min_support = 0;
  /// Optional non-support constraints, applied as a final filter (the
  /// mined set is support-complete; see core/recycler.h). Not owned.
  const ConstraintSet* constraints = nullptr;
  /// Optional run governor (deadline / memory budget / cancel). Not owned.
  RunContext* run_context = nullptr;
  /// Parallelism for this request: 0 inherits the global pool, any other
  /// value runs the request on a pool of that many lanes (thread-scoped
  /// override, see ThreadPool::ScopedThreads) without touching the global
  /// configuration. The mined set is identical at any count.
  size_t threads = 0;
  /// Serving-layer tenant identity ("" = anonymous/default tenant). Mining
  /// ignores it; serve::AdmissionController keys its token buckets on it
  /// and the wide event reports it.
  std::string tenant;
  /// Milliseconds this request waited in the admission queue before being
  /// dispatched (stamped by the admission layer; 0 when it bypassed the
  /// queue). Observability only — mining ignores it.
  uint64_t queued_ms = 0;

  /// Shorthand for a plain support-only query.
  static MineRequest At(uint64_t support) {
    MineRequest request;
    request.min_support = support;
    return request;
  }

  /// The support the mining run must reach: max of `min_support` and the
  /// constraint set's threshold. InvalidArgument when both are 0.
  Result<uint64_t> EffectiveMinSupport() const;
};

/// Everything a mining call produces: the pattern set, the governed outcome
/// (partial flag + exact frontier, as in MineOutcome), and the work
/// counters of the run. The single result shape of the MineRequest API.
struct [[nodiscard]] MineResult {
  PatternSet patterns;
  /// True when a governor stopped the run before covering the requested
  /// support; `patterns` is then the exact set at `frontier_support`.
  bool partial = false;
  /// Support level `patterns` is complete for (the requested effective
  /// support when !partial, higher when partial). Constraint filtering does
  /// not affect completeness at this level.
  uint64_t frontier_support = 0;
  /// OK when complete; DeadlineExceeded / ResourceExhausted / Cancelled
  /// when partial.
  Status stop_status;
  /// Work counters of this run (same data as the miner's stats()).
  MiningStats stats;
};

/// Interface implemented by every complete-set frequent-pattern miner.
/// Implementations are stateful only through `stats()`, which reflects the
/// most recent Mine() call; a single miner instance may be reused serially.
class FrequentPatternMiner {
 public:
  virtual ~FrequentPatternMiner() = default;

  /// Algorithm name for reports ("apriori", "h-mine", ...).
  virtual std::string name() const = 0;

  /// Mines the complete set of patterns with support >= min_support
  /// (absolute count, must be >= 1). Singletons are included; the empty
  /// pattern is not. Patterns are returned in canonical item order but the
  /// set itself is in algorithm order — call SortCanonical() to compare.
  virtual Result<PatternSet> Mine(const TransactionDb& db,
                                  uint64_t min_support) = 0;

  /// The unified entry point: one call covering support, constraints,
  /// governor, and per-request parallelism (see MineRequest). Miners
  /// without governed paths (Apriori, Eclat) ignore the governor and run
  /// to completion. Not virtual — it wraps the Mine(db, min_support)
  /// implementation hook with the shared prologue/epilogue. Note: concrete
  /// miner classes hide this overload with their Mine(db, min_support)
  /// override; call it through the FrequentPatternMiner interface.
  Result<MineResult> Mine(const TransactionDb& db,
                          const MineRequest& request);

  /// Counters of the most recent Mine() call.
  const MiningStats& stats() const { return stats_; }

 protected:
  /// Shared argument validation; implementations call this first.
  static Status ValidateArgs(uint64_t min_support) {
    if (min_support == 0) {
      return Status::InvalidArgument("min_support must be >= 1");
    }
    return Status::OK();
  }

  MiningStats stats_;
  /// Governor of the in-flight Mine(db, request) call; bound for the span
  /// of that call only (implementation hooks read it, never write it).
  RunContext* run_ctx_ = nullptr;
};

/// The non-recycling algorithms available in the substrate library.
enum class MinerKind {
  kApriori,
  kEclat,
  kHMine,
  kFpGrowth,
  kTreeProjection,
};

/// Instantiates a miner of the given kind.
std::unique_ptr<FrequentPatternMiner> CreateMiner(MinerKind kind);

/// Name of a miner kind without instantiating it.
const char* MinerKindName(MinerKind kind);

/// Converts a relative support fraction (0 < frac <= 1) to the absolute count
/// used by the miners, rounding up and clamping to at least 1.
uint64_t AbsoluteSupport(double fraction, size_t num_transactions);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_MINER_H_
