// Common interface for frequent-pattern miners plus a factory.

#ifndef GOGREEN_FPM_MINER_H_
#define GOGREEN_FPM_MINER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "fpm/pattern_set.h"
#include "fpm/transaction_db.h"
#include "util/run_context.h"
#include "util/status.h"

namespace gogreen::fpm {

/// Counters describing the work a mining run performed. Used by tests and by
/// the experiment harness to demonstrate where the recycling savings come
/// from (support counting and projection construction, Section 3.1).
struct MiningStats {
  uint64_t patterns_emitted = 0;
  uint64_t projections_built = 0;  ///< Projected databases / conditional trees
  uint64_t items_scanned = 0;      ///< Item occurrences touched while counting
  double elapsed_seconds = 0.0;

  void Reset() { *this = MiningStats(); }
};

/// Flushes one finished mining run into the global metric registry
/// (`mine.runs`, `mine.items_scanned`, `mine.projections_built`,
/// `mine.patterns_emitted`, and the `mine.seconds` histogram). Miners call
/// this once per Mine() so hot loops keep their cheap local counters; the
/// registry view stays consistent with the `stats()` accessors.
void RecordMiningStats(const MiningStats& stats);

/// Outcome of a governed mining run. A partial outcome is still exact: when
/// a deadline/budget/cancel stops the run early, the governed drivers
/// process first-level subtrees most-frequent-first, so the emitted set
/// filtered to `frontier_support` is precisely the complete frequent set at
/// that (higher) support — the caller can keep it, or recycle it and rerun
/// at a tightened threshold, which is the paper's own loop.
struct [[nodiscard]] MineOutcome {
  PatternSet patterns;
  /// True when the run was stopped before covering the requested support.
  bool partial = false;
  /// The support level the patterns are complete for. Equals the requested
  /// min_support when the run completed; higher when partial.
  uint64_t frontier_support = 0;
  /// OK when complete; DeadlineExceeded / ResourceExhausted / Cancelled
  /// when partial.
  Status stop_status;
};

/// Shared epilogue of the governed entry points: turns a raw mined set into
/// a MineOutcome using the context's incompleteness bookkeeping (filtering
/// the set to the frontier support when partial) and flushes the `run.*`
/// metrics. `ctx` may be null (never-partial passthrough).
Result<MineOutcome> FinishGovernedOutcome(Result<PatternSet> result,
                                          uint64_t min_support,
                                          RunContext* ctx);

/// Interface implemented by every complete-set frequent-pattern miner.
/// Implementations are stateful only through `stats()`, which reflects the
/// most recent Mine() call; a single miner instance may be reused serially.
class FrequentPatternMiner {
 public:
  virtual ~FrequentPatternMiner() = default;

  /// Algorithm name for reports ("apriori", "h-mine", ...).
  virtual std::string name() const = 0;

  /// Mines the complete set of patterns with support >= min_support
  /// (absolute count, must be >= 1). Singletons are included; the empty
  /// pattern is not. Patterns are returned in canonical item order but the
  /// set itself is in algorithm order — call SortCanonical() to compare.
  virtual Result<PatternSet> Mine(const TransactionDb& db,
                                  uint64_t min_support) = 0;

  /// Counters of the most recent Mine() call.
  const MiningStats& stats() const { return stats_; }

  /// Attaches a run governor observed by the next Mine() call (null
  /// detaches). Miners without governed paths (Apriori, Eclat) ignore it
  /// and always run to completion.
  void SetRunContext(RunContext* ctx) { run_ctx_ = ctx; }

  /// Mines under `ctx`'s deadline/budget/cancellation. On an early stop the
  /// outcome is marked partial and carries the exact frequent set at the
  /// frontier support (see MineOutcome). Not virtual: it wraps Mine() with
  /// the context attach and the shared partial-result epilogue.
  Result<MineOutcome> MineGoverned(const TransactionDb& db,
                                   uint64_t min_support, RunContext* ctx);

 protected:
  /// Shared argument validation; implementations call this first.
  static Status ValidateArgs(uint64_t min_support) {
    if (min_support == 0) {
      return Status::InvalidArgument("min_support must be >= 1");
    }
    return Status::OK();
  }

  MiningStats stats_;
  RunContext* run_ctx_ = nullptr;
};

/// The non-recycling algorithms available in the substrate library.
enum class MinerKind {
  kApriori,
  kEclat,
  kHMine,
  kFpGrowth,
  kTreeProjection,
};

/// Instantiates a miner of the given kind.
std::unique_ptr<FrequentPatternMiner> CreateMiner(MinerKind kind);

/// Name of a miner kind without instantiating it.
const char* MinerKindName(MinerKind kind);

/// Converts a relative support fraction (0 < frac <= 1) to the absolute count
/// used by the miners, rounding up and clamping to at least 1.
uint64_t AbsoluteSupport(double fraction, size_t num_transactions);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_MINER_H_
