// Trie over canonical itemsets. Supports exact lookup, subset-of-transaction
// enumeration (the Apriori counting step), and DFS export.

#ifndef GOGREEN_FPM_PATTERN_TRIE_H_
#define GOGREEN_FPM_PATTERN_TRIE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "fpm/item.h"
#include "fpm/pattern_set.h"

namespace gogreen::fpm {

/// A trie keyed by ascending item id. Each inserted itemset terminates at a
/// node carrying a support counter and an optional caller-supplied tag.
class PatternTrie {
 public:
  using NodeId = int32_t;
  static constexpr NodeId kNoNode = -1;

  PatternTrie();

  /// Inserts a canonical itemset (ascending, no duplicates); returns the
  /// terminal node. Re-inserting an existing itemset returns the same node.
  /// `tag` is stored on first insertion (callers use it to map back to their
  /// own pattern arrays).
  NodeId Insert(ItemSpan items, int64_t tag = -1);

  /// Exact lookup; kNoNode if the itemset was never inserted as a terminal.
  NodeId Find(ItemSpan items) const;

  /// Adds `weight` to the counter of every inserted itemset that is a subset
  /// of the canonical transaction `t` (the Apriori counting step).
  void AddSupportForTransaction(ItemSpan t, uint64_t weight = 1);

  /// Calls `fn(items, count, tag)` for every inserted itemset, in
  /// lexicographic order.
  void ForEachPattern(
      const std::function<void(const std::vector<ItemId>&, uint64_t, int64_t)>&
          fn) const;

  uint64_t count(NodeId n) const { return nodes_[n].count; }
  int64_t tag(NodeId n) const { return nodes_[n].tag; }

  size_t NumPatterns() const { return num_terminals_; }
  size_t NumNodes() const { return nodes_.size(); }

  /// Removes all inserted itemsets.
  void Clear();

 private:
  struct Node {
    ItemId item = kInvalidItem;
    bool terminal = false;
    uint64_t count = 0;
    int64_t tag = -1;
    // Children sorted by item id; parallel arrays of item and node id.
    std::vector<ItemId> child_items;
    std::vector<NodeId> child_nodes;
  };

  NodeId ChildOf(NodeId n, ItemId item) const;
  NodeId ChildOrAdd(NodeId n, ItemId item);

  void CountRec(NodeId n, ItemSpan t, uint64_t weight);
  void ForEachRec(
      NodeId n, std::vector<ItemId>* stack,
      const std::function<void(const std::vector<ItemId>&, uint64_t, int64_t)>&
          fn) const;

  std::vector<Node> nodes_;
  size_t num_terminals_ = 0;
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_PATTERN_TRIE_H_
