#include "fpm/rules.h"

#include <algorithm>

#include "fpm/pattern.h"
#include "fpm/pattern_trie.h"
#include "util/logging.h"

namespace gogreen::fpm {

std::string Rule::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < antecedent.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(antecedent[i]);
  }
  out += "} => {";
  for (size_t i = 0; i < consequent.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(consequent[i]);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "} sup=%llu conf=%.3f lift=%.3f",
                static_cast<unsigned long long>(support), confidence, lift);
  out += buf;
  return out;
}

Result<std::vector<Rule>> GenerateRules(const PatternSet& fp,
                                        size_t num_transactions,
                                        const RuleOptions& options) {
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be positive");
  }
  if (options.min_confidence < 0.0 || options.min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in [0,1]");
  }
  if (options.max_consequent == 0) {
    return Status::InvalidArgument("max_consequent must be >= 1");
  }

  // Index all supports for O(|X|) subset lookups.
  PatternTrie index;
  for (size_t i = 0; i < fp.size(); ++i) {
    index.Insert(ItemSpan(fp[i].items), static_cast<int64_t>(i));
  }
  const auto support_of = [&](ItemSpan items) -> int64_t {
    const auto node = index.Find(items);
    if (node == PatternTrie::kNoNode) return -1;
    return static_cast<int64_t>(fp[index.tag(node)].support);
  };

  std::vector<Rule> rules;
  std::vector<ItemId> antecedent;
  std::vector<ItemId> consequent;
  for (const Pattern& p : fp) {
    const size_t n = p.items.size();
    if (n < 2) continue;
    if (n > 24) {
      return Status::InvalidArgument(
          "pattern too long for exhaustive rule generation: " +
          std::to_string(n));
    }
    // Every non-trivial bipartition (antecedent = items where mask bit set).
    for (uint32_t mask = 1; mask + 1 < (1u << n); ++mask) {
      const size_t cons_size =
          n - static_cast<size_t>(__builtin_popcount(mask));
      if (cons_size > options.max_consequent) continue;
      if (n - cons_size < options.min_antecedent) continue;

      antecedent.clear();
      consequent.clear();
      for (size_t i = 0; i < n; ++i) {
        ((mask >> i) & 1 ? antecedent : consequent).push_back(p.items[i]);
      }

      const int64_t ante_sup = support_of(ItemSpan(antecedent));
      const int64_t cons_sup = support_of(ItemSpan(consequent));
      if (ante_sup < 0 || cons_sup < 0) {
        return Status::InvalidArgument(
            "pattern set is not downward closed; mine the complete set "
            "before generating rules");
      }
      const double confidence = static_cast<double>(p.support) /
                                static_cast<double>(ante_sup);
      if (confidence < options.min_confidence) continue;
      const double cons_prob = static_cast<double>(cons_sup) /
                               static_cast<double>(num_transactions);
      Rule rule;
      rule.antecedent = antecedent;
      rule.consequent = consequent;
      rule.support = p.support;
      rule.confidence = confidence;
      rule.lift = cons_prob > 0 ? confidence / cons_prob : 0.0;
      rules.push_back(std::move(rule));
    }
  }

  // Highest-confidence first; ties by support then lexicographic.
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.support != b.support) return a.support > b.support;
    if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
    return a.consequent < b.consequent;
  });
  return rules;
}

}  // namespace gogreen::fpm
