// FP-growth (Han, Pei, Yin — SIGMOD'00): mining without candidate generation
// over a frequent-pattern tree (prefix tree + header table), with the
// single-path shortcut for conditional trees that degenerate to one branch.

#ifndef GOGREEN_FPM_FPGROWTH_H_
#define GOGREEN_FPM_FPGROWTH_H_

#include "check/check.h"
#include "fpm/miner.h"

namespace gogreen::fpm {

class FpGrowthMiner : public FrequentPatternMiner {
 public:
  std::string name() const override { return "fp-growth"; }

  Result<PatternSet> Mine(const TransactionDb& db,
                          uint64_t min_support) override;
};

/// Builds the root FP-tree of `db` at `min_support` and repackages it —
/// nodes in preorder, header chains as node-id lists — as the neutral view
/// check::ValidateFpTree consumes. Empty view when no item is frequent.
/// Debug tooling only: materializes the whole tree a second time.
check::FpTreeView DebugFpTreeView(const TransactionDb& db,
                                  uint64_t min_support);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_FPGROWTH_H_
