// FP-growth (Han, Pei, Yin — SIGMOD'00): mining without candidate generation
// over a frequent-pattern tree (prefix tree + header table), with the
// single-path shortcut for conditional trees that degenerate to one branch.

#ifndef GOGREEN_FPM_FPGROWTH_H_
#define GOGREEN_FPM_FPGROWTH_H_

#include "fpm/miner.h"

namespace gogreen::fpm {

class FpGrowthMiner : public FrequentPatternMiner {
 public:
  std::string name() const override { return "fp-growth"; }

  Result<PatternSet> Mine(const TransactionDb& db,
                          uint64_t min_support) override;
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_FPGROWTH_H_
