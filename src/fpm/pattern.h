// Pattern (itemset) value type.

#ifndef GOGREEN_FPM_PATTERN_H_
#define GOGREEN_FPM_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/item.h"

namespace gogreen::fpm {

/// A frequent pattern: a non-empty set of items together with its support
/// (number of transactions containing all of the items).
///
/// Canonical form: `items` sorted ascending by ItemId with no duplicates.
/// All library code produces and expects canonical patterns.
struct Pattern {
  std::vector<ItemId> items;
  uint64_t support = 0;

  Pattern() = default;
  Pattern(std::vector<ItemId> its, uint64_t sup)
      : items(std::move(its)), support(sup) {}

  size_t size() const { return items.size(); }

  /// True if every item of `other` occurs in this pattern. Both must be in
  /// canonical (sorted) form.
  bool Contains(const Pattern& other) const {
    return ContainsItems(other.items);
  }

  /// True if every item of the sorted span `sub` occurs in `items`.
  bool ContainsItems(ItemSpan sub) const;

  /// "{a,b,c}:support" rendering for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.support == b.support && a.items == b.items;
  }
};

/// Sorts `items` ascending and removes duplicates (canonicalization).
void CanonicalizeItems(std::vector<ItemId>* items);

/// True if sorted span `needle` is a subset of sorted span `haystack`
/// (linear merge).
bool IsSubsetSorted(ItemSpan needle, ItemSpan haystack);

/// Lexicographic ordering on (items, support); gives PatternSet a canonical
/// sort order so complete sets can be compared for equality.
bool PatternLess(const Pattern& a, const Pattern& b);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_PATTERN_H_
