#include "fpm/partition.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>

#include "fpm/hmine.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gogreen::fpm {

size_t EstimateHMineMemory(size_t total_items, size_t num_rows,
                           size_t flist_items) {
  // CSR rows: rank per occurrence + one offset per row; suffix queues hold
  // up to one (tid, pos) pair per occurrence; header scratch is two arrays
  // over the F-list.
  return total_items * (sizeof(Rank) + 2 * sizeof(uint32_t)) +
         num_rows * sizeof(uint64_t) +
         flist_items * (sizeof(uint64_t) + sizeof(size_t));
}

SpillWriter::SpillWriter(std::string dir, std::string stem, size_t num_ranks)
    : dir_(std::move(dir)), stem_(std::move(stem)),
      files_(num_ranks, nullptr) {}

SpillWriter::~SpillWriter() {
  for (std::FILE* f : files_) {
    if (f != nullptr) std::fclose(f);
  }
}

std::string SpillWriter::PathOf(Rank r) const {
  return dir_ + "/" + stem_ + "." + std::to_string(r) + ".spill";
}

Status SpillWriter::Append(Rank r, std::span<const Rank> row) {
  GOGREEN_DCHECK(r < files_.size());
  if (files_[r] == nullptr) {
    files_[r] = std::fopen(PathOf(r).c_str(), "wb");
    if (files_[r] == nullptr) {
      return Status::IOError("cannot create spill file " + PathOf(r));
    }
    used_.push_back(r);
  }
  const uint32_t len = static_cast<uint32_t>(row.size());
  if (std::fwrite(&len, sizeof(len), 1, files_[r]) != 1 ||
      (len > 0 &&
       std::fwrite(row.data(), sizeof(Rank), len, files_[r]) != len)) {
    return Status::IOError("short write to spill file " + PathOf(r));
  }
  return Status::OK();
}

Status SpillWriter::Finish() {
  for (Rank r : used_) {
    if (files_[r] != nullptr) {
      if (std::fclose(files_[r]) != 0) {
        files_[r] = nullptr;
        return Status::IOError("close failed for spill file " + PathOf(r));
      }
      files_[r] = nullptr;
    }
  }
  return Status::OK();
}

void SpillWriter::Cleanup() {
  for (Rank r : used_) {
    if (files_[r] != nullptr) {
      std::fclose(files_[r]);
      files_[r] = nullptr;
    }
    std::remove(PathOf(r).c_str());
  }
  used_.clear();
}

Result<std::vector<std::vector<Rank>>> ReadSpill(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::vector<std::vector<Rank>>{};
  std::vector<std::vector<Rank>> rows;
  uint32_t len = 0;
  while (std::fread(&len, sizeof(len), 1, f) == 1) {
    std::vector<Rank> row(len);
    if (len > 0 && std::fread(row.data(), sizeof(Rank), len, f) != len) {
      std::fclose(f);
      return Status::IOError("truncated spill file " + path);
    }
    rows.push_back(std::move(row));
  }
  std::fclose(f);
  return rows;
}

namespace {

/// Mines the partition of rows whose every pattern extends `prefix_ranks`;
/// recursively re-partitions when over budget. `rows` are rank-ascending
/// suffixes. Consumes `rows`.
Status MinePartition(std::vector<std::vector<Rank>> rows, const FList& flist,
                     uint64_t min_support, size_t memory_limit,
                     const std::string& temp_dir, uint64_t depth,
                     std::vector<Rank>* prefix_ranks, PatternSet* out,
                     MiningStats* stats) {
  size_t total_items = 0;
  for (const auto& row : rows) total_items += row.size();
  if (EstimateHMineMemory(total_items, rows.size(), flist.size()) <=
      memory_limit) {
    MineRankedRowsHM(rows, flist, min_support, *prefix_ranks, out, stats);
    return Status::OK();
  }

  // Over budget: count local frequencies, then spill per-rank projections
  // (parallel projection) and recurse partition by partition.
  std::vector<uint64_t> counts(flist.size(), 0);
  for (const auto& row : rows) {
    for (Rank r : row) ++counts[r];
  }

  // Unique per process and invocation: concurrent miners (other processes
  // or recursion siblings) must never share spill files.
  static std::atomic<uint64_t> g_spill_id{0};
  const std::string stem = "gogreen_part_" + std::to_string(::getpid()) +
                           "_" + std::to_string(g_spill_id.fetch_add(1)) +
                           "_d" + std::to_string(depth);
  SpillWriter writer(temp_dir, stem, flist.size());
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (counts[row[i]] < min_support) continue;
      // The suffix may contain locally infrequent ranks; the recursive call
      // re-counts, so leaving them is harmless — but dropping them here
      // shrinks the partitions.
      std::vector<Rank> suffix;
      for (size_t j = i + 1; j < row.size(); ++j) {
        if (counts[row[j]] >= min_support) suffix.push_back(row[j]);
      }
      GOGREEN_RETURN_NOT_OK(writer.Append(row[i], suffix));
    }
  }
  GOGREEN_RETURN_NOT_OK(writer.Finish());
  rows.clear();
  rows.shrink_to_fit();

  std::vector<Rank> used = writer.used_ranks();
  std::sort(used.begin(), used.end());
  for (Rank r : used) {
    if (counts[r] < min_support) continue;
    prefix_ranks->push_back(r);
    // Emit the partition's own pattern, then mine inside it.
    std::vector<ItemId> items = flist.DecodeRanks(*prefix_ranks);
    std::sort(items.begin(), items.end());
    out->Add(std::move(items), counts[r]);

    auto loaded = ReadSpill(writer.PathOf(r));
    if (!loaded.ok()) {
      writer.Cleanup();
      return loaded.status();
    }
    const Status st =
        MinePartition(std::move(loaded).value(), flist, min_support,
                      memory_limit, temp_dir, depth + 1, prefix_ranks, out,
                      stats);
    if (!st.ok()) {
      writer.Cleanup();
      return st;
    }
    prefix_ranks->pop_back();
  }
  writer.Cleanup();
  return Status::OK();
}

}  // namespace

Result<PatternSet> MineHMineMemoryLimited(const TransactionDb& db,
                                          uint64_t min_support,
                                          size_t memory_limit,
                                          const std::string& temp_dir,
                                          MiningStats* stats) {
  if (min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  MiningStats local;
  if (stats == nullptr) stats = &local;
  stats->Reset();
  Timer timer;
  PatternSet out;

  const FList flist = FList::Build(db, min_support);
  if (!flist.empty()) {
    // The initial rows are built once; the memory model decides whether the
    // in-memory core can take them whole.
    std::vector<std::vector<Rank>> rows;
    rows.reserve(db.NumTransactions());
    for (Tid t = 0; t < db.NumTransactions(); ++t) {
      std::vector<Rank> enc = flist.EncodeTransaction(db.Transaction(t));
      if (!enc.empty()) rows.push_back(std::move(enc));
    }
    std::vector<Rank> prefix;
    GOGREEN_RETURN_NOT_OK(MinePartition(std::move(rows), flist, min_support,
                                        memory_limit, temp_dir, 0, &prefix,
                                        &out, stats));
  }

  stats->patterns_emitted = out.size();
  stats->elapsed_seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace gogreen::fpm
