#include "fpm/negative_border.h"

#include <algorithm>
#include <map>

#include "fpm/pattern.h"
#include "fpm/pattern_trie.h"
#include "util/logging.h"

namespace gogreen::fpm {

namespace {

/// Apriori join + prune over the lexicographically sorted size-k frequent
/// itemsets; `is_frequent` answers subset queries.
std::vector<std::vector<ItemId>> GenerateCandidates(
    const std::vector<const Pattern*>& level,
    const std::function<bool(ItemSpan)>& is_frequent) {
  std::vector<std::vector<ItemId>> out;
  for (size_t i = 0; i < level.size(); ++i) {
    for (size_t j = i + 1; j < level.size(); ++j) {
      const auto& a = level[i]->items;
      const auto& b = level[j]->items;
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
      std::vector<ItemId> cand = a;
      cand.push_back(b.back());
      bool ok = true;
      std::vector<ItemId> sub(cand.size() - 1);
      for (size_t omit = 0; ok && omit + 2 < cand.size(); ++omit) {
        sub.clear();
        for (size_t x = 0; x < cand.size(); ++x) {
          if (x != omit) sub.push_back(cand[x]);
        }
        ok = is_frequent(ItemSpan(sub));
      }
      if (ok) out.push_back(std::move(cand));
    }
  }
  return out;
}

}  // namespace

NegativeBorderMiner::NegativeBorderMiner(double min_fraction)
    : min_fraction_(min_fraction) {
  GOGREEN_CHECK(min_fraction > 0.0 && min_fraction <= 1.0)
      << "min_fraction out of (0,1]";
}

uint64_t NegativeBorderMiner::Threshold() const {
  uint64_t t = static_cast<uint64_t>(
      min_fraction_ * static_cast<double>(db_.NumTransactions()) +
      (1.0 - 1e-9));
  return std::max<uint64_t>(t, 1);
}

Status NegativeBorderMiner::Initialize(const TransactionDb& db) {
  if (initialized_) {
    return Status::InvalidArgument("Initialize called twice");
  }
  db_ = db;
  initialized_ = true;

  // Level 1: every occurring item is counted; the infrequent ones are the
  // first border entries.
  const std::vector<uint64_t> counts = db_.CountItemSupports();
  const uint64_t threshold = Threshold();
  frequent_ = PatternSet();
  border_ = PatternSet();
  for (size_t it = 0; it < counts.size(); ++it) {
    if (counts[it] == 0) continue;
    Pattern p({static_cast<ItemId>(it)}, counts[it]);
    (counts[it] >= threshold ? frequent_ : border_).Add(std::move(p));
  }
  frequent_.SortCanonical();
  return Expand();
}

Status NegativeBorderMiner::Insert(const TransactionDb& batch) {
  if (!initialized_) {
    return Status::InvalidArgument("Insert before Initialize");
  }

  // Absorb the batch and re-count every tracked itemset against it.
  PatternTrie trie;
  for (size_t i = 0; i < frequent_.size(); ++i) {
    trie.Insert(ItemSpan(frequent_[i].items), static_cast<int64_t>(i));
  }
  const int64_t border_base = static_cast<int64_t>(frequent_.size());
  for (size_t i = 0; i < border_.size(); ++i) {
    trie.Insert(ItemSpan(border_[i].items),
                border_base + static_cast<int64_t>(i));
  }
  for (Tid t = 0; t < batch.NumTransactions(); ++t) {
    const ItemSpan row = batch.Transaction(t);
    trie.AddSupportForTransaction(row);
    db_.AddCanonicalTransaction(row);
  }
  // New items never seen before start at their batch support.
  std::map<ItemId, uint64_t> new_items;
  for (Tid t = 0; t < batch.NumTransactions(); ++t) {
    for (ItemId it : batch.Transaction(t)) {
      if (trie.Find(std::vector<ItemId>{it}) == PatternTrie::kNoNode) {
        ++new_items[it];
      }
    }
  }

  trie.ForEachPattern([&](const std::vector<ItemId>&, uint64_t count,
                          int64_t tag) {
    if (tag < border_base) {
      frequent_.mutable_patterns()[static_cast<size_t>(tag)].support +=
          count;
    } else {
      border_.mutable_patterns()[static_cast<size_t>(tag - border_base)]
          .support += count;
    }
  });

  // Re-split under the new (grown) threshold. Demotions cascade correctly
  // through the support filter (anti-monotonicity); promotions require the
  // expensive expansion over the full accumulated database.
  const uint64_t threshold = Threshold();
  PatternSet next_frequent;
  PatternSet next_border;
  bool promoted = false;
  for (const Pattern& p : frequent_) {
    (p.support >= threshold ? next_frequent : next_border).Add(p);
  }
  for (const Pattern& p : border_) {
    if (p.support >= threshold) {
      promoted = true;
      next_frequent.Add(p);
    } else {
      next_border.Add(p);
    }
  }
  for (const auto& [item, support] : new_items) {
    Pattern p({item}, support);
    if (support >= threshold) {
      promoted = true;
      next_frequent.Add(std::move(p));
    } else {
      next_border.Add(std::move(p));
    }
  }
  frequent_ = std::move(next_frequent);
  border_ = std::move(next_border);
  frequent_.SortCanonical();

  if (!promoted) return Status::OK();  // The cheap path.
  ++stats_.full_db_expansions;
  return Expand();
}

Status NegativeBorderMiner::Expand() {
  const uint64_t threshold = Threshold();

  // Lookup over everything already counted.
  PatternTrie known;
  for (size_t i = 0; i < frequent_.size(); ++i) {
    known.Insert(ItemSpan(frequent_[i].items), 1);  // Tag 1 = frequent.
  }
  for (size_t i = 0; i < border_.size(); ++i) {
    known.Insert(ItemSpan(border_[i].items), 0);
  }
  const auto is_frequent = [&](ItemSpan items) {
    const auto node = known.Find(items);
    return node != PatternTrie::kNoNode && known.tag(node) == 1;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    // Group the frequent set by length, lexicographically sorted.
    std::map<size_t, std::vector<const Pattern*>> by_len;
    for (const Pattern& p : frequent_) by_len[p.size()].push_back(&p);

    PatternTrie to_count;
    size_t num_new = 0;
    for (auto& [len, level] : by_len) {
      std::sort(level.begin(), level.end(),
                [](const Pattern* a, const Pattern* b) {
                  return a->items < b->items;
                });
      for (auto& cand : GenerateCandidates(level, is_frequent)) {
        if (known.Find(ItemSpan(cand)) == PatternTrie::kNoNode &&
            to_count.Find(ItemSpan(cand)) == PatternTrie::kNoNode) {
          to_count.Insert(ItemSpan(cand));
          ++num_new;
        }
      }
    }
    if (num_new == 0) break;

    // The expensive step the paper criticizes: counting fresh candidates
    // over the whole accumulated database.
    stats_.candidates_counted += num_new;
    for (Tid t = 0; t < db_.NumTransactions(); ++t) {
      to_count.AddSupportForTransaction(db_.Transaction(t));
    }
    to_count.ForEachPattern([&](const std::vector<ItemId>& items,
                                uint64_t count, int64_t) {
      Pattern p(items, count);
      if (count >= threshold) {
        frequent_.Add(std::move(p));
        known.Insert(ItemSpan(items), 1);
        changed = true;
      } else {
        border_.Add(std::move(p));
        known.Insert(ItemSpan(items), 0);
      }
    });
    frequent_.SortCanonical();
  }
  return Status::OK();
}

}  // namespace gogreen::fpm
