#include "fpm/flist.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace gogreen::fpm {

FList FList::Build(const TransactionDb& db, uint64_t min_support) {
  return FromCounts(db.CountItemSupports(), min_support);
}

FList FList::FromCounts(const std::vector<uint64_t>& counts,
                        uint64_t min_support) {
  FList out;
  // A threshold of 0 would classify never-seen items as frequent; clamp to 1
  // so "frequent" always means "occurs at least once".
  const uint64_t threshold = std::max<uint64_t>(min_support, 1);
  for (size_t it = 0; it < counts.size(); ++it) {
    if (counts[it] >= threshold) {
      out.items_.push_back(static_cast<ItemId>(it));
    }
  }
  // Support ascending; ties by item id ascending (push order is id-ascending,
  // stable_sort preserves it).
  std::stable_sort(out.items_.begin(), out.items_.end(),
                   [&counts](ItemId a, ItemId b) {
                     return counts[a] < counts[b];
                   });
  out.supports_.reserve(out.items_.size());
  for (ItemId it : out.items_) out.supports_.push_back(counts[it]);
  out.ranks_.assign(counts.size(), kNoRank);
  for (Rank r = 0; r < out.items_.size(); ++r) {
    out.ranks_[out.items_[r]] = r;
  }
  return out;
}

std::vector<Rank> FList::EncodeTransaction(ItemSpan items) const {
  std::vector<Rank> out;
  AppendEncoded(items, &out);
  return out;
}

size_t FList::AppendEncoded(ItemSpan items, std::vector<Rank>* out) const {
  const size_t before = out->size();
  for (ItemId it : items) {
    const Rank r = rank(it);
    if (r != kNoRank) out->push_back(r);
  }
  std::sort(out->begin() + static_cast<ptrdiff_t>(before), out->end());
  return out->size() - before;
}

std::vector<ItemId> FList::DecodeRanks(const std::vector<Rank>& ranks) const {
  std::vector<ItemId> out;
  out.reserve(ranks.size());
  for (Rank r : ranks) {
    GOGREEN_DCHECK(r < items_.size());
    out.push_back(items_[r]);
  }
  return out;
}

RankedDb RankedDb::Build(const TransactionDb& db, const FList& flist) {
  RankedDb out;
  const size_t n = db.NumTransactions();
  out.offsets_.reserve(n + 1);
  out.ranks_.reserve(db.TotalItems());
  for (Tid t = 0; t < n; ++t) {
    flist.AppendEncoded(db.Transaction(t), &out.ranks_);
    out.offsets_.push_back(out.ranks_.size());
  }
  return out;
}

}  // namespace gogreen::fpm
