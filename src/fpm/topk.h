// Top-K frequent pattern mining: the K highest-support patterns without a
// user-supplied threshold. Interactive sessions often start here ("show me
// the 50 strongest patterns") before refining constraints — the workflow
// the recycling framework then accelerates.

#ifndef GOGREEN_FPM_TOPK_H_
#define GOGREEN_FPM_TOPK_H_

#include "fpm/miner.h"

namespace gogreen::fpm {

struct TopKOptions {
  size_t k = 100;
  /// Only patterns with at least this many items compete (1 = all; 2 skips
  /// the trivially-frequent singletons).
  size_t min_length = 1;
  /// Algorithm used for the underlying threshold probes.
  MinerKind miner = MinerKind::kFpGrowth;
};

/// Mines the K patterns of highest support (ties broken by canonical
/// order, so the result is deterministic and exactly min(K, available)
/// patterns). Implemented by geometric threshold descent: probe a high
/// threshold, halve until at least K qualifying patterns exist, then cut.
/// Each probe is cheap because high-threshold mining is cheap.
Result<PatternSet> MineTopK(const TransactionDb& db,
                            const TopKOptions& options);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_TOPK_H_
