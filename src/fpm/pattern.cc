#include "fpm/pattern.h"

#include <algorithm>

namespace gogreen::fpm {

bool Pattern::ContainsItems(ItemSpan sub) const {
  return IsSubsetSorted(sub, ItemSpan(items));
}

std::string Pattern::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(items[i]);
  }
  out += "}:";
  out += std::to_string(support);
  return out;
}

void CanonicalizeItems(std::vector<ItemId>* items) {
  std::sort(items->begin(), items->end());
  items->erase(std::unique(items->begin(), items->end()), items->end());
}

bool IsSubsetSorted(ItemSpan needle, ItemSpan haystack) {
  size_t j = 0;
  for (ItemId x : needle) {
    while (j < haystack.size() && haystack[j] < x) ++j;
    if (j == haystack.size() || haystack[j] != x) return false;
    ++j;
  }
  return true;
}

bool PatternLess(const Pattern& a, const Pattern& b) {
  if (a.items != b.items) {
    return std::lexicographical_compare(a.items.begin(), a.items.end(),
                                        b.items.begin(), b.items.end());
  }
  return a.support < b.support;
}

}  // namespace gogreen::fpm
