#include "fpm/apriori.h"

#include <algorithm>

#include "fpm/pattern.h"
#include "fpm/pattern_trie.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace gogreen::fpm {

namespace {

/// Generates level-(k+1) candidates from the lexicographically sorted level-k
/// frequent itemsets, with full subset pruning against `prev_trie`.
std::vector<std::vector<ItemId>> GenerateCandidates(
    const std::vector<std::vector<ItemId>>& prev, const PatternTrie& prev_trie) {
  std::vector<std::vector<ItemId>> candidates;
  const size_t k = prev.empty() ? 0 : prev[0].size();
  // Join step: pairs sharing the first k-1 items.
  for (size_t i = 0; i < prev.size(); ++i) {
    for (size_t j = i + 1; j < prev.size(); ++j) {
      if (!std::equal(prev[i].begin(), prev[i].end() - 1, prev[j].begin())) {
        break;  // Sorted order: once prefixes diverge they stay diverged.
      }
      std::vector<ItemId> cand = prev[i];
      cand.push_back(prev[j].back());
      // Prune step: every k-subset must be frequent. The two subsets that
      // omit one of the last two items are prev[i] / prev[j]; check the rest.
      bool ok = true;
      if (k >= 2) {
        std::vector<ItemId> sub(cand.size() - 1);
        for (size_t omit = 0; ok && omit + 2 < cand.size(); ++omit) {
          sub.clear();
          for (size_t x = 0; x < cand.size(); ++x) {
            if (x != omit) sub.push_back(cand[x]);
          }
          ok = prev_trie.Find(ItemSpan(sub)) != PatternTrie::kNoNode;
        }
      }
      if (ok) candidates.push_back(std::move(cand));
    }
  }
  return candidates;
}

}  // namespace

Result<PatternSet> AprioriMiner::Mine(const TransactionDb& db,
                                      uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.apriori");
  Timer timer;
  PatternSet out;

  // Level 1 from a single support-counting scan.
  const std::vector<uint64_t> counts = db.CountItemSupports();
  std::vector<std::vector<ItemId>> level;
  for (size_t it = 0; it < counts.size(); ++it) {
    if (counts[it] >= min_support) {
      out.Add({static_cast<ItemId>(it)}, counts[it]);
      level.push_back({static_cast<ItemId>(it)});
    }
  }

  // Pre-filter transactions to frequent items once; infrequent items can
  // never contribute to a candidate.
  std::vector<std::vector<ItemId>> filtered;
  filtered.reserve(db.NumTransactions());
  for (Tid t = 0; t < db.NumTransactions(); ++t) {
    std::vector<ItemId> row;
    for (ItemId it : db.Transaction(t)) {
      if (counts[it] >= min_support) row.push_back(it);
    }
    if (row.size() >= 2) filtered.push_back(std::move(row));
  }

  PatternTrie prev_trie;
  for (const auto& items : level) prev_trie.Insert(ItemSpan(items));

  while (!level.empty()) {
    const std::vector<std::vector<ItemId>> candidates =
        GenerateCandidates(level, prev_trie);
    if (candidates.empty()) break;

    PatternTrie cand_trie;
    for (const auto& c : candidates) cand_trie.Insert(ItemSpan(c));
    for (const auto& row : filtered) {
      cand_trie.AddSupportForTransaction(ItemSpan(row));
      stats_.items_scanned += row.size();
    }

    level.clear();
    prev_trie.Clear();
    cand_trie.ForEachPattern(
        [&](const std::vector<ItemId>& items, uint64_t count, int64_t) {
          if (count >= min_support) {
            out.Add(items, count);
            level.push_back(items);
            prev_trie.Insert(ItemSpan(items));
          }
        });
    // ForEachPattern emits in lexicographic order, as GenerateCandidates
    // requires.
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  RecordMiningStats(stats_);
  return out;
}

}  // namespace gogreen::fpm
