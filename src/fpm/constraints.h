// Constrained frequent-pattern mining support (Section 2). The recycling
// framework only needs two facts about a constraint change: whether the new
// constraint set is tightened (solution space shrank — the old result can be
// filtered) or relaxed (it grew — re-mining is needed, which is where
// pattern recycling pays off), and how to test a pattern against the
// constraints. The four classic categories (anti-monotone, monotone,
// succinct, convertible) are represented for introspection and testing.

#ifndef GOGREEN_FPM_CONSTRAINTS_H_
#define GOGREEN_FPM_CONSTRAINTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fpm/pattern_set.h"
#include "util/status.h"

namespace gogreen::fpm {

enum class ConstraintCategory {
  kAntiMonotone,  ///< If X fails, every superset fails (e.g. sum(X) <= v).
  kMonotone,      ///< If X holds, every superset holds (e.g. |X| >= l).
  kSuccinct,      ///< Membership expressible over item sets (e.g. X ⊆ S).
  kConvertible,   ///< Becomes (anti-)monotone under an item order (avg).
};

const char* ConstraintCategoryName(ConstraintCategory category);

/// Relation between a new constraint and an old one of the same kind.
enum class ConstraintDelta {
  kUnchanged,
  kTightened,     ///< New solution space ⊆ old: filter the old result.
  kRelaxed,       ///< New solution space ⊇ old: re-mine (recycle!).
  kIncomparable,  ///< Neither contains the other: re-mine.
};

const char* ConstraintDeltaName(ConstraintDelta delta);

/// A predicate over patterns. Implementations must be immutable.
class Constraint {
 public:
  virtual ~Constraint() = default;

  virtual ConstraintCategory category() const = 0;

  /// Stable identifier of the constraint kind; two constraints are
  /// comparable iff their kinds match.
  virtual std::string kind() const = 0;

  virtual std::string Describe() const = 0;

  virtual bool Satisfies(const Pattern& pattern) const = 0;

  /// How this (new) constraint relates to `old` of the same kind().
  virtual ConstraintDelta CompareTo(const Constraint& old) const = 0;

  virtual std::unique_ptr<Constraint> Clone() const = 0;
};

/// |X| <= max_len. Anti-monotone.
std::unique_ptr<Constraint> MakeMaxLength(size_t max_len);

/// |X| >= min_len. Monotone.
std::unique_ptr<Constraint> MakeMinLength(size_t min_len);

/// X ⊆ allowed. Succinct (and anti-monotone).
std::unique_ptr<Constraint> MakeItemSubset(std::vector<ItemId> allowed);

/// X ∩ required != ∅. Succinct (and monotone).
std::unique_ptr<Constraint> MakeRequiresAny(std::vector<ItemId> required);

/// sum(value[i] for i in X) <= max_sum, values >= 0. Anti-monotone.
/// Items without an entry in `values` count as 0.
std::unique_ptr<Constraint> MakeMaxSum(std::vector<double> values,
                                       double max_sum);

/// avg(value[i] for i in X) >= min_avg. Convertible.
std::unique_ptr<Constraint> MakeMinAvg(std::vector<double> values,
                                       double min_avg);

/// A full mining specification: the essential minimum-support constraint
/// plus any number of additional constraints.
class ConstraintSet {
 public:
  explicit ConstraintSet(uint64_t min_support) : min_support_(min_support) {}

  ConstraintSet(const ConstraintSet& other);
  ConstraintSet& operator=(const ConstraintSet& other);
  ConstraintSet(ConstraintSet&&) = default;
  ConstraintSet& operator=(ConstraintSet&&) = default;

  uint64_t min_support() const { return min_support_; }

  ConstraintSet& Add(std::unique_ptr<Constraint> constraint);

  size_t NumConstraints() const { return constraints_.size(); }
  const Constraint& constraint(size_t i) const { return *constraints_[i]; }

  /// True iff the pattern satisfies every non-support constraint.
  bool Satisfies(const Pattern& pattern) const;

  /// Patterns of `fp` that satisfy all non-support constraints and have
  /// support >= min_support().
  PatternSet Filter(const PatternSet& fp) const;

  /// Overall delta versus an older specification: tightened only if every
  /// component (incl. min support) is tightened-or-unchanged; relaxed only
  /// if every component is relaxed-or-unchanged. Constraints present on one
  /// side only make the comparison a tightening (added) / relaxation
  /// (removed) of that component; unmatched kinds are incomparable.
  ConstraintDelta CompareTo(const ConstraintSet& old) const;

  std::string Describe() const;

  /// Stable identity of the *non-support* constraints, for cache keys: two
  /// sets with the same fingerprint accept exactly the same patterns at any
  /// support. Sorted by kind so insertion order does not matter; "" when
  /// there are no non-support constraints (the support-complete set).
  std::string Fingerprint() const;

 private:
  uint64_t min_support_;
  std::vector<std::unique_ptr<Constraint>> constraints_;
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_CONSTRAINTS_H_
