// Apriori (Agrawal & Srikant, VLDB'94): level-wise candidate generation with
// trie-based subset counting. Slow on dense data by design — it exists as an
// independently-derived reference oracle for the projection-based miners.

#ifndef GOGREEN_FPM_APRIORI_H_
#define GOGREEN_FPM_APRIORI_H_

#include "fpm/miner.h"

namespace gogreen::fpm {

class AprioriMiner : public FrequentPatternMiner {
 public:
  std::string name() const override { return "apriori"; }

  Result<PatternSet> Mine(const TransactionDb& db,
                          uint64_t min_support) override;
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_APRIORI_H_
