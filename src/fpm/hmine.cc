#include "fpm/hmine.h"

#include <algorithm>

#include "fpm/flist.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gogreen::fpm {

namespace {

/// A suffix of one ranked transaction: the projection of that transaction
/// into the current prefix's projected database.
struct Suffix {
  Tid tid;
  uint32_t pos;  // First item of the suffix within the ranked transaction.
};

/// RowSource concept: Transaction(Tid) -> span of ranks, ascending.
template <typename RowSource>
class HMineContext {
 public:
  HMineContext(const RowSource& ranked, const FList& flist,
               uint64_t min_support, PatternSet* out, MiningStats* stats)
      : ranked_(ranked),
        flist_(flist),
        min_support_(min_support),
        out_(out),
        stats_(stats),
        counts_(flist.size(), 0),
        bucket_of_(flist.size(), SIZE_MAX) {}

  /// Mines the projected database `projs` under `prefix` (prefix given in
  /// ranks). Two passes per call, as in H-Mine: one to count candidate
  /// extensions, one to thread the suffix links of the frequent ones.
  void Mine(const std::vector<Suffix>& projs, std::vector<Rank>* prefix) {
    // Pass 1: count candidate extensions.
    std::vector<Rank> touched;
    for (const Suffix& s : projs) {
      const auto row = ranked_.Transaction(s.tid);
      for (size_t i = s.pos; i < row.size(); ++i) {
        if (counts_[row[i]]++ == 0) touched.push_back(row[i]);
        ++stats_->items_scanned;
      }
    }

    std::vector<Rank> frequent;
    for (Rank r : touched) {
      if (counts_[r] >= min_support_) frequent.push_back(r);
    }
    std::sort(frequent.begin(), frequent.end());

    // Emit prefix+r for each frequent extension before recursing.
    std::vector<uint64_t> freq_counts(frequent.size());
    for (size_t i = 0; i < frequent.size(); ++i) {
      freq_counts[i] = counts_[frequent[i]];
    }
    // Reset scratch counters before recursion (recursive calls reuse them).
    for (Rank r : touched) counts_[r] = 0;

    if (frequent.empty()) return;

    // Pass 2: build the per-extension suffix queues (the hyperlinks).
    std::vector<std::vector<Suffix>> buckets(frequent.size());
    for (size_t i = 0; i < frequent.size(); ++i) {
      bucket_of_[frequent[i]] = i;
      buckets[i].reserve(freq_counts[i]);
    }
    for (const Suffix& s : projs) {
      const auto row = ranked_.Transaction(s.tid);
      for (size_t i = s.pos; i < row.size(); ++i) {
        const size_t b = bucket_of_[row[i]];
        if (b != SIZE_MAX) {
          buckets[b].push_back({s.tid, static_cast<uint32_t>(i + 1)});
        }
      }
    }
    // Release the scratch map before recursing (recursive calls reuse it).
    for (Rank r : frequent) bucket_of_[r] = SIZE_MAX;
    stats_->projections_built += frequent.size();

    for (size_t i = 0; i < frequent.size(); ++i) {
      prefix->push_back(frequent[i]);
      EmitPattern(*prefix, freq_counts[i]);
      Mine(buckets[i], prefix);
      prefix->pop_back();
      buckets[i].clear();
      buckets[i].shrink_to_fit();  // Release level memory eagerly.
    }
  }

 private:
  void EmitPattern(const std::vector<Rank>& ranks, uint64_t support) {
    std::vector<ItemId> items = flist_.DecodeRanks(ranks);
    std::sort(items.begin(), items.end());
    out_->Add(std::move(items), support);
  }

  const RowSource& ranked_;
  const FList& flist_;
  const uint64_t min_support_;
  PatternSet* out_;
  MiningStats* stats_;
  std::vector<uint64_t> counts_;    // Scratch, zero between calls.
  std::vector<size_t> bucket_of_;   // Scratch, SIZE_MAX between calls.
};

}  // namespace

Result<PatternSet> HMineMiner::Mine(const TransactionDb& db,
                                    uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.h-mine");
  Timer timer;
  PatternSet out;

  const FList flist = FList::Build(db, min_support);
  if (!flist.empty()) {
    const RankedDb ranked = RankedDb::Build(db, flist);

    std::vector<Suffix> all;
    all.reserve(ranked.NumTransactions());
    for (Tid t = 0; t < ranked.NumTransactions(); ++t) {
      if (!ranked.Transaction(t).empty()) all.push_back({t, 0});
    }

    std::vector<Rank> prefix;
    HMineContext<RankedDb> ctx(ranked, flist, min_support, &out, &stats_);
    ctx.Mine(all, &prefix);
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  RecordMiningStats(stats_);
  return out;
}

void MineRankedRowsHM(const std::vector<std::vector<Rank>>& rows,
                      const FList& flist, uint64_t min_support,
                      const std::vector<Rank>& prefix_ranks, PatternSet* out,
                      MiningStats* stats) {
  struct VecRows {
    const std::vector<std::vector<Rank>>& rows;
    size_t NumTransactions() const { return rows.size(); }
    std::span<const Rank> Transaction(Tid t) const {
      return {rows[t].data(), rows[t].size()};
    }
  };
  const VecRows source{rows};
  std::vector<Suffix> all;
  all.reserve(rows.size());
  for (Tid t = 0; t < rows.size(); ++t) {
    if (!rows[t].empty()) all.push_back({t, 0});
  }
  std::vector<Rank> prefix = prefix_ranks;
  HMineContext<VecRows> ctx(source, flist, min_support, out, stats);
  ctx.Mine(all, &prefix);
}

}  // namespace gogreen::fpm
