#include "fpm/hmine.h"

#include <algorithm>
#include <memory>

#include "fpm/flist.h"
#include "fpm/parallel_mine.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::fpm {

namespace {

/// A suffix of one ranked transaction: the projection of that transaction
/// into the current prefix's projected database.
struct Suffix {
  Tid tid;
  uint32_t pos;  // First item of the suffix within the ranked transaction.
};

/// Heap footprint of one level's suffix buckets (bucket i holds one Suffix
/// per supporting row, i.e. freq_counts[i] entries), for budget accounting.
size_t AllBucketBytes(const std::vector<uint64_t>& freq_counts) {
  uint64_t total = 0;
  for (uint64_t c : freq_counts) total += c;
  return static_cast<size_t>(total) * sizeof(Suffix);
}

/// RowSource concept: Transaction(Tid) -> span of ranks, ascending.
template <typename RowSource>
class HMineContext {
 public:
  HMineContext(const RowSource& ranked, const FList& flist,
               uint64_t min_support, PatternSet* out, MiningStats* stats)
      : ranked_(ranked),
        flist_(flist),
        min_support_(min_support),
        out_(out),
        stats_(stats),
        counts_(flist.size(), 0),
        bucket_of_(flist.size(), SIZE_MAX) {}

  /// Redirects emission and counters into a per-worker shard; scratch
  /// buffers are kept, so a lane-local context serves successive subtrees.
  void SetSinks(PatternSet* out, MiningStats* stats) {
    out_ = out;
    stats_ = stats;
  }

  /// Attaches the run governor: Mine() then polls between extensions and
  /// charges suffix buckets against the byte budget. Null detaches.
  void BindRunContext(RunContext* ctx) { run_ctx_ = ctx; }

  /// One level of H-Mine: counts candidate extensions of `projs` and threads
  /// the suffix links of the frequent ones. Two passes, as in the paper:
  /// pass 1 counts, pass 2 builds the per-extension suffix queues (the
  /// hyperlinks). On return `frequent` holds the frequent extension ranks
  /// ascending, `freq_counts[i]` their supports, `buckets[i]` their
  /// projected databases.
  void Expand(const std::vector<Suffix>& projs, std::vector<Rank>* frequent,
              std::vector<uint64_t>* freq_counts,
              std::vector<std::vector<Suffix>>* buckets) {
    // Pass 1: count candidate extensions.
    std::vector<Rank> touched;
    for (const Suffix& s : projs) {
      const auto row = ranked_.Transaction(s.tid);
      for (size_t i = s.pos; i < row.size(); ++i) {
        if (counts_[row[i]]++ == 0) touched.push_back(row[i]);
        ++stats_->items_scanned;
      }
    }

    for (Rank r : touched) {
      if (counts_[r] >= min_support_) frequent->push_back(r);
    }
    std::sort(frequent->begin(), frequent->end());

    freq_counts->resize(frequent->size());
    for (size_t i = 0; i < frequent->size(); ++i) {
      (*freq_counts)[i] = counts_[(*frequent)[i]];
    }
    // Reset scratch counters before recursion (recursive calls reuse them).
    for (Rank r : touched) counts_[r] = 0;

    if (frequent->empty()) return;

    // Pass 2: build the per-extension suffix queues (the hyperlinks).
    buckets->resize(frequent->size());
    for (size_t i = 0; i < frequent->size(); ++i) {
      bucket_of_[(*frequent)[i]] = i;
      (*buckets)[i].reserve((*freq_counts)[i]);
    }
    for (const Suffix& s : projs) {
      const auto row = ranked_.Transaction(s.tid);
      for (size_t i = s.pos; i < row.size(); ++i) {
        const size_t b = bucket_of_[row[i]];
        if (b != SIZE_MAX) {
          (*buckets)[b].push_back({s.tid, static_cast<uint32_t>(i + 1)});
        }
      }
    }
    // Release the scratch map before recursing (recursive calls reuse it).
    for (Rank r : *frequent) bucket_of_[r] = SIZE_MAX;
    stats_->projections_built += frequent->size();
  }

  /// Mines the projected database `projs` under `prefix` (prefix given in
  /// ranks): expands one level, then recurses depth-first in ascending
  /// extension-rank order. Returns false iff a governed stop abandoned part
  /// of the subtree (always true ungoverned).
  bool Mine(const std::vector<Suffix>& projs, std::vector<Rank>* prefix) {
    std::vector<Rank> frequent;
    std::vector<uint64_t> freq_counts;
    std::vector<std::vector<Suffix>> buckets;
    Expand(projs, &frequent, &freq_counts, &buckets);
    // The suffix buckets are this level's dominant scratch; charge them for
    // the time the recursion below keeps them alive.
    const ScopedBytes charge(
        run_ctx_, run_ctx_ != nullptr ? AllBucketBytes(freq_counts) : 0);

    bool completed = true;
    for (size_t i = 0; i < frequent.size(); ++i) {
      if (run_ctx_ != nullptr && run_ctx_->ShouldStop()) {
        completed = false;
        break;
      }
      prefix->push_back(frequent[i]);
      EmitPattern(*prefix, freq_counts[i]);
      if (!Mine(buckets[i], prefix)) completed = false;
      prefix->pop_back();
      buckets[i].clear();
      buckets[i].shrink_to_fit();  // Release level memory eagerly.
    }
    return completed;
  }

  void EmitPattern(const std::vector<Rank>& ranks, uint64_t support) {
    std::vector<ItemId> items = flist_.DecodeRanks(ranks);
    std::sort(items.begin(), items.end());
    out_->Add(std::move(items), support);
  }

 private:
  const RowSource& ranked_;
  const FList& flist_;
  const uint64_t min_support_;
  PatternSet* out_;
  MiningStats* stats_;
  RunContext* run_ctx_ = nullptr;
  std::vector<uint64_t> counts_;    // Scratch, zero between calls.
  std::vector<size_t> bucket_of_;   // Scratch, SIZE_MAX between calls.
};

/// Drives one full H-Mine run over `source`. With one global lane this is
/// the plain depth-first recursion; with more, the root level is expanded
/// once and its subtrees fan out to the pool, each mining into a private
/// shard merged in ascending extension order — the sequential emission
/// order, so output is bit-identical at any thread count. A governed run
/// (run_ctx != null) instead fans descending through
/// MineFirstLevelGoverned, at any lane count, so an early stop yields a
/// sound frontier. Returns false iff a governed stop abandoned work.
template <typename RowSource>
bool MineHM(const RowSource& source, const FList& flist, uint64_t min_support,
            const std::vector<Suffix>& all, const std::vector<Rank>& prefix0,
            PatternSet* out, MiningStats* stats, RunContext* run_ctx) {
  HMineContext<RowSource> root(source, flist, min_support, out, stats);
  std::vector<Rank> prefix = prefix0;
  if (run_ctx == nullptr && !ParallelMiningEnabled()) {
    root.Mine(all, &prefix);
    return true;
  }

  std::vector<Rank> frequent;
  std::vector<uint64_t> freq_counts;
  std::vector<std::vector<Suffix>> buckets;
  root.Expand(all, &frequent, &freq_counts, &buckets);

  // Lane-local contexts reuse their rank-indexed scratch across subtrees.
  // The pool is pinned here so lane ids stay < lane_ctx.size() even if the
  // global pool is reconfigured concurrently.
  const std::shared_ptr<ThreadPool> pool = ThreadPool::Global();
  std::vector<std::unique_ptr<HMineContext<RowSource>>> lane_ctx(
      pool->threads());
  const auto mine_subtree = [&](MineShard* shard, size_t lane,
                                size_t i) -> bool {
    auto& ctx = lane_ctx[lane];
    if (!ctx) {
      ctx = std::make_unique<HMineContext<RowSource>>(
          source, flist, min_support, nullptr, nullptr);
      ctx->BindRunContext(run_ctx);
    }
    ctx->SetSinks(&shard->patterns, &shard->stats);
    std::vector<Rank> sub_prefix = prefix;
    sub_prefix.push_back(frequent[i]);
    ctx->EmitPattern(sub_prefix, freq_counts[i]);
    return ctx->Mine(buckets[i], &sub_prefix);
  };

  if (run_ctx == nullptr) {
    MineFirstLevelParallel(
        pool, frequent.size(),
        [&](MineShard* shard, size_t lane, size_t i) {
          mine_subtree(shard, lane, i);
        },
        out, stats);
    return true;
  }

  // Governed: root buckets stay live for the whole fan-out.
  const ScopedBytes root_charge(
      run_ctx, AllBucketBytes(freq_counts));
  return MineFirstLevelGoverned(pool, frequent.size(), mine_subtree, out,
                                stats, run_ctx, freq_counts,
                                /*mark_frontier=*/prefix0.empty());
}

/// Root-level Expand() repackaged into the neutral view the validators
/// consume. `all` must be the root projection (every non-empty row at
/// position 0).
template <typename RowSource>
check::HStructView BuildRootHStructView(const RowSource& ranked,
                                        const FList& flist,
                                        uint64_t min_support,
                                        const std::vector<Suffix>& all) {
  MiningStats scratch_stats;
  HMineContext<RowSource> ctx(ranked, flist, min_support, nullptr,
                              &scratch_stats);
  std::vector<Rank> frequent;
  std::vector<uint64_t> freq_counts;
  std::vector<std::vector<Suffix>> buckets;
  ctx.Expand(all, &frequent, &freq_counts, &buckets);

  check::HStructView view;
  view.frequent = std::move(frequent);
  view.counts = std::move(freq_counts);
  view.num_ranks = flist.size();
  view.buckets.resize(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    view.buckets[i].reserve(buckets[i].size());
    for (const Suffix& s : buckets[i]) {
      view.buckets[i].push_back({s.tid, s.pos});
    }
  }
  return view;
}

}  // namespace

check::HStructView DebugRootHStruct(const RankedDb& ranked, const FList& flist,
                                    uint64_t min_support) {
  std::vector<Suffix> all;
  all.reserve(ranked.NumTransactions());
  for (Tid t = 0; t < ranked.NumTransactions(); ++t) {
    if (!ranked.Transaction(t).empty()) all.push_back({t, 0});
  }
  return BuildRootHStructView(ranked, flist, min_support, all);
}

Result<PatternSet> HMineMiner::Mine(const TransactionDb& db,
                                    uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.h-mine");
  Timer timer;
  PatternSet out;

  const FList flist = FList::Build(db, min_support);
  if (!flist.empty()) {
    const RankedDb ranked = RankedDb::Build(db, flist);

    std::vector<Suffix> all;
    all.reserve(ranked.NumTransactions());
    for (Tid t = 0; t < ranked.NumTransactions(); ++t) {
      if (!ranked.Transaction(t).empty()) all.push_back({t, 0});
    }

    if (check::ValidationEnabled()) {
      GOGREEN_VALIDATE_OR_DIE(check::ValidateFList(flist, min_support));
      const check::HStructView root =
          BuildRootHStructView(ranked, flist, min_support, all);
      GOGREEN_VALIDATE_OR_DIE(check::ValidateHStruct(
          root, [&](Tid t) { return ranked.Transaction(t); }, min_support));
    }

    MineHM(ranked, flist, min_support, all, {}, &out, &stats_, run_ctx_);
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  RecordMiningStats(stats_);
  return out;
}

bool MineRankedRowsHM(const std::vector<std::vector<Rank>>& rows,
                      const FList& flist, uint64_t min_support,
                      const std::vector<Rank>& prefix_ranks, PatternSet* out,
                      MiningStats* stats, RunContext* run_ctx) {
  struct VecRows {
    const std::vector<std::vector<Rank>>& rows;
    size_t NumTransactions() const { return rows.size(); }
    std::span<const Rank> Transaction(Tid t) const {
      return {rows[t].data(), rows[t].size()};
    }
  };
  const VecRows source{rows};
  std::vector<Suffix> all;
  all.reserve(rows.size());
  for (Tid t = 0; t < rows.size(); ++t) {
    if (!rows[t].empty()) all.push_back({t, 0});
  }
  return MineHM(source, flist, min_support, all, prefix_ranks, out, stats,
                run_ctx);
}

}  // namespace gogreen::fpm
