// Association-rule generation from a complete frequent-pattern set — the
// classic downstream consumer of frequent patterns (Agrawal et al.), and
// the reason a user iterates on the mining constraints in the first place.

#ifndef GOGREEN_FPM_RULES_H_
#define GOGREEN_FPM_RULES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpm/pattern_set.h"
#include "util/status.h"

namespace gogreen::fpm {

/// An association rule antecedent -> consequent with its quality measures.
struct Rule {
  std::vector<ItemId> antecedent;  ///< Canonical, non-empty.
  std::vector<ItemId> consequent;  ///< Canonical, non-empty, disjoint.
  uint64_t support = 0;    ///< Joint support count (of the union).
  double confidence = 0;   ///< support(union) / support(antecedent).
  double lift = 0;         ///< confidence / P(consequent).

  std::string ToString() const;
};

struct RuleOptions {
  double min_confidence = 0.5;
  /// If >= 0, rules with fewer antecedent items are pruned.
  size_t min_antecedent = 1;
  /// Consequents larger than this are not generated (1 = classic
  /// single-consequent rules).
  size_t max_consequent = 1;
};

/// Generates all rules meeting `options` from the *complete* set `fp`
/// (supports of all subsets must be present — the complete output of any
/// miner in this library qualifies). `num_transactions` is |DB| for the
/// lift computation. Returns InvalidArgument if a needed subset support is
/// missing (i.e. `fp` is not downward closed).
Result<std::vector<Rule>> GenerateRules(const PatternSet& fp,
                                        size_t num_transactions,
                                        const RuleOptions& options);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_RULES_H_
