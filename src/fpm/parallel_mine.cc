#include "fpm/parallel_mine.h"

#include <vector>

#include "util/thread_pool.h"

namespace gogreen::fpm {

bool ParallelMiningEnabled() { return ThreadPool::GlobalThreads() > 1; }

void MineFirstLevelParallel(
    const std::shared_ptr<ThreadPool>& pool, size_t n,
    const std::function<void(MineShard* shard, size_t lane, size_t i)>& mine,
    PatternSet* out, MiningStats* stats) {
  if (n == 0) return;
  std::vector<MineShard> shards(n);
  pool->ParallelFor(n, [&shards, &mine](size_t lane, size_t i) {
    mine(&shards[i], lane, i);
  });
  // Ascending-index merge reproduces the sequential emission order exactly.
  for (MineShard& shard : shards) {
    out->Append(std::move(shard.patterns));
    stats->patterns_emitted += shard.stats.patterns_emitted;
    stats->projections_built += shard.stats.projections_built;
    stats->items_scanned += shard.stats.items_scanned;
  }
}

}  // namespace gogreen::fpm
