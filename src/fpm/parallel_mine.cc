#include "fpm/parallel_mine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <vector>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace gogreen::fpm {

bool ParallelMiningEnabled() { return ThreadPool::GlobalThreads() > 1; }

void MineFirstLevelParallel(
    const std::shared_ptr<ThreadPool>& pool, size_t n,
    const std::function<void(MineShard* shard, size_t lane, size_t i)>& mine,
    PatternSet* out, MiningStats* stats) {
  if (n == 0) return;
  std::vector<MineShard> shards(n);
  pool->ParallelFor(n, [&shards, &mine](size_t lane, size_t i) {
    mine(&shards[i], lane, i);
  });
  // Ascending-index merge reproduces the sequential emission order exactly.
  for (MineShard& shard : shards) {
    out->Append(std::move(shard.patterns));
    stats->patterns_emitted += shard.stats.patterns_emitted;
    stats->projections_built += shard.stats.projections_built;
    stats->items_scanned += shard.stats.items_scanned;
  }
}

bool MineFirstLevelGoverned(
    const std::shared_ptr<ThreadPool>& pool, size_t n,
    const std::function<bool(MineShard* shard, size_t lane, size_t i)>& mine,
    PatternSet* out, MiningStats* stats, RunContext* ctx,
    const std::vector<uint64_t>& level_supports, bool mark_frontier) {
  GOGREEN_DCHECK(ctx != nullptr);
  GOGREEN_DCHECK_EQ(level_supports.size(), n);
  if (n == 0) return true;

  std::vector<MineShard> shards(n);
  std::vector<uint8_t> done(n, 0);
  // Lanes claim subtrees top-down (descending index = descending support).
  std::atomic<size_t> cursor{0};
  const auto lane_body = [&](size_t lane) {
    size_t k;
    while ((k = cursor.fetch_add(1, std::memory_order_relaxed)) < n) {
      if (ctx->PollNow()) break;
      const size_t i = n - 1 - k;
      if (mine(&shards[i], lane, i)) done[i] = 1;
    }
  };

  const size_t lanes = std::min(pool->threads(), n);
  WaitGroup wg;
  for (size_t lane = 1; lane < lanes; ++lane) {
    pool->Submit(&wg, [&lane_body, lane] { lane_body(lane); });
  }
  // The caller is lane 0; its exception must not skip the wait below.
  std::exception_ptr caller_error;
  try {
    lane_body(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  // Deadline-aware wait: between waits the context is re-polled, so a
  // deadline that expires while workers are deep inside their current
  // subtree still trips promptly and the workers unwind at their next
  // internal check.
  while (!pool->WaitFor(&wg, std::chrono::milliseconds(20))) {
    ctx->PollNow();
  }
  if (caller_error) std::rethrow_exception(caller_error);

  for (MineShard& shard : shards) {
    out->Append(std::move(shard.patterns));
    stats->patterns_emitted += shard.stats.patterns_emitted;
    stats->projections_built += shard.stats.projections_built;
    stats->items_scanned += shard.stats.items_scanned;
  }

  size_t completed_top = 0;
  while (completed_top < n && done[n - 1 - completed_top] != 0) {
    ++completed_top;
  }
  if (completed_top == n) return true;
  if (mark_frontier) {
    // The highest uncompleted subtree bounds what the emitted set is
    // complete for: everything strictly above its extension's support.
    ctx->MarkIncomplete(level_supports[n - 1 - completed_top] + 1);
  }
  return false;
}

}  // namespace gogreen::fpm
