#include "fpm/transaction_db.h"

#include <algorithm>

#include "fpm/pattern.h"
#include "util/logging.h"

namespace gogreen::fpm {

void TransactionDb::AddTransaction(std::vector<ItemId> items) {
  CanonicalizeItems(&items);
  AddCanonicalTransaction(ItemSpan(items));
}

void TransactionDb::AddCanonicalTransaction(ItemSpan items) {
#ifndef NDEBUG
  for (size_t i = 1; i < items.size(); ++i) {
    GOGREEN_DCHECK(items[i - 1] < items[i]);
  }
#endif
  items_.insert(items_.end(), items.begin(), items.end());
  offsets_.push_back(items_.size());
  if (!items.empty()) {
    item_universe_ = std::max(item_universe_,
                              static_cast<size_t>(items.back()) + 1);
  }
}

std::vector<uint64_t> TransactionDb::CountItemSupports() const {
  std::vector<uint64_t> counts(item_universe_, 0);
  for (ItemId it : items_) ++counts[it];
  return counts;
}

uint64_t TransactionDb::CountSupport(ItemSpan items) const {
  uint64_t support = 0;
  const size_t n = NumTransactions();
  for (Tid t = 0; t < n; ++t) {
    if (IsSubsetSorted(items, Transaction(t))) ++support;
  }
  return support;
}

size_t TransactionDb::NumDistinctItems() const {
  size_t n = 0;
  for (uint64_t c : CountItemSupports()) {
    if (c > 0) ++n;
  }
  return n;
}

void TransactionDb::Reserve(size_t num_transactions, size_t num_items) {
  offsets_.reserve(num_transactions + 1);
  items_.reserve(num_items);
}

}  // namespace gogreen::fpm
