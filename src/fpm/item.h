// Basic item vocabulary shared by the whole library.

#ifndef GOGREEN_FPM_ITEM_H_
#define GOGREEN_FPM_ITEM_H_

#include <cstdint>
#include <limits>
#include <span>

namespace gogreen::fpm {

/// An item (attribute value) is identified by a dense non-negative id.
using ItemId = uint32_t;

/// Sentinel for "no item" / "not frequent".
inline constexpr ItemId kInvalidItem = std::numeric_limits<ItemId>::max();

/// Read-only view over a run of items.
using ItemSpan = std::span<const ItemId>;

/// Rank of an item inside an F-list (position, 0 = lowest support).
using Rank = uint32_t;

/// Sentinel rank for items that are not frequent.
inline constexpr Rank kNoRank = std::numeric_limits<Rank>::max();

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_ITEM_H_
