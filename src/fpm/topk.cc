#include "fpm/topk.h"

#include <algorithm>

namespace gogreen::fpm {

Result<PatternSet> MineTopK(const TransactionDb& db,
                            const TopKOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.min_length == 0) {
    return Status::InvalidArgument("min_length must be >= 1");
  }
  if (db.NumTransactions() == 0) return PatternSet();

  auto miner = CreateMiner(options.miner);

  // Geometric descent: start at half the database size and halve until at
  // least k qualifying patterns exist (or the threshold bottoms out at 1).
  uint64_t threshold =
      std::max<uint64_t>(1, db.NumTransactions() / 2);
  PatternSet qualified;
  while (true) {
    GOGREEN_ASSIGN_OR_RETURN(PatternSet mined, miner->Mine(db, threshold));
    qualified = mined.FilterByMinLength(options.min_length);
    if (qualified.size() >= options.k || threshold == 1) break;
    threshold = threshold > 1 ? threshold / 2 : 1;
  }

  // Keep the k best by (support desc, canonical order).
  std::vector<Pattern>& patterns = qualified.mutable_patterns();
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return PatternLess(a, b);
            });
  if (patterns.size() > options.k) patterns.resize(options.k);
  return qualified;
}

}  // namespace gogreen::fpm
