// Eclat (Zaki, 1997): depth-first mining over a vertical layout. A second
// independently-derived oracle; also the fastest baseline on small dense
// databases thanks to tid-set intersection.
//
// Two vertical representations are provided: sorted tid-lists (cheap when
// supports are small relative to |DB|) and tid-bitmaps (word-parallel
// intersection, superior on dense data where supports approach |DB|).

#ifndef GOGREEN_FPM_ECLAT_H_
#define GOGREEN_FPM_ECLAT_H_

#include "fpm/miner.h"

namespace gogreen::fpm {

/// Vertical representation selection for EclatMiner.
enum class EclatLayout {
  kAuto,      ///< Bitmaps when the frequent items' density warrants them.
  kTidLists,  ///< Always sorted tid-lists.
  kBitsets,   ///< Always tid-bitmaps.
};

class EclatMiner : public FrequentPatternMiner {
 public:
  explicit EclatMiner(EclatLayout layout = EclatLayout::kAuto)
      : layout_(layout) {}

  std::string name() const override { return "eclat"; }

  Result<PatternSet> Mine(const TransactionDb& db,
                          uint64_t min_support) override;

 private:
  EclatLayout layout_;
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_ECLAT_H_
