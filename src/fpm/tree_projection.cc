#include "fpm/tree_projection.h"

#include <algorithm>
#include <unordered_map>

#include "check/check.h"
#include "fpm/flist.h"
#include "fpm/parallel_mine.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gogreen::fpm {

namespace {

// Above this extension count the node's pair matrix would be too large;
// fall back to project-and-recount for that node only (correctness is
// unaffected, only the grandchild pruning is lost).
constexpr size_t kMaxMatrixItems = 4096;

/// Upper-triangular pair-count matrix over n local items.
class PairMatrix {
 public:
  explicit PairMatrix(size_t n) : n_(n), counts_(n * (n - 1) / 2, 0) {}

  void Add(size_t i, size_t j, uint64_t w) { counts_[Index(i, j)] += w; }
  uint64_t Get(size_t i, size_t j) const { return counts_[Index(i, j)]; }

 private:
  size_t Index(size_t i, size_t j) const {
    GOGREEN_DCHECK(i < j && j < n_);
    // Row-major upper triangle: row i starts after sum of previous rows.
    return i * (2 * n_ - i - 1) / 2 + (j - i - 1);
  }

  size_t n_;
  std::vector<uint64_t> counts_;
};

/// One distinct projected transaction in a node-local item space, with the
/// number of identical original transactions it stands for. Collapsing
/// duplicates is the transaction-bucketing optimization of the original
/// algorithm; on dense data it shrinks node workloads by orders of magnitude.
struct WeightedRow {
  std::vector<uint32_t> items;  // Sorted local indices into the extension set.
  uint64_t weight = 0;
};

using LocalRows = std::vector<WeightedRow>;

struct RowHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (uint32_t x : v) {
      h ^= x;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

/// Merges identical rows, summing weights.
LocalRows Dedupe(std::vector<std::pair<std::vector<uint32_t>, uint64_t>> raw) {
  std::unordered_map<std::vector<uint32_t>, uint64_t, RowHash> merged;
  merged.reserve(raw.size());
  for (auto& [items, weight] : raw) {
    merged[std::move(items)] += weight;
  }
  LocalRows rows;
  rows.reserve(merged.size());
  for (auto& [items, weight] : merged) {
    rows.push_back({items, weight});
  }
  // Canonical order: hash-map iteration order is an implementation detail,
  // and downstream scans must not depend on it.
  std::sort(rows.begin(), rows.end(),
            [](const WeightedRow& a, const WeightedRow& b) {
              return a.items < b.items;
            });
  return rows;
}

class TpContext {
 public:
  TpContext(const FList& flist, uint64_t min_support, PatternSet* out,
            MiningStats* stats)
      : flist_(flist), min_support_(min_support), out_(out), stats_(stats) {}

  /// Attaches the run governor: Process() then polls between children and
  /// charges projected child rows against the byte budget. Null detaches.
  void BindRunContext(RunContext* ctx) { run_ctx_ = ctx; }

  /// Processes one lexicographic-tree node.
  ///  - `ext`: candidate extension items (global ranks, F-list ascending);
  ///    all are known frequent together with the prefix.
  ///  - `c1[i]`: support of prefix + ext[i].
  ///  - `rows`: weighted distinct transactions containing the prefix,
  ///    reduced to ext items.
  /// Returns false iff a governed stop abandoned part of the subtree.
  bool Process(std::vector<Rank>* prefix, const std::vector<Rank>& ext,
               const std::vector<uint64_t>& c1, const LocalRows& rows) {
    for (size_t i = 0; i < ext.size(); ++i) {
      prefix->push_back(ext[i]);
      EmitPattern(*prefix, c1[i]);
      prefix->pop_back();
    }
    if (ext.size() < 2) return true;

    if (ext.size() <= kMaxMatrixItems) {
      return ProcessWithMatrix(prefix, ext, rows);
    }
    return ProcessWithRecount(prefix, ext, rows);
  }

  /// Root driver for multi-lane runs: emits the singleton patterns, fills
  /// the root pair matrix once, then fans the first-level children out to
  /// the pool — each child task only reads the shared matrix and rows.
  /// Ascending-child shard merge reproduces the sequential emission order
  /// exactly. Requires 2 <= ext.size() <= kMaxMatrixItems.
  void ProcessRootParallel(const std::vector<Rank>& ext,
                           const std::vector<uint64_t>& c1,
                           const LocalRows& rows) {
    std::vector<Rank> prefix;
    for (size_t i = 0; i < ext.size(); ++i) {
      prefix.push_back(ext[i]);
      EmitPattern(prefix, c1[i]);
      prefix.pop_back();
    }

    PairMatrix matrix(ext.size());
    FillMatrix(&matrix, rows);

    MineFirstLevelParallel(
        ThreadPool::Global(), ext.size() - 1,
        [&](MineShard* shard, size_t /*lane*/, size_t i) {
          TpContext ctx(flist_, min_support_, &shard->patterns,
                        &shard->stats);
          std::vector<Rank> sub_prefix;
          ctx.MineMatrixChild(&sub_prefix, ext, matrix, rows, i);
        },
        out_, stats_);
  }

  /// Governed root driver: like ProcessRootParallel but fanning children
  /// descending through MineFirstLevelGoverned (works at any lane count),
  /// with a recount fallback when the extension set exceeds the matrix
  /// limit. `c1` is F-list ascending, as the frontier computation needs.
  void ProcessRootGoverned(const std::vector<Rank>& ext,
                           const std::vector<uint64_t>& c1,
                           const LocalRows& rows) {
    std::vector<Rank> prefix;
    for (size_t i = 0; i < ext.size(); ++i) {
      prefix.push_back(ext[i]);
      EmitPattern(prefix, c1[i]);
      prefix.pop_back();
    }
    if (ext.size() < 2) return;

    const bool use_matrix = ext.size() <= kMaxMatrixItems;
    PairMatrix matrix(use_matrix ? ext.size() : 2);
    if (use_matrix) FillMatrix(&matrix, rows);
    // Root rows and matrix stay live for the whole fan-out.
    const ScopedBytes root_charge(
        run_ctx_,
        RowsBytes(rows) +
            (use_matrix ? ext.size() * (ext.size() - 1) / 2 * sizeof(uint64_t)
                        : 0));

    // Children are i in [0, ext.size() - 1); child i's subtree holds the
    // patterns whose rarest item is ext[i], supported at most c1[i].
    const std::vector<uint64_t> level_supports(c1.begin(), c1.end() - 1);
    MineFirstLevelGoverned(
        ThreadPool::Global(), ext.size() - 1,
        [&](MineShard* shard, size_t /*lane*/, size_t i) -> bool {
          TpContext ctx(flist_, min_support_, &shard->patterns,
                        &shard->stats);
          ctx.BindRunContext(run_ctx_);
          std::vector<Rank> sub_prefix;
          return use_matrix
                     ? ctx.MineMatrixChild(&sub_prefix, ext, matrix, rows, i)
                     : ctx.MineRecountChild(&sub_prefix, ext, rows, i);
        },
        out_, stats_, run_ctx_, level_supports, /*mark_frontier=*/true);
  }

 private:
  /// The signature Tree Projection step: one scan fills the pair matrix,
  /// giving every child its extension supports without recounting.
  /// Returns false iff a governed stop abandoned part of the subtree.
  bool ProcessWithMatrix(std::vector<Rank>* prefix, const std::vector<Rank>& ext,
                         const LocalRows& rows) {
    PairMatrix matrix(ext.size());
    FillMatrix(&matrix, rows);
    bool completed = true;
    for (size_t i = 0; i + 1 < ext.size(); ++i) {
      if (run_ctx_ != nullptr && run_ctx_->ShouldStop()) {
        completed = false;
        break;
      }
      if (!MineMatrixChild(prefix, ext, matrix, rows, i)) completed = false;
    }
    return completed;
  }

  /// One scan of `rows` accumulating every in-row pair into `matrix`.
  void FillMatrix(PairMatrix* matrix, const LocalRows& rows) {
    for (const WeightedRow& row : rows) {
      stats_->items_scanned += row.items.size();
      for (size_t a = 0; a < row.items.size(); ++a) {
        for (size_t b = a + 1; b < row.items.size(); ++b) {
          matrix->Add(row.items[a], row.items[b], row.weight);
        }
      }
    }
  }

  /// Builds and processes the child node for prefix + ext[i] from the
  /// parent's already-filled pair matrix. Reads `matrix` and `rows` without
  /// mutating them, so distinct children may be processed concurrently.
  /// Returns false iff a governed stop abandoned part of the subtree.
  bool MineMatrixChild(std::vector<Rank>* prefix, const std::vector<Rank>& ext,
                       const PairMatrix& matrix, const LocalRows& rows,
                       size_t i) {
    // Child node for prefix + ext[i]; its extensions are the j > i with
    // frequent pairs.
    std::vector<uint32_t> remap(ext.size(), UINT32_MAX);
    std::vector<Rank> child_ext;
    std::vector<uint64_t> child_c1;
    for (size_t j = i + 1; j < ext.size(); ++j) {
      if (matrix.Get(i, j) >= min_support_) {
        remap[j] = static_cast<uint32_t>(child_ext.size());
        child_ext.push_back(ext[j]);
        child_c1.push_back(matrix.Get(i, j));
      }
    }
    if (child_ext.empty()) return true;

    std::vector<std::pair<std::vector<uint32_t>, uint64_t>> raw;
    for (const WeightedRow& row : rows) {
      // Row is sorted; locate i then keep remapped later items.
      auto it = std::lower_bound(row.items.begin(), row.items.end(),
                                 static_cast<uint32_t>(i));
      if (it == row.items.end() || *it != i) continue;
      std::vector<uint32_t> child_row;
      for (++it; it != row.items.end(); ++it) {
        if (remap[*it] != UINT32_MAX) child_row.push_back(remap[*it]);
      }
      if (!child_row.empty()) {
        raw.emplace_back(std::move(child_row), row.weight);
      }
    }
    ++stats_->projections_built;

    prefix->push_back(ext[i]);
    const LocalRows child_rows = Dedupe(std::move(raw));
    const ScopedBytes charge(
        run_ctx_, run_ctx_ != nullptr ? RowsBytes(child_rows) : 0);
    const bool completed = Process(prefix, child_ext, child_c1, child_rows);
    prefix->pop_back();
    return completed;
  }

  /// One recount-mode child: projects rows containing ext[i], recounts the
  /// extension supports there, and processes the child node. The per-child
  /// body of ProcessWithRecount, exposed so the governed root fan-out can
  /// run children independently above the matrix limit.
  bool MineRecountChild(std::vector<Rank>* prefix, const std::vector<Rank>& ext,
                        const LocalRows& rows, size_t i) {
    std::vector<uint64_t> raw_counts(ext.size() - i - 1, 0);
    LocalRows contained;
    for (const WeightedRow& row : rows) {
      auto it = std::lower_bound(row.items.begin(), row.items.end(),
                                 static_cast<uint32_t>(i));
      if (it == row.items.end() || *it != i) continue;
      std::vector<uint32_t> tail(it + 1, row.items.end());
      stats_->items_scanned += tail.size();
      for (uint32_t x : tail) raw_counts[x - i - 1] += row.weight;
      contained.push_back({std::move(tail), row.weight});
    }

    std::vector<uint32_t> remap(ext.size(), UINT32_MAX);
    std::vector<Rank> child_ext;
    std::vector<uint64_t> child_c1;
    for (size_t j = i + 1; j < ext.size(); ++j) {
      if (raw_counts[j - i - 1] >= min_support_) {
        remap[j] = static_cast<uint32_t>(child_ext.size());
        child_ext.push_back(ext[j]);
        child_c1.push_back(raw_counts[j - i - 1]);
      }
    }
    if (child_ext.empty()) return true;

    std::vector<std::pair<std::vector<uint32_t>, uint64_t>> raw;
    for (const WeightedRow& row : contained) {
      std::vector<uint32_t> child_row;
      for (uint32_t x : row.items) {
        if (remap[x] != UINT32_MAX) child_row.push_back(remap[x]);
      }
      if (!child_row.empty()) {
        raw.emplace_back(std::move(child_row), row.weight);
      }
    }
    ++stats_->projections_built;

    prefix->push_back(ext[i]);
    const LocalRows child_rows = Dedupe(std::move(raw));
    const ScopedBytes charge(
        run_ctx_, run_ctx_ != nullptr ? RowsBytes(child_rows) : 0);
    const bool completed = Process(prefix, child_ext, child_c1, child_rows);
    prefix->pop_back();
    return completed;
  }

  /// Fallback for nodes whose extension set is too large for a matrix:
  /// project per child and recount extension supports there.
  /// Returns false iff a governed stop abandoned part of the subtree.
  bool ProcessWithRecount(std::vector<Rank>* prefix,
                          const std::vector<Rank>& ext, const LocalRows& rows) {
    bool completed = true;
    for (size_t i = 0; i + 1 < ext.size(); ++i) {
      if (run_ctx_ != nullptr && run_ctx_->ShouldStop()) {
        completed = false;
        break;
      }
      if (!MineRecountChild(prefix, ext, rows, i)) completed = false;
    }
    return completed;
  }

  static size_t RowsBytes(const LocalRows& rows) {
    size_t bytes = rows.size() * sizeof(WeightedRow);
    for (const WeightedRow& row : rows) {
      bytes += row.items.size() * sizeof(uint32_t);
    }
    return bytes;
  }

  void EmitPattern(const std::vector<Rank>& ranks, uint64_t support) {
    std::vector<ItemId> items = flist_.DecodeRanks(ranks);
    std::sort(items.begin(), items.end());
    out_->Add(std::move(items), support);
  }

  const FList& flist_;
  const uint64_t min_support_;
  PatternSet* out_;
  MiningStats* stats_;
  RunContext* run_ctx_ = nullptr;
};

}  // namespace

Result<PatternSet> TreeProjectionMiner::Mine(const TransactionDb& db,
                                             uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.tree-projection");
  Timer timer;
  PatternSet out;

  const FList flist = FList::Build(db, min_support);
  GOGREEN_VALIDATE_OR_DIE(check::ValidateFList(flist, min_support));
  if (!flist.empty()) {
    // Root node: extensions are all frequent items; rows are the ranked
    // transactions themselves (local index == global rank), bucketed.
    std::vector<Rank> ext(flist.size());
    std::vector<uint64_t> c1(flist.size());
    for (Rank r = 0; r < flist.size(); ++r) {
      ext[r] = r;
      c1[r] = flist.support(r);
    }

    std::vector<std::pair<std::vector<uint32_t>, uint64_t>> raw;
    raw.reserve(db.NumTransactions());
    std::vector<Rank> encoded;
    for (Tid t = 0; t < db.NumTransactions(); ++t) {
      encoded.clear();
      flist.AppendEncoded(db.Transaction(t), &encoded);
      if (encoded.size() >= 2) {
        raw.emplace_back(
            std::vector<uint32_t>(encoded.begin(), encoded.end()), 1);
      }
    }
    const LocalRows rows = Dedupe(std::move(raw));

    TpContext ctx(flist, min_support, &out, &stats_);
    if (run_ctx_ != nullptr) {
      ctx.BindRunContext(run_ctx_);
      ctx.ProcessRootGoverned(ext, c1, rows);
    } else if (ParallelMiningEnabled() && ext.size() >= 2 &&
               ext.size() <= kMaxMatrixItems) {
      ctx.ProcessRootParallel(ext, c1, rows);
    } else {
      std::vector<Rank> prefix;
      ctx.Process(&prefix, ext, c1, rows);
    }
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  RecordMiningStats(stats_);
  return out;
}

}  // namespace gogreen::fpm
