#include "fpm/fpgrowth.h"

#include <algorithm>
#include <unordered_map>

#include "fpm/flist.h"
#include "fpm/parallel_mine.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gogreen::fpm {

namespace {

/// One FP-tree node. Children form a singly linked sibling list; `next`
/// threads all nodes of the same rank for the header table.
struct FpNode {
  Rank rank;
  uint64_t count;
  FpNode* parent;
  FpNode* first_child;
  FpNode* next_sibling;
  FpNode* next;  // Header chain.
};

/// An FP-tree over a *local* rank space 0..num_ranks-1 (each conditional tree
/// compacts its alphabet so header arrays stay small). Local rank order is
/// consistent with global F-list order, and paths store ranks in *descending*
/// order from the root (most frequent item first), so the conditional pattern
/// base of a rank consists of strictly larger local ranks.
class FpTree {
 public:
  explicit FpTree(size_t num_ranks)
      : header_heads_(num_ranks, nullptr), header_counts_(num_ranks, 0) {
    root_ = arena_.New<FpNode>(
        FpNode{kNoRank, 0, nullptr, nullptr, nullptr, nullptr});
  }

  /// Inserts a path of local ranks sorted descending, adding `weight` to
  /// every node along it.
  void InsertPath(std::span<const Rank> desc_ranks, uint64_t weight) {
    FpNode* node = root_;
    for (Rank r : desc_ranks) {
      FpNode* child = FindChild(node, r);
      if (child == nullptr) {
        child = arena_.New<FpNode>(
            FpNode{r, 0, node, nullptr, node->first_child, header_heads_[r]});
        node->first_child = child;
        header_heads_[r] = child;
      }
      child->count += weight;
      header_counts_[r] += weight;
      node = child;
    }
  }

  uint64_t HeaderCount(Rank r) const { return header_counts_[r]; }
  FpNode* HeaderHead(Rank r) const { return header_heads_[r]; }
  size_t num_ranks() const { return header_heads_.size(); }

  /// If the tree consists of a single downward path, returns its nodes
  /// root-side first; otherwise returns an empty vector.
  std::vector<const FpNode*> SinglePath() const {
    std::vector<const FpNode*> path;
    const FpNode* node = root_;
    while (node->first_child != nullptr) {
      if (node->first_child->next_sibling != nullptr) return {};
      node = node->first_child;
      path.push_back(node);
    }
    return path;
  }

  bool empty() const { return root_->first_child == nullptr; }

  const FpNode* root() const { return root_; }

  size_t MemoryUsage() const { return arena_.allocated_bytes(); }

 private:
  static FpNode* FindChild(FpNode* node, Rank r) {
    for (FpNode* c = node->first_child; c != nullptr; c = c->next_sibling) {
      if (c->rank == r) return c;
    }
    return nullptr;
  }

  Arena arena_;
  FpNode* root_;
  std::vector<FpNode*> header_heads_;
  std::vector<uint64_t> header_counts_;
};

class FpGrowthContext {
 public:
  FpGrowthContext(const FList& flist, uint64_t min_support, PatternSet* out,
                  MiningStats* stats)
      : flist_(flist), min_support_(min_support), out_(out), stats_(stats) {}

  /// Attaches the run governor: Mine() then polls between header ranks and
  /// charges conditional trees against the byte budget. Null detaches.
  void BindRunContext(RunContext* ctx) { run_ctx_ = ctx; }

  /// Mines `tree` under `prefix`. `to_global[local]` maps the tree's local
  /// rank space back to global F-list ranks (increasing in local rank).
  /// Returns false iff a governed stop abandoned part of the subtree.
  bool Mine(const FpTree& tree, const std::vector<Rank>& to_global,
            std::vector<Rank>* prefix) {
    if (tree.empty()) return true;

    const std::vector<const FpNode*> path = tree.SinglePath();
    if (!path.empty()) {
      EmitSinglePathCombinations(path, to_global, prefix);
      return true;
    }

    // Header processed in ascending local-rank order (lowest support first),
    // as in the original algorithm.
    bool completed = true;
    for (Rank r = 0; r < tree.num_ranks(); ++r) {
      if (run_ctx_ != nullptr && run_ctx_->ShouldStop()) {
        completed = false;
        break;
      }
      if (tree.HeaderCount(r) < min_support_) continue;
      if (!MineHeaderRank(tree, to_global, r, prefix)) completed = false;
    }
    return completed;
  }

  /// Processes one frequent header rank `r` of `tree`: emits prefix+r and
  /// mines its conditional FP-tree. Reads `tree` without mutating it, so
  /// distinct ranks of the same tree may be processed concurrently.
  /// Returns false iff a governed stop abandoned part of the subtree.
  bool MineHeaderRank(const FpTree& tree, const std::vector<Rank>& to_global,
                      Rank r, std::vector<Rank>* prefix) {
    prefix->push_back(to_global[r]);
    EmitPattern(*prefix, tree.HeaderCount(r));

    // Conditional pattern base of r: the prefix paths of every node in
    // r's chain, weighted by that node's count.
    std::vector<uint64_t> cond_counts(tree.num_ranks(), 0);
    for (const FpNode* n = tree.HeaderHead(r); n != nullptr; n = n->next) {
      for (const FpNode* p = n->parent; p->rank != kNoRank; p = p->parent) {
        cond_counts[p->rank] += n->count;
        ++stats_->items_scanned;
      }
    }

    // Compact the locally frequent items into a fresh local rank space.
    std::vector<Rank> remap(tree.num_ranks(), kNoRank);
    std::vector<Rank> cond_to_global;
    for (Rank r2 = 0; r2 < tree.num_ranks(); ++r2) {
      if (cond_counts[r2] >= min_support_) {
        remap[r2] = static_cast<Rank>(cond_to_global.size());
        cond_to_global.push_back(to_global[r2]);
      }
    }

    bool completed = true;
    if (!cond_to_global.empty()) {
      FpTree cond_tree(cond_to_global.size());
      std::vector<Rank> desc;
      for (const FpNode* n = tree.HeaderHead(r); n != nullptr; n = n->next) {
        desc.clear();
        for (const FpNode* p = n->parent; p->rank != kNoRank;
             p = p->parent) {
          if (remap[p->rank] != kNoRank) desc.push_back(remap[p->rank]);
        }
        // Walking up yields ascending-from-leaf order; the insert wants
        // descending-from-root, which is the reverse.
        std::reverse(desc.begin(), desc.end());
        cond_tree.InsertPath(desc, n->count);
      }
      ++stats_->projections_built;
      // The conditional tree is this step's dominant scratch; charge its
      // arena while the recursion below keeps it alive.
      const ScopedBytes charge(
          run_ctx_, run_ctx_ != nullptr ? cond_tree.MemoryUsage() : 0);
      completed = Mine(cond_tree, cond_to_global, prefix);
    }
    prefix->pop_back();
    return completed;
  }

 private:
  /// A single-path tree of k nodes encodes 2^k - 1 patterns: any non-empty
  /// subset of the path, supported by the count of its deepest node.
  void EmitSinglePathCombinations(const std::vector<const FpNode*>& path,
                                  const std::vector<Rank>& to_global,
                                  std::vector<Rank>* prefix) {
    const size_t k = path.size();
    GOGREEN_CHECK_LT(k, size_t{40});  // Combination explosion guard.
    for (uint64_t mask = 1; mask < (uint64_t{1} << k); ++mask) {
      uint64_t support = 0;
      size_t added = 0;
      for (size_t i = 0; i < k; ++i) {
        if ((mask >> i) & 1) {
          prefix->push_back(to_global[path[i]->rank]);
          support = path[i]->count;  // Deepest selected node's count.
          ++added;
        }
      }
      if (support >= min_support_) EmitPattern(*prefix, support);
      for (size_t i = 0; i < added; ++i) prefix->pop_back();
    }
  }

  void EmitPattern(const std::vector<Rank>& ranks, uint64_t support) {
    std::vector<ItemId> items = flist_.DecodeRanks(ranks);
    std::sort(items.begin(), items.end());
    out_->Add(std::move(items), support);
  }

  const FList& flist_;
  const uint64_t min_support_;
  PatternSet* out_;
  MiningStats* stats_;
  RunContext* run_ctx_ = nullptr;
};

/// Inserts every encoded transaction of `db` into `tree` (rank-descending
/// paths). Shared by Mine() and the debug view builder.
void BuildRootFpTree(const TransactionDb& db, const FList& flist,
                     FpTree* tree) {
  std::vector<Rank> desc;
  for (Tid t = 0; t < db.NumTransactions(); ++t) {
    desc.clear();
    flist.AppendEncoded(db.Transaction(t), &desc);
    // Encoded rows are rank-ascending; tree paths want rank-descending
    // (most frequent first).
    std::reverse(desc.begin(), desc.end());
    tree->InsertPath(desc, 1);
  }
}

/// Repackages a live FpTree into the pointer-free view the validators
/// consume: preorder node vector (parent always precedes child) plus header
/// chains as node-id lists. Chain entries that do not correspond to a tree
/// node map to an out-of-range id the validator reports.
check::FpTreeView ToFpTreeView(const FpTree& tree) {
  check::FpTreeView view;
  std::unordered_map<const FpNode*, uint32_t> index;
  const FpNode* root = tree.root();
  view.nodes.push_back({root->rank, root->count, -1});
  index.emplace(root, 0);
  std::vector<const FpNode*> stack;
  for (const FpNode* c = root->first_child; c != nullptr;
       c = c->next_sibling) {
    stack.push_back(c);
  }
  while (!stack.empty()) {
    const FpNode* n = stack.back();
    stack.pop_back();
    const auto id = static_cast<uint32_t>(view.nodes.size());
    index.emplace(n, id);
    view.nodes.push_back(
        {n->rank, n->count, static_cast<int64_t>(index.at(n->parent))});
    for (const FpNode* c = n->first_child; c != nullptr;
         c = c->next_sibling) {
      stack.push_back(c);
    }
  }
  view.header.resize(tree.num_ranks());
  view.header_counts.resize(tree.num_ranks());
  for (Rank r = 0; r < tree.num_ranks(); ++r) {
    view.header_counts[r] = tree.HeaderCount(r);
    for (const FpNode* n = tree.HeaderHead(r); n != nullptr; n = n->next) {
      const auto it = index.find(n);
      view.header[r].push_back(
          it != index.end() ? it->second
                            : static_cast<uint32_t>(view.nodes.size()));
    }
  }
  return view;
}

}  // namespace

check::FpTreeView DebugFpTreeView(const TransactionDb& db,
                                  uint64_t min_support) {
  const FList flist = FList::Build(db, min_support);
  if (flist.empty()) return {};
  FpTree tree(flist.size());
  BuildRootFpTree(db, flist, &tree);
  return ToFpTreeView(tree);
}

Result<PatternSet> FpGrowthMiner::Mine(const TransactionDb& db,
                                       uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.fp-growth");
  Timer timer;
  PatternSet out;

  const FList flist = FList::Build(db, min_support);
  if (!flist.empty()) {
    FpTree tree(flist.size());
    BuildRootFpTree(db, flist, &tree);

    if (check::ValidationEnabled()) {
      GOGREEN_VALIDATE_OR_DIE(check::ValidateFList(flist, min_support));
      GOGREEN_VALIDATE_OR_DIE(
          check::ValidateFpTree(ToFpTreeView(tree), min_support));
    }

    // Initial tree: local rank space == global rank space.
    std::vector<Rank> identity(flist.size());
    for (Rank r = 0; r < flist.size(); ++r) identity[r] = r;

    // With multiple lanes, fan the header ranks of the root tree out to the
    // pool — each rank's conditional mining only reads the shared tree.
    // Ascending-rank shard merge reproduces the sequential header order, so
    // the output is bit-identical at any thread count. A single-path root
    // (no per-rank decomposition) keeps the sequential shortcut.
    if (run_ctx_ != nullptr && !tree.empty() && tree.SinglePath().empty()) {
      // Governed: fan header ranks descending. Root header counts equal the
      // F-list supports (every root rank is frequent), giving the ascending
      // level supports the frontier computation needs.
      std::vector<uint64_t> level_supports(flist.size());
      for (Rank r = 0; r < flist.size(); ++r) {
        level_supports[r] = tree.HeaderCount(r);
      }
      const ScopedBytes root_charge(run_ctx_, tree.MemoryUsage());
      MineFirstLevelGoverned(
          ThreadPool::Global(), flist.size(),
          [&](MineShard* shard, size_t /*lane*/, size_t i) -> bool {
            const Rank r = static_cast<Rank>(i);
            FpGrowthContext ctx(flist, min_support, &shard->patterns,
                                &shard->stats);
            ctx.BindRunContext(run_ctx_);
            std::vector<Rank> prefix;
            return ctx.MineHeaderRank(tree, identity, r, &prefix);
          },
          &out, &stats_, run_ctx_, level_supports, /*mark_frontier=*/true);
    } else if (ParallelMiningEnabled() && !tree.empty() &&
               tree.SinglePath().empty()) {
      MineFirstLevelParallel(
          ThreadPool::Global(), flist.size(),
          [&](MineShard* shard, size_t /*lane*/, size_t i) {
            const Rank r = static_cast<Rank>(i);
            if (tree.HeaderCount(r) < min_support) return;
            FpGrowthContext ctx(flist, min_support, &shard->patterns,
                                &shard->stats);
            std::vector<Rank> prefix;
            ctx.MineHeaderRank(tree, identity, r, &prefix);
          },
          &out, &stats_);
    } else {
      std::vector<Rank> prefix;
      FpGrowthContext ctx(flist, min_support, &out, &stats_);
      ctx.BindRunContext(run_ctx_);
      ctx.Mine(tree, identity, &prefix);
    }
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  RecordMiningStats(stats_);
  return out;
}

}  // namespace gogreen::fpm
