// Container for complete sets of frequent patterns.

#ifndef GOGREEN_FPM_PATTERN_SET_H_
#define GOGREEN_FPM_PATTERN_SET_H_

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "fpm/pattern.h"

namespace gogreen::fpm {

/// The result of a mining run: a set of canonical patterns. Supports the
/// operations the recycling framework needs — filtering under tightened
/// constraints, canonical comparison for correctness tests, and simple stats.
class PatternSet {
 public:
  PatternSet() = default;

  void Add(Pattern p) { patterns_.push_back(std::move(p)); }
  void Add(std::vector<ItemId> items, uint64_t support) {
    patterns_.emplace_back(std::move(items), support);
  }

  /// Moves every pattern of `other` to the end of this set, preserving
  /// order. Used by the parallel miners to merge per-worker shards.
  void Append(PatternSet other) {
    if (patterns_.empty()) {
      patterns_ = std::move(other.patterns_);
      return;
    }
    patterns_.insert(patterns_.end(),
                     std::make_move_iterator(other.patterns_.begin()),
                     std::make_move_iterator(other.patterns_.end()));
  }

  size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  const Pattern& operator[](size_t i) const { return patterns_[i]; }
  const std::vector<Pattern>& patterns() const { return patterns_; }
  std::vector<Pattern>& mutable_patterns() { return patterns_; }

  auto begin() const { return patterns_.begin(); }
  auto end() const { return patterns_.end(); }

  /// Sorts into the canonical (lexicographic) order. Mining algorithms emit
  /// patterns in algorithm-specific orders; canonicalize before comparing.
  void SortCanonical();

  /// True if both sets, after canonical sorting, contain exactly the same
  /// (items, support) pairs. Both arguments are sorted in place.
  static bool Equal(PatternSet* a, PatternSet* b);

  /// Returns patterns present in `a` but not `b` (by items+support), after
  /// canonical sorting of both. For test diagnostics.
  static std::vector<Pattern> Difference(PatternSet* a, PatternSet* b);

  /// Patterns whose support is >= min_support. This is the paper's
  /// *tightened constraint* path: when the support threshold increases, the
  /// new answer is a filter of the old one (Section 2).
  PatternSet FilterBySupport(uint64_t min_support) const;

  /// Patterns with at least min_len items.
  PatternSet FilterByMinLength(size_t min_len) const;

  /// Length of the longest pattern (0 if empty).
  size_t MaxLength() const;

  /// Looks up the support of an exact itemset; returns 0 if absent.
  /// Linear scan — intended for tests.
  uint64_t SupportOf(ItemSpan items) const;

  /// Multi-line rendering, for debugging small sets.
  std::string ToString() const;

 private:
  std::vector<Pattern> patterns_;
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_PATTERN_SET_H_
