#include "fpm/eclat.h"

#include <algorithm>

#include "fpm/flist.h"
#include "obs/trace.h"
#include "util/bitset.h"
#include "util/timer.h"

namespace gogreen::fpm {

namespace {

using TidList = std::vector<Tid>;

// ---------- Sorted tid-list layout ----------

struct ListExtension {
  ItemId item;
  TidList tids;
};

TidList Intersect(const TidList& a, const TidList& b) {
  TidList out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

class ListEclat {
 public:
  ListEclat(uint64_t min_support, PatternSet* out, MiningStats* stats)
      : min_support_(min_support), out_(out), stats_(stats) {}

  /// Depth-first expansion: for each extension, emit prefix+item and recurse
  /// on the intersections with the later extensions.
  void Expand(std::vector<ItemId>* prefix,
              const std::vector<ListExtension>& exts) {
    for (size_t i = 0; i < exts.size(); ++i) {
      prefix->push_back(exts[i].item);
      std::vector<ItemId> canonical = *prefix;
      std::sort(canonical.begin(), canonical.end());
      out_->Add(std::move(canonical), exts[i].tids.size());

      std::vector<ListExtension> next;
      for (size_t j = i + 1; j < exts.size(); ++j) {
        TidList shared = Intersect(exts[i].tids, exts[j].tids);
        stats_->items_scanned += exts[i].tids.size() + exts[j].tids.size();
        if (shared.size() >= min_support_) {
          next.push_back({exts[j].item, std::move(shared)});
        }
      }
      if (!next.empty()) {
        ++stats_->projections_built;
        Expand(prefix, next);
      }
      prefix->pop_back();
    }
  }

 private:
  uint64_t min_support_;
  PatternSet* out_;
  MiningStats* stats_;
};

// ---------- Tid-bitmap layout ----------

struct BitExtension {
  ItemId item;
  DynamicBitset tids;
  uint64_t support;
};

class BitEclat {
 public:
  BitEclat(uint64_t min_support, size_t num_tids, PatternSet* out,
           MiningStats* stats)
      : min_support_(min_support),
        num_tids_(num_tids),
        out_(out),
        stats_(stats) {}

  void Expand(std::vector<ItemId>* prefix,
              const std::vector<BitExtension>& exts) {
    for (size_t i = 0; i < exts.size(); ++i) {
      prefix->push_back(exts[i].item);
      std::vector<ItemId> canonical = *prefix;
      std::sort(canonical.begin(), canonical.end());
      out_->Add(std::move(canonical), exts[i].support);

      std::vector<BitExtension> next;
      for (size_t j = i + 1; j < exts.size(); ++j) {
        stats_->items_scanned += num_tids_ / 32;  // Word-parallel work.
        const size_t count = exts[i].tids.IntersectionCount(exts[j].tids);
        if (count >= min_support_) {
          DynamicBitset shared = exts[i].tids;
          shared.IntersectWith(exts[j].tids);
          next.push_back({exts[j].item, std::move(shared), count});
        }
      }
      if (!next.empty()) {
        ++stats_->projections_built;
        Expand(prefix, next);
      }
      prefix->pop_back();
    }
  }

 private:
  uint64_t min_support_;
  size_t num_tids_;
  PatternSet* out_;
  MiningStats* stats_;
};

/// Density heuristic: bitmaps win when the average frequent item occurs in
/// a sizable fraction of transactions (word-parallel AND beats merging
/// long lists).
bool PreferBitsets(const FList& flist, size_t num_transactions) {
  if (flist.empty() || num_transactions == 0) return false;
  uint64_t total = 0;
  for (Rank r = 0; r < flist.size(); ++r) total += flist.support(r);
  const double avg_density =
      static_cast<double>(total) /
      (static_cast<double>(flist.size()) *
       static_cast<double>(num_transactions));
  return avg_density > 0.15;
}

}  // namespace

Result<PatternSet> EclatMiner::Mine(const TransactionDb& db,
                                    uint64_t min_support) {
  GOGREEN_RETURN_NOT_OK(ValidateArgs(min_support));
  stats_.Reset();
  GOGREEN_TRACE_SPAN("mine.eclat");
  Timer timer;
  PatternSet out;

  const FList flist = FList::Build(db, min_support);
  if (!flist.empty()) {
    const bool bitsets =
        layout_ == EclatLayout::kBitsets ||
        (layout_ == EclatLayout::kAuto &&
         PreferBitsets(flist, db.NumTransactions()));

    std::vector<ItemId> prefix;
    if (bitsets) {
      std::vector<BitExtension> roots;
      roots.reserve(flist.size());
      for (Rank r = 0; r < flist.size(); ++r) {
        roots.push_back({flist.item(r), DynamicBitset(db.NumTransactions()),
                         flist.support(r)});
      }
      for (Tid t = 0; t < db.NumTransactions(); ++t) {
        for (ItemId it : db.Transaction(t)) {
          const Rank r = flist.rank(it);
          if (r != kNoRank) roots[r].tids.Set(t);
        }
      }
      BitEclat ctx(min_support, db.NumTransactions(), &out, &stats_);
      ctx.Expand(&prefix, roots);
    } else {
      // Vertical layout in F-list (support-ascending) order — smaller
      // lists first keeps intersections cheap.
      std::vector<ListExtension> roots(flist.size());
      for (Rank r = 0; r < flist.size(); ++r) {
        roots[r].item = flist.item(r);
        roots[r].tids.reserve(flist.support(r));
      }
      for (Tid t = 0; t < db.NumTransactions(); ++t) {
        for (ItemId it : db.Transaction(t)) {
          const Rank r = flist.rank(it);
          if (r != kNoRank) roots[r].tids.push_back(t);
        }
      }
      ListEclat ctx(min_support, &out, &stats_);
      ctx.Expand(&prefix, roots);
    }
  }

  stats_.patterns_emitted = out.size();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  RecordMiningStats(stats_);
  return out;
}

}  // namespace gogreen::fpm
