#include "fpm/miner.h"

#include <cmath>

#include "fpm/apriori.h"
#include "fpm/eclat.h"
#include "fpm/fpgrowth.h"
#include "fpm/hmine.h"
#include "fpm/tree_projection.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace gogreen::fpm {

void RecordMiningStats(const MiningStats& stats) {
  using obs::MetricRegistry;
  static obs::Counter* runs =
      MetricRegistry::Global().GetCounter("mine.runs");
  static obs::Counter* items =
      MetricRegistry::Global().GetCounter("mine.items_scanned");
  static obs::Counter* projections =
      MetricRegistry::Global().GetCounter("mine.projections_built");
  static obs::Counter* patterns =
      MetricRegistry::Global().GetCounter("mine.patterns_emitted");
  static obs::Histogram* seconds =
      MetricRegistry::Global().GetHistogram("mine.seconds");
  static obs::Gauge* threads =
      MetricRegistry::Global().GetGauge("mine.threads");
  runs->Add(1);
  threads->Set(static_cast<int64_t>(ThreadPool::GlobalThreads()));
  items->Add(stats.items_scanned);
  projections->Add(stats.projections_built);
  patterns->Add(stats.patterns_emitted);
  seconds->Observe(stats.elapsed_seconds);
}

std::unique_ptr<FrequentPatternMiner> CreateMiner(MinerKind kind) {
  switch (kind) {
    case MinerKind::kApriori:
      return std::make_unique<AprioriMiner>();
    case MinerKind::kEclat:
      return std::make_unique<EclatMiner>();
    case MinerKind::kHMine:
      return std::make_unique<HMineMiner>();
    case MinerKind::kFpGrowth:
      return std::make_unique<FpGrowthMiner>();
    case MinerKind::kTreeProjection:
      return std::make_unique<TreeProjectionMiner>();
  }
  GOGREEN_CHECK(false) << "unknown MinerKind";
  return nullptr;
}

const char* MinerKindName(MinerKind kind) {
  switch (kind) {
    case MinerKind::kApriori:
      return "apriori";
    case MinerKind::kEclat:
      return "eclat";
    case MinerKind::kHMine:
      return "h-mine";
    case MinerKind::kFpGrowth:
      return "fp-growth";
    case MinerKind::kTreeProjection:
      return "tree-projection";
  }
  return "?";
}

uint64_t AbsoluteSupport(double fraction, size_t num_transactions) {
  GOGREEN_CHECK(fraction > 0.0 && fraction <= 1.0)
      << "support fraction out of (0,1]: " << fraction;
  const double raw = fraction * static_cast<double>(num_transactions);
  uint64_t abs = static_cast<uint64_t>(std::ceil(raw - 1e-9));
  if (abs == 0) abs = 1;
  return abs;
}

}  // namespace gogreen::fpm
