#include "fpm/miner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "check/check.h"
#include "fpm/apriori.h"
#include "fpm/eclat.h"
#include "fpm/fpgrowth.h"
#include "fpm/hmine.h"
#include "fpm/tree_projection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace gogreen::fpm {

namespace {

/// Flushes a governed run's outcome into the registry: `run.partial`,
/// per-reason stop counters, and the `run.bytes_peak` high-water gauge.
void RecordGovernorOutcome(RunContext* ctx, bool partial) {
  if (ctx == nullptr) return;
  using obs::MetricRegistry;
  static obs::Counter* partials =
      MetricRegistry::Global().GetCounter("run.partial");
  static obs::Counter* cancelled =
      MetricRegistry::Global().GetCounter("run.cancelled");
  static obs::Counter* deadline =
      MetricRegistry::Global().GetCounter("run.deadline_exceeded");
  static obs::Counter* exhausted =
      MetricRegistry::Global().GetCounter("run.memory_exceeded");
  static obs::Gauge* bytes_peak =
      MetricRegistry::Global().GetGauge("run.bytes_peak");
  if (partial) partials->Add(1);
  switch (ctx->stop_reason()) {
    case StopReason::kNone:
      break;
    case StopReason::kCancelled:
      cancelled->Add(1);
      break;
    case StopReason::kDeadlineExceeded:
      deadline->Add(1);
      break;
    case StopReason::kMemoryBudgetExceeded:
      exhausted->Add(1);
      break;
  }
  bytes_peak->UpdateMax(static_cast<int64_t>(ctx->bytes_peak()));
}

}  // namespace

Result<MineOutcome> FinishGovernedOutcome(Result<PatternSet> result,
                                          uint64_t min_support,
                                          RunContext* ctx) {
  if (!result.ok()) return result.status();
  MineOutcome outcome;
  outcome.patterns = std::move(result).value();
  outcome.frontier_support = min_support;
  if (ctx != nullptr && ctx->incomplete()) {
    outcome.partial = true;
    outcome.stop_status = ctx->StopStatus();
    outcome.frontier_support =
        std::max(min_support, ctx->frontier_support());
    // Subtrees below the frontier may have been cut mid-emission; dropping
    // everything under the frontier restores exactness (the completed
    // most-frequent-first subtrees contain every pattern at or above it).
    outcome.patterns =
        outcome.patterns.FilterBySupport(outcome.frontier_support);
  }
  RecordGovernorOutcome(ctx, outcome.partial);
  // Every cooperatively charged byte must be released by the time a
  // governed run reaches this epilogue (leaked ScopedBytes would starve
  // later runs sharing the budget).
  if (ctx != nullptr) {
    GOGREEN_VALIDATE_OR_DIE(check::ValidateRunContext(*ctx));
  }
  return outcome;
}

Result<uint64_t> MineRequest::EffectiveMinSupport() const {
  uint64_t support = min_support;
  if (constraints != nullptr) {
    support = std::max(support, constraints->min_support());
  }
  if (support == 0) {
    return Status::InvalidArgument(
        "MineRequest needs a min_support >= 1 (directly or via constraints)");
  }
  return support;
}

Result<MineResult> FrequentPatternMiner::Mine(const TransactionDb& db,
                                              const MineRequest& request) {
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t minsup,
                           request.EffectiveMinSupport());
  GOGREEN_TRACE_SPAN("run.governor");
  const ThreadPool::ScopedThreads scoped_threads(request.threads);
  RunContext* ctx = request.run_context;
  run_ctx_ = ctx;  // Bound for this call only; the hook below reads it.
  Result<PatternSet> mined = Mine(db, minsup);
  run_ctx_ = nullptr;
  GOGREEN_ASSIGN_OR_RETURN(
      MineOutcome outcome,
      FinishGovernedOutcome(std::move(mined), minsup, ctx));
  MineResult result;
  result.patterns = std::move(outcome.patterns);
  result.partial = outcome.partial;
  result.frontier_support = outcome.frontier_support;
  result.stop_status = std::move(outcome.stop_status);
  result.stats = stats_;
  if (request.constraints != nullptr &&
      request.constraints->NumConstraints() > 0) {
    result.patterns = request.constraints->Filter(result.patterns);
  }
  return result;
}

void RecordMiningStats(const MiningStats& stats) {
  using obs::MetricRegistry;
  static obs::Counter* runs =
      MetricRegistry::Global().GetCounter("mine.runs");
  static obs::Counter* items =
      MetricRegistry::Global().GetCounter("mine.items_scanned");
  static obs::Counter* projections =
      MetricRegistry::Global().GetCounter("mine.projections_built");
  static obs::Counter* patterns =
      MetricRegistry::Global().GetCounter("mine.patterns_emitted");
  static obs::Histogram* seconds =
      MetricRegistry::Global().GetHistogram("mine.seconds");
  static obs::Gauge* threads =
      MetricRegistry::Global().GetGauge("mine.threads");
  runs->Add(1);
  threads->Set(static_cast<int64_t>(ThreadPool::GlobalThreads()));
  items->Add(stats.items_scanned);
  projections->Add(stats.projections_built);
  patterns->Add(stats.patterns_emitted);
  seconds->Observe(stats.elapsed_seconds);
}

std::unique_ptr<FrequentPatternMiner> CreateMiner(MinerKind kind) {
  switch (kind) {
    case MinerKind::kApriori:
      return std::make_unique<AprioriMiner>();
    case MinerKind::kEclat:
      return std::make_unique<EclatMiner>();
    case MinerKind::kHMine:
      return std::make_unique<HMineMiner>();
    case MinerKind::kFpGrowth:
      return std::make_unique<FpGrowthMiner>();
    case MinerKind::kTreeProjection:
      return std::make_unique<TreeProjectionMiner>();
  }
  GOGREEN_CHECK(false) << "unknown MinerKind";
  return nullptr;
}

const char* MinerKindName(MinerKind kind) {
  switch (kind) {
    case MinerKind::kApriori:
      return "apriori";
    case MinerKind::kEclat:
      return "eclat";
    case MinerKind::kHMine:
      return "h-mine";
    case MinerKind::kFpGrowth:
      return "fp-growth";
    case MinerKind::kTreeProjection:
      return "tree-projection";
  }
  return "?";
}

uint64_t AbsoluteSupport(double fraction, size_t num_transactions) {
  GOGREEN_CHECK(fraction > 0.0 && fraction <= 1.0)
      << "support fraction out of (0,1]: " << fraction;
  const double raw = fraction * static_cast<double>(num_transactions);
  uint64_t abs = static_cast<uint64_t>(std::ceil(raw - 1e-9));
  if (abs == 0) abs = 1;
  return abs;
}

}  // namespace gogreen::fpm
