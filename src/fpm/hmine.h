// H-Mine (Pei, Han, Lu, Nishio, Tang, Yang — ICDM'01): frequent-pattern
// mining over an in-memory hyper-structure. Transactions are re-encoded onto
// the F-list; every projected database is a set of (transaction, offset)
// references into the original arrays — no data is copied during projection,
// matching H-Mine's header-table-with-hyperlinks design.

#ifndef GOGREEN_FPM_HMINE_H_
#define GOGREEN_FPM_HMINE_H_

#include <vector>

#include "check/check.h"
#include "fpm/flist.h"
#include "fpm/miner.h"

namespace gogreen::fpm {

class HMineMiner : public FrequentPatternMiner {
 public:
  std::string name() const override { return "h-mine"; }

  Result<PatternSet> Mine(const TransactionDb& db,
                          uint64_t min_support) override;
};

/// Mines a projected database given as rank-encoded rows (each ascending in
/// F-list rank). Every emitted pattern is prefixed with `prefix_ranks`.
/// This is the H-Mine core exposed for the memory-limited driver, which
/// mines disk partitions one at a time (Section 5.3). `run_ctx` (optional)
/// governs the run; returns false iff a governed stop abandoned work — the
/// caller owns the frontier bookkeeping when `prefix_ranks` is non-empty.
bool MineRankedRowsHM(const std::vector<std::vector<Rank>>& rows,
                      const FList& flist, uint64_t min_support,
                      const std::vector<Rank>& prefix_ranks, PatternSet* out,
                      MiningStats* stats, RunContext* run_ctx = nullptr);

/// Expands the root level of the H-struct over `ranked` — header table plus
/// fully materialized hyperlink queues — as a neutral view for
/// check::ValidateHStruct and for tests. Debug tooling: costs one full
/// counting + threading pass over the ranked database.
check::HStructView DebugRootHStruct(const RankedDb& ranked, const FList& flist,
                                    uint64_t min_support);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_HMINE_H_
