// Horizontal transaction database in CSR (offsets + flat item array) layout.

#ifndef GOGREEN_FPM_TRANSACTION_DB_H_
#define GOGREEN_FPM_TRANSACTION_DB_H_

#include <cstdint>
#include <vector>

#include "fpm/item.h"
#include "util/status.h"

namespace gogreen::fpm {

/// Identifier of a transaction (its position in the database).
using Tid = uint32_t;

/// An in-memory transaction database. Each transaction is a set of items
/// stored in canonical (ascending, deduplicated) order. The flat CSR layout
/// keeps scans cache-friendly for the projection-heavy miners.
class TransactionDb {
 public:
  TransactionDb() = default;

  TransactionDb(const TransactionDb&) = default;
  TransactionDb& operator=(const TransactionDb&) = default;
  TransactionDb(TransactionDb&&) = default;
  TransactionDb& operator=(TransactionDb&&) = default;

  /// Appends a transaction. Items are canonicalized (sorted, deduplicated);
  /// an empty transaction is stored as-is (it simply never supports any
  /// pattern).
  void AddTransaction(std::vector<ItemId> items);

  /// Appends a transaction whose items are already sorted ascending with no
  /// duplicates (checked in debug builds). Avoids a sort on bulk loads.
  void AddCanonicalTransaction(ItemSpan items);

  size_t NumTransactions() const { return offsets_.size() - 1; }

  /// Total number of item occurrences across all transactions.
  size_t TotalItems() const { return items_.size(); }

  /// Average transaction length (0 for an empty database).
  double AvgLength() const {
    return offsets_.size() <= 1
               ? 0.0
               : static_cast<double>(items_.size()) /
                     static_cast<double>(NumTransactions());
  }

  /// One-past-the-largest item id seen (i.e., a safe dense-array size).
  /// 0 for an empty database.
  size_t ItemUniverseSize() const { return item_universe_; }

  /// Number of distinct items that occur at least once.
  size_t NumDistinctItems() const;

  /// View of transaction `t`'s items.
  ItemSpan Transaction(Tid t) const {
    return ItemSpan(items_.data() + offsets_[t], offsets_[t + 1] - offsets_[t]);
  }

  /// Support count of every item: result[i] = number of transactions
  /// containing item i; the vector has ItemUniverseSize() entries.
  std::vector<uint64_t> CountItemSupports() const;

  /// Exact support of an arbitrary (canonical) itemset, by full scan.
  /// Intended for tests and oracles, not for hot paths.
  uint64_t CountSupport(ItemSpan items) const;

  /// Approximate heap footprint in bytes.
  size_t MemoryUsage() const {
    return items_.capacity() * sizeof(ItemId) +
           offsets_.capacity() * sizeof(uint64_t);
  }

  /// Pre-reserves space for `num_transactions` transactions totalling
  /// `num_items` item occurrences.
  void Reserve(size_t num_transactions, size_t num_items);

 private:
  std::vector<ItemId> items_;
  std::vector<uint64_t> offsets_{0};
  size_t item_universe_ = 0;
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_TRANSACTION_DB_H_
