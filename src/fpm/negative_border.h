// Negative-border incremental mining — the classic technique family the
// paper argues against in Section 6 (FUP / Thomas et al. / ULI). Kept as a
// comparison baseline for the recycling approach: it maintains, alongside
// the frequent set, the *negative border* (counted-but-infrequent minimal
// candidates) so that inserts can often be absorbed by re-counting only the
// delta. Its documented weaknesses — border storage cost and expensive
// full-database expansion whenever a border itemset gets promoted — are
// exactly what the recycling approach avoids; bench/ablation_incremental
// measures both sides.

#ifndef GOGREEN_FPM_NEGATIVE_BORDER_H_
#define GOGREEN_FPM_NEGATIVE_BORDER_H_

#include <cstdint>

#include "fpm/pattern_set.h"
#include "fpm/transaction_db.h"
#include "util/status.h"

namespace gogreen::fpm {

/// Maintains the complete frequent set of a growing database at a *relative*
/// support threshold, via negative-border bookkeeping. Insert-only (the
/// classic formulations handle deletions poorly — one of the weaknesses the
/// paper lists; use the recycling IncrementalSession for general changes).
class NegativeBorderMiner {
 public:
  /// `min_fraction` in (0, 1]: the threshold tracks the growing |DB|.
  explicit NegativeBorderMiner(double min_fraction);

  /// Mines `db` from scratch, recording both the frequent set and the
  /// negative border. Must be called once before Insert/Frequent.
  Status Initialize(const TransactionDb& db);

  /// Absorbs a batch of new transactions: counts the batch against the
  /// frequent set and the border, promotes border itemsets that became
  /// frequent, and — the expensive case — expands candidates over the
  /// *entire accumulated database* when promotions occur.
  Status Insert(const TransactionDb& batch);

  /// The complete frequent set of everything inserted so far.
  const PatternSet& Frequent() const { return frequent_; }

  /// Current negative-border size (the storage overhead the paper calls
  /// out).
  size_t BorderSize() const { return border_.size(); }

  size_t NumTransactions() const { return db_.NumTransactions(); }

  /// Counters for the comparison bench.
  struct Stats {
    uint64_t full_db_expansions = 0;  ///< Inserts that forced full recounts.
    uint64_t candidates_counted = 0;  ///< Itemsets counted over the full DB.
  };
  const Stats& stats() const { return stats_; }

 private:
  uint64_t Threshold() const;

  /// Level-wise expansion seeded by the current frequent set: generates
  /// candidates, counts the uncounted ones over the full database, and
  /// splits them into frequent / border until closure.
  Status Expand();

  double min_fraction_;
  bool initialized_ = false;
  TransactionDb db_;      // Accumulated database (the storage cost).
  PatternSet frequent_;   // Canonically sorted.
  PatternSet border_;     // Minimal infrequent candidates, with supports.
  Stats stats_;
};

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_NEGATIVE_BORDER_H_
