#include "fpm/summarize.h"

#include <algorithm>
#include <unordered_map>

#include "fpm/pattern.h"

namespace gogreen::fpm {

namespace {

/// Inverted index item -> indices of patterns containing it. Superset
/// queries probe the pattern's rarest item's list.
class SupersetIndex {
 public:
  explicit SupersetIndex(const PatternSet& fp) : fp_(fp) {
    for (size_t i = 0; i < fp.size(); ++i) {
      for (ItemId it : fp[i].items) lists_[it].push_back(i);
    }
  }

  /// True if some pattern in the set is a proper superset of fp_[i]
  /// satisfying `pred`.
  template <typename Pred>
  bool HasProperSuperset(size_t i, Pred&& pred) const {
    const Pattern& p = fp_[i];
    // Probe the shortest list among the pattern's items.
    const std::vector<size_t>* best = nullptr;
    for (ItemId it : p.items) {
      const auto found = lists_.find(it);
      if (found == lists_.end()) return false;  // Cannot happen for members.
      if (best == nullptr || found->second.size() < best->size()) {
        best = &found->second;
      }
    }
    if (best == nullptr) return false;
    for (size_t c : *best) {
      if (c == i || fp_[c].size() <= p.size()) continue;
      if (!pred(fp_[c])) continue;
      if (IsSubsetSorted(ItemSpan(p.items), ItemSpan(fp_[c].items))) {
        return true;
      }
    }
    return false;
  }

 private:
  const PatternSet& fp_;
  std::unordered_map<ItemId, std::vector<size_t>> lists_;
};

}  // namespace

PatternSet ClosedPatterns(const PatternSet& fp) {
  const SupersetIndex index(fp);
  PatternSet out;
  for (size_t i = 0; i < fp.size(); ++i) {
    const uint64_t support = fp[i].support;
    if (!index.HasProperSuperset(i, [support](const Pattern& cand) {
          return cand.support == support;
        })) {
      out.Add(fp[i]);
    }
  }
  return out;
}

PatternSet MaximalPatterns(const PatternSet& fp) {
  const SupersetIndex index(fp);
  PatternSet out;
  for (size_t i = 0; i < fp.size(); ++i) {
    if (!index.HasProperSuperset(i, [](const Pattern&) { return true; })) {
      out.Add(fp[i]);
    }
  }
  return out;
}

PatternSetSummary Summarize(const PatternSet& fp) {
  PatternSetSummary s;
  s.count = fp.size();
  if (fp.empty()) return s;
  s.min_support = UINT64_MAX;
  uint64_t total_len = 0;
  for (const Pattern& p : fp) {
    s.max_length = std::max(s.max_length, p.size());
    s.max_support = std::max(s.max_support, p.support);
    s.min_support = std::min(s.min_support, p.support);
    total_len += p.size();
  }
  s.avg_length = static_cast<double>(total_len) / static_cast<double>(s.count);
  s.length_histogram.assign(s.max_length + 1, 0);
  for (const Pattern& p : fp) ++s.length_histogram[p.size()];
  return s;
}

std::string PatternSetSummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%llu patterns, len avg %.2f max %zu, support [%llu, %llu]",
                static_cast<unsigned long long>(count), avg_length,
                max_length, static_cast<unsigned long long>(min_support),
                static_cast<unsigned long long>(max_support));
  std::string out = buf;
  if (!length_histogram.empty()) {
    out += ", by length:";
    for (size_t k = 1; k < length_histogram.size(); ++k) {
      // Appended piecewise: `" " + std::to_string(k) + ...` trips a GCC 12
      // -Wrestrict false positive through the inlined string operator+.
      out += ' ';
      out += std::to_string(k);
      out += ':';
      out += std::to_string(length_histogram[k]);
    }
  }
  return out;
}

}  // namespace gogreen::fpm
