#include "fpm/pattern_trie.h"

#include <algorithm>

#include "util/logging.h"

namespace gogreen::fpm {

PatternTrie::PatternTrie() { nodes_.emplace_back(); }

PatternTrie::NodeId PatternTrie::ChildOf(NodeId n, ItemId item) const {
  const Node& node = nodes_[n];
  auto it = std::lower_bound(node.child_items.begin(), node.child_items.end(),
                             item);
  if (it == node.child_items.end() || *it != item) return kNoNode;
  return node.child_nodes[static_cast<size_t>(it - node.child_items.begin())];
}

PatternTrie::NodeId PatternTrie::ChildOrAdd(NodeId n, ItemId item) {
  const NodeId existing = ChildOf(n, item);
  if (existing != kNoNode) return existing;
  const NodeId child = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  nodes_.back().item = item;
  Node& node = nodes_[n];  // Re-fetch: emplace_back may have reallocated.
  auto it = std::lower_bound(node.child_items.begin(), node.child_items.end(),
                             item);
  const size_t pos = static_cast<size_t>(it - node.child_items.begin());
  node.child_items.insert(node.child_items.begin() +
                              static_cast<ptrdiff_t>(pos), item);
  node.child_nodes.insert(node.child_nodes.begin() +
                              static_cast<ptrdiff_t>(pos), child);
  return child;
}

PatternTrie::NodeId PatternTrie::Insert(ItemSpan items, int64_t tag) {
  GOGREEN_DCHECK(!items.empty());
  NodeId n = 0;
  for (ItemId it : items) n = ChildOrAdd(n, it);
  if (!nodes_[n].terminal) {
    nodes_[n].terminal = true;
    nodes_[n].tag = tag;
    ++num_terminals_;
  }
  return n;
}

PatternTrie::NodeId PatternTrie::Find(ItemSpan items) const {
  NodeId n = 0;
  for (ItemId it : items) {
    n = ChildOf(n, it);
    if (n == kNoNode) return kNoNode;
  }
  return nodes_[n].terminal ? n : kNoNode;
}

void PatternTrie::AddSupportForTransaction(ItemSpan t, uint64_t weight) {
  CountRec(0, t, weight);
}

void PatternTrie::CountRec(NodeId n, ItemSpan t, uint64_t weight) {
  if (nodes_[n].terminal) nodes_[n].count += weight;
  const Node& node = nodes_[n];
  if (node.child_items.empty() || t.empty()) return;
  // Merge walk: children and transaction are both item-sorted.
  size_t ci = 0;
  size_t ti = 0;
  while (ci < node.child_items.size() && ti < t.size()) {
    if (node.child_items[ci] < t[ti]) {
      ++ci;
    } else if (node.child_items[ci] > t[ti]) {
      ++ti;
    } else {
      CountRec(node.child_nodes[ci], t.subspan(ti + 1), weight);
      ++ci;
      ++ti;
    }
  }
}

void PatternTrie::ForEachPattern(
    const std::function<void(const std::vector<ItemId>&, uint64_t, int64_t)>&
        fn) const {
  std::vector<ItemId> stack;
  ForEachRec(0, &stack, fn);
}

void PatternTrie::ForEachRec(
    NodeId n, std::vector<ItemId>* stack,
    const std::function<void(const std::vector<ItemId>&, uint64_t, int64_t)>&
        fn) const {
  const Node& node = nodes_[n];
  if (node.terminal) fn(*stack, node.count, node.tag);
  for (size_t i = 0; i < node.child_items.size(); ++i) {
    stack->push_back(node.child_items[i]);
    ForEachRec(node.child_nodes[i], stack, fn);
    stack->pop_back();
  }
}

void PatternTrie::Clear() {
  nodes_.clear();
  nodes_.emplace_back();
  num_terminals_ = 0;
}

}  // namespace gogreen::fpm
