// Disk-backed parallel projection for memory-limited mining (Section 5.3).
//
// When the in-memory structures would exceed the memory budget, the ranked
// database is partitioned on disk: every transaction is written to the
// spill file of *each* frequent item it contains (parallel projection, the
// variant the paper adopts over partition-based projection), projected to
// the item's suffix. Each partition is then mined independently — loading
// it whole if it fits the budget, or recursively partitioning it again.
//
// Lock-discipline audit (DESIGN.md §15): lock-free by construction — the
// spill files are run-private (unique spill ids from one atomic counter)
// and each partition is owned by a single mining pass, so there is no
// shared mutable state to guard. Checked by the thread-safety build.

#ifndef GOGREEN_FPM_PARTITION_H_
#define GOGREEN_FPM_PARTITION_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fpm/flist.h"
#include "fpm/miner.h"
#include "util/status.h"

namespace gogreen::fpm {

/// Estimated bytes of the in-memory H-Mine structures for a projected
/// database of `total_items` rank occurrences in `num_rows` rows over a
/// `flist_items`-item F-list. The model mirrors what the implementation
/// actually allocates: the CSR row storage, the suffix queues (one entry
/// per occurrence at the deepest level), and the per-item header scratch.
size_t EstimateHMineMemory(size_t total_items, size_t num_rows,
                           size_t flist_items);

/// Writes rank-encoded rows into one spill file per rank.
/// Format per record: uint32 length followed by that many uint32 ranks.
class SpillWriter {
 public:
  /// Files are created lazily as `dir`/`stem`.<rank>.spill.
  SpillWriter(std::string dir, std::string stem, size_t num_ranks);
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Appends one row to rank r's partition.
  Status Append(Rank r, std::span<const Rank> row);

  /// Flushes and closes all partitions. Must be called before reading.
  Status Finish();

  /// Path of rank r's partition (may not exist if nothing was appended).
  std::string PathOf(Rank r) const;

  /// Ranks that received at least one row.
  const std::vector<Rank>& used_ranks() const { return used_; }

  /// Deletes all created files.
  void Cleanup();

 private:
  std::string dir_;
  std::string stem_;
  std::vector<std::FILE*> files_;
  std::vector<Rank> used_;
};

/// Loads a whole spill partition. Returns an empty vector for a missing
/// file (a rank that never received rows).
Result<std::vector<std::vector<Rank>>> ReadSpill(const std::string& path);

/// Memory-limited H-Mine (Section 5.3): behaves exactly like HMineMiner but
/// keeps its in-memory structures under `memory_limit` bytes by spilling
/// first-level projections to `temp_dir` and mining them one at a time
/// (recursively partitioning any that still exceed the budget).
Result<PatternSet> MineHMineMemoryLimited(const TransactionDb& db,
                                          uint64_t min_support,
                                          size_t memory_limit,
                                          const std::string& temp_dir,
                                          MiningStats* stats = nullptr);

}  // namespace gogreen::fpm

#endif  // GOGREEN_FPM_PARTITION_H_
