// ValidateCompressedDb — split from check.h so fpm-layer code can include
// the miner-side validators without pulling in core/ headers.

#ifndef GOGREEN_CHECK_CHECK_DB_H_
#define GOGREEN_CHECK_CHECK_DB_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "check/check.h"
#include "core/compressed_db.h"
#include "fpm/item.h"
#include "fpm/transaction_db.h"
#include "util/status.h"

namespace gogreen::check {

namespace internal {

inline bool Canonical(fpm::ItemSpan items) {
  for (size_t i = 1; i < items.size(); ++i) {
    if (items[i - 1] >= items[i]) return false;
  }
  return true;
}

/// Merges two canonical spans; returns false on a shared item (the
/// pattern/outlying disjointness violation).
inline bool MergeDisjoint(fpm::ItemSpan a, fpm::ItemSpan b,
                          std::vector<fpm::ItemId>* out) {
  out->clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return false;
    out->push_back(a[i] < b[j] ? a[i++] : b[j++]);
  }
  out->insert(out->end(), a.begin() + i, a.end());
  out->insert(out->end(), b.begin() + j, b.end());
  return true;
}

}  // namespace internal

/// Compressed-database invariants (Table 2): every group pattern and every
/// member's outlying items are canonical, within the item universe, and
/// disjoint; the group member counts sum to |DB|; member tids form a
/// permutation. With `original` supplied the cover is additionally checked
/// lossless member by member: pattern ∪ outlying == original tuple.
inline Status ValidateCompressedDb(const core::CompressedDb& cdb,
                                   const fpm::TransactionDb* original) {
  if (original != nullptr && cdb.NumTuples() != original->NumTransactions()) {
    return internal::Violation(
        "compressed-db", "holds " + std::to_string(cdb.NumTuples()) +
                             " tuples but the original database has " +
                             std::to_string(original->NumTransactions()));
  }
  std::vector<bool> tid_seen(cdb.NumTuples(), false);
  std::vector<fpm::ItemId> merged;
  uint64_t count_sum = 0;
  for (core::GroupId g = 0; g < cdb.NumGroups(); ++g) {
    const fpm::ItemSpan pattern = cdb.PatternOf(g);
    if (!internal::Canonical(pattern)) {
      return internal::Violation(
          "compressed-db",
          "group " + std::to_string(g) + " pattern is not canonical");
    }
    if (!pattern.empty() && pattern.back() >= cdb.ItemUniverseSize()) {
      return internal::Violation(
          "compressed-db", "group " + std::to_string(g) +
                               " pattern exceeds the item universe");
    }
    count_sum += cdb.Group(g).count;
    for (uint64_t m = cdb.MemberBegin(g); m < cdb.MemberEnd(g); ++m) {
      const fpm::ItemSpan outlying = cdb.Outlying(m);
      if (!internal::Canonical(outlying)) {
        return internal::Violation(
            "compressed-db",
            "member " + std::to_string(m) + " outlying items not canonical");
      }
      if (!outlying.empty() && outlying.back() >= cdb.ItemUniverseSize()) {
        return internal::Violation(
            "compressed-db", "member " + std::to_string(m) +
                                 " outlying items exceed the item universe");
      }
      if (!internal::MergeDisjoint(pattern, outlying, &merged)) {
        return internal::Violation(
            "compressed-db", "member " + std::to_string(m) +
                                 " outlying items overlap the pattern of "
                                 "group " +
                                 std::to_string(g));
      }
      const fpm::Tid tid = cdb.MemberTid(m);
      if (tid >= cdb.NumTuples() || tid_seen[tid]) {
        return internal::Violation(
            "compressed-db", "member tids are not a permutation (tid " +
                                 std::to_string(tid) + " at member " +
                                 std::to_string(m) + ")");
      }
      tid_seen[tid] = true;
      if (original != nullptr) {
        const fpm::ItemSpan tuple = original->Transaction(tid);
        if (!std::equal(merged.begin(), merged.end(), tuple.begin(),
                        tuple.end())) {
          return internal::Violation(
              "compressed-db", "cover of tid " + std::to_string(tid) +
                                   " is lossy: pattern ∪ outlying differs "
                                   "from the original tuple");
        }
      }
    }
  }
  if (count_sum != cdb.NumTuples()) {
    return internal::Violation(
        "compressed-db", "group counts sum to " + std::to_string(count_sum) +
                             " but the database holds " +
                             std::to_string(cdb.NumTuples()) + " tuples");
  }
  return Status::OK();
}

}  // namespace gogreen::check

#endif  // GOGREEN_CHECK_CHECK_DB_H_
