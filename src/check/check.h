// Debug-build structural validators for the paper's core invariants.
//
// The recycling pipeline's correctness rests on structural properties the
// paper states but the hot paths must not re-verify on every operation:
// F-list order (Definition 3.1), H-struct hyperlink consistency, FP-tree
// header/node-link consistency and count monotonicity, lossless group cover
// of the compressed database (tuple = pattern ∪ outlying), and run-governor
// byte accounting. The validators here check those properties exhaustively
// — O(structure size) or worse — so they are *off by default* and gated at
// runtime by the GOGREEN_VALIDATE environment variable (see
// ValidationEnabled). The miners and the compressor call them through
// GOGREEN_VALIDATE_OR_DIE at structure-construction seams; tests call them
// directly and assert on the returned Status.
//
// Validators report, they do not repair: each returns OK or an Internal
// status naming the first violated invariant. Everything here is
// header-inline and uses only the public read API of the structures it
// checks, so the module adds no link-time dependency edges.

#ifndef GOGREEN_CHECK_CHECK_H_
#define GOGREEN_CHECK_CHECK_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fpm/flist.h"
#include "fpm/item.h"
#include "fpm/transaction_db.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/run_context.h"
#include "util/status.h"

namespace gogreen::check {

/// True when GOGREEN_VALIDATE is set to 1/true/on/yes (read once). While
/// enabled, the miners and the compressor validate their structures as they
/// build them and abort on a violation; disabled (the default) the hooks
/// cost one branch on a cached bool.
inline bool ValidationEnabled() {
  static const bool enabled = [] {
    const std::string v = GetEnvOrEmpty("GOGREEN_VALIDATE");
    return v == "1" || v == "true" || v == "on" || v == "yes";
  }();
  return enabled;
}

namespace internal {
inline Status Violation(const char* structure, const std::string& detail) {
  return Status::Internal(std::string(structure) + " invariant violated: " +
                          detail);
}
}  // namespace internal

/// Definition 3.1: the F-list orders frequent items by ascending support,
/// ties broken by ascending item id, every support >= min_support, and the
/// item->rank map is the inverse of the rank->item map.
inline Status ValidateFList(const fpm::FList& flist, uint64_t min_support) {
  for (fpm::Rank r = 0; r < flist.size(); ++r) {
    if (flist.support(r) < min_support) {
      return internal::Violation(
          "f-list", "rank " + std::to_string(r) + " has support " +
                        std::to_string(flist.support(r)) +
                        " < min_support " + std::to_string(min_support));
    }
    if (flist.rank(flist.item(r)) != r) {
      return internal::Violation(
          "f-list", "rank map is not the inverse of the item map at rank " +
                        std::to_string(r));
    }
    if (r + 1 < flist.size()) {
      const bool ordered =
          flist.support(r) < flist.support(r + 1) ||
          (flist.support(r) == flist.support(r + 1) &&
           flist.item(r) < flist.item(r + 1));
      if (!ordered) {
        return internal::Violation(
            "f-list", "ranks " + std::to_string(r) + "," +
                          std::to_string(r + 1) +
                          " break the ascending (support, item) order");
      }
    }
  }
  return Status::OK();
}

/// One hyperlink of an H-struct level: the suffix of transaction `tid`
/// starting at position `pos` of its rank-encoded row. `pos - 1` is the
/// occurrence of the level's extension item, so pos >= 1 always.
struct HLink {
  fpm::Tid tid;
  uint32_t pos;
};

/// One expanded level of an H-struct (header table + hyperlink queues):
/// `frequent[i]` is the i-th frequent extension rank, `counts[i]` its
/// support, `buckets[i]` its hyperlink chain. `num_ranks` bounds the rank
/// space (F-list size).
struct HStructView {
  std::vector<fpm::Rank> frequent;
  std::vector<uint64_t> counts;
  std::vector<std::vector<HLink>> buckets;
  size_t num_ranks = 0;
};

/// Row accessor: the rank-encoded (ascending) row of a transaction.
using RowFn = std::function<std::span<const fpm::Rank>(fpm::Tid)>;

/// H-Mine header/hyperlink consistency: extensions ascending and in range,
/// supports >= min_support, each bucket holds exactly `counts[i]` links in
/// strictly increasing tid order, and every link points one-past an
/// occurrence of its extension rank in the underlying row.
inline Status ValidateHStruct(const HStructView& h, const RowFn& row,
                              uint64_t min_support) {
  if (h.counts.size() != h.frequent.size() ||
      h.buckets.size() != h.frequent.size()) {
    return internal::Violation("h-struct",
                               "header arrays have mismatched sizes");
  }
  for (size_t i = 0; i < h.frequent.size(); ++i) {
    const fpm::Rank r = h.frequent[i];
    if (r >= h.num_ranks) {
      return internal::Violation(
          "h-struct", "extension rank " + std::to_string(r) +
                          " outside the rank space of size " +
                          std::to_string(h.num_ranks));
    }
    if (i > 0 && h.frequent[i - 1] >= r) {
      return internal::Violation("h-struct",
                                 "extension ranks are not strictly ascending");
    }
    if (h.counts[i] < min_support) {
      return internal::Violation(
          "h-struct", "extension rank " + std::to_string(r) +
                          " kept with support " + std::to_string(h.counts[i]) +
                          " < min_support " + std::to_string(min_support));
    }
    if (h.buckets[i].size() != h.counts[i]) {
      return internal::Violation(
          "h-struct", "hyperlink chain of rank " + std::to_string(r) +
                          " has " + std::to_string(h.buckets[i].size()) +
                          " links but support " + std::to_string(h.counts[i]));
    }
    for (size_t k = 0; k < h.buckets[i].size(); ++k) {
      const HLink& link = h.buckets[i][k];
      if (k > 0 && h.buckets[i][k - 1].tid >= link.tid) {
        return internal::Violation(
            "h-struct", "hyperlink chain of rank " + std::to_string(r) +
                            " is not in strictly increasing tid order");
      }
      const std::span<const fpm::Rank> tr = row(link.tid);
      if (link.pos < 1 || link.pos > tr.size() || tr[link.pos - 1] != r) {
        return internal::Violation(
            "h-struct", "hyperlink of rank " + std::to_string(r) +
                            " into tid " + std::to_string(link.tid) +
                            " does not point past an occurrence of the rank");
      }
    }
  }
  return Status::OK();
}

/// Parent-linked image of an FP-tree: `nodes[0]` is the root (rank kNoRank,
/// parent -1); every other node's parent precedes it in the vector.
/// `header[r]` lists the node ids threaded on rank r's header chain, in
/// chain order; `header_counts[r]` is the header table's support for r.
struct FpTreeView {
  struct Node {
    fpm::Rank rank;
    uint64_t count;
    int64_t parent;
  };
  std::vector<Node> nodes;
  std::vector<std::vector<uint32_t>> header;
  std::vector<uint64_t> header_counts;
};

/// FP-tree header-table/node-link consistency and count monotonicity: paths
/// carry strictly descending ranks from the root, a node's count bounds the
/// sum of its children's counts, every non-root node is threaded on exactly
/// the header chain of its rank, and each chain's total equals the header
/// count (>= min_support for non-empty chains).
inline Status ValidateFpTree(const FpTreeView& t, uint64_t min_support) {
  if (t.nodes.empty()) return Status::OK();  // No tree (no frequent items).
  if (t.header.size() != t.header_counts.size()) {
    return internal::Violation("fp-tree",
                               "header arrays have mismatched sizes");
  }
  const FpTreeView::Node& root = t.nodes[0];
  if (root.rank != fpm::kNoRank || root.parent != -1) {
    return internal::Violation("fp-tree", "nodes[0] is not a root node");
  }
  std::vector<uint64_t> child_sum(t.nodes.size(), 0);
  for (size_t i = 1; i < t.nodes.size(); ++i) {
    const FpTreeView::Node& n = t.nodes[i];
    if (n.parent < 0 || static_cast<size_t>(n.parent) >= i) {
      return internal::Violation(
          "fp-tree", "node " + std::to_string(i) +
                         " has parent outside the preceding nodes");
    }
    if (n.rank >= t.header.size()) {
      return internal::Violation(
          "fp-tree", "node " + std::to_string(i) + " has rank " +
                         std::to_string(n.rank) +
                         " outside the local rank space");
    }
    const FpTreeView::Node& parent = t.nodes[static_cast<size_t>(n.parent)];
    if (parent.rank != fpm::kNoRank && n.rank >= parent.rank) {
      return internal::Violation(
          "fp-tree", "node " + std::to_string(i) +
                         " breaks the descending rank order along its path");
    }
    if (n.count == 0) {
      return internal::Violation(
          "fp-tree", "node " + std::to_string(i) + " has zero count");
    }
    child_sum[static_cast<size_t>(n.parent)] += n.count;
  }
  for (size_t i = 1; i < t.nodes.size(); ++i) {
    if (child_sum[i] > t.nodes[i].count) {
      return internal::Violation(
          "fp-tree", "children of node " + std::to_string(i) +
                         " sum to " + std::to_string(child_sum[i]) +
                         " > the node's count " +
                         std::to_string(t.nodes[i].count));
    }
  }
  // Header chains: chain r covers exactly the rank-r nodes, once each.
  std::vector<bool> threaded(t.nodes.size(), false);
  for (fpm::Rank r = 0; r < t.header.size(); ++r) {
    uint64_t chain_count = 0;
    for (const uint32_t id : t.header[r]) {
      if (id == 0 || id >= t.nodes.size()) {
        return internal::Violation(
            "fp-tree", "header chain of rank " + std::to_string(r) +
                           " links node id " + std::to_string(id) +
                           " outside the tree");
      }
      if (t.nodes[id].rank != r) {
        return internal::Violation(
            "fp-tree", "header chain of rank " + std::to_string(r) +
                           " threads a node of rank " +
                           std::to_string(t.nodes[id].rank));
      }
      if (threaded[id]) {
        return internal::Violation(
            "fp-tree", "node " + std::to_string(id) +
                           " is threaded on more than one header chain");
      }
      threaded[id] = true;
      chain_count += t.nodes[id].count;
    }
    if (chain_count != t.header_counts[r]) {
      return internal::Violation(
          "fp-tree", "header count of rank " + std::to_string(r) + " is " +
                         std::to_string(t.header_counts[r]) +
                         " but its chain sums to " +
                         std::to_string(chain_count));
    }
    if (!t.header[r].empty() && t.header_counts[r] < min_support) {
      return internal::Violation(
          "fp-tree", "rank " + std::to_string(r) +
                         " kept in the tree with header count " +
                         std::to_string(t.header_counts[r]) +
                         " < min_support " + std::to_string(min_support));
    }
  }
  for (size_t i = 1; i < t.nodes.size(); ++i) {
    if (!threaded[i]) {
      return internal::Violation(
          "fp-tree", "node " + std::to_string(i) +
                         " is missing from its rank's header chain");
    }
  }
  return Status::OK();
}

/// Run-governor byte accounting at a scope boundary: every cooperatively
/// charged byte has been released (no leaked ScopedBytes, no unbalanced
/// ReleaseBytes underflow), and the incompleteness bookkeeping is
/// consistent — a run marked incomplete must have tripped a stop reason and
/// recorded a frontier.
inline Status ValidateRunContext(const RunContext& ctx) {
  if (ctx.bytes_in_use() != 0) {
    return internal::Violation(
        "run-context", std::to_string(ctx.bytes_in_use()) +
                           " charged bytes not released at scope exit");
  }
  if (ctx.incomplete()) {
    if (!ctx.stopped()) {
      return internal::Violation(
          "run-context", "marked incomplete without a tripped stop reason");
    }
    if (ctx.frontier_support() == 0) {
      return internal::Violation(
          "run-context", "marked incomplete without a frontier support");
    }
  }
  return Status::OK();
}

}  // namespace gogreen::check

/// Call-site hook for the miners and the compressor: evaluates the
/// validator expression only while GOGREEN_VALIDATE is on, and aborts with
/// the violation message when the validator reports corruption (a corrupt
/// structure would otherwise poison results silently).
#define GOGREEN_VALIDATE_OR_DIE(expr)                                     \
  do {                                                                    \
    if (::gogreen::check::ValidationEnabled()) {                          \
      const ::gogreen::Status _validate_st = (expr);                      \
      GOGREEN_CHECK(_validate_st.ok()) << _validate_st.ToString();        \
    }                                                                     \
  } while (false)

#endif  // GOGREEN_CHECK_CHECK_H_
