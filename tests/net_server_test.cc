// End-to-end tests of the gogreen daemon (net/server.h): the in-process
// session and a real client driving the same script over a unix socket
// must produce identical stores and identical structural output
// (differential test); malformed traffic must never crash the server and
// must close or keep the connection exactly per the frame codec's
// contract; concurrent identical clients must coalesce onto one mine;
// graceful shutdown must drain in-flight leaders.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/mining_service.h"
#include "serve/session.h"
#include "serve/wire_service.h"
#include "tests/test_util.h"
#include "util/env.h"

namespace gogreen {
namespace {

using fpm::TransactionDb;
using net::Client;
using net::Server;
using net::ServerOptions;
using net::Verb;
using net::WireRequest;
using net::WireResponse;
using testutil::RandomDb;

/// A served fixture: service (fresh store) + daemon on a unix socket.
/// Declaration order matters: the server must die (draining connections)
/// before the socket's directory is removed.
struct Daemon {
  ScopedTempDir dir;
  std::unique_ptr<serve::MiningService> service;
  std::unique_ptr<Server> server;
  std::string socket_path;
};

Daemon StartDaemon(const TransactionDb& db, uint64_t hold_ms = 0) {
  auto dir = ScopedTempDir::Create(TempDir(), "gg_net_");
  EXPECT_TRUE(dir.ok()) << dir.status().ToString();
  Daemon d{std::move(dir.value()), nullptr, nullptr, ""};
  d.socket_path = d.dir.path() + "/gg.sock";
  d.service = std::make_unique<serve::MiningService>(db, "net-test");
  ServerOptions options;
  options.unix_path = d.socket_path;
  options.mine_hold_ms = hold_ms;
  d.server = std::make_unique<Server>(*d.service, nullptr, options);
  const Status started = d.server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return d;
}

/// Raw unix-socket connection for sending deliberately bad bytes.
int ConnectRaw(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  return fd;
}

WireRequest MineRequestAt(double support) {
  WireRequest request;
  request.verb = Verb::kMine;
  request.support = support;
  return request;
}

/// Blanks the per-run volatile fields of a session transcript — timings,
/// the process-global request-id counter, and the governor's byte
/// high-water — so two runs of identical work compare equal on every
/// structural field (route, seed, patterns, outcome, tenant, ...).
std::string Normalize(const std::string& text) {
  static const char* kVolatile[] = {"seconds=", "compress_seconds=",
                                    "request=", "bytes_peak="};
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string word;
    bool first = true;
    while (words >> word) {
      for (const char* prefix : kVolatile) {
        if (word.rfind(prefix, 0) == 0) word = std::string(prefix) + "_";
      }
      out << (first ? "" : " ") << word;
      first = false;
    }
    out << "\n";
  }
  return out.str();
}

TEST(NetServerTest, PingOverUnixSocketAndTcp) {
  const TransactionDb db = RandomDb(11, 100, 20, 4.0);
  Daemon d = StartDaemon(db);

  auto client = Client::ConnectUnix(d.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  WireRequest ping;
  ping.verb = Verb::kPing;
  auto resp = client->Call(ping);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->outcome, Outcome::kOk);
  d.server->Stop();

  // Same service, TCP flavor (kernel-assigned loopback port).
  serve::MiningService service(db, "net-test-tcp");
  ServerOptions tcp;
  tcp.tcp_port = 0;
  Server server(service, nullptr, tcp);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  auto tcp_client = Client::ConnectTcp(server.port());
  ASSERT_TRUE(tcp_client.ok()) << tcp_client.status().ToString();
  resp = tcp_client->Call(ping);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->outcome, Outcome::kOk);
  server.Stop();
}

// The tentpole's differential guarantee: the session REPL (in-process
// executor) and a remote client (socket executor) run the same script
// against identical services and must produce the same pattern store and
// the same structural transcript — the wire layer adds transport, not
// behavior.
TEST(NetServerTest, ClientMatchesInProcessSession) {
  const TransactionDb db = RandomDb(29, 400, 40, 6.0);
  const std::string script =
      "mine 40\n"
      "mine 25\n"   // recycle from 40
      "mine 30\n"   // filter-down from 25
      "mine 25\n"   // exact hit
      "threads 2\n"
      "mine 18\n"
      "stats\n"
      "store\n";

  // In-process session.
  serve::MiningService local(db, "net-test");
  std::istringstream local_in(script);
  std::ostringstream local_out;
  auto local_summary =
      serve::RunSession(local, local_in, local_out, serve::SessionConfig{});
  ASSERT_TRUE(local_summary.ok()) << local_summary.status().ToString();

  // The same script through a daemon.
  Daemon d = StartDaemon(db);
  auto client = Client::ConnectUnix(d.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const serve::WireExecutor executor =
      [&client](const WireRequest& request) {
        return client->Call(request);
      };
  std::istringstream remote_in(script);
  std::ostringstream remote_out;
  auto remote_summary = serve::RunWireSession(
      executor, nullptr, remote_in, remote_out, serve::SessionConfig{});
  ASSERT_TRUE(remote_summary.ok()) << remote_summary.status().ToString();

  EXPECT_EQ(local_summary->commands, remote_summary->commands);
  EXPECT_EQ(local_summary->mines, remote_summary->mines);
  EXPECT_EQ(local_summary->partials, remote_summary->partials);

  // Byte-identical transcripts modulo per-run volatile fields. This
  // covers the mined lines, the stats line (route/seed/patterns/
  // outcome/...), and the store accounting line.
  EXPECT_EQ(Normalize(local_out.str()), Normalize(remote_out.str()));

  // Identical stores: same keys, same pattern sets.
  const serve::StoreStats local_stats = local.store().stats();
  const serve::StoreStats remote_stats = d.service->store().stats();
  EXPECT_EQ(local_stats.entries, remote_stats.entries);
  EXPECT_EQ(local_stats.bytes_in_use, remote_stats.bytes_in_use);
  for (const uint64_t support : {40u, 30u, 25u, 18u}) {
    SCOPED_TRACE(support);
    const serve::StoreKey key{"net-test", "", support};
    const auto local_set = local.store().Get(key);
    const auto remote_set = d.service->store().Get(key);
    ASSERT_NE(local_set, nullptr);
    ASSERT_NE(remote_set, nullptr);
    ASSERT_EQ(local_set->size(), remote_set->size());
    for (size_t i = 0; i < local_set->size(); ++i) {
      ASSERT_EQ((*local_set)[i], (*remote_set)[i]) << "pattern " << i;
    }
  }
  d.server->Stop();
}

TEST(NetServerTest, WellFramedBadPayloadKeepsConnectionAlive) {
  const TransactionDb db = RandomDb(13, 100, 20, 4.0);
  Daemon d = StartDaemon(db);
  const int fd = ConnectRaw(d.socket_path);

  struct Case {
    const char* name;
    const char* payload;
    const char* expect_in_error;
  };
  const std::vector<Case> cases = {
      {"bad JSON", "not json at all", "malformed request"},
      {"unknown field", "{\"v\":1,\"verb\":\"ping\",\"zap\":1}", "zap"},
      {"unknown verb", "{\"v\":1,\"verb\":\"fly\"}", "unknown verb"},
      {"wrong version", "{\"v\":1984,\"verb\":\"ping\"}",
       "unsupported protocol version"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ASSERT_TRUE(net::WriteFrame(fd, c.payload).ok());
    std::string payload;
    auto got = net::ReadFrame(fd, &payload);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got.value());
    auto resp = WireResponse::FromJson(payload);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->outcome, Outcome::kError);
    EXPECT_NE(resp->error.find(c.expect_in_error), std::string::npos)
        << resp->error;
  }

  // The connection survived all of it: a valid request still works.
  WireRequest ping;
  ping.verb = Verb::kPing;
  ping.id = 99;
  ASSERT_TRUE(net::WriteFrame(fd, ping.ToJson()).ok());
  std::string payload;
  auto got = net::ReadFrame(fd, &payload);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value());
  auto resp = WireResponse::FromJson(payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->outcome, Outcome::kOk);
  EXPECT_EQ(resp->id, 99u);
  ::close(fd);
  d.server->Stop();
}

TEST(NetServerTest, MalformedFrameClosesConnectionButNotServer) {
  const TransactionDb db = RandomDb(17, 100, 20, 4.0);
  Daemon d = StartDaemon(db);

  struct Case {
    const char* name;
    std::string bytes;
  };
  const std::vector<Case> cases = {
      {"oversized declared length", std::string("\xFF\xFF\xFF\xFF", 4)},
      {"zero declared length", std::string("\x00\x00\x00\x00", 4)},
      {"NUL in payload",
       std::string("\x00\x00\x00\x03", 4) + std::string("a\0b", 3)},
      {"invalid UTF-8", std::string("\x00\x00\x00\x01", 4) + "\xFF"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const int fd = ConnectRaw(d.socket_path);
    ASSERT_EQ(::send(fd, c.bytes.data(), c.bytes.size(), 0),
              static_cast<ssize_t>(c.bytes.size()));
    // Best-effort error response, then close: we must see EOF after at
    // most one frame, and never hang.
    std::string payload;
    auto got = net::ReadFrame(fd, &payload);
    if (got.ok() && got.value()) {
      auto resp = WireResponse::FromJson(payload);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      EXPECT_EQ(resp->outcome, Outcome::kError);
      got = net::ReadFrame(fd, &payload);
    }
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got.value()) << "connection should be closed";
    ::close(fd);
  }

  // The server is still healthy for well-behaved clients.
  auto client = Client::ConnectUnix(d.socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  WireRequest ping;
  ping.verb = Verb::kPing;
  auto resp = client->Call(ping);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->outcome, Outcome::kOk);
  d.server->Stop();
}

// Two clients asking the identical question while the leader holds must
// rendezvous on one mine: the acceptance criterion's cross-process
// coalescing, here with in-process clients over real sockets.
TEST(NetServerTest, ConcurrentIdenticalClientsCoalesce) {
  const TransactionDb db = RandomDb(43, 400, 40, 6.0);
  Daemon d = StartDaemon(db, /*hold_ms=*/300);

  WireResponse responses[2];
  std::thread clients[2];
  for (int i = 0; i < 2; ++i) {
    clients[i] = std::thread([&d, &responses, i] {
      auto client = Client::ConnectUnix(d.socket_path);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      auto resp = client->Call(MineRequestAt(20));
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      responses[i] = resp.value();
    });
  }
  clients[0].join();
  clients[1].join();
  d.server->Stop();

  int coalesced = 0;
  for (const WireResponse& resp : responses) {
    EXPECT_EQ(resp.outcome, Outcome::kOk);
    EXPECT_GT(resp.patterns, 0u);
    if (resp.coalesced) ++coalesced;
  }
  EXPECT_EQ(coalesced, 1) << "exactly one follower adopts the leader's mine";
  EXPECT_EQ(responses[0].patterns, responses[1].patterns);
}

// Stop() during an in-flight mine: the leader finishes, the response is
// delivered, and only then does the daemon wind down.
TEST(NetServerTest, GracefulShutdownDrainsInFlightMine) {
  const TransactionDb db = RandomDb(59, 400, 40, 6.0);
  Daemon d = StartDaemon(db, /*hold_ms=*/200);

  WireResponse resp;
  std::thread miner([&d, &resp] {
    auto client = Client::ConnectUnix(d.socket_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto got = client->Call(MineRequestAt(20));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    resp = got.value();
  });
  // Let the mine get in flight (the leader is holding 200ms), then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  d.server->Stop();
  miner.join();

  EXPECT_EQ(resp.outcome, Outcome::kOk);
  EXPECT_GT(resp.patterns, 0u);

  // And the daemon really is down.
  EXPECT_FALSE(Client::ConnectUnix(d.socket_path).ok());
}

// Per-connection tenant binding: the `tenant` verb is sticky for the
// connection that sent it and invisible to other connections.
TEST(NetServerTest, TenantBindingIsPerConnection) {
  const TransactionDb db = RandomDb(61, 200, 30, 5.0);
  Daemon d = StartDaemon(db);

  auto bound = Client::ConnectUnix(d.socket_path);
  auto anonymous = Client::ConnectUnix(d.socket_path);
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE(anonymous.ok());

  WireRequest bind;
  bind.verb = Verb::kTenant;
  bind.tenant = "acme";
  auto resp = bound->Call(bind);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->tenant, "acme");

  resp = bound->Call(MineRequestAt(30));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->tenant, "acme");

  resp = anonymous->Call(MineRequestAt(25));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->tenant, "");
  d.server->Stop();
}

}  // namespace
}  // namespace gogreen
