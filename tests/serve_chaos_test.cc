// Chaos harness for admission control and graceful degradation
// (DESIGN.md §14): multi-threaded randomized session scripts run under
// randomized failpoint schedules, admission pressure, and tiny budgets,
// and the invariants must hold anyway:
//
//   - every request terminates with a typed outcome — ok, partial,
//     degraded, shed, or error — with no deadlock and no lost wakeup;
//   - the store byte budget is never exceeded at any sampled instant;
//   - `serve.admitted + serve.shed + serve.errors` reconciles exactly
//     with the number of requests issued;
//   - shed requests return ResourceExhausted with a retry-after hint,
//     fast (they never burn a mining slot);
//   - a tenant's burst cannot reject another tenant's in-quota traffic;
//   - a tripped breaker serves flagged degraded results and recovers
//     after its cool-down.
//
// The CI chaos job replays ChaosRandomizedScriptsTerminateAndReconcile
// under three fixed GOGREEN_FAILPOINTS schedules and pipes the wide-event
// log through tools/obs/validate_request_log.py --concurrent. The file
// must run clean under TSan/ASan/UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "fpm/transaction_db.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "serve/admission.h"
#include "serve/mining_service.h"
#include "serve/pattern_store.h"
#include "tests/test_util.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "util/run_context.h"
#include "util/status.h"

namespace gogreen {
namespace {

using fpm::MineRequest;
using fpm::PatternSet;
using fpm::TransactionDb;
using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::MiningService;
using serve::ServeStats;
using serve::TenantQuota;

uint64_t CounterNow(const char* name) {
  return obs::MetricRegistry::Global().Snapshot().CounterValue(name);
}

/// Serial oracle: a direct storeless mine at `minsup`.
PatternSet DirectMine(const TransactionDb& db, uint64_t minsup) {
  auto miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

bool CanonicallyEqual(const PatternSet& expected, const PatternSet& got) {
  PatternSet a = expected;
  PatternSet b = got;
  return PatternSet::Equal(&a, &b);
}

// Sanitizer runs dilate wall time by an order of magnitude; the "shed is
// fast" bound stays meaningful but must not flake there.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kShedLatencyBoundMs = 250.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
constexpr double kShedLatencyBoundMs = 250.0;
#else
constexpr double kShedLatencyBoundMs = 5.0;
#endif
#else
constexpr double kShedLatencyBoundMs = 5.0;
#endif

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Holds the service's mining path open: the leader-hold seam parks the
/// first mine until released, so tests can pile admission pressure behind
/// exactly one active request.
class SlotHolder {
 public:
  explicit SlotHolder(MiningService& service) : service_(service) {
    service_.SetLeaderHoldForTest([this] {
      entered_.store(true, std::memory_order_release);
      while (!release_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  ~SlotHolder() {
    Release();
    if (runner_.joinable()) runner_.join();
    service_.SetLeaderHoldForTest(nullptr);
  }

  /// Starts a mine through `admission` on a background thread and waits
  /// until it occupies a slot (parked on the hold seam inside the
  /// service).
  void Occupy(AdmissionController& admission, uint64_t minsup) {
    runner_ = std::thread([this, &admission, minsup] {
      ServeStats stats;
      auto result = admission.Mine(MineRequest::At(minsup), &stats);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    });
    while (!entered_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void Release() { release_.store(true, std::memory_order_release); }

 private:
  MiningService& service_;
  std::atomic<bool> entered_{false};
  std::atomic<bool> release_{false};
  std::thread runner_;
};

// A request arriving at a full queue is rejected in-line — before any
// slot, mine, or sleep — with a typed ResourceExhausted carrying the
// retry-after hint both in the status message and in ServeStats.
TEST(ServeChaosTest, ShedFastWithRetryAfterHint) {
  const failpoint::ScopedFailpoints quiet("");
  const TransactionDb db = testutil::RandomDb(/*seed=*/11, 400, 32, 6.0);
  MiningService service(db, "chaos-shed");

  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 0;
  AdmissionController admission(service, options);

  SlotHolder holder(service);
  holder.Occupy(admission, /*minsup=*/120);

  // Slot busy, queue size zero, empty store (nothing to degrade to): the
  // second request must shed immediately.
  const uint64_t shed_before = CounterNow("serve.shed");
  const auto start = std::chrono::steady_clock::now();
  ServeStats stats;
  auto result = admission.Mine(MineRequest::At(80), &stats);
  const double elapsed_ms = MillisSince(start);

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().ToString().find("retry-after-ms="),
            std::string::npos)
      << result.status().ToString();
  EXPECT_TRUE(stats.shed);
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.outcome, "shed");
  EXPECT_GT(stats.retry_after_ms, 0u);
  EXPECT_LT(elapsed_ms, kShedLatencyBoundMs);
  EXPECT_EQ(CounterNow("serve.shed") - shed_before, 1u);

  holder.Release();
}

// A request whose projected queue wait already exceeds its deadline is
// rejected up front instead of parking until the deadline fires.
TEST(ServeChaosTest, QueueWaitExceedingDeadlineShedsImmediately) {
  const failpoint::ScopedFailpoints quiet("");
  const TransactionDb db = testutil::RandomDb(/*seed=*/11, 400, 32, 6.0);
  MiningService service(db, "chaos-deadline");

  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue = 8;  // Room to queue — the estimate must reject anyway.
  AdmissionController admission(service, options);
  // Pretend history says every cost unit takes 10 s: any queued wait
  // projects far past a 50 ms deadline.
  admission.SeedCostEstimateForTest(10.0);

  SlotHolder holder(service);
  holder.Occupy(admission, /*minsup=*/120);

  RunContext ctx;
  ctx.SetDeadlineAfterMillis(50);
  MineRequest request = MineRequest::At(80);
  request.run_context = &ctx;
  const auto start = std::chrono::steady_clock::now();
  ServeStats stats;
  auto result = admission.Mine(request, &stats);
  const double elapsed_ms = MillisSince(start);

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(stats.shed);
  EXPECT_GT(stats.retry_after_ms, 0u);
  EXPECT_EQ(admission.QueueDepthForTest(), 0u);  // It never parked.
  // It must not have waited out the 50 ms deadline in the queue.
  EXPECT_LT(elapsed_ms, kShedLatencyBoundMs);

  holder.Release();
}

// Tenant buckets are independent: tenant A burning through a tiny quota
// sheds only A's requests; in-quota tenant B traffic is never rejected.
TEST(ServeChaosTest, TenantBurstNeverRejectsInQuotaTenant) {
  const failpoint::ScopedFailpoints quiet("");
  const TransactionDb db = testutil::RandomDb(/*seed=*/13, 400, 32, 6.0);
  // A one-byte store: nothing caches, so every request walks the full
  // gate path (no cheap-route bypass) and degradation finds no donor.
  serve::ServiceOptions service_options;
  service_options.store.byte_budget = 1;
  MiningService service(db, "chaos-tenants", service_options);

  AdmissionController admission(service);
  TenantQuota tiny;
  tiny.qps = 1e-6;  // Effectively: the primed token and nothing more.
  tiny.burst = 1.0;
  admission.SetTenantQuota("A", tiny);

  const uint64_t shed_before = CounterNow("serve.shed");
  int a_ok = 0;
  int a_shed = 0;
  for (int i = 0; i < 8; ++i) {
    MineRequest request = MineRequest::At(100 + i);
    request.tenant = "A";
    ServeStats stats;
    auto result = admission.Mine(request, &stats);
    if (result.ok()) {
      ++a_ok;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      EXPECT_TRUE(stats.shed);
      EXPECT_EQ(stats.tenant, "A");
      EXPECT_GT(stats.retry_after_ms, 0u);
      ++a_shed;
    }
    // Interleaved in-quota tenant B request: must always be served.
    MineRequest other = MineRequest::At(100 + i);
    other.tenant = "B";
    ServeStats other_stats;
    auto other_result = admission.Mine(other, &other_stats);
    ASSERT_TRUE(other_result.ok()) << other_result.status().ToString();
    EXPECT_FALSE(other_stats.shed);
    EXPECT_EQ(other_stats.tenant, "B");
  }
  EXPECT_EQ(a_ok, 1);  // The primed token; everything after is over quota.
  EXPECT_EQ(a_shed, 7);
  EXPECT_EQ(CounterNow("serve.shed") - shed_before,
            static_cast<uint64_t>(a_shed));
}

// Repeated dispatch failures of one (fingerprint, support) key open its
// breaker: subsequent requests short-circuit into flagged degraded serves
// from the frontier entry, and after the cool-down a half-open probe
// closes the breaker again.
TEST(ServeChaosTest, BreakerTripsServesDegradedAndRecovers) {
  // Mask any GOGREEN_FAILPOINTS env schedule for the whole test: the
  // recovery phase below needs a genuinely fault-free dispatch path, and
  // the inner trip scope must restore to quiet, not to the env spec.
  const failpoint::ScopedFailpoints quiet("");
  const TransactionDb db = testutil::RandomDb(/*seed=*/17, 400, 32, 6.0);
  MiningService service(db, "chaos-breaker");

  AdmissionOptions options;
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 150;
  AdmissionController admission(service, options);

  // A frontier entry above the target support: the degraded-serve donor.
  // The target itself (80 < 140) routes recycle — not cheap — so it walks
  // the full gate path.
  const uint64_t frontier_support = 140;
  const uint64_t target_support = 80;
  const PatternSet frontier = DirectMine(db, frontier_support);
  ASSERT_TRUE(service.store().Put({"chaos-breaker", "", frontier_support},
                                  frontier, db.NumTransactions()));

  const uint64_t errors_before = CounterNow("serve.errors");
  const uint64_t degraded_before = CounterNow("serve.degraded");
  const uint64_t breaker_before = CounterNow("serve.breaker_open");

  {
    const failpoint::ScopedFailpoints trip("breaker.trip:ioerror");
    // Two consecutive dispatch failures open the breaker.
    for (int i = 0; i < 2; ++i) {
      ServeStats stats;
      auto result = admission.Mine(MineRequest::At(target_support), &stats);
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kIOError);
      EXPECT_EQ(stats.outcome, "error:IOError");
    }
    ASSERT_TRUE(admission.BreakerOpenForTest("", target_support));
    EXPECT_EQ(CounterNow("serve.breaker_open") - breaker_before, 1u);

    // Open breaker: served degraded from the frontier, flagged, without
    // touching the (still failing) dispatch path.
    ServeStats stats;
    auto result = admission.Mine(MineRequest::At(target_support), &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(stats.degraded);
    EXPECT_EQ(stats.outcome, "degraded");
    EXPECT_TRUE(result->partial);
    EXPECT_EQ(result->frontier_support, frontier_support);
    EXPECT_TRUE(CanonicallyEqual(frontier, result->patterns));
    EXPECT_EQ(result->stop_status.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(CounterNow("serve.errors") - errors_before, 2u);
  EXPECT_GE(CounterNow("serve.degraded") - degraded_before, 1u);

  // Cool-down passes with the fault gone: the half-open probe mines for
  // real, closes the breaker, and the key serves normally again.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(options.breaker_cooldown_ms + 50));
  ServeStats stats;
  auto result = admission.Mine(MineRequest::At(target_support), &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(stats.degraded);
  EXPECT_FALSE(result->partial);
  EXPECT_FALSE(admission.BreakerOpenForTest("", target_support));
  EXPECT_TRUE(CanonicallyEqual(DirectMine(db, target_support),
                               result->patterns));
}

// The headline chaos run: worker threads replay seeded random scripts —
// mixed tenants, supports, deadlines, byte budgets — against a small
// admission envelope while a failpoint schedule (from GOGREEN_FAILPOINTS,
// else a built-in default mix) injects faults at the admission, breaker,
// and coalescing seams. Every request must terminate with a typed
// outcome, the store budget must hold at every sampled instant, and the
// admission counters must reconcile exactly with the requests issued.
TEST(ServeChaosTest, ChaosRandomizedScriptsTerminateAndReconcile) {
  const std::string log_path = GetEnvOrEmpty("GOGREEN_CHAOS_REQUEST_LOG");
  if (!log_path.empty()) {
    ASSERT_TRUE(obs::RequestLog::Global().AttachSink(log_path).ok());
  }
  // CI arms GOGREEN_FAILPOINTS with one of the fixed chaos schedules; a
  // bare local run still injects a default mix.
  std::unique_ptr<failpoint::ScopedFailpoints> default_schedule;
  if (failpoint::CurrentSpec().empty()) {
    default_schedule = std::make_unique<failpoint::ScopedFailpoints>(
        "admission.queue:ioerror@0.05,admission.quota:ioerror@0.05,"
        "breaker.trip:ioerror@0.1,coalesce.leader:ioerror@0.05");
  }
  uint64_t seed = 29;
  const std::string seed_env = GetEnvOrEmpty("GOGREEN_CHAOS_SEED");
  if (!seed_env.empty()) seed = std::stoull(seed_env);

  const TransactionDb db = testutil::RandomDb(/*seed=*/19, 800, 40, 6.0);
  const std::vector<uint64_t> supports = {240, 160, 120, 90, 70, 55};

  size_t max_cost = 0;
  for (uint64_t s : supports) {
    max_cost = std::max(max_cost, serve::PatternSetCost(DirectMine(db, s)));
  }
  // Tight store: constant eviction churn under the workers.
  serve::ServiceOptions service_options;
  service_options.store.byte_budget = 2 * max_cost + 4096;
  MiningService service(db, "chaos", service_options);
  const size_t budget = service.store().byte_budget();

  AdmissionOptions admission_options;
  admission_options.max_concurrent = 2;
  admission_options.max_queue = 4;
  admission_options.breaker_threshold = 2;
  admission_options.breaker_cooldown_ms = 50;
  AdmissionController admission(service, admission_options);
  TenantQuota quota_a;
  quota_a.qps = 200.0;   // Generous but finite: occasionally sheds under
  quota_a.burst = 20.0;  // the burstiest interleavings.
  admission.SetTenantQuota("A", quota_a);

  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 25;
  const uint64_t admitted_before = CounterNow("serve.admitted");
  const uint64_t shed_before = CounterNow("serve.shed");
  const uint64_t errors_before = CounterNow("serve.errors");

  std::atomic<uint64_t> budget_violations{0};
  std::atomic<bool> done{false};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (service.store().bytes_in_use() > budget) {
        budget_violations.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  std::atomic<uint64_t> count_ok{0};
  std::atomic<uint64_t> count_degraded{0};
  std::atomic<uint64_t> count_shed{0};
  std::atomic<uint64_t> count_error{0};
  std::atomic<uint64_t> untyped_outcomes{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      std::mt19937_64 rng(seed * 7919 + w);
      const char* tenants[] = {"", "A", "B"};
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        MineRequest request =
            MineRequest::At(supports[rng() % supports.size()]);
        request.tenant = tenants[rng() % 3];
        RunContext ctx;
        const uint64_t dice = rng() % 4;
        if (dice == 1) {
          ctx.SetDeadlineAfterMillis(1 + static_cast<int64_t>(rng() % 40));
          request.run_context = &ctx;
        } else if (dice == 2) {
          ctx.SetMemoryBudget(4096 + rng() % (64 << 10));
          request.run_context = &ctx;
        }
        ServeStats stats;
        auto result = admission.Mine(request, &stats);
        // Categorize into exactly one typed bucket; anything whose stats
        // disagree with its bucket counts as untyped (a contract bug).
        if (result.ok()) {
          if (stats.degraded) {
            count_degraded.fetch_add(1, std::memory_order_relaxed);
            if (stats.outcome != "degraded") {
              untyped_outcomes.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            count_ok.fetch_add(1, std::memory_order_relaxed);
            if (stats.outcome != "ok" && stats.outcome != "partial") {
              untyped_outcomes.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else if (stats.shed) {
          count_shed.fetch_add(1, std::memory_order_relaxed);
          if (result.status().code() != StatusCode::kResourceExhausted ||
              stats.outcome != "shed" || stats.retry_after_ms == 0 ||
              result.status().ToString().find("retry-after-ms=") ==
                  std::string::npos) {
            untyped_outcomes.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          count_error.fetch_add(1, std::memory_order_relaxed);
          if (stats.outcome.rfind("error:", 0) != 0) {
            untyped_outcomes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  done.store(true, std::memory_order_release);
  sampler.join();

  const uint64_t issued = kThreads * kOpsPerThread;
  EXPECT_EQ(count_ok.load() + count_degraded.load() + count_shed.load() +
                count_error.load(),
            issued);
  EXPECT_EQ(untyped_outcomes.load(), 0u);
  EXPECT_EQ(budget_violations.load(), 0u)
      << "store byte budget exceeded mid-flight";
  EXPECT_EQ(admission.QueueDepthForTest(), 0u);

  // Exact reconciliation: every issued request landed in exactly one of
  // admitted (ok | partial | degraded), shed, or errors.
  const uint64_t admitted = CounterNow("serve.admitted") - admitted_before;
  const uint64_t shed = CounterNow("serve.shed") - shed_before;
  const uint64_t errors = CounterNow("serve.errors") - errors_before;
  EXPECT_EQ(admitted, count_ok.load() + count_degraded.load());
  EXPECT_EQ(shed, count_shed.load());
  EXPECT_EQ(errors, count_error.load());
  EXPECT_EQ(admitted + shed + errors, issued);

  if (!log_path.empty()) {
    obs::RequestLog::Global().DetachSink();
    const std::string metrics_path =
        GetEnvOrEmpty("GOGREEN_CHAOS_METRICS_JSON");
    if (!metrics_path.empty()) {
      ASSERT_TRUE(obs::WriteMetricsJson(metrics_path).ok());
    }
  }
}

// Shrinking the store budget at runtime while traffic keeps hitting it:
// the shrink evicts down to the new ceiling and serving continues (the
// single-threaded edge cases live in pattern_store_test.cc).
TEST(ServeChaosTest, RuntimeBudgetShrinkHoldsUnderTraffic) {
  const failpoint::ScopedFailpoints quiet("");
  const TransactionDb db = testutil::RandomDb(/*seed=*/23, 500, 36, 6.0);
  MiningService service(db, "chaos-budget");
  AdmissionController admission(service);

  // Warm several entries, then halve the budget concurrently with reads.
  const std::vector<uint64_t> supports = {200, 140, 100, 75};
  for (uint64_t s : supports) {
    ServeStats stats;
    ASSERT_TRUE(admission.Mine(MineRequest::At(s), &stats).ok());
  }
  const size_t used = service.store().bytes_in_use();
  ASSERT_GT(used, 0u);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::mt19937_64 rng(7);
    while (!done.load(std::memory_order_acquire)) {
      ServeStats stats;
      (void)admission.Mine(
          MineRequest::At(supports[rng() % supports.size()]), &stats);
    }
  });
  const size_t new_budget = used / 2;
  service.store().SetByteBudget(new_budget);
  done.store(true, std::memory_order_release);
  reader.join();
  // Quiescent re-arm: inserts that raced the first shrink were bounded by
  // whichever budget their CAS observed; this one settles the ledger.
  service.store().SetByteBudget(new_budget);
  EXPECT_EQ(service.store().byte_budget(), new_budget);
  EXPECT_LE(service.store().bytes_in_use(), new_budget);

  // And the service still answers correctly at the shrunken budget.
  ServeStats stats;
  auto result = admission.Mine(MineRequest::At(supports[0]), &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(CanonicallyEqual(DirectMine(db, supports[0]),
                               result->patterns));
}

}  // namespace
}  // namespace gogreen
