// Tests for the unified MineRequest/MineResult API: effective-support
// resolution, equivalence with the remaining shape-specific entry points
// (Mine(db, minsup), MineCompressed, the recycler's support- and
// constraint-shaped calls), and per-request thread counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/recycler.h"
#include "fpm/constraints.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "tests/test_util.h"
#include "util/run_context.h"

namespace gogreen {
namespace {

using fpm::ConstraintSet;
using fpm::MineRequest;
using fpm::MineResult;
using fpm::PatternSet;
using fpm::TransactionDb;

void ExpectIdentical(const PatternSet& expected, const PatternSet& got,
                     const char* what) {
  ASSERT_EQ(expected.size(), got.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], got[i]) << what << " diverges at " << i;
  }
}

TEST(MineRequestTest, EffectiveMinSupportPicksTheMaximum) {
  MineRequest request = MineRequest::At(5);
  auto support = request.EffectiveMinSupport();
  ASSERT_TRUE(support.ok());
  EXPECT_EQ(support.value(), 5u);

  ConstraintSet tighter(/*min_support=*/9);
  request.constraints = &tighter;
  support = request.EffectiveMinSupport();
  ASSERT_TRUE(support.ok());
  EXPECT_EQ(support.value(), 9u);

  ConstraintSet looser(/*min_support=*/3);
  request.constraints = &looser;
  support = request.EffectiveMinSupport();
  ASSERT_TRUE(support.ok());
  EXPECT_EQ(support.value(), 5u);

  // Either side alone may carry the threshold.
  MineRequest from_constraints;
  from_constraints.constraints = &tighter;
  support = from_constraints.EffectiveMinSupport();
  ASSERT_TRUE(support.ok());
  EXPECT_EQ(support.value(), 9u);
}

TEST(MineRequestTest, EffectiveMinSupportRejectsZero) {
  MineRequest request;
  EXPECT_EQ(request.EffectiveMinSupport().status().code(),
            StatusCode::kInvalidArgument);

  ConstraintSet zero(/*min_support=*/0);
  request.constraints = &zero;
  EXPECT_EQ(request.EffectiveMinSupport().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MineRequestTest, UnifiedMineMatchesLegacyMine) {
  const TransactionDb db = testutil::RandomDb(17, 300, 40, 6.0);
  for (fpm::MinerKind kind :
       {fpm::MinerKind::kApriori, fpm::MinerKind::kHMine,
        fpm::MinerKind::kFpGrowth, fpm::MinerKind::kTreeProjection}) {
    SCOPED_TRACE(fpm::MinerKindName(kind));
    auto legacy = fpm::CreateMiner(kind)->Mine(db, 20);
    ASSERT_TRUE(legacy.ok());

    auto miner = fpm::CreateMiner(kind);
    auto unified = miner->Mine(db, MineRequest::At(20));
    ASSERT_TRUE(unified.ok());
    EXPECT_FALSE(unified->partial);
    EXPECT_EQ(unified->frontier_support, 20u);
    EXPECT_TRUE(unified->stop_status.ok());
    ExpectIdentical(legacy.value(), unified->patterns, "unified vs legacy");
    // The result carries the run's own counters.
    EXPECT_EQ(unified->stats.patterns_emitted, unified->patterns.size());
  }
}

TEST(MineRequestTest, UnifiedMineAppliesConstraints) {
  const TransactionDb db = testutil::PaperExampleDb();
  ConstraintSet constraints(/*min_support=*/2);
  constraints.Add(fpm::MakeMinLength(2));

  auto miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  MineRequest request = MineRequest::At(2);
  request.constraints = &constraints;
  auto result = miner->Mine(db, request);
  ASSERT_TRUE(result.ok());

  auto plain = fpm::CreateMiner(fpm::MinerKind::kHMine)->Mine(db, 2);
  ASSERT_TRUE(plain.ok());
  PatternSet expected = constraints.Filter(plain.value());
  ExpectIdentical(expected, result->patterns, "constrained unified mine");
  ASSERT_GT(result->patterns.size(), 0u);
  for (const fpm::Pattern& p : result->patterns) {
    EXPECT_GE(p.size(), 2u);
  }
}

TEST(MineRequestTest, GovernedMineIsDeterministicWhenCancelled) {
  const TransactionDb db = testutil::RandomDb(23, 300, 40, 6.0);

  // Two identical pre-cancelled governed runs must agree exactly: the
  // partial-result frontier is a deterministic property of the request,
  // not of scheduling.
  RunContext first_ctx;
  first_ctx.RequestCancel();
  MineRequest first_request = MineRequest::At(15);
  first_request.run_context = &first_ctx;
  auto first = fpm::CreateMiner(fpm::MinerKind::kHMine)->Mine(db,
                                                              first_request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->partial);

  RunContext ctx;
  ctx.RequestCancel();
  MineRequest request = MineRequest::At(15);
  request.run_context = &ctx;
  auto unified = fpm::CreateMiner(fpm::MinerKind::kHMine)->Mine(db, request);
  ASSERT_TRUE(unified.ok());
  EXPECT_TRUE(unified->partial);
  EXPECT_EQ(unified->frontier_support, first->frontier_support);
  EXPECT_EQ(unified->stop_status.code(), StatusCode::kCancelled);
  ExpectIdentical(first->patterns, unified->patterns,
                  "repeated governed unified mine");
}

TEST(MineRequestTest, ThreadsFieldIsLocalToTheRequestAndExact) {
  const TransactionDb db = testutil::RandomDb(31, 400, 50, 7.0);
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto sequential = miner->Mine(db, MineRequest::At(12));
  ASSERT_TRUE(sequential.ok());

  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    MineRequest request = MineRequest::At(12);
    request.threads = threads;
    auto parallel = fpm::CreateMiner(fpm::MinerKind::kFpGrowth)
                        ->Mine(db, request);
    ASSERT_TRUE(parallel.ok());
    ExpectIdentical(sequential->patterns, parallel->patterns,
                    "per-request thread count");
    EXPECT_EQ(sequential->stats.items_scanned,
              parallel->stats.items_scanned);
  }
}

TEST(MineRequestTest, CompressedMinerUnifiedMatchesLegacy) {
  const TransactionDb db = testutil::RandomDb(41, 300, 40, 6.0);
  auto fp_old = fpm::CreateMiner(fpm::MinerKind::kFpGrowth)->Mine(db, 30);
  ASSERT_TRUE(fp_old.ok());
  auto compressed = core::CompressDatabase(
      db, fp_old.value(),
      {core::CompressionStrategy::kMcp, core::MatcherKind::kAuto});
  ASSERT_TRUE(compressed.ok());

  for (core::RecycleAlgo algo :
       {core::RecycleAlgo::kHMine, core::RecycleAlgo::kFpGrowth,
        core::RecycleAlgo::kTreeProjection}) {
    SCOPED_TRACE(core::RecycleAlgoName(algo));
    auto legacy =
        core::CreateCompressedMiner(algo)->MineCompressed(*compressed, 15);
    ASSERT_TRUE(legacy.ok());

    auto unified = core::CreateCompressedMiner(algo)->Mine(
        *compressed, MineRequest::At(15));
    ASSERT_TRUE(unified.ok());
    EXPECT_FALSE(unified->partial);
    EXPECT_EQ(unified->frontier_support, 15u);
    ExpectIdentical(legacy.value(), unified->patterns,
                    "compressed unified vs MineCompressed");
  }
}

TEST(MineRequestTest, RecyclerUnifiedMatchesLegacySession) {
  const TransactionDb db = testutil::RandomDb(53, 300, 40, 6.0);

  core::RecyclingSession legacy(db);
  core::RecyclingSession unified(db);
  for (uint64_t minsup : {30u, 18u, 24u, 12u}) {
    SCOPED_TRACE(testing::Message() << "minsup " << minsup);
    auto a = legacy.Mine(minsup);
    ASSERT_TRUE(a.ok());
    auto b = unified.Mine(MineRequest::At(minsup));
    ASSERT_TRUE(b.ok());
    EXPECT_FALSE(b->partial);
    ExpectIdentical(a.value(), b->patterns, "recycler unified vs legacy");
    // Both sessions took the same route.
    EXPECT_EQ(unified.last_stats().path, legacy.last_stats().path);
  }
}

TEST(MineRequestTest, RecyclerUnifiedMatchesLegacyConstrainedSession) {
  const TransactionDb db = testutil::RandomDb(59, 300, 40, 6.0);

  ConstraintSet constraints(/*min_support=*/20);
  constraints.Add(fpm::MakeMinLength(2));

  core::RecyclingSession legacy(db);
  auto a = legacy.Mine(constraints);
  ASSERT_TRUE(a.ok());

  core::RecyclingSession unified(db);
  MineRequest request;
  request.constraints = &constraints;
  auto b = unified.Mine(request);
  ASSERT_TRUE(b.ok());
  ExpectIdentical(a.value(), b->patterns,
                  "recycler constrained unified vs legacy");
}

}  // namespace
}  // namespace gogreen
