// Tests for the MCP / MLP utility functions (Section 3.2).

#include "core/utility.h"

#include <gtest/gtest.h>

namespace gogreen::core {
namespace {

using fpm::Pattern;
using fpm::PatternSet;

TEST(UtilityTest, McpMatchesPaperExample2) {
  // Example 2: U(fgc:3) = (2^3 - 1) * 3 = 21.
  EXPECT_DOUBLE_EQ(PatternUtility(Pattern({2, 5, 6}, 3),
                                  CompressionStrategy::kMcp, 5),
                   21.0);
  // 2-item patterns with support 3: (2^2 - 1) * 3 = 9.
  EXPECT_DOUBLE_EQ(PatternUtility(Pattern({5, 6}, 3),
                                  CompressionStrategy::kMcp, 5),
                   9.0);
  // Singletons: (2^1 - 1) * support.
  EXPECT_DOUBLE_EQ(PatternUtility(Pattern({4}, 4),
                                  CompressionStrategy::kMcp, 5),
                   4.0);
}

TEST(UtilityTest, MlpDefinition) {
  // U(X) = |X| * |DB| + X.C.
  EXPECT_DOUBLE_EQ(PatternUtility(Pattern({2, 5, 6}, 3),
                                  CompressionStrategy::kMlp, 5),
                   3 * 5 + 3.0);
  EXPECT_DOUBLE_EQ(PatternUtility(Pattern({5, 6}, 3),
                                  CompressionStrategy::kMlp, 5),
                   2 * 5 + 3.0);
}

TEST(UtilityTest, MlpLongerAlwaysBeatsShorter) {
  // The |X|*|DB| term guarantees any longer pattern outranks any shorter
  // one, since X.C <= |DB|.
  const size_t db = 1000;
  const Pattern long_rare({1, 2, 3}, 1);
  const Pattern short_common({4, 5}, 1000);
  EXPECT_GT(PatternUtility(long_rare, CompressionStrategy::kMlp, db),
            PatternUtility(short_common, CompressionStrategy::kMlp, db));
  // MCP can prefer the frequent short pattern instead.
  EXPECT_LT(PatternUtility(long_rare, CompressionStrategy::kMcp, db),
            PatternUtility(short_common, CompressionStrategy::kMcp, db));
}

TEST(UtilityTest, McpNoOverflowOnLongPatterns) {
  std::vector<fpm::ItemId> items(70);
  for (size_t i = 0; i < items.size(); ++i) items[i] = fpm::ItemId(i);
  const double u = PatternUtility(Pattern(items, 5),
                                  CompressionStrategy::kMcp, 10);
  EXPECT_GT(u, 1e20);  // Finite and huge, not wrapped.
}

TEST(UtilityTest, RankingIsDescendingAndDeterministic) {
  PatternSet fp;
  fp.Add({2, 5, 6}, 3);  // fgc -> MCP 21
  fp.Add({5, 6}, 3);     // fg  -> 9
  fp.Add({0, 4}, 3);     // ae  -> 9
  fp.Add({4}, 4);        // e   -> 4
  fp.Add({2}, 4);        // c   -> 4
  const std::vector<size_t> order =
      RankPatternsByUtility(fp, CompressionStrategy::kMcp, 5);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(fp[order[0]].items, (std::vector<fpm::ItemId>{2, 5, 6}));
  // Tie on 9: lexicographic items -> ae {0,4} before fg {5,6}.
  EXPECT_EQ(fp[order[1]].items, (std::vector<fpm::ItemId>{0, 4}));
  EXPECT_EQ(fp[order[2]].items, (std::vector<fpm::ItemId>{5, 6}));
  // Tie on 4: c {2} before e {4}.
  EXPECT_EQ(fp[order[3]].items, (std::vector<fpm::ItemId>{2}));
  EXPECT_EQ(fp[order[4]].items, (std::vector<fpm::ItemId>{4}));
}

TEST(UtilityTest, TieBreakPrefersHigherSupport) {
  PatternSet fp;
  fp.Add({1, 2}, 3);  // MLP: 2*10+3 = 23.
  fp.Add({3, 4}, 5);  // MLP: 2*10+5 = 25.
  const std::vector<size_t> order =
      RankPatternsByUtility(fp, CompressionStrategy::kMlp, 10);
  EXPECT_EQ(fp[order[0]].items, (std::vector<fpm::ItemId>{3, 4}));
}

TEST(UtilityTest, StrategyNames) {
  EXPECT_STREQ(CompressionStrategyName(CompressionStrategy::kMcp), "MCP");
  EXPECT_STREQ(CompressionStrategyName(CompressionStrategy::kMlp), "MLP");
}

}  // namespace
}  // namespace gogreen::core
