// Differential test for the serving layer: every route the MiningService
// can take — scratch, recycle-seeded, filter-down, exact cache hit — must
// return a pattern set canonically identical to a direct (storeless) mine of
// the same database at the same support, on all four example datasets, at 1
// and 4 threads. Plus: partial governed results are cached at their frontier
// (the paper's relax-recycle loop), constrained requests share support-
// complete seeds, and the store budget holds under service load.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/compressed_db.h"
#include "core/compressor.h"
#include "core/seed_selection.h"
#include "data/datasets.h"
#include "fpm/constraints.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "serve/mining_service.h"
#include "serve/pattern_store.h"
#include "tests/test_util.h"
#include "util/run_context.h"

namespace gogreen {
namespace {

using core::SeedRoute;
using fpm::MineRequest;
using fpm::MineResult;
using fpm::PatternSet;
using fpm::TransactionDb;
using serve::MiningService;
using serve::ServeStats;
using serve::StoreKey;

/// Direct mine with no store involved: the correctness oracle for every
/// service route.
PatternSet DirectMine(const TransactionDb& db, uint64_t minsup) {
  auto miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ExpectCanonicallyEqual(PatternSet expected, PatternSet got,
                            const char* what) {
  EXPECT_TRUE(PatternSet::Equal(&expected, &got))
      << what << ": " << expected.size() << " vs " << got.size()
      << " patterns";
}

MineResult ServeAt(MiningService& service, uint64_t minsup, size_t threads,
                   ServeStats* stats = nullptr) {
  MineRequest request = MineRequest::At(minsup);
  request.threads = threads;
  auto result = service.Mine(request, stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

struct ServeParam {
  data::DatasetId id;
  size_t threads;
};

std::string ServeParamName(
    const ::testing::TestParamInfo<ServeParam>& tpi) {
  std::string name = data::GetDatasetSpec(tpi.param.id).name;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_t" + std::to_string(tpi.param.threads);
}

class ServeDifferentialTest : public ::testing::TestWithParam<ServeParam> {};

TEST_P(ServeDifferentialTest, AllRoutesMatchDirectMining) {
  const ServeParam& p = GetParam();
  const data::DatasetSpec& spec = data::GetDatasetSpec(p.id);
  auto made = data::MakeDataset(p.id, BenchScale::kSmoke);
  ASSERT_TRUE(made.ok());
  const TransactionDb db = std::move(made).value();

  // Supports from the paper's own sweep for this dataset: mine tight
  // (xi_old), relax below it (recycle), then query in between (filter-down
  // from the relaxed set) and repeat (exact hit).
  const uint64_t xi_hi =
      fpm::AbsoluteSupport(spec.xi_old, db.NumTransactions());
  const uint64_t xi_lo =
      fpm::AbsoluteSupport(spec.xi_new_sweep.front(), db.NumTransactions());
  ASSERT_LT(xi_lo, xi_hi) << spec.name;
  const uint64_t xi_mid = (xi_lo + xi_hi) / 2;
  ASSERT_GT(xi_mid, xi_lo);

  MiningService service(db, spec.name);

  // Route 1: cold store -> scratch.
  ServeStats stats;
  MineResult scratch = ServeAt(service, xi_hi, p.threads, &stats);
  EXPECT_EQ(stats.route, SeedRoute::kNone);
  EXPECT_FALSE(scratch.partial);
  ExpectCanonicallyEqual(DirectMine(db, xi_hi), std::move(scratch.patterns),
                         "scratch route");

  // Route 2: relaxed support -> recycle from the xi_hi set.
  MineResult recycled = ServeAt(service, xi_lo, p.threads, &stats);
  EXPECT_EQ(stats.route, SeedRoute::kRecycle);
  EXPECT_EQ(stats.seed_support, xi_hi);
  ExpectCanonicallyEqual(DirectMine(db, xi_lo), std::move(recycled.patterns),
                         "recycle route");

  // Route 3: between the two cached sets -> filter-down from xi_lo.
  MineResult filtered = ServeAt(service, xi_mid, p.threads, &stats);
  EXPECT_EQ(stats.route, SeedRoute::kFilterDown);
  EXPECT_EQ(stats.seed_support, xi_lo);
  ExpectCanonicallyEqual(DirectMine(db, xi_mid), std::move(filtered.patterns),
                         "filter-down route");

  // Route 4: repeat queries -> exact cache hits, still the same answers.
  for (uint64_t minsup : {xi_hi, xi_lo, xi_mid}) {
    MineResult hit = ServeAt(service, minsup, p.threads, &stats);
    EXPECT_EQ(stats.route, SeedRoute::kExact);
    EXPECT_EQ(stats.seed_support, minsup);
    ExpectCanonicallyEqual(DirectMine(db, minsup), std::move(hit.patterns),
                           "exact-hit route");
  }

  // The store held its budget through all of it.
  EXPECT_LE(service.store().bytes_in_use(), service.store().byte_budget());
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, ServeDifferentialTest,
    ::testing::Values(
        ServeParam{data::DatasetId::kWeatherSub, 1},
        ServeParam{data::DatasetId::kWeatherSub, 4},
        ServeParam{data::DatasetId::kForestSub, 1},
        ServeParam{data::DatasetId::kForestSub, 4},
        ServeParam{data::DatasetId::kConnect4Sub, 1},
        ServeParam{data::DatasetId::kConnect4Sub, 4},
        ServeParam{data::DatasetId::kPumsbSub, 1},
        ServeParam{data::DatasetId::kPumsbSub, 4}),
    ServeParamName);

// --- Non-parameterized service behaviors (paper example database). ---

class ServeBehaviorTest : public ::testing::Test {
 protected:
  ServeBehaviorTest() : db_(testutil::PaperExampleDb()) {}
  TransactionDb db_;
};

TEST_F(ServeBehaviorTest, ConstrainedRequestsShareSupportCompleteSeeds) {
  MiningService service(db_, "paper");
  // Warm the support-complete cache.
  (void)ServeAt(service, 2, /*threads=*/0);

  fpm::ConstraintSet constraints(/*min_support=*/2);
  constraints.Add(fpm::MakeMinLength(2));
  MineRequest request = MineRequest::At(2);
  request.constraints = &constraints;
  ServeStats stats;
  auto result = service.Mine(request, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Served from the cached support-complete set, then filtered.
  EXPECT_EQ(stats.route, SeedRoute::kExact);
  PatternSet expected = DirectMine(db_, 2).FilterByMinLength(2);
  ExpectCanonicallyEqual(std::move(expected), std::move(result->patterns),
                         "constrained request");

  // The filtered set was cached under its fingerprint: an exact repeat hits.
  auto repeat = service.Mine(request, &stats);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(stats.route, SeedRoute::kExact);
}

TEST_F(ServeBehaviorTest, SupportOnlyAndConstrainedEntriesDoNotCollide) {
  MiningService service(db_, "paper");
  fpm::ConstraintSet constraints(/*min_support=*/2);
  constraints.Add(fpm::MakeMinLength(3));
  MineRequest request = MineRequest::At(2);
  request.constraints = &constraints;
  auto constrained = service.Mine(request);
  ASSERT_TRUE(constrained.ok());

  // A later unconstrained query at the same support must not be answered
  // from the (smaller) filtered set.
  MineResult plain = ServeAt(service, 2, /*threads=*/0);
  ExpectCanonicallyEqual(DirectMine(db_, 2), std::move(plain.patterns),
                         "unconstrained after constrained");
}

TEST_F(ServeBehaviorTest, PartialGovernedResultIsCachedAtFrontier) {
  MiningService service(db_, "paper");
  RunContext ctx;
  ctx.RequestCancel();  // Deterministic immediate stop.
  MineRequest request = MineRequest::At(2);
  request.run_context = &ctx;
  ServeStats stats;
  auto result = service.Mine(request, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  EXPECT_GT(result->frontier_support, 2u);
  EXPECT_TRUE(stats.partial);

  // The partial set is exact at its frontier, so the store keeps it there —
  // and a later query at the frontier support is an exact hit.
  StoreKey key;
  key.dataset_id = "paper";
  key.min_support = result->frontier_support;
  EXPECT_NE(service.store().Get(key), nullptr);
  MineResult later = ServeAt(service, result->frontier_support, 0, &stats);
  EXPECT_EQ(stats.route, SeedRoute::kExact);
  ExpectCanonicallyEqual(DirectMine(db_, result->frontier_support),
                         std::move(later.patterns),
                         "query at cached frontier");
}

TEST_F(ServeBehaviorTest, RecycleMemoizesTheCompressedImage) {
  MiningService service(db_, "paper");
  (void)ServeAt(service, 4, /*threads=*/0);  // Scratch at xi_old = 4.
  ServeStats stats;
  // Recycle: builds + memoizes the image.
  (void)ServeAt(service, 3, /*threads=*/0, &stats);
  EXPECT_EQ(stats.route, SeedRoute::kRecycle);
  EXPECT_EQ(stats.seed_support, 4u);
  EXPECT_EQ(service.store().stats().compressed_images, 1u);
}

TEST_F(ServeBehaviorTest, RecycleReusesAMemoizedImageWithoutRecompressing) {
  // Seed the store by hand with a pattern set *and* its compressed image so
  // the recycle route's image lookup deterministically hits.
  MiningService service(db_, "paper");
  PatternSet fp_old = DirectMine(db_, 4);
  auto compressed = core::CompressDatabase(
      db_, fp_old,
      {core::CompressionStrategy::kMcp, core::MatcherKind::kAuto});
  ASSERT_TRUE(compressed.ok());
  StoreKey key;
  key.dataset_id = "paper";
  key.min_support = 4;
  ASSERT_TRUE(service.store().Put(key, fp_old, db_.NumTransactions()));
  service.store().PutCompressed(
      key, std::make_shared<const core::CompressedDb>(
               std::move(compressed).value()));

  ServeStats stats;
  MineResult result = ServeAt(service, 2, /*threads=*/0, &stats);
  EXPECT_EQ(stats.route, SeedRoute::kRecycle);
  EXPECT_EQ(stats.seed_support, 4u);
  // The memoized image skipped the compression pass entirely.
  EXPECT_EQ(stats.compress_seconds, 0.0);
  ExpectCanonicallyEqual(DirectMine(db_, 2), std::move(result.patterns),
                         "recycle from memoized image");
}

TEST_F(ServeBehaviorTest, TinyBudgetServiceStaysCorrectUnderEviction) {
  serve::ServiceOptions options;
  options.store.byte_budget = 1;  // Nothing fits: every Put is rejected.
  MiningService service(db_, "paper", options);
  for (uint64_t minsup : {4u, 2u, 3u, 2u}) {
    ServeStats stats;
    MineResult result = ServeAt(service, minsup, 0, &stats);
    // With no cache every query falls back to scratch — and stays right.
    EXPECT_EQ(stats.route, SeedRoute::kNone);
    ExpectCanonicallyEqual(DirectMine(db_, minsup),
                           std::move(result.patterns),
                           "mining with a zero-capacity store");
    EXPECT_EQ(service.store().bytes_in_use(), 0u);
  }
}

}  // namespace
}  // namespace gogreen
