// Tests for incremental mining with recycling: exactness after inserts,
// deletes, threshold changes, and combinations thereof.

#include "core/incremental.h"

#include <gtest/gtest.h>

#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::core {
namespace {

using fpm::PatternSet;
using fpm::TransactionDb;
using testutil::RandomDb;

PatternSet Direct(const TransactionDb& db, uint64_t minsup) {
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(IncrementalTest, FirstMineIsInitial) {
  IncrementalSession session(RandomDb(71, 200, 30, 5.0));
  auto result = session.Mine(10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kInitial);
  EXPECT_TRUE(session.has_cache());
}

TEST(IncrementalTest, ExactAfterInsertions) {
  IncrementalSession session(RandomDb(72, 300, 30, 5.0));
  ASSERT_TRUE(session.Mine(20).ok());

  const TransactionDb delta = RandomDb(720, 150, 30, 5.0);
  session.AddBatch(delta);
  EXPECT_EQ(session.db().NumTransactions(), 450u);

  auto result = session.Mine(20);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kRecycled);
  PatternSet expected = Direct(session.db(), 20);
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(IncrementalTest, ExactAfterDeletions) {
  IncrementalSession session(RandomDb(73, 400, 30, 5.0));
  ASSERT_TRUE(session.Mine(25).ok());

  const size_t removed = session.RemoveIf(
      [](fpm::Tid t, fpm::ItemSpan) { return t % 3 == 0; });
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(session.db().NumTransactions(), 400u - removed);

  auto result = session.Mine(25);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kRecycled);
  PatternSet expected = Direct(session.db(), 25);
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(IncrementalTest, ExactWhenBothDataAndThresholdChange) {
  // The scenario classic incremental techniques struggle with: the data
  // grows AND the support drops sharply at the same time.
  IncrementalSession session(RandomDb(74, 300, 40, 6.0));
  ASSERT_TRUE(session.Mine(40).ok());

  session.AddBatch(RandomDb(740, 200, 40, 6.0));
  auto result = session.Mine(8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kRecycled);
  PatternSet expected = Direct(session.db(), 8);
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(IncrementalTest, RepeatedRoundsOfGrowth) {
  IncrementalSession session(RandomDb(75, 200, 30, 5.0));
  ASSERT_TRUE(session.Mine(15).ok());
  for (int round = 0; round < 4; ++round) {
    session.AddBatch(RandomDb(750 + round, 100, 30, 5.0));
    auto result = session.Mine(15);
    ASSERT_TRUE(result.ok());
    PatternSet expected = Direct(session.db(), 15);
    PatternSet got = std::move(result).value();
    EXPECT_TRUE(PatternSet::Equal(&expected, &got)) << "round " << round;
  }
}

TEST(IncrementalTest, TighteningAfterDataChangeStillExact) {
  // Even a *raised* threshold cannot reuse stale supports by filtering;
  // the session must re-mine (recycled) and still be exact.
  IncrementalSession session(RandomDb(76, 300, 30, 5.0));
  ASSERT_TRUE(session.Mine(10).ok());
  session.AddTransaction({1, 2, 3});
  auto result = session.Mine(30);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kRecycled);
  PatternSet expected = Direct(session.db(), 30);
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(IncrementalTest, EmptyCacheAfterAllPatternsVanish) {
  // If the first round returns nothing, later rounds mine from scratch
  // rather than compressing with an empty set.
  TransactionDb db;
  db.AddTransaction({1});
  db.AddTransaction({2});
  IncrementalSession session(std::move(db));
  auto r1 = session.Mine(2);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());

  session.AddTransaction({1, 2});
  auto r2 = session.Mine(2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 2u);  // {1}:2 and {2}:2.
}

TEST(IncrementalTest, DisabledRecyclingScratchEveryTime) {
  RecyclerOptions options;
  options.enable_recycling = false;
  IncrementalSession session(RandomDb(77, 200, 30, 5.0), options);
  ASSERT_TRUE(session.Mine(10).ok());
  session.AddTransaction({1, 2});
  ASSERT_TRUE(session.Mine(10).ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kScratch);
}

TEST(IncrementalTest, ZeroSupportRejected) {
  IncrementalSession session(RandomDb(78, 50, 10, 4.0));
  EXPECT_FALSE(session.Mine(0).ok());
}

}  // namespace
}  // namespace gogreen::core
