// Tests for the itemset trie used by Apriori counting and the compressor.

#include "fpm/pattern_trie.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"

namespace gogreen::fpm {
namespace {

TEST(PatternTrieTest, InsertAndFind) {
  PatternTrie trie;
  const auto n1 = trie.Insert(std::vector<ItemId>{1, 3}, 42);
  EXPECT_NE(n1, PatternTrie::kNoNode);
  EXPECT_EQ(trie.Find(std::vector<ItemId>{1, 3}), n1);
  EXPECT_EQ(trie.tag(n1), 42);
  EXPECT_EQ(trie.Find(std::vector<ItemId>{1}), PatternTrie::kNoNode);
  EXPECT_EQ(trie.Find(std::vector<ItemId>{1, 3, 5}), PatternTrie::kNoNode);
  EXPECT_EQ(trie.NumPatterns(), 1u);
}

TEST(PatternTrieTest, ReinsertReturnsSameNodeAndKeepsTag) {
  PatternTrie trie;
  const auto n1 = trie.Insert(std::vector<ItemId>{2, 4}, 7);
  const auto n2 = trie.Insert(std::vector<ItemId>{2, 4}, 9);
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(trie.tag(n1), 7);  // First insertion wins.
  EXPECT_EQ(trie.NumPatterns(), 1u);
}

TEST(PatternTrieTest, PrefixBecomesTerminalIndependently) {
  PatternTrie trie;
  trie.Insert(std::vector<ItemId>{1, 2, 3});
  EXPECT_EQ(trie.Find(std::vector<ItemId>{1, 2}), PatternTrie::kNoNode);
  trie.Insert(std::vector<ItemId>{1, 2});
  EXPECT_NE(trie.Find(std::vector<ItemId>{1, 2}), PatternTrie::kNoNode);
  EXPECT_EQ(trie.NumPatterns(), 2u);
}

TEST(PatternTrieTest, SubsetCountingMatchesDefinition) {
  PatternTrie trie;
  const auto fg = trie.Insert(std::vector<ItemId>{5, 6});
  const auto ce = trie.Insert(std::vector<ItemId>{2, 4});
  const auto c = trie.Insert(std::vector<ItemId>{2});
  const TransactionDb db = testutil::PaperExampleDb();
  for (Tid t = 0; t < db.NumTransactions(); ++t) {
    trie.AddSupportForTransaction(db.Transaction(t));
  }
  EXPECT_EQ(trie.count(fg), 3u);
  EXPECT_EQ(trie.count(ce), 3u);
  EXPECT_EQ(trie.count(c), 4u);
}

TEST(PatternTrieTest, WeightedCounting) {
  PatternTrie trie;
  const auto n = trie.Insert(std::vector<ItemId>{1});
  trie.AddSupportForTransaction(std::vector<ItemId>{1, 2}, 5);
  trie.AddSupportForTransaction(std::vector<ItemId>{2}, 3);
  EXPECT_EQ(trie.count(n), 5u);
}

TEST(PatternTrieTest, ForEachPatternLexicographicOrder) {
  PatternTrie trie;
  trie.Insert(std::vector<ItemId>{2});
  trie.Insert(std::vector<ItemId>{1, 3});
  trie.Insert(std::vector<ItemId>{1});
  std::vector<std::vector<ItemId>> seen;
  trie.ForEachPattern([&](const std::vector<ItemId>& items, uint64_t,
                          int64_t) { seen.push_back(items); });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::vector<ItemId>{1}));
  EXPECT_EQ(seen[1], (std::vector<ItemId>{1, 3}));
  EXPECT_EQ(seen[2], (std::vector<ItemId>{2}));
}

TEST(PatternTrieTest, ClearResets) {
  PatternTrie trie;
  trie.Insert(std::vector<ItemId>{1});
  trie.Clear();
  EXPECT_EQ(trie.NumPatterns(), 0u);
  EXPECT_EQ(trie.Find(std::vector<ItemId>{1}), PatternTrie::kNoNode);
}

TEST(PatternTrieTest, RandomizedCountsAgreeWithFullScan) {
  Random rng(77);
  const TransactionDb db = testutil::RandomDb(7, 200, 25, 5.0);
  // Insert 50 random small itemsets.
  PatternTrie trie;
  std::vector<std::pair<PatternTrie::NodeId, std::vector<ItemId>>> queries;
  for (int q = 0; q < 50; ++q) {
    std::vector<ItemId> items;
    const size_t len = 1 + rng.Uniform(3);
    for (size_t i = 0; i < len; ++i) {
      items.push_back(static_cast<ItemId>(rng.Uniform(25)));
    }
    CanonicalizeItems(&items);
    queries.emplace_back(trie.Insert(ItemSpan(items)), items);
  }
  for (Tid t = 0; t < db.NumTransactions(); ++t) {
    trie.AddSupportForTransaction(db.Transaction(t));
  }
  for (const auto& [node, items] : queries) {
    EXPECT_EQ(trie.count(node), db.CountSupport(ItemSpan(items)))
        << Pattern(items, 0).ToString();
  }
}

}  // namespace
}  // namespace gogreen::fpm
