// Malformed-frame and wire-message tests (DESIGN.md §16): the codec must
// turn every flavor of bad input — truncated, oversized, NUL-bearing,
// invalid-UTF-8 frames; bad JSON, unknown fields, wrong versions — into a
// typed error, never a crash, and the split between "close the
// connection" (framing errors) and "answer with an error" (payload
// errors) must match the contract in net/frame.h.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "net/frame.h"
#include "net/wire.h"
#include "util/status_codes.h"

namespace gogreen::net {
namespace {

std::string Framed(const std::string& payload) {
  auto frame = EncodeFrame(payload);
  EXPECT_TRUE(frame.ok()) << frame.status().ToString();
  return frame.value();
}

/// A frame whose header declares `declared` payload bytes over `body`.
std::string RawFrame(uint32_t declared, const std::string& body) {
  std::string frame;
  frame.push_back(static_cast<char>((declared >> 24) & 0xFF));
  frame.push_back(static_cast<char>((declared >> 16) & 0xFF));
  frame.push_back(static_cast<char>((declared >> 8) & 0xFF));
  frame.push_back(static_cast<char>(declared & 0xFF));
  frame.append(body);
  return frame;
}

TEST(NetFrameTest, RoundTrip) {
  const std::string payload = "{\"v\":1,\"verb\":\"ping\"}";
  std::string decoded;
  size_t consumed = 0;
  auto got = TryDecodeFrame(Framed(payload), &decoded, &consumed);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got.value());
  EXPECT_EQ(decoded, payload);
  EXPECT_EQ(consumed, kFrameHeaderBytes + payload.size());
}

TEST(NetFrameTest, ShortBufferNeedsMoreBytes) {
  const std::string frame = Framed("{\"v\":1}");
  // Every strict prefix — including a split header — is "need more",
  // never an error: short reads are normal on a stream.
  for (size_t len = 0; len < frame.size(); ++len) {
    SCOPED_TRACE(len);
    std::string decoded;
    size_t consumed = 0;
    auto got = TryDecodeFrame(frame.substr(0, len), &decoded, &consumed);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_FALSE(got.value());
  }
}

TEST(NetFrameTest, MalformedFrameTable) {
  struct Case {
    const char* name;
    std::string frame;
  };
  const std::vector<Case> cases = {
      {"zero length", RawFrame(0, "")},
      {"oversized length",
       RawFrame(static_cast<uint32_t>(kMaxFrameBytes) + 1, "x")},
      {"giant length", RawFrame(0xFFFFFFFFu, "x")},
      {"NUL in payload", RawFrame(3, std::string("a\0b", 3))},
      {"bare continuation byte", RawFrame(1, "\x80")},
      {"truncated UTF-8 sequence", RawFrame(2, "a\xC3")},
      {"overlong encoding", RawFrame(2, "\xC0\xAF")},
      {"UTF-16 surrogate", RawFrame(3, "\xED\xA0\x80")},
      {"beyond U+10FFFF", RawFrame(4, "\xF4\x90\x80\x80")},
      {"invalid lead byte", RawFrame(1, "\xFF")},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    std::string decoded;
    size_t consumed = 0;
    auto got = TryDecodeFrame(c.frame, &decoded, &consumed);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(NetFrameTest, EncoderRejectsInvalidPayloads) {
  EXPECT_EQ(EncodeFrame("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(EncodeFrame(std::string_view("a\0b", 3)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EncodeFrame("bad \x80 utf8").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EncodeFrame(std::string(kMaxFrameBytes + 1, 'a')).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetFrameTest, SocketRoundTripAndCleanEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "{\"v\":1,\"verb\":\"ping\",\"id\":7}";
  ASSERT_TRUE(WriteFrame(fds[0], payload).ok());
  std::string got;
  auto read = ReadFrame(fds[1], &got);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read.value());
  EXPECT_EQ(got, payload);

  // Peer closes on a frame boundary: clean EOF, not an error.
  ::close(fds[0]);
  read = ReadFrame(fds[1], &got);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read.value());
  ::close(fds[1]);
}

TEST(NetFrameTest, SocketTruncationIsIoError) {
  // EOF inside the header.
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string frame = Framed("{\"v\":1}");
    ASSERT_EQ(::send(fds[0], frame.data(), 2, 0), 2);
    ::close(fds[0]);
    std::string got;
    auto read = ReadFrame(fds[1], &got);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kIOError);
    ::close(fds[1]);
  }
  // EOF inside the payload.
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string frame = Framed("{\"v\":1}");
    const size_t partial = kFrameHeaderBytes + 3;
    ASSERT_EQ(::send(fds[0], frame.data(), partial, 0),
              static_cast<ssize_t>(partial));
    ::close(fds[0]);
    std::string got;
    auto read = ReadFrame(fds[1], &got);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kIOError);
    ::close(fds[1]);
  }
}

TEST(NetWireTest, RequestRoundTrip) {
  WireRequest req;
  req.id = 42;
  req.verb = Verb::kMine;
  req.support = 0.125;
  req.deadline_ms = 250;
  req.budget_mb = 32;
  req.threads = 4;
  auto parsed = WireRequest::FromJson(req.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, 42u);
  EXPECT_EQ(parsed->verb, Verb::kMine);
  EXPECT_EQ(parsed->support, 0.125);
  EXPECT_EQ(parsed->deadline_ms, 250u);
  EXPECT_EQ(parsed->budget_mb, 32u);
  EXPECT_EQ(parsed->threads, 4u);
}

TEST(NetWireTest, ResponseRoundTrip) {
  WireResponse resp;
  resp.id = 9;
  resp.outcome = Outcome::kPartial;
  resp.route = "recycle";
  resp.min_support = 12;
  resp.seed_support = 20;
  resp.patterns = 321;
  resp.partial = true;
  resp.frontier_support = 15;
  resp.coalesced = true;
  resp.seconds = 0.5;
  resp.request_id = 77;
  resp.tenant = "acme";
  auto parsed = WireResponse::FromJson(resp.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, 9u);
  EXPECT_EQ(parsed->outcome, Outcome::kPartial);
  EXPECT_EQ(parsed->route, "recycle");
  EXPECT_EQ(parsed->min_support, 12u);
  EXPECT_EQ(parsed->patterns, 321u);
  EXPECT_TRUE(parsed->partial);
  EXPECT_EQ(parsed->frontier_support, 15u);
  EXPECT_TRUE(parsed->coalesced);
  EXPECT_EQ(parsed->seconds, 0.5);
  EXPECT_EQ(parsed->request_id, 77u);
  EXPECT_EQ(parsed->tenant, "acme");
}

TEST(NetWireTest, ErrorOutcomeCarriesTypedStatus) {
  WireResponse resp = MakeErrorResponse(
      3, Status::IOError("disk on fire"));
  EXPECT_EQ(resp.outcome, Outcome::kError);
  auto parsed = WireResponse::FromJson(resp.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Status back = parsed->ToStatus();
  EXPECT_EQ(back.code(), StatusCode::kIOError);
  EXPECT_EQ(back.message(), "disk on fire");

  // ResourceExhausted is a shed, its own outcome — not an error.
  WireResponse shed = MakeErrorResponse(
      4, Status::ResourceExhausted("over quota; retry-after-ms=5"));
  EXPECT_EQ(shed.outcome, Outcome::kShed);
  EXPECT_TRUE(shed.shed);
  auto shed_parsed = WireResponse::FromJson(shed.ToJson());
  ASSERT_TRUE(shed_parsed.ok());
  EXPECT_EQ(shed_parsed->ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(NetWireTest, MalformedPayloadTable) {
  struct Case {
    const char* name;
    const char* json;
  };
  const std::vector<Case> cases = {
      {"not an object", "42"},
      {"bare garbage", "hello"},
      {"unterminated object", "{\"v\":1"},
      {"unterminated string", "{\"verb\":\"min"},
      {"trailing bytes", "{\"v\":1}x"},
      {"duplicate key", "{\"v\":1,\"v\":1}"},
      {"nested object", "{\"v\":1,\"deep\":{}}"},
      {"array value", "{\"v\":1,\"items\":[1]}"},
      {"null value", "{\"v\":1,\"verb\":null}"},
      {"unknown field", "{\"v\":1,\"verb\":\"ping\",\"surprise\":1}"},
      {"wrong type", "{\"v\":1,\"verb\":7}"},
      {"unknown verb", "{\"v\":1,\"verb\":\"fly\"}"},
      {"unsupported version", "{\"v\":2,\"verb\":\"ping\"}"},
      {"bad escape", "{\"verb\":\"\\q\"}"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    auto parsed = WireRequest::FromJson(c.json);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
  // Unknown fields are rejected BY NAME, so a fail-closed peer can say
  // what it did not understand.
  auto parsed = WireRequest::FromJson(
      "{\"v\":1,\"verb\":\"ping\",\"surprise\":1}");
  EXPECT_NE(parsed.status().message().find("surprise"), std::string::npos);
}

TEST(NetWireTest, StringEscapesRoundTrip) {
  WireRequest req;
  req.verb = Verb::kTenant;
  req.tenant = "a\"b\\c\nd\te";
  auto parsed = WireRequest::FromJson(req.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tenant, req.tenant);
}

TEST(NetWireTest, OutcomeLabelsRoundTrip) {
  for (Outcome outcome : {Outcome::kOk, Outcome::kPartial, Outcome::kDegraded,
                          Outcome::kShed}) {
    SCOPED_TRACE(OutcomeName(outcome));
    Outcome back;
    StatusCode code;
    ASSERT_TRUE(ParseOutcomeLabel(OutcomeLabel(outcome), &back, &code));
    EXPECT_EQ(back, outcome);
  }
  Outcome back;
  StatusCode code;
  ASSERT_TRUE(ParseOutcomeLabel(
      OutcomeLabel(Outcome::kError, StatusCode::kDeadlineExceeded), &back,
      &code));
  EXPECT_EQ(back, Outcome::kError);
  EXPECT_EQ(code, StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(ParseOutcomeLabel("sideways", &back, &code));
}

}  // namespace
}  // namespace gogreen::net
