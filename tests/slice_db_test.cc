// Tests for the slice representation of compressed databases: encoding,
// projection semantics (Definition 3.2 lifted to slices), the group-counter
// trick, and Lemma 3.1 detection.

#include "core/slice_db.h"

#include <gtest/gtest.h>

#include "core/compressor.h"
#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::core {
namespace {

using fpm::FList;
using fpm::ItemId;
using fpm::Rank;
using fpm::TransactionDb;
using testutil::PaperExampleDb;

/// Table 2 CDB built through the real compressor.
CompressedDb PaperCdb() {
  const TransactionDb db = PaperExampleDb();
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto fp = miner->Mine(db, 3);
  EXPECT_TRUE(fp.ok());
  auto cdb = CompressDatabase(db, fp.value(),
                              {CompressionStrategy::kMcp,
                               MatcherKind::kLinear});
  EXPECT_TRUE(cdb.ok());
  return std::move(cdb).value();
}

TEST(SliceDbTest, BuildMatchesTable2FourthColumn) {
  // With xi_new = 2, Table 2's "(ordered) frequent outlying items" column:
  // group fgc: members d,a,e / d / e ; group ae: c / (empty).
  const CompressedDb cdb = PaperCdb();
  const FList flist = FList::FromCounts(cdb.CountItemSupports(9), 2);
  const SliceDb sdb = SliceDb::Build(cdb, flist);
  ASSERT_EQ(sdb.slices.size(), 2u);

  const Slice& fgc = sdb.slices[0];
  EXPECT_EQ(fgc.pattern.size(), 3u);
  ASSERT_EQ(fgc.outs.size(), 3u);
  EXPECT_EQ(fgc.outs[0].size(), 3u);  // d,a,e (b,h,i infrequent).
  EXPECT_EQ(fgc.outs[1].size(), 1u);  // d
  EXPECT_EQ(fgc.outs[2].size(), 1u);  // e
  EXPECT_EQ(fgc.empty_count, 0u);

  const Slice& ae = sdb.slices[1];
  EXPECT_EQ(ae.pattern.size(), 2u);
  ASSERT_EQ(ae.outs.size(), 1u);  // c (i infrequent).
  EXPECT_EQ(ae.outs[0].size(), 1u);
  EXPECT_EQ(ae.empty_count, 1u);  // Tuple 500's outlying {h} is infrequent.
}

TEST(SliceDbTest, StoredItemsCountsPatternOncePerSlice) {
  const CompressedDb cdb = PaperCdb();
  const FList flist = FList::FromCounts(cdb.CountItemSupports(9), 2);
  const SliceDb sdb = SliceDb::Build(cdb, flist);
  // Patterns 3+2, outs 3+1+1+1 = 11 encoded items.
  EXPECT_EQ(sdb.StoredItems(), 11u);
}

TEST(SliceDbTest, CountFrequentUsesGroupWeights) {
  const CompressedDb cdb = PaperCdb();
  const FList flist = FList::FromCounts(cdb.CountItemSupports(9), 2);
  const SliceDb sdb = SliceDb::Build(cdb, flist);

  fpm::PatternSet sink;
  fpm::MiningStats stats;
  SliceMiningContext ctx(flist, 2, &sink, &stats);
  std::vector<uint64_t> counts;
  const std::vector<Rank> frequent = ctx.CountFrequent(sdb.slices, &counts);
  // All six F-list items are frequent at 2: d,f,g,a,e,c (ranks 0..5).
  ASSERT_EQ(frequent.size(), 6u);
  for (size_t i = 0; i < frequent.size(); ++i) {
    EXPECT_EQ(counts[i], flist.support(frequent[i]));
  }
  // Group-counting: pattern items are scanned once per slice, not per tuple.
  // Slices hold 11 encoded items total, so the scan touches exactly 11.
  EXPECT_EQ(stats.items_scanned, 11u);
}

TEST(SliceDbTest, ProjectOnPatternItemKeepsAllMembers) {
  constexpr ItemId g = 6;
  const CompressedDb cdb = PaperCdb();
  const FList flist = FList::FromCounts(cdb.CountItemSupports(9), 2);
  const SliceDb sdb = SliceDb::Build(cdb, flist);

  // g-projected database: group fgc's slice keeps all 3 members; items
  // after g in the F-list survive (e and c).
  const Rank rg = flist.rank(g);
  ASSERT_NE(rg, fpm::kNoRank);
  const std::vector<Slice> proj = ProjectSlices(sdb.slices, rg);
  // Group ae does not contain g anywhere -> dropped. fgc -> c remains in
  // pattern (c ranks after g).
  ASSERT_EQ(proj.size(), 1u);
  EXPECT_EQ(proj[0].count(), 3u);
  EXPECT_EQ(proj[0].pattern.size(), 1u);
  EXPECT_EQ(flist.item(proj[0].pattern[0]), 2u);  // c
}

TEST(SliceDbTest, ProjectOnOutlyingItemSelectsMembers) {
  constexpr ItemId d = 3;
  const CompressedDb cdb = PaperCdb();
  const FList flist = FList::FromCounts(cdb.CountItemSupports(9), 2);
  const SliceDb sdb = SliceDb::Build(cdb, flist);

  // d-projected database (Example 3 step 1): members 100 and 200 of group
  // fgc; all of f,g,c (+ a,e for tuple 100) rank after d.
  const Rank rd = flist.rank(d);
  ASSERT_EQ(rd, 0u);  // d is the rarest frequent item.
  const std::vector<Slice> proj = ProjectSlices(sdb.slices, rd);
  ASSERT_EQ(proj.size(), 1u);
  EXPECT_EQ(proj[0].count(), 2u);
  EXPECT_EQ(proj[0].pattern.size(), 3u);  // f,g,c
  // Tuple 100 keeps outlying a,e; tuple 200's outlying d is consumed.
  EXPECT_EQ(proj[0].outs.size(), 1u);
  EXPECT_EQ(proj[0].outs[0].size(), 2u);
  EXPECT_EQ(proj[0].empty_count, 1u);
}

TEST(SliceDbTest, SingleGroupLemmaDetected) {
  // d-projected database of Example 3: all frequent items (f,g,c) live in
  // the single fgc slice -> Lemma 3.1 applies and yields all 7 combinations
  // with support 2.
  const CompressedDb cdb = PaperCdb();
  const FList flist = FList::FromCounts(cdb.CountItemSupports(9), 2);
  const SliceDb sdb = SliceDb::Build(cdb, flist);
  const std::vector<Slice> proj = ProjectSlices(sdb.slices, 0);  // rank of d

  fpm::PatternSet sink;
  fpm::MiningStats stats;
  SliceMiningContext ctx(flist, 2, &sink, &stats);
  std::vector<uint64_t> counts;
  const std::vector<Rank> frequent = ctx.CountFrequent(proj, &counts);
  ASSERT_EQ(frequent.size(), 3u);  // f, g, c (a,e have count 1 here).

  std::vector<Rank> prefix{0};  // "d"
  EXPECT_TRUE(ctx.TrySingleGroup(proj, frequent, counts, &prefix));
  EXPECT_EQ(sink.size(), 7u);  // 2^3 - 1 combinations.
  for (const auto& p : sink) EXPECT_EQ(p.support, 2u);
}

TEST(SliceDbTest, SingleGroupLemmaRejectedWhenOutsCarryFrequentItems) {
  const CompressedDb cdb = PaperCdb();
  const FList flist = FList::FromCounts(cdb.CountItemSupports(9), 2);
  const SliceDb sdb = SliceDb::Build(cdb, flist);

  fpm::PatternSet sink;
  fpm::MiningStats stats;
  SliceMiningContext ctx(flist, 2, &sink, &stats);
  std::vector<uint64_t> counts;
  const std::vector<Rank> frequent = ctx.CountFrequent(sdb.slices, &counts);
  std::vector<Rank> prefix;
  // At the top level items live in two groups and in outlying parts.
  EXPECT_FALSE(ctx.TrySingleGroup(sdb.slices, frequent, counts, &prefix));
  EXPECT_TRUE(sink.empty());
}

TEST(SliceDbTest, DroppedWhenNothingSurvivesEncoding) {
  CompressedDb cdb;
  cdb.AddGroup(std::vector<ItemId>{1});
  cdb.AddMember(0, std::vector<ItemId>{2});
  // Only item 5 is frequent in this artificial F-list.
  std::vector<uint64_t> counts(6, 0);
  counts[5] = 10;
  const FList flist = FList::FromCounts(counts, 5);
  const SliceDb sdb = SliceDb::Build(cdb, flist);
  EXPECT_TRUE(sdb.slices.empty());
}

TEST(SliceDbTest, DedupeWeightedOutsIsCanonicallySorted) {
  // Regression: the merge goes through a hash map, whose iteration order is
  // an implementation detail. The result must come back merged AND in
  // lexicographic row order regardless of input order, or downstream
  // consumers inherit platform-dependent (and parallel-merge-dependent)
  // nondeterminism.
  std::vector<std::pair<std::vector<Rank>, uint64_t>> outs = {
      {{3, 4}, 1}, {{1, 2}, 2}, {{3, 4}, 5}, {{1}, 1}, {{1, 2}, 1},
  };
  DedupeWeightedOuts(&outs);
  const std::vector<std::pair<std::vector<Rank>, uint64_t>> expected = {
      {{1}, 1}, {{1, 2}, 3}, {{3, 4}, 6},
  };
  EXPECT_EQ(outs, expected);

  // Same multiset presented in a different order dedupes to the same value.
  std::vector<std::pair<std::vector<Rank>, uint64_t>> shuffled = {
      {{1, 2}, 1}, {{3, 4}, 5}, {{1}, 1}, {{1, 2}, 2}, {{3, 4}, 1},
  };
  DedupeWeightedOuts(&shuffled);
  EXPECT_EQ(shuffled, expected);
}

}  // namespace
}  // namespace gogreen::core
