// Tests for the debug-build structural validators (src/check/): each
// validator accepts the healthy structures built from all four example
// datasets, and reports seeded corruption — a broken H-struct hyperlink, a
// broken FP-tree header chain, a lossy / inconsistent compressed database,
// an out-of-order F-list, leaked run-context bytes.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.h"
#include "check/check_db.h"
#include "core/compressor.h"
#include "data/datasets.h"
#include "fpm/flist.h"
#include "fpm/fpgrowth.h"
#include "fpm/hmine.h"
#include "fpm/miner.h"
#include "fpm/transaction_db.h"
#include "util/run_context.h"

namespace gogreen {
namespace {

using fpm::FList;
using fpm::ItemId;
using fpm::RankedDb;
using fpm::Tid;
using fpm::TransactionDb;

TransactionDb SmallDb() {
  TransactionDb db;
  db.AddTransaction({1, 2, 3});
  db.AddTransaction({1, 2});
  db.AddTransaction({2, 3});
  db.AddTransaction({1, 3});
  db.AddTransaction({1, 2, 3, 4});
  return db;
}

check::RowFn RowsOf(const RankedDb& ranked) {
  return [&ranked](Tid t) { return ranked.Transaction(t); };
}

// --- Healthy structures: every validator passes on all four datasets. ---

TEST(CheckHealthyTest, AllExampleDatasets) {
  for (const data::DatasetId id : data::kAllDatasets) {
    const data::DatasetSpec& spec = data::GetDatasetSpec(id);
    Result<TransactionDb> made = data::MakeDataset(id, BenchScale::kSmoke);
    ASSERT_TRUE(made.ok()) << spec.name;
    const TransactionDb db = std::move(made).value();
    const uint64_t min_support =
        fpm::AbsoluteSupport(spec.xi_old, db.NumTransactions());

    const FList flist = FList::Build(db, min_support);
    EXPECT_TRUE(check::ValidateFList(flist, min_support).ok()) << spec.name;
    ASSERT_FALSE(flist.empty()) << spec.name;

    const RankedDb ranked = RankedDb::Build(db, flist);
    const check::HStructView hstruct =
        fpm::DebugRootHStruct(ranked, flist, min_support);
    EXPECT_TRUE(
        check::ValidateHStruct(hstruct, RowsOf(ranked), min_support).ok())
        << spec.name;

    const check::FpTreeView tree = fpm::DebugFpTreeView(db, min_support);
    EXPECT_TRUE(check::ValidateFpTree(tree, min_support).ok()) << spec.name;

    auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
    Result<fpm::PatternSet> fp = miner->Mine(db, min_support);
    ASSERT_TRUE(fp.ok()) << spec.name;
    Result<core::CompressedDb> cdb =
        core::CompressDatabase(db, *fp, core::CompressorOptions{});
    ASSERT_TRUE(cdb.ok()) << spec.name;
    EXPECT_TRUE(check::ValidateCompressedDb(*cdb, &db).ok()) << spec.name;
  }
}

// --- F-list. ---

TEST(CheckFListTest, ReportsSupportBelowThreshold) {
  const TransactionDb db = SmallDb();
  const FList flist = FList::Build(db, 2);
  EXPECT_TRUE(check::ValidateFList(flist, 2).ok());
  // Item 4 occurs twice at most... every support here is < 5, so checking
  // against a raised threshold must flag the low-support ranks.
  const Status st = check::ValidateFList(flist, 5);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("min_support"), std::string::npos);
}

// --- H-struct hyperlinks. ---

class CheckHStructTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = SmallDb();
    flist_ = FList::Build(db_, 2);
    ranked_ = RankedDb::Build(db_, flist_);
    view_ = fpm::DebugRootHStruct(ranked_, flist_, 2);
    ASSERT_FALSE(view_.frequent.empty());
    ASSERT_TRUE(check::ValidateHStruct(view_, RowsOf(ranked_), 2).ok());
  }

  TransactionDb db_;
  FList flist_;
  RankedDb ranked_;
  check::HStructView view_;
};

TEST_F(CheckHStructTest, ReportsCorruptHyperlink) {
  // A hyperlink must point one-past an occurrence of its extension rank;
  // position 0 cannot (there is no item before it).
  view_.buckets[0][0].pos = 0;
  const Status st = check::ValidateHStruct(view_, RowsOf(ranked_), 2);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("hyperlink"), std::string::npos);
}

TEST_F(CheckHStructTest, ReportsChainShorterThanSupport) {
  view_.buckets[0].pop_back();
  EXPECT_FALSE(check::ValidateHStruct(view_, RowsOf(ranked_), 2).ok());
}

TEST_F(CheckHStructTest, ReportsOutOfOrderTids) {
  ASSERT_GE(view_.buckets[0].size(), 2u);
  std::swap(view_.buckets[0][0], view_.buckets[0][1]);
  EXPECT_FALSE(check::ValidateHStruct(view_, RowsOf(ranked_), 2).ok());
}

TEST_F(CheckHStructTest, ReportsInflatedSupport) {
  view_.counts[0] += 1;
  EXPECT_FALSE(check::ValidateHStruct(view_, RowsOf(ranked_), 2).ok());
}

// --- FP-tree header table / node links. ---

class CheckFpTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = SmallDb();
    view_ = fpm::DebugFpTreeView(db_, 2);
    ASSERT_GT(view_.nodes.size(), 1u);
    ASSERT_TRUE(check::ValidateFpTree(view_, 2).ok());
  }

  TransactionDb db_;
  check::FpTreeView view_;
};

TEST_F(CheckFpTreeTest, ReportsBrokenHeaderChain) {
  // Drop one node from its rank's chain: the node is no longer threaded,
  // and the chain sum no longer matches the header count.
  const fpm::Rank r = view_.nodes[1].rank;
  ASSERT_FALSE(view_.header[r].empty());
  view_.header[r].pop_back();
  const Status st = check::ValidateFpTree(view_, 2);
  EXPECT_FALSE(st.ok());
}

TEST_F(CheckFpTreeTest, ReportsHeaderCountMismatch) {
  const fpm::Rank r = view_.nodes[1].rank;
  view_.header_counts[r] += 1;
  const Status st = check::ValidateFpTree(view_, 2);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("header count"), std::string::npos);
}

TEST_F(CheckFpTreeTest, ReportsCountMonotonicityViolation) {
  // Hand-built: a child whose count exceeds its parent's.
  check::FpTreeView v;
  v.nodes.push_back({fpm::kNoRank, 0, -1});
  v.nodes.push_back({1, 2, 0});
  v.nodes.push_back({0, 3, 1});  // Sum of node 1's children: 3 > 2.
  v.header = {{2}, {1}};
  v.header_counts = {3, 2};
  const Status st = check::ValidateFpTree(v, 1);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sum to"), std::string::npos);

  v.nodes[2].count = 2;  // Restore parent >= sum(children).
  v.header_counts[0] = 2;
  EXPECT_TRUE(check::ValidateFpTree(v, 1).ok());
}

TEST_F(CheckFpTreeTest, ReportsRankOrderViolation) {
  // Paths must carry strictly descending ranks from the root.
  check::FpTreeView v;
  v.nodes.push_back({fpm::kNoRank, 0, -1});
  v.nodes.push_back({0, 1, 0});
  v.nodes.push_back({1, 1, 1});  // Rank 1 below rank 0: ascending.
  v.header = {{1}, {2}};
  v.header_counts = {1, 1};
  const Status st = check::ValidateFpTree(v, 1);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("descending rank"), std::string::npos);
}

// --- Compressed database. ---

TEST(CheckCompressedDbTest, ReportsLossyCover) {
  const TransactionDb db = SmallDb();
  core::CompressedDb cdb;
  const std::vector<ItemId> pattern = {1, 2};
  cdb.AddGroup(fpm::ItemSpan(pattern));
  const std::vector<ItemId> wrong = {3, 4};  // Tid 1 is {1,2}: no 3,4.
  cdb.AddMember(0, std::vector<ItemId>{3});
  cdb.AddMember(1, fpm::ItemSpan(wrong));
  cdb.AddGroup({});
  cdb.AddMember(2, std::vector<ItemId>{2, 3});
  cdb.AddMember(3, std::vector<ItemId>{1, 3});
  cdb.AddMember(4, std::vector<ItemId>{1, 2, 3, 4});
  // Structurally sound (canonical, disjoint, tids a permutation)...
  EXPECT_TRUE(check::ValidateCompressedDb(cdb, nullptr).ok());
  // ...but member 1's cover is lossy against the original database.
  const Status st = check::ValidateCompressedDb(cdb, &db);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("lossy"), std::string::npos);
}

TEST(CheckCompressedDbTest, ReportsGroupCountMismatchWithOriginal) {
  // Group counts must sum to |DB|: a CDB that dropped tuples is reported.
  const TransactionDb db = SmallDb();
  core::CompressedDb cdb;
  cdb.AddGroup({});
  cdb.AddMember(0, std::vector<ItemId>{1, 2, 3});
  cdb.AddMember(1, std::vector<ItemId>{1, 2});
  const Status st = check::ValidateCompressedDb(cdb, &db);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("tuples"), std::string::npos);
}

TEST(CheckCompressedDbTest, ReportsDuplicateTid) {
  core::CompressedDb cdb;
  cdb.AddGroup({});
  cdb.AddMember(0, std::vector<ItemId>{1});
  cdb.AddMember(0, std::vector<ItemId>{2});  // Same tid twice.
  const Status st = check::ValidateCompressedDb(cdb, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("permutation"), std::string::npos);
}

TEST(CheckCompressedDbTest, ReportsPatternOutlyingOverlap) {
  core::CompressedDb cdb;
  const std::vector<ItemId> pattern = {1, 2};
  cdb.AddGroup(fpm::ItemSpan(pattern));
  cdb.AddMember(0, std::vector<ItemId>{2, 3});  // Item 2 already in pattern.
  const Status st = check::ValidateCompressedDb(cdb, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overlap"), std::string::npos);
}

// --- Run context. ---

TEST(CheckRunContextTest, ReportsLeakedBytes) {
  RunContext ctx;
  EXPECT_TRUE(check::ValidateRunContext(ctx).ok());
  ctx.AddBytes(128);
  const Status st = check::ValidateRunContext(ctx);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not released"), std::string::npos);
  ctx.ReleaseBytes(128);
  EXPECT_TRUE(check::ValidateRunContext(ctx).ok());
}

TEST(CheckRunContextTest, ReportsIncompleteWithoutStop) {
  RunContext ctx;
  ctx.MarkIncomplete(5);  // Incomplete, but no stop condition ever tripped.
  EXPECT_FALSE(check::ValidateRunContext(ctx).ok());

  RunContext stopped;
  stopped.RequestCancel();
  stopped.MarkIncomplete(5);
  EXPECT_TRUE(check::ValidateRunContext(stopped).ok());
}

}  // namespace
}  // namespace gogreen
