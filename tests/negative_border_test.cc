// Tests for the negative-border incremental baseline.

#include "fpm/negative_border.h"

#include <gtest/gtest.h>

#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::fpm {
namespace {

using testutil::RandomDb;

PatternSet Direct(const TransactionDb& db, double fraction) {
  auto miner = CreateMiner(MinerKind::kFpGrowth);
  auto result =
      miner->Mine(db, AbsoluteSupport(fraction, db.NumTransactions()));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(NegativeBorderTest, InitializeMatchesDirectMining) {
  const TransactionDb db = RandomDb(141, 300, 30, 5.0);
  NegativeBorderMiner miner(0.05);
  ASSERT_TRUE(miner.Initialize(db).ok());
  PatternSet expected = Direct(db, 0.05);
  PatternSet got = miner.Frequent();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
  EXPECT_GT(miner.BorderSize(), 0u);
}

TEST(NegativeBorderTest, InsertStaysExactOverManyBatches) {
  TransactionDb accumulated = RandomDb(142, 200, 25, 5.0);
  NegativeBorderMiner miner(0.04);
  ASSERT_TRUE(miner.Initialize(accumulated).ok());
  for (int round = 0; round < 4; ++round) {
    const TransactionDb batch = RandomDb(1420 + round, 120, 25, 5.0);
    ASSERT_TRUE(miner.Insert(batch).ok());
    for (Tid t = 0; t < batch.NumTransactions(); ++t) {
      accumulated.AddCanonicalTransaction(batch.Transaction(t));
    }
    PatternSet expected = Direct(accumulated, 0.04);
    PatternSet got = miner.Frequent();
    EXPECT_TRUE(PatternSet::Equal(&expected, &got)) << "round " << round;
    EXPECT_EQ(miner.NumTransactions(), accumulated.NumTransactions());
  }
}

TEST(NegativeBorderTest, HandlesBrandNewItems) {
  TransactionDb db = testutil::MakeDb({{1, 2}, {1, 2}, {1}});
  NegativeBorderMiner miner(0.5);
  ASSERT_TRUE(miner.Initialize(db).ok());

  // A batch dominated by an item never seen before.
  TransactionDb batch;
  for (int i = 0; i < 5; ++i) batch.AddTransaction({9, 1});
  ASSERT_TRUE(miner.Insert(batch).ok());

  TransactionDb all = db;
  for (Tid t = 0; t < batch.NumTransactions(); ++t) {
    all.AddCanonicalTransaction(batch.Transaction(t));
  }
  PatternSet expected = Direct(all, 0.5);
  PatternSet got = miner.Frequent();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
  // {9} and {1,9} must have been discovered via promotion + expansion.
  EXPECT_GT(got.SupportOf(std::vector<ItemId>{9}), 0u);
}

TEST(NegativeBorderTest, DistributionShiftForcesExpansion) {
  // Batches drawn from a different pattern table promote border members.
  NegativeBorderMiner miner(0.05);
  ASSERT_TRUE(miner.Initialize(RandomDb(143, 300, 30, 5.0)).ok());
  ASSERT_TRUE(miner.Insert(RandomDb(999, 300, 30, 8.0)).ok());
  EXPECT_GE(miner.stats().full_db_expansions, 1u);
  EXPECT_GT(miner.stats().candidates_counted, 0u);
}

TEST(NegativeBorderTest, ApiMisuseRejected) {
  NegativeBorderMiner miner(0.1);
  EXPECT_FALSE(miner.Insert(TransactionDb()).ok());  // Before Initialize.
  ASSERT_TRUE(miner.Initialize(RandomDb(144, 50, 10, 4.0)).ok());
  EXPECT_FALSE(miner.Initialize(RandomDb(144, 50, 10, 4.0)).ok());  // Twice.
}

TEST(NegativeBorderTest, ThresholdTracksGrowth) {
  // With fraction 0.5 and 4 transactions, threshold 2; adding 4 more makes
  // it 4 — previously frequent itemsets may demote.
  TransactionDb db = testutil::MakeDb({{1}, {1}, {2}, {2}});
  NegativeBorderMiner miner(0.5);
  ASSERT_TRUE(miner.Initialize(db).ok());
  EXPECT_EQ(miner.Frequent().size(), 2u);  // {1}:2 and {2}:2.

  TransactionDb batch = testutil::MakeDb({{3}, {3}, {3}, {3}});
  ASSERT_TRUE(miner.Insert(batch).ok());
  // n=8, threshold 4: only {3}:4 qualifies.
  PatternSet got = miner.Frequent();
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(got.SupportOf(std::vector<ItemId>{3}), 4u);
}

}  // namespace
}  // namespace gogreen::fpm
