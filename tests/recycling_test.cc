// End-to-end correctness of the recycling pipeline: mine FP at xi_old,
// compress, re-mine the compressed database at a relaxed xi_new with each
// adapted algorithm, and compare with direct mining. Also pins the paper's
// worked Example 3.

#include <gtest/gtest.h>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::core {
namespace {

using fpm::ItemId;
using fpm::PatternSet;
using fpm::TransactionDb;
using testutil::PaperExampleDb;
using testutil::RandomDb;
using testutil::RandomDenseDb;

constexpr RecycleAlgo kAllRecycleAlgos[] = {
    RecycleAlgo::kNaive, RecycleAlgo::kHMine, RecycleAlgo::kFpGrowth,
    RecycleAlgo::kTreeProjection};

PatternSet MustMineDirect(const TransactionDb& db, uint64_t minsup) {
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

CompressedDb MustCompress(const TransactionDb& db, const PatternSet& fp,
                          CompressionStrategy strategy) {
  auto result = CompressDatabase(db, fp, {strategy, MatcherKind::kAuto});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

PatternSet MustMineCompressed(RecycleAlgo algo, const CompressedDb& cdb,
                              uint64_t minsup) {
  auto miner = CreateCompressedMiner(algo);
  auto result = miner->MineCompressed(cdb, minsup);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(RecyclingTest, PaperExample3EndToEnd) {
  // xi_old = 3 -> compress with MCP -> mine at xi_new = 2 (Example 3).
  constexpr ItemId a = 0, c = 2, d = 3, e = 4, f = 5, g = 6;
  const TransactionDb db = PaperExampleDb();
  const PatternSet fp_old = MustMineDirect(db, 3);
  const CompressedDb cdb = MustCompress(db, fp_old, CompressionStrategy::kMcp);

  PatternSet expected = MustMineDirect(db, 2);
  for (RecycleAlgo algo : kAllRecycleAlgos) {
    SCOPED_TRACE(RecycleAlgoName(algo));
    PatternSet got = MustMineCompressed(algo, cdb, 2);
    EXPECT_TRUE(PatternSet::Equal(&expected, &got))
        << "missing: " << PatternSet::Difference(&expected, &got).size()
        << " extra: " << PatternSet::Difference(&got, &expected).size();
    // Spot-check the patterns the paper enumerates in Example 3.
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, d, f, g}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{d, f}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, e, f, g}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{a, c, e}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{a, e}), 3u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{f, g}), 3u);
  }
}

struct RecyclingParam {
  uint64_t seed;
  bool dense;
  uint64_t xi_old;
  uint64_t xi_new;
  CompressionStrategy strategy;
};

class RecyclingEquivalenceTest
    : public testing::TestWithParam<RecyclingParam> {};

TEST_P(RecyclingEquivalenceTest, CompressedMiningEqualsDirectMining) {
  const RecyclingParam& p = GetParam();
  const TransactionDb db = p.dense ? RandomDenseDb(p.seed, 250, 10, 3)
                                   : RandomDb(p.seed, 400, 60, 7.0);
  const PatternSet fp_old = MustMineDirect(db, p.xi_old);
  const CompressedDb cdb = MustCompress(db, fp_old, p.strategy);

  PatternSet expected = MustMineDirect(db, p.xi_new);
  for (RecycleAlgo algo : kAllRecycleAlgos) {
    SCOPED_TRACE(RecycleAlgoName(algo));
    PatternSet got = MustMineCompressed(algo, cdb, p.xi_new);
    EXPECT_TRUE(PatternSet::Equal(&expected, &got))
        << "missing: " << PatternSet::Difference(&expected, &got).size()
        << " extra: " << PatternSet::Difference(&got, &expected).size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SparseMcp, RecyclingEquivalenceTest,
    testing::Values(
        RecyclingParam{101, false, 40, 15, CompressionStrategy::kMcp},
        RecyclingParam{102, false, 60, 20, CompressionStrategy::kMcp},
        RecyclingParam{103, false, 30, 8, CompressionStrategy::kMcp},
        RecyclingParam{104, false, 100, 5, CompressionStrategy::kMcp}));

INSTANTIATE_TEST_SUITE_P(
    SparseMlp, RecyclingEquivalenceTest,
    testing::Values(
        RecyclingParam{101, false, 40, 15, CompressionStrategy::kMlp},
        RecyclingParam{105, false, 50, 12, CompressionStrategy::kMlp}));

INSTANTIATE_TEST_SUITE_P(
    DenseMcp, RecyclingEquivalenceTest,
    testing::Values(
        RecyclingParam{201, true, 200, 120, CompressionStrategy::kMcp},
        RecyclingParam{202, true, 180, 100, CompressionStrategy::kMcp}));

INSTANTIATE_TEST_SUITE_P(
    DenseMlp, RecyclingEquivalenceTest,
    testing::Values(
        RecyclingParam{201, true, 200, 120, CompressionStrategy::kMlp}));

TEST(RecyclingTest, SameThresholdReproducesRecycledSet) {
  // xi_new == xi_old: mining the compressed database must reproduce exactly
  // the recycled pattern set.
  const TransactionDb db = RandomDb(7, 300, 40, 6.0);
  PatternSet fp_old = MustMineDirect(db, 30);
  const CompressedDb cdb = MustCompress(db, fp_old, CompressionStrategy::kMcp);
  for (RecycleAlgo algo : kAllRecycleAlgos) {
    SCOPED_TRACE(RecycleAlgoName(algo));
    PatternSet got = MustMineCompressed(algo, cdb, 30);
    EXPECT_TRUE(PatternSet::Equal(&fp_old, &got));
  }
}

TEST(RecyclingTest, UncompressedCdbStillMinesCorrectly) {
  // A CDB produced with an empty pattern set is just the original database;
  // the compressed miners must behave like plain miners on it.
  const TransactionDb db = RandomDb(9, 200, 30, 5.0);
  const CompressedDb cdb = MustCompress(db, PatternSet(),
                                        CompressionStrategy::kMcp);
  PatternSet expected = MustMineDirect(db, 10);
  for (RecycleAlgo algo : kAllRecycleAlgos) {
    SCOPED_TRACE(RecycleAlgoName(algo));
    PatternSet got = MustMineCompressed(algo, cdb, 10);
    EXPECT_TRUE(PatternSet::Equal(&expected, &got));
  }
}

TEST(RecyclingTest, MinSupportZeroRejected) {
  const CompressedDb cdb = MustCompress(PaperExampleDb(), PatternSet(),
                                        CompressionStrategy::kMcp);
  for (RecycleAlgo algo : kAllRecycleAlgos) {
    auto miner = CreateCompressedMiner(algo);
    auto result = miner->MineCompressed(cdb, 0);
    EXPECT_FALSE(result.ok());
  }
}

TEST(RecyclingTest, EmptyCdbYieldsEmptySet) {
  CompressedDb cdb;
  for (RecycleAlgo algo : kAllRecycleAlgos) {
    SCOPED_TRACE(RecycleAlgoName(algo));
    const PatternSet got = MustMineCompressed(algo, cdb, 1);
    EXPECT_TRUE(got.empty());
  }
}

TEST(RecyclingTest, StatsShowGroupCountingSavings) {
  // The compressed H-Mine variant must touch far fewer item occurrences
  // than plain H-Mine at the same threshold — that is the entire point of
  // recycling (Section 3.1).
  const TransactionDb db = RandomDenseDb(55, 400, 10, 3);
  const PatternSet fp_old = MustMineDirect(db, 320);
  const CompressedDb cdb = MustCompress(db, fp_old, CompressionStrategy::kMcp);

  auto direct = fpm::CreateMiner(fpm::MinerKind::kHMine);
  ASSERT_TRUE(direct->Mine(db, 240).ok());
  auto recycled = CreateCompressedMiner(RecycleAlgo::kHMine);
  ASSERT_TRUE(recycled->MineCompressed(cdb, 240).ok());
  EXPECT_LT(recycled->stats().items_scanned, direct->stats().items_scanned);
}

}  // namespace
}  // namespace gogreen::core
