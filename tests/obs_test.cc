// Tests for the observability layer: metric instrument semantics (including
// concurrent updates), trace span aggregation and nesting, and the JSON
// serializations consumed by --metrics-json / --trace.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gogreen::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrements) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndUpdateMax) {
  Gauge g;
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(5);  // Lower: no change.
  EXPECT_EQ(g.Value(), 10);
  g.UpdateMax(20);
  EXPECT_EQ(g.Value(), 20);
  g.Set(-3);  // Set is last-write-wins regardless of direction.
  EXPECT_EQ(g.Value(), -3);
}

TEST(GaugeTest, ConcurrentUpdateMaxKeepsMaximum) {
  Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 5000; ++i) g.UpdateMax(t * 5000 + i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.Value(), (kThreads - 1) * 5000 + 4999);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1.0 -> bucket 0.
  h.Observe(1.0);    // Boundary counts into its bucket.
  h.Observe(5.0);    // bucket 1.
  h.Observe(50.0);   // bucket 2.
  h.Observe(500.0);  // Overflow bucket.
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 556.5);
}

TEST(HistogramTest, ConcurrentObserveSumsExactly) {
  Histogram h({1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(0.5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.TotalCount(), static_cast<uint64_t>(kThreads) * kPerThread);
  // 0.5 is exactly representable, so the CAS-loop sum has no rounding.
  EXPECT_DOUBLE_EQ(h.Sum(), kThreads * kPerThread * 0.5);
}

TEST(RegistryTest, InstrumentPointersAreStable) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("test.counter");
  Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(registry.GetCounter("test.counter")->Value(), 7u);
  EXPECT_EQ(registry.GetGauge("test.gauge"), registry.GetGauge("test.gauge"));
  EXPECT_EQ(registry.GetHistogram("test.hist"),
            registry.GetHistogram("test.hist"));
}

TEST(RegistryTest, ResetValuesKeepsInstruments) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  c->Add(5);
  registry.GetGauge("test.gauge")->Set(9);
  registry.ResetValues();
  EXPECT_EQ(c, registry.GetCounter("test.counter"));
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(registry.GetGauge("test.gauge")->Value(), 0);
}

TEST(RegistryTest, SnapshotIsNameSortedAndQueryable) {
  MetricRegistry registry;
  registry.GetCounter("z.last")->Add(1);
  registry.GetCounter("a.first")->Add(2);
  registry.GetGauge("m.gauge")->Set(-4);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "z.last");
  EXPECT_EQ(snap.CounterValue("z.last"), 1u);
  EXPECT_EQ(snap.CounterValue("missing", 99), 99u);
  EXPECT_EQ(snap.GaugeValue("m.gauge"), -4);
}

TEST(RegistryTest, ConcurrentGetAndUpdate) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared.counter")->Add();
        registry.GetCounter("other.counter")->Add(2);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(), 8000u);
  EXPECT_EQ(registry.GetCounter("other.counter")->Value(), 16000u);
}

// The snapshot JSON must round-trip the recorded values. The project has no
// JSON parser dependency, so the check is on the exact serialized fragments
// (the format is pinned by DESIGN.md and consumed by scripts).
TEST(SnapshotJsonTest, ContainsSerializedValues) {
  MetricRegistry registry;
  registry.GetCounter("mine.items_scanned")->Add(123);
  registry.GetGauge("process.peak_rss_bytes")->Set(4096);
  Histogram* h = registry.GetHistogram("mine.seconds", {0.5, 1.0});
  h->Observe(0.25);
  h->Observe(2.0);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"mine.items_scanned\":123"), std::string::npos);
  EXPECT_NE(json.find("\"process.peak_rss_bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"mine.seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[0.5,1]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[1,0,1]"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  // Balanced braces => structurally plausible JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  MetricsSnapshot::HistogramData h;
  h.bounds = {1.0, 2.0, 4.0};
  // 10 observations in (1, 2], none elsewhere.
  h.buckets = {0, 10, 0, 0};
  h.count = 10;
  // Rank q*10 lands in bucket (1, 2]: linear interpolation inside it.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
  // First bucket interpolates from zero.
  h.buckets = {10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.5);
  // Overflow bucket clamps to the largest finite bound.
  h.buckets = {0, 0, 0, 10};
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 4.0);
  // Empty histogram: 0, not NaN.
  h.buckets = {0, 0, 0, 0};
  h.count = 0;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramQuantileTest, SplitAcrossBuckets) {
  MetricsSnapshot::HistogramData h;
  h.bounds = {1.0, 2.0};
  h.buckets = {5, 5, 0};  // p50 is exactly the first bound.
  h.count = 10;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), 1.9);
}

// The JSON histogram document gains p50/p95/p99 while keeping the original
// bounds/buckets/count/sum fields (backward compatibility for scripts).
TEST(SnapshotJsonTest, HistogramsIncludeQuantiles) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("mine.seconds", {1.0, 2.0});
  for (int i = 0; i < 10; ++i) h->Observe(1.5);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"bounds\":[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"count\":10"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":15"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":1.95"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":1.99"), std::string::npos);
}

TEST(MetricsPromTest, ExposesCountersGaugesAndHistograms) {
  // The global registry may carry instruments from other tests in this
  // binary; assert on fragments, not the whole document.
  MetricRegistry::Global().GetCounter("serve.requests")->Add(3);
  MetricRegistry::Global().GetGauge("serve.store_bytes")->Set(1024);
  Histogram* h = MetricRegistry::Global().GetHistogram("serve.seconds");
  h->Observe(0.002);
  h->Observe(50.0);
  const std::string prom = MetricsProm();
  EXPECT_NE(prom.find("# TYPE gogreen_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("gogreen_serve_requests_total 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE gogreen_serve_store_bytes gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE gogreen_serve_seconds histogram"),
            std::string::npos);
  // Cumulative buckets: the 0.003 bucket holds the 0.002 observation, the
  // +Inf bucket the total count.
  EXPECT_NE(prom.find("gogreen_serve_seconds_bucket{le=\"0.003\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("gogreen_serve_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("gogreen_serve_seconds_count 2"), std::string::npos);
  // Process gauges refresh on render, and no raw dotted metric name leaks
  // out (dots are only legal inside span labels).
  EXPECT_NE(prom.find("gogreen_process_peak_rss_bytes"), std::string::npos);
  EXPECT_EQ(prom.find("serve.requests"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
}

TEST(PeakRssTest, ReportsPositiveOnLinux) {
  EXPECT_GT(ReadPeakRssBytes(), 0);
}

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Enable(/*record_events=*/true);
    Tracer::Global().Reset();
  }
  void TearDown() override { Tracer::Global().Disable(); }
};

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  Tracer::Global().Disable();
  { GOGREEN_TRACE_SPAN("test.noop"); }
  EXPECT_EQ(Tracer::Global().SecondsFor("test.noop"), 0.0);
  EXPECT_TRUE(Tracer::Global().Events().empty());
}

TEST_F(TracerTest, SpanAggregatesByName) {
  for (int i = 0; i < 3; ++i) {
    GOGREEN_TRACE_SPAN("test.outer");
  }
  EXPECT_GT(Tracer::Global().SecondsFor("test.outer"), 0.0);
  auto aggregates = Tracer::Global().AggregateSeconds();
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_EQ(aggregates[0].first, "test.outer");
  EXPECT_EQ(Tracer::Global().Events().size(), 3u);
}

TEST_F(TracerTest, NestedSpansRecordDepth) {
  {
    GOGREEN_TRACE_SPAN("test.outer");
    {
      GOGREEN_TRACE_SPAN("test.inner");
    }
  }
  auto events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Inner span finishes first.
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "test.outer");
  EXPECT_EQ(events[1].depth, 0u);
  // The outer span fully contains the inner one.
  EXPECT_LE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[1].dur_us, events[0].dur_us);
}

TEST_F(TracerTest, ThreadsGetDistinctIds) {
  {
    GOGREEN_TRACE_SPAN("test.main");
  }
  std::thread other([] { GOGREEN_TRACE_SPAN("test.worker"); });
  other.join();
  auto events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TracerTest, ChromeTraceJsonContainsEvents) {
  {
    GOGREEN_TRACE_SPAN("test.phase");
  }
  const std::string json = Tracer::Global().ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(TracerTest, ResetDropsSpansButKeepsEnabled) {
  {
    GOGREEN_TRACE_SPAN("test.phase");
  }
  Tracer::Global().Reset();
  EXPECT_TRUE(Tracer::Global().enabled());
  EXPECT_TRUE(Tracer::Global().Events().empty());
  EXPECT_EQ(Tracer::Global().SecondsFor("test.phase"), 0.0);
}

// Per-request phase attribution: aggregates are cumulative, so a second
// unit of work brackets itself with snapshots and reads only its own
// delta, not its predecessors' (the long-session leak this API fixes).
TEST_F(TracerTest, SnapshotDeltaIsolatesConsecutiveWork) {
  {
    GOGREEN_TRACE_SPAN("test.phase");
  }
  const auto before = Tracer::Global().AggregateSnapshot();
  const double earlier = Tracer::Global().SecondsFor("test.phase");
  {
    GOGREEN_TRACE_SPAN("test.phase");
    GOGREEN_TRACE_SPAN("test.second_only");
  }
  const auto after = Tracer::Global().AggregateSnapshot();
  const auto delta = Tracer::DeltaSeconds(before, after);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].first, "test.phase");
  EXPECT_EQ(delta[1].first, "test.second_only");
  // The delta excludes the first span's time even though the aggregate
  // includes it.
  EXPECT_LT(delta[0].second, Tracer::Global().SecondsFor("test.phase"));
  EXPECT_GT(Tracer::Global().SecondsFor("test.phase"), earlier);
  // Identical snapshots -> empty delta (zero-change names are omitted).
  EXPECT_TRUE(Tracer::DeltaSeconds(after, after).empty());
}

TEST_F(TracerTest, MetricsJsonSplicesSpans) {
  {
    GOGREEN_TRACE_SPAN("test.phase");
  }
  MetricRegistry::Global().GetCounter("mine.items_scanned")->Add(0);
  const std::string json = MetricsJson();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"test.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  // Process gauges are refreshed by MetricsJson().
  EXPECT_NE(json.find("\"process.peak_rss_bytes\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace gogreen::obs
