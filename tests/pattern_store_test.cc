// Unit tests for serve::PatternStore: the byte budget is a hard ceiling
// that is never exceeded at any point in an insertion sequence, eviction is
// least-recently-used with memoized compressed images dropped before whole
// pattern sets, oversized entries are rejected outright, and persistence
// round-trips through crash-safe pattern files (corrupted files are skipped,
// not fatal).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/compressor.h"
#include "core/seed_selection.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "serve/pattern_store.h"
#include "tests/test_util.h"

namespace gogreen {
namespace {

using fpm::ItemId;
using fpm::PatternSet;
using serve::PatternSetCost;
using serve::PatternStore;
using serve::StoreKey;
using serve::StoreStats;

StoreKey Key(uint64_t min_support, const std::string& dataset = "db",
             const std::string& fingerprint = "") {
  StoreKey key;
  key.dataset_id = dataset;
  key.constraint_fingerprint = fingerprint;
  key.min_support = min_support;
  return key;
}

/// A pattern set with `n` single-item patterns — cost grows with `n`.
PatternSet SetOfSize(size_t n, uint64_t support = 5) {
  PatternSet fp;
  for (size_t i = 0; i < n; ++i) {
    fp.Add({static_cast<ItemId>(i)}, support);
  }
  return fp;
}

/// A scratch directory under the test tmpdir, wiped on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("gogreen_store_test_" + name +
               std::to_string(static_cast<unsigned>(::getpid())))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(PatternStoreTest, PutGetRoundTrip) {
  PatternStore store;
  PatternSet fp = SetOfSize(3);
  ASSERT_TRUE(store.Put(Key(10), fp, 100));
  auto got = store.Get(Key(10));
  ASSERT_NE(got, nullptr);
  PatternSet copy = *got;
  EXPECT_TRUE(PatternSet::Equal(&fp, &copy));
  EXPECT_EQ(store.NumTransactionsOf(Key(10)), 100u);
  EXPECT_EQ(store.Get(Key(11)), nullptr);
  EXPECT_EQ(store.NumTransactionsOf(Key(11)), 0u);
}

TEST(PatternStoreTest, KeysDistinguishDatasetAndFingerprint) {
  PatternStore store;
  ASSERT_TRUE(store.Put(Key(10, "a"), SetOfSize(1), 1));
  ASSERT_TRUE(store.Put(Key(10, "b"), SetOfSize(2), 2));
  ASSERT_TRUE(store.Put(Key(10, "a", "len>=2"), SetOfSize(3), 3));
  EXPECT_EQ(store.Get(Key(10, "a"))->size(), 1u);
  EXPECT_EQ(store.Get(Key(10, "b"))->size(), 2u);
  EXPECT_EQ(store.Get(Key(10, "a", "len>=2"))->size(), 3u);
}

TEST(PatternStoreTest, PutReplacesExistingEntry) {
  PatternStore store;
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(2), 50));
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(7), 60));
  EXPECT_EQ(store.stats().entries, 1u);
  EXPECT_EQ(store.Get(Key(10))->size(), 7u);
  EXPECT_EQ(store.NumTransactionsOf(Key(10)), 60u);
  // The accounted bytes reflect only the replacement.
  EXPECT_EQ(store.bytes_in_use(), PatternSetCost(SetOfSize(7)));
}

TEST(PatternStoreTest, BudgetIsNeverExceededDuringInsertSequence) {
  PatternStore::Options options;
  options.byte_budget = 4 * PatternSetCost(SetOfSize(8));
  PatternStore store(options);
  // Insert far more than fits; after every single operation the accounted
  // bytes must stay at or under the ceiling.
  for (uint64_t s = 1; s <= 64; ++s) {
    store.Put(Key(s * 10), SetOfSize(1 + (s % 8)), 100);
    ASSERT_LE(store.bytes_in_use(), store.byte_budget())
        << "budget exceeded after insert " << s;
  }
  const StoreStats stats = store.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GE(stats.entries, 1u);
  EXPECT_LE(stats.bytes_in_use, stats.byte_budget);
}

TEST(PatternStoreTest, EvictionIsLeastRecentlyUsedFirst) {
  PatternStore::Options options;
  options.byte_budget = 3 * PatternSetCost(SetOfSize(4));
  PatternStore store(options);
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(4), 1));
  ASSERT_TRUE(store.Put(Key(20), SetOfSize(4), 1));
  ASSERT_TRUE(store.Put(Key(30), SetOfSize(4), 1));
  // Touch the oldest so the middle entry becomes least-recently-used.
  ASSERT_NE(store.Get(Key(10)), nullptr);
  ASSERT_TRUE(store.Put(Key(40), SetOfSize(4), 1));
  EXPECT_EQ(store.Get(Key(20)), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(store.Get(Key(10)), nullptr);
  EXPECT_NE(store.Get(Key(30)), nullptr);
  EXPECT_NE(store.Get(Key(40)), nullptr);
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(PatternStoreTest, OversizedEntryIsRejectedWithoutDisturbingStore) {
  PatternStore::Options options;
  options.byte_budget = PatternSetCost(SetOfSize(4));
  PatternStore store(options);
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(2), 1));
  const size_t before = store.bytes_in_use();
  // This set alone exceeds the whole budget: rejected, nothing evicted.
  EXPECT_FALSE(store.Put(Key(20), SetOfSize(64), 1));
  EXPECT_EQ(store.bytes_in_use(), before);
  EXPECT_NE(store.Get(Key(10)), nullptr);
  EXPECT_EQ(store.Get(Key(20)), nullptr);
}

TEST(PatternStoreTest, EvictionDropsReferenceNotReader) {
  PatternStore::Options options;
  options.byte_budget = PatternSetCost(SetOfSize(6));
  PatternStore store(options);
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(6), 1));
  auto held = store.Get(Key(10));
  ASSERT_NE(held, nullptr);
  ASSERT_TRUE(store.Put(Key(20), SetOfSize(6), 1));  // Evicts Key(10).
  EXPECT_EQ(store.Get(Key(10)), nullptr);
  // The reader's shared_ptr stays valid after eviction.
  EXPECT_EQ(held->size(), 6u);
}

TEST(PatternStoreTest, CompressedImagesEvictBeforePatternSets) {
  const fpm::TransactionDb db = testutil::PaperExampleDb();
  auto mined = fpm::CreateMiner(fpm::MinerKind::kApriori)->Mine(db, 3);
  ASSERT_TRUE(mined.ok());
  auto compressed = core::CompressDatabase(
      db, mined.value(),
      {core::CompressionStrategy::kMcp, core::MatcherKind::kAuto});
  ASSERT_TRUE(compressed.ok());
  auto cdb = std::make_shared<const core::CompressedDb>(
      std::move(compressed).value());

  const size_t image_cost = cdb->MemoryUsage();
  const size_t set_cost = PatternSetCost(SetOfSize(1));
  // Precondition of the deterministic scenario below: freeing the image
  // makes room for one more pattern set.
  ASSERT_GE(image_cost, set_cost);

  PatternStore::Options options;
  options.byte_budget = 3 * set_cost + image_cost;
  PatternStore store(options);
  ASSERT_TRUE(store.Put(Key(3), SetOfSize(1), db.NumTransactions()));
  store.PutCompressed(Key(3), cdb);
  ASSERT_EQ(store.stats().compressed_images, 1u);
  ASSERT_TRUE(store.Put(Key(5), SetOfSize(1), db.NumTransactions()));
  ASSERT_TRUE(store.Put(Key(7), SetOfSize(1), db.NumTransactions()));
  ASSERT_LE(store.bytes_in_use(), store.byte_budget());

  // The store is full. One more set: the image of Key(3) must be dropped
  // to make room — and no whole pattern set with it.
  ASSERT_TRUE(store.Put(Key(9), SetOfSize(1), db.NumTransactions()));
  ASSERT_LE(store.bytes_in_use(), store.byte_budget());
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.compressed_images, 0u);
  EXPECT_EQ(stats.image_evictions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_NE(store.Get(Key(3)), nullptr)
      << "pattern set must survive while its image is evicted";
}

TEST(PatternStoreTest, PutCompressedOnMissingKeyIsNoOp) {
  PatternStore store;
  store.PutCompressed(Key(10), nullptr);
  store.PutCompressed(Key(10),
                      std::make_shared<const core::CompressedDb>());
  EXPECT_EQ(store.stats().compressed_images, 0u);
  EXPECT_EQ(store.bytes_in_use(), 0u);
}

TEST(PatternStoreTest, CandidatesReportSupportsAndImages) {
  PatternStore store;
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(2), 1));
  ASSERT_TRUE(store.Put(Key(20), SetOfSize(2), 1));
  ASSERT_TRUE(store.Put(Key(20, "db", "len>=2"), SetOfSize(1), 1));
  ASSERT_TRUE(store.Put(Key(20, "other"), SetOfSize(1), 1));
  auto candidates = store.Candidates("db", "");
  ASSERT_EQ(candidates.size(), 2u);  // Fingerprinted/foreign keys excluded.
  // Tags carry the support so SelectSeed's choice maps back to a key.
  for (const core::SeedCandidate& cand : candidates) {
    EXPECT_EQ(cand.tag, static_cast<size_t>(cand.min_support));
    EXPECT_TRUE(cand.min_support == 10 || cand.min_support == 20);
  }
  const core::SeedChoice choice = core::SelectSeed(candidates, 15);
  EXPECT_EQ(choice.route, core::SeedRoute::kFilterDown);
  EXPECT_EQ(choice.min_support, 10u);
}

TEST(PatternStoreTest, ClearReleasesEverything) {
  PatternStore store;
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(5), 1));
  ASSERT_TRUE(store.Put(Key(20), SetOfSize(5), 1));
  store.Clear();
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_EQ(store.bytes_in_use(), 0u);
  EXPECT_EQ(store.Get(Key(10)), nullptr);
}

TEST(PatternStoreTest, PersistenceRoundTrip) {
  ScratchDir dir("roundtrip");
  PatternSet fp10 = SetOfSize(4, 10);
  PatternSet fp20 = SetOfSize(2, 20);
  {
    PatternStore store;
    ASSERT_TRUE(store.Put(Key(10, "weather-sub"), fp10, 500));
    ASSERT_TRUE(store.Put(Key(20, "weather-sub", "len>=2"), fp20, 500));
    ASSERT_TRUE(store.SaveTo(dir.str()).ok());
  }
  PatternStore reloaded;
  size_t skipped = 99;
  ASSERT_TRUE(reloaded.LoadFrom(dir.str(), &skipped).ok());
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(reloaded.stats().entries, 2u);
  auto got = reloaded.Get(Key(10, "weather-sub"));
  ASSERT_NE(got, nullptr);
  PatternSet copy = *got;
  EXPECT_TRUE(PatternSet::Equal(&fp10, &copy));
  EXPECT_EQ(reloaded.NumTransactionsOf(Key(10, "weather-sub")), 500u);
  // The fingerprinted entry kept its fingerprint through the file format.
  auto constrained = reloaded.Get(Key(20, "weather-sub", "len>=2"));
  ASSERT_NE(constrained, nullptr);
  PatternSet copy20 = *constrained;
  EXPECT_TRUE(PatternSet::Equal(&fp20, &copy20));
}

TEST(PatternStoreTest, DatasetIdsWithPathCharactersPersist) {
  ScratchDir dir("pathchars");
  // Ids that are file paths (the CLI defaults dataset_id to the input path)
  // must not break the per-entry file naming.
  const std::string id = "/tmp/data/session input.dat";
  {
    PatternStore store;
    ASSERT_TRUE(store.Put(Key(10, id), SetOfSize(3), 42));
    ASSERT_TRUE(store.SaveTo(dir.str()).ok());
  }
  PatternStore reloaded;
  ASSERT_TRUE(reloaded.LoadFrom(dir.str()).ok());
  ASSERT_NE(reloaded.Get(Key(10, id)), nullptr);
  EXPECT_EQ(reloaded.NumTransactionsOf(Key(10, id)), 42u);
}

TEST(PatternStoreTest, LoadSkipsCorruptedFilesAndKeepsGoodOnes) {
  ScratchDir dir("corrupt");
  {
    PatternStore store;
    ASSERT_TRUE(store.Put(Key(10), SetOfSize(4), 100));
    ASSERT_TRUE(store.Put(Key(20), SetOfSize(4), 100));
    ASSERT_TRUE(store.SaveTo(dir.str()).ok());
  }
  // Corrupt one of the two files by flipping a byte in the middle; add a
  // file that is not a pattern file at all.
  std::vector<std::string> files;
  for (const auto& ent : std::filesystem::directory_iterator(dir.str())) {
    if (ent.path().extension() == ".gpat") files.push_back(ent.path());
  }
  ASSERT_EQ(files.size(), 2u);
  {
    std::fstream f(files[0],
                   std::ios::in | std::ios::out | std::ios::binary);
    const auto size = std::filesystem::file_size(files[0]);
    f.seekp(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(size / 2));
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(size / 2));
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  {
    std::ofstream junk(dir.str() + "/junk.gpat");
    junk << "this is not a pattern file\n";
  }

  PatternStore reloaded;
  size_t skipped = 0;
  ASSERT_TRUE(reloaded.LoadFrom(dir.str(), &skipped).ok());
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(reloaded.stats().entries, 1u);
}

TEST(PatternStoreTest, LoadFromMissingDirectoryFails) {
  PatternStore store;
  EXPECT_FALSE(store.LoadFrom("/nonexistent/gogreen/store").ok());
}

// Concurrency smoke for the sharded store, aimed at the TSan CI leg:
// threads hammer every mutating and reading operation over a small hot key
// range while the byte budget stays a hard ceiling at every observation.
// Correctness of individual operations is covered above; this test is
// about data races and the global-ledger invariant under contention.
TEST(PatternStoreTest, ConcurrentMixedOperationsHoldBudgetInvariant) {
  const fpm::TransactionDb db = testutil::PaperExampleDb();
  auto mined = fpm::CreateMiner(fpm::MinerKind::kApriori)->Mine(db, 3);
  ASSERT_TRUE(mined.ok());
  auto compressed = core::CompressDatabase(
      db, mined.value(),
      {core::CompressionStrategy::kMcp, core::MatcherKind::kAuto});
  ASSERT_TRUE(compressed.ok());
  auto cdb = std::make_shared<const core::CompressedDb>(
      std::move(compressed).value());

  // Room for only a handful of the ~16 hot keys: constant eviction churn.
  PatternStore::Options options;
  options.byte_budget = 5 * PatternSetCost(SetOfSize(8)) + cdb->MemoryUsage();
  PatternStore store(options);
  const size_t budget = store.byte_budget();

  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 400;
  constexpr uint64_t kHotKeys = 16;
  std::atomic<uint64_t> budget_violations{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(77 + static_cast<unsigned>(t));
      std::uniform_int_distribution<uint64_t> pick_key(1, kHotKeys);
      std::uniform_int_distribution<int> pick_op(0, 9);
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        const StoreKey key = Key(pick_key(rng));
        switch (pick_op(rng)) {
          case 0:
          case 1:
          case 2:
            store.Put(key, SetOfSize(1 + key.min_support % 8),
                      db.NumTransactions());
            break;
          case 3:
            store.PutCompressed(key, cdb);
            break;
          case 4:
          case 5:
            store.Get(key);
            break;
          case 6:
            store.GetCompressed(key);
            break;
          case 7:
            store.Candidates("db", "");
            break;
          case 8:
            store.stats();
            break;
          case 9:
            if (op % 100 == 0) {
              store.Clear();
            } else {
              store.NumTransactionsOf(key);
            }
            break;
        }
        if (store.bytes_in_use() > budget) {
          budget_violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(budget_violations.load(), 0u)
      << "byte budget exceeded under concurrent mixed operations";
  const StoreStats stats = store.stats();
  EXPECT_LE(stats.bytes_in_use, stats.byte_budget);
  // The ledger reconciles with the surviving contents: re-inserting every
  // surviving key into a fresh store accounts to the same byte total.
  store.Clear();
  EXPECT_EQ(store.bytes_in_use(), 0u);
}

TEST(PatternStoreTest, ZeroBudgetRejectsEverything) {
  PatternStore::Options options;
  options.byte_budget = 0;
  PatternStore store(options);
  EXPECT_FALSE(store.Put(Key(10), SetOfSize(1), 1));
  EXPECT_EQ(store.Get(Key(10)), nullptr);
  EXPECT_EQ(store.bytes_in_use(), 0u);
  EXPECT_EQ(store.stats().entries, 0u);
  // A degenerate store still answers the read-side API coherently.
  EXPECT_TRUE(store.Candidates("db", "").empty());
  store.Clear();
  EXPECT_EQ(store.bytes_in_use(), 0u);
}

TEST(PatternStoreTest, TinyBudgetAdmitsOnlyWhatFits) {
  PatternStore::Options options;
  options.byte_budget = PatternSetCost(SetOfSize(2));
  PatternStore store(options);
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(2), 1));   // Exactly fits.
  EXPECT_FALSE(store.Put(Key(20), SetOfSize(3), 1));  // Alone too big.
  EXPECT_NE(store.Get(Key(10)), nullptr);
  EXPECT_EQ(store.bytes_in_use(), PatternSetCost(SetOfSize(2)));
}

TEST(PatternStoreTest, ShrinkBelowUsageEvictsLruToFit) {
  PatternStore store;  // Default (ample) budget.
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(4), 1));
  ASSERT_TRUE(store.Put(Key(20), SetOfSize(4), 1));
  ASSERT_TRUE(store.Put(Key(30), SetOfSize(4), 1));
  // Touch the oldest so the middle entry is the global LRU victim.
  ASSERT_NE(store.Get(Key(10)), nullptr);
  const size_t per_entry = PatternSetCost(SetOfSize(4));
  ASSERT_EQ(store.bytes_in_use(), 3 * per_entry);

  store.SetByteBudget(2 * per_entry);
  EXPECT_EQ(store.byte_budget(), 2 * per_entry);
  EXPECT_LE(store.bytes_in_use(), 2 * per_entry);
  EXPECT_EQ(store.Get(Key(20)), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(store.Get(Key(10)), nullptr);
  EXPECT_NE(store.Get(Key(30)), nullptr);
  EXPECT_GE(store.stats().evictions, 1u);
}

TEST(PatternStoreTest, ShrinkToZeroEmptiesStoreAndRegrowReadmits) {
  PatternStore store;
  ASSERT_TRUE(store.Put(Key(10), SetOfSize(3), 1));
  ASSERT_TRUE(store.Put(Key(20), SetOfSize(3), 1));

  store.SetByteBudget(0);
  EXPECT_EQ(store.byte_budget(), 0u);
  EXPECT_EQ(store.bytes_in_use(), 0u);
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_FALSE(store.Put(Key(30), SetOfSize(1), 1));  // Still zero budget.

  // Regrowing takes effect immediately: inserts admit again.
  store.SetByteBudget(size_t{1} << 20);
  ASSERT_TRUE(store.Put(Key(30), SetOfSize(3), 1));
  EXPECT_NE(store.Get(Key(30)), nullptr);
  EXPECT_LE(store.bytes_in_use(), store.byte_budget());
}

}  // namespace
}  // namespace gogreen
