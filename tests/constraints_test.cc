// Tests for the constraint framework (Section 2): categories, satisfaction,
// tighten/relax classification, and set-level comparison.

#include "core/constraints.h"

#include <gtest/gtest.h>

namespace gogreen::core {
namespace {

using fpm::Pattern;

TEST(ConstraintsTest, MaxLengthIsAntiMonotone) {
  auto c = MakeMaxLength(2);
  EXPECT_EQ(c->category(), ConstraintCategory::kAntiMonotone);
  EXPECT_TRUE(c->Satisfies(Pattern({1, 2}, 5)));
  EXPECT_FALSE(c->Satisfies(Pattern({1, 2, 3}, 5)));
}

TEST(ConstraintsTest, MaxLengthDelta) {
  auto old_c = MakeMaxLength(3);
  EXPECT_EQ(MakeMaxLength(3)->CompareTo(*old_c), ConstraintDelta::kUnchanged);
  EXPECT_EQ(MakeMaxLength(2)->CompareTo(*old_c), ConstraintDelta::kTightened);
  EXPECT_EQ(MakeMaxLength(5)->CompareTo(*old_c), ConstraintDelta::kRelaxed);
}

TEST(ConstraintsTest, MinLengthIsMonotone) {
  auto c = MakeMinLength(2);
  EXPECT_EQ(c->category(), ConstraintCategory::kMonotone);
  EXPECT_FALSE(c->Satisfies(Pattern({1}, 5)));
  EXPECT_TRUE(c->Satisfies(Pattern({1, 2}, 5)));
  // Raising the minimum length shrinks the solution space.
  EXPECT_EQ(MakeMinLength(3)->CompareTo(*MakeMinLength(2)),
            ConstraintDelta::kTightened);
  EXPECT_EQ(MakeMinLength(1)->CompareTo(*MakeMinLength(2)),
            ConstraintDelta::kRelaxed);
}

TEST(ConstraintsTest, ItemSubsetIsSuccinct) {
  auto c = MakeItemSubset({1, 2, 3});
  EXPECT_EQ(c->category(), ConstraintCategory::kSuccinct);
  EXPECT_TRUE(c->Satisfies(Pattern({1, 3}, 2)));
  EXPECT_FALSE(c->Satisfies(Pattern({1, 4}, 2)));
  EXPECT_EQ(MakeItemSubset({1, 2})->CompareTo(*c),
            ConstraintDelta::kTightened);
  EXPECT_EQ(MakeItemSubset({1, 2, 3, 4})->CompareTo(*c),
            ConstraintDelta::kRelaxed);
  EXPECT_EQ(MakeItemSubset({1, 5})->CompareTo(*c),
            ConstraintDelta::kIncomparable);
}

TEST(ConstraintsTest, RequiresAnySemantics) {
  auto c = MakeRequiresAny({3, 7});
  EXPECT_TRUE(c->Satisfies(Pattern({1, 3}, 2)));
  EXPECT_TRUE(c->Satisfies(Pattern({7}, 2)));
  EXPECT_FALSE(c->Satisfies(Pattern({1, 2}, 2)));
  // A larger required set accepts more patterns -> relaxed.
  EXPECT_EQ(MakeRequiresAny({3, 7, 9})->CompareTo(*c),
            ConstraintDelta::kRelaxed);
  EXPECT_EQ(MakeRequiresAny({3})->CompareTo(*c),
            ConstraintDelta::kTightened);
}

TEST(ConstraintsTest, MaxSumWithValues) {
  // Items 0..3 priced 1, 10, 100, 1000.
  const std::vector<double> prices = {1, 10, 100, 1000};
  auto c = MakeMaxSum(prices, 111);
  EXPECT_EQ(c->category(), ConstraintCategory::kAntiMonotone);
  EXPECT_TRUE(c->Satisfies(Pattern({0, 1, 2}, 1)));   // 111 <= 111
  EXPECT_FALSE(c->Satisfies(Pattern({0, 3}, 1)));     // 1001
  EXPECT_TRUE(c->Satisfies(Pattern({5}, 1)));  // Unknown item counts as 0.
  EXPECT_EQ(MakeMaxSum(prices, 50)->CompareTo(*c),
            ConstraintDelta::kTightened);
  EXPECT_EQ(MakeMaxSum(prices, 2000)->CompareTo(*c),
            ConstraintDelta::kRelaxed);
  // Different value tables cannot be compared.
  EXPECT_EQ(MakeMaxSum({1, 2}, 111)->CompareTo(*c),
            ConstraintDelta::kIncomparable);
}

TEST(ConstraintsTest, MinAvgIsConvertible) {
  const std::vector<double> v = {10, 20, 30};
  auto c = MakeMinAvg(v, 15);
  EXPECT_EQ(c->category(), ConstraintCategory::kConvertible);
  EXPECT_TRUE(c->Satisfies(Pattern({1}, 1)));       // avg 20
  EXPECT_TRUE(c->Satisfies(Pattern({0, 1, 2}, 1)));  // avg 20
  EXPECT_FALSE(c->Satisfies(Pattern({0}, 1)));       // avg 10
  EXPECT_EQ(MakeMinAvg(v, 25)->CompareTo(*c), ConstraintDelta::kTightened);
  EXPECT_EQ(MakeMinAvg(v, 5)->CompareTo(*c), ConstraintDelta::kRelaxed);
}

TEST(ConstraintSetTest, FilterAppliesSupportAndConstraints) {
  fpm::PatternSet fp;
  fp.Add({1}, 10);
  fp.Add({1, 2}, 8);
  fp.Add({1, 2, 3}, 4);
  fp.Add({2, 3}, 9);
  ConstraintSet cs(5);
  cs.Add(MakeMinLength(2));
  const fpm::PatternSet out = cs.Filter(fp);
  EXPECT_EQ(out.size(), 2u);  // {1,2}:8 and {2,3}:9.
}

TEST(ConstraintSetTest, CompareSupportOnly) {
  ConstraintSet old_cs(10);
  EXPECT_EQ(ConstraintSet(10).CompareTo(old_cs),
            ConstraintDelta::kUnchanged);
  EXPECT_EQ(ConstraintSet(20).CompareTo(old_cs),
            ConstraintDelta::kTightened);
  EXPECT_EQ(ConstraintSet(5).CompareTo(old_cs), ConstraintDelta::kRelaxed);
}

TEST(ConstraintSetTest, MixedChangesAreIncomparable) {
  ConstraintSet old_cs(10);
  old_cs.Add(MakeMaxLength(3));
  // Support relaxed but length tightened.
  ConstraintSet new_cs(5);
  new_cs.Add(MakeMaxLength(2));
  EXPECT_EQ(new_cs.CompareTo(old_cs), ConstraintDelta::kIncomparable);
}

TEST(ConstraintSetTest, AddedConstraintTightens) {
  ConstraintSet old_cs(10);
  ConstraintSet new_cs(10);
  new_cs.Add(MakeMaxLength(3));
  EXPECT_EQ(new_cs.CompareTo(old_cs), ConstraintDelta::kTightened);
  // Symmetrically, dropping it relaxes.
  EXPECT_EQ(old_cs.CompareTo(new_cs), ConstraintDelta::kRelaxed);
}

TEST(ConstraintSetTest, CopyIsDeep) {
  ConstraintSet a(10);
  a.Add(MakeMaxLength(3));
  ConstraintSet b = a;
  EXPECT_EQ(b.NumConstraints(), 1u);
  EXPECT_EQ(b.CompareTo(a), ConstraintDelta::kUnchanged);
}

TEST(ConstraintSetTest, DescribeMentionsEveryPart) {
  ConstraintSet cs(42);
  cs.Add(MakeMaxLength(3));
  const std::string desc = cs.Describe();
  EXPECT_NE(desc.find("42"), std::string::npos);
  EXPECT_NE(desc.find("|X| <= 3"), std::string::npos);
  EXPECT_NE(desc.find("anti-monotone"), std::string::npos);
}

}  // namespace
}  // namespace gogreen::core
