// Tests for util/retry.h — the bounded transient-retry loop generalized
// from the ad-hoc spill-IO retry. The load-bearing contract is the
// transient/permanent split: IOError and ResourceExhausted earn more
// attempts, while InvalidArgument (and friends) fail immediately —
// retrying a malformed-input error was the bug the extraction fixed in
// pattern_io's write path.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "util/retry.h"
#include "util/status.h"

namespace gogreen {
namespace {

TEST(RetryTest, TransientIoErrorIsRetriedUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = std::chrono::milliseconds(0);
  int calls = 0;
  const Status status = RetryTransient(policy, [&] {
    ++calls;
    if (calls < 3) return Status::IOError("flaky disk");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ResourceExhaustedIsTransient) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff = std::chrono::milliseconds(0);
  int calls = 0;
  const Status status = RetryTransient(policy, [&] {
    ++calls;
    if (calls < 2) return Status::ResourceExhausted("allocator pressure");
    return Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, InvalidArgumentFailsOnFirstAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff = std::chrono::milliseconds(0);
  int calls = 0;
  const Status status = RetryTransient(policy, [&] {
    ++calls;
    return Status::InvalidArgument("malformed pattern line");
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);  // Never retried: it can never succeed.
}

TEST(RetryTest, ExhaustedAttemptsReturnLastTransientFailure) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = std::chrono::milliseconds(0);
  int calls = 0;
  const Status status = RetryTransient(policy, [&] {
    ++calls;
    return Status::IOError("attempt " + std::to_string(calls));
  });
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 3);
  EXPECT_NE(status.ToString().find("attempt 3"), std::string::npos)
      << status.ToString();
}

TEST(RetryTest, ResultFlavorRetriesTransientOnly) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = std::chrono::milliseconds(0);

  int calls = 0;
  Result<int> ok = RetryTransientResult<int>(policy, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::IOError("flaky");
    return 42;
  });
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(calls, 2);

  calls = 0;
  Result<int> bad = RetryTransientResult<int>(policy, [&]() -> Result<int> {
    ++calls;
    return Status::NotFound("no such seed");
  });
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, IsTransientClassification) {
  EXPECT_TRUE(IsTransient(Status::IOError("x")));
  EXPECT_TRUE(IsTransient(Status::ResourceExhausted("x")));
  EXPECT_FALSE(IsTransient(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsTransient(Status::NotFound("x")));
  EXPECT_FALSE(IsTransient(Status::Internal("x")));
  EXPECT_FALSE(IsTransient(Status::OK()));
}

TEST(RetryTest, BackoffIsDeterministicExponentialAndCapped) {
  RetryPolicy policy;
  policy.base_backoff = std::chrono::milliseconds(2);
  policy.max_backoff = std::chrono::milliseconds(16);
  policy.jitter_seed = 99;

  // Deterministic: the same (policy, retry) always yields the same delay.
  for (int retry = 1; retry <= 8; ++retry) {
    EXPECT_EQ(BackoffDelay(policy, retry), BackoffDelay(policy, retry))
        << "retry " << retry;
  }
  // Exponential pre-jitter base doubles 2, 4, 8, 16 then caps: every delay
  // stays within [base, cap + cap/2] (jitter adds at most +50%).
  for (int retry = 1; retry <= 8; ++retry) {
    const auto delay = BackoffDelay(policy, retry);
    EXPECT_GE(delay.count(), 2) << "retry " << retry;
    EXPECT_LE(delay.count(), 16 + 8) << "retry " << retry;
  }
  // Distinct seeds desynchronize (not required for every retry index, but
  // across a handful at least one delay must differ).
  RetryPolicy other = policy;
  other.jitter_seed = 100;
  bool differs = false;
  for (int retry = 1; retry <= 8 && !differs; ++retry) {
    differs = BackoffDelay(policy, retry) != BackoffDelay(other, retry);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace gogreen
