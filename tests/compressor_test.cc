// Tests for the compression algorithm (Figure 1), reproducing the paper's
// Table 2 and checking losslessness + matcher equivalence.

#include "core/compressor.h"

#include <gtest/gtest.h>

#include "core/utility.h"
#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::core {
namespace {

using fpm::ItemId;
using fpm::ItemSpan;
using fpm::PatternSet;
using fpm::TransactionDb;
using testutil::PaperExampleDb;
using testutil::RandomDb;
using testutil::RandomDenseDb;

/// FP at xi_old = 3 for the paper's Table 1 database (complete set).
PatternSet PaperFp() {
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto result = miner->Mine(PaperExampleDb(), 3);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

CompressedDb MustCompress(const TransactionDb& db, const PatternSet& fp,
                          CompressorOptions options,
                          CompressionStats* stats = nullptr) {
  auto result = CompressDatabase(db, fp, options, stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<ItemId> ToVec(ItemSpan s) { return {s.begin(), s.end()}; }

TEST(CompressorTest, ReproducesTable2WithMcp) {
  constexpr ItemId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6, h = 7,
                   i = 8;
  const TransactionDb db = PaperExampleDb();
  CompressionStats stats;
  const CompressedDb cdb = MustCompress(
      db, PaperFp(), {CompressionStrategy::kMcp, MatcherKind::kLinear},
      &stats);

  // Two groups: fgc (tuples 100,200,300) and ae (tuples 400,500); nothing
  // ungrouped.
  ASSERT_EQ(cdb.NumGroups(), 2u);
  EXPECT_EQ(cdb.NumTuples(), 5u);
  EXPECT_EQ(ToVec(cdb.PatternOf(0)), (std::vector<ItemId>{c, f, g}));
  EXPECT_EQ(cdb.Group(0).count, 3u);
  EXPECT_EQ(ToVec(cdb.PatternOf(1)), (std::vector<ItemId>{a, e}));
  EXPECT_EQ(cdb.Group(1).count, 2u);

  // Outlying items per Table 2.
  EXPECT_EQ(cdb.MemberTid(0), 0u);  // Tuple 100.
  EXPECT_EQ(ToVec(cdb.Outlying(0)), (std::vector<ItemId>{a, d, e}));
  EXPECT_EQ(ToVec(cdb.Outlying(1)), (std::vector<ItemId>{b, d}));
  EXPECT_EQ(ToVec(cdb.Outlying(2)), (std::vector<ItemId>{e}));
  EXPECT_EQ(ToVec(cdb.Outlying(3)), (std::vector<ItemId>{c, i}));
  EXPECT_EQ(ToVec(cdb.Outlying(4)), (std::vector<ItemId>{h}));

  EXPECT_EQ(stats.covered_tuples, 5u);
  EXPECT_EQ(stats.uncovered_tuples, 0u);
  EXPECT_EQ(stats.groups, 2u);
  // Sc = (3 + 2) pattern items + (3+2+1+2+1) outlying = 14; So = 22.
  EXPECT_EQ(stats.stored_items, 14u);
  EXPECT_EQ(stats.original_items, 22u);
  EXPECT_NEAR(stats.Ratio(), 14.0 / 22.0, 1e-12);
}

TEST(CompressorTest, MlpPicksSameCoverOnPaperExample) {
  // fgc is both the max-utility (MCP) and the longest (MLP) pattern here.
  const TransactionDb db = PaperExampleDb();
  const CompressedDb cdb = MustCompress(
      db, PaperFp(), {CompressionStrategy::kMlp, MatcherKind::kLinear});
  ASSERT_EQ(cdb.NumGroups(), 2u);
  EXPECT_EQ(cdb.PatternOf(0).size(), 3u);
  EXPECT_EQ(cdb.PatternOf(1).size(), 2u);
}

TEST(CompressorTest, LosslessOnPaperExample) {
  const TransactionDb db = PaperExampleDb();
  const CompressedDb cdb = MustCompress(
      db, PaperFp(), {CompressionStrategy::kMcp, MatcherKind::kLinear});
  const TransactionDb round = cdb.Decompress();
  ASSERT_EQ(round.NumTransactions(), db.NumTransactions());
  for (uint64_t m = 0; m < cdb.NumTuples(); ++m) {
    const fpm::Tid original = cdb.MemberTid(m);
    EXPECT_EQ(ToVec(round.Transaction(static_cast<fpm::Tid>(m))),
              ToVec(db.Transaction(original)));
  }
}

TEST(CompressorTest, UnmatchedTuplesGoToTrailingUngroupedGroup) {
  TransactionDb db;
  db.AddTransaction({1, 2, 3});
  db.AddTransaction({7, 8});  // Matches nothing.
  PatternSet fp;
  fp.Add({1, 2}, 1);
  CompressionStats stats;
  const CompressedDb cdb = MustCompress(
      db, fp, {CompressionStrategy::kMcp, MatcherKind::kLinear}, &stats);
  ASSERT_EQ(cdb.NumGroups(), 2u);
  EXPECT_TRUE(cdb.PatternOf(1).empty());
  EXPECT_EQ(ToVec(cdb.Outlying(1)), (std::vector<ItemId>{7, 8}));
  EXPECT_EQ(stats.uncovered_tuples, 1u);
  EXPECT_EQ(stats.groups, 1u);
}

TEST(CompressorTest, EmptyPatternSetLeavesEverythingUngrouped) {
  const TransactionDb db = PaperExampleDb();
  CompressionStats stats;
  const CompressedDb cdb = MustCompress(
      db, PatternSet(), {CompressionStrategy::kMcp, MatcherKind::kLinear},
      &stats);
  ASSERT_EQ(cdb.NumGroups(), 1u);
  EXPECT_TRUE(cdb.PatternOf(0).empty());
  EXPECT_EQ(stats.covered_tuples, 0u);
  EXPECT_EQ(stats.uncovered_tuples, 5u);
  EXPECT_DOUBLE_EQ(stats.Ratio(), 1.0);  // No compression.
}

TEST(CompressorTest, PatternWithNoItemsRejected) {
  PatternSet fp;
  fp.Add(std::vector<ItemId>{}, 3);
  auto result = CompressDatabase(PaperExampleDb(), fp,
                                 {CompressionStrategy::kMcp,
                                  MatcherKind::kLinear});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompressorTest, MatchersProduceIdenticalAssignments) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const TransactionDb db = RandomDb(seed, 400, 60, 7.0);
    auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
    auto fp = miner->Mine(db, 20);
    ASSERT_TRUE(fp.ok());
    for (CompressionStrategy strategy :
         {CompressionStrategy::kMcp, CompressionStrategy::kMlp}) {
      const CompressedDb lin = MustCompress(
          db, fp.value(), {strategy, MatcherKind::kLinear});
      const CompressedDb inv = MustCompress(
          db, fp.value(), {strategy, MatcherKind::kInvertedIndex});
      ASSERT_EQ(lin.NumGroups(), inv.NumGroups());
      ASSERT_EQ(lin.NumTuples(), inv.NumTuples());
      for (GroupId g = 0; g < lin.NumGroups(); ++g) {
        EXPECT_EQ(ToVec(lin.PatternOf(g)), ToVec(inv.PatternOf(g)));
        EXPECT_EQ(lin.Group(g).count, inv.Group(g).count);
      }
      for (uint64_t m = 0; m < lin.NumTuples(); ++m) {
        EXPECT_EQ(lin.MemberTid(m), inv.MemberTid(m));
        EXPECT_EQ(ToVec(lin.Outlying(m)), ToVec(inv.Outlying(m)));
      }
    }
  }
}

TEST(CompressorTest, LosslessPropertyOnRandomDbs) {
  for (uint64_t seed = 10; seed < 16; ++seed) {
    const bool dense = seed % 2 == 0;
    const TransactionDb db =
        dense ? RandomDenseDb(seed, 150, 10, 3) : RandomDb(seed, 300, 50, 6.0);
    auto miner = fpm::CreateMiner(fpm::MinerKind::kEclat);
    auto fp = miner->Mine(db, dense ? 70 : 15);
    ASSERT_TRUE(fp.ok());
    for (CompressionStrategy strategy :
         {CompressionStrategy::kMcp, CompressionStrategy::kMlp}) {
      const CompressedDb cdb =
          MustCompress(db, fp.value(), {strategy, MatcherKind::kAuto});
      ASSERT_EQ(cdb.NumTuples(), db.NumTransactions());
      const TransactionDb round = cdb.Decompress();
      for (uint64_t m = 0; m < cdb.NumTuples(); ++m) {
        EXPECT_EQ(ToVec(round.Transaction(static_cast<fpm::Tid>(m))),
                  ToVec(db.Transaction(cdb.MemberTid(m))));
      }
    }
  }
}

TEST(CompressorTest, MlpCompressesAtLeastAsWellAsMcpUsually) {
  // Section 5.1: MLP targets storage, so its ratio is typically <= MCP's.
  // This is a tendency, not a theorem; assert it on a seed where it holds
  // to pin the behaviour.
  const TransactionDb db = RandomDb(42, 800, 40, 8.0);
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto fp = miner->Mine(db, 40);
  ASSERT_TRUE(fp.ok());
  CompressionStats mcp_stats;
  CompressionStats mlp_stats;
  MustCompress(db, fp.value(), {CompressionStrategy::kMcp,
                                MatcherKind::kLinear}, &mcp_stats);
  MustCompress(db, fp.value(), {CompressionStrategy::kMlp,
                                MatcherKind::kLinear}, &mlp_stats);
  EXPECT_LE(mlp_stats.Ratio(), mcp_stats.Ratio() + 1e-9);
}

TEST(CompressorTest, GroupOrderFollowsUtilityRanking) {
  // Higher-utility groups must appear first: the compressor materializes
  // groups in ranking order.
  const TransactionDb db = PaperExampleDb();
  const CompressedDb cdb = MustCompress(
      db, PaperFp(), {CompressionStrategy::kMcp, MatcherKind::kLinear});
  // fgc (utility 21) before ae (utility 9).
  EXPECT_EQ(cdb.PatternOf(0).size(), 3u);
  EXPECT_EQ(cdb.PatternOf(1).size(), 2u);
}

}  // namespace
}  // namespace gogreen::core
