// Tests for the util layer: Status/Result, Arena, DynamicBitset, Random,
// logging.

#include <gtest/gtest.h>

#include <cmath>

#include <cstdlib>

#include "util/arena.h"
#include "util/env.h"
#include "util/bitset.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"

namespace gogreen {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad support");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad support");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad support");
}

TEST(StatusTest, CopyPreservesError) {
  const Status s = Status::IOError("disk");
  const Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kIOError);
  EXPECT_EQ(t.message(), "disk");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Caller(int x) {
  GOGREEN_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kOutOfRange);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GOGREEN_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValueAndError) {
  EXPECT_EQ(Half(4).value(), 2);
  EXPECT_FALSE(Half(3).ok());
  EXPECT_EQ(Half(3).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd.
}

TEST(ArenaTest, AllocationsAreAlignedAndCounted) {
  Arena arena;
  void* p1 = arena.Allocate(10);
  void* p2 = arena.Allocate(100, 64);
  EXPECT_NE(p1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % 64, 0u);
  EXPECT_EQ(arena.allocated_bytes(), 110u);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(128);
  void* p = arena.Allocate(100000);
  EXPECT_NE(p, nullptr);
  EXPECT_GE(arena.reserved_bytes(), 100000u);
}

TEST(ArenaTest, NewConstructsObject) {
  struct Point {
    int x, y;
  };
  Arena arena;
  Point* p = arena.New<Point>(Point{1, 2});
  EXPECT_EQ(p->x, 1);
  EXPECT_EQ(p->y, 2);
}

TEST(ArenaTest, ResetReleasesAccounting) {
  Arena arena;
  arena.Allocate(1000);
  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), 0u);
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset bs(130);
  EXPECT_FALSE(bs.Test(0));
  bs.Set(0);
  bs.Set(64);
  bs.Set(129);
  EXPECT_TRUE(bs.Test(0));
  EXPECT_TRUE(bs.Test(64));
  EXPECT_TRUE(bs.Test(129));
  EXPECT_EQ(bs.Count(), 3u);
  bs.Clear(64);
  EXPECT_FALSE(bs.Test(64));
  EXPECT_EQ(bs.Count(), 2u);
}

TEST(BitsetTest, IntersectionCount) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(3);
  EXPECT_EQ(a.IntersectionCount(b), 2u);
  a.IntersectWith(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_FALSE(a.Test(1));
}

TEST(BitsetTest, ForEachSetBitAscending) {
  DynamicBitset bs(200);
  bs.Set(5);
  bs.Set(64);
  bs.Set(199);
  std::vector<size_t> seen;
  bs.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{5, 64, 199}));
}

TEST(EnvTest, BenchScaleParsing) {
  ::setenv("GOGREEN_SCALE", "smoke", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kSmoke);
  ::setenv("GOGREEN_SCALE", "FULL", 1);  // Case-insensitive.
  EXPECT_EQ(GetBenchScale(), BenchScale::kFull);
  ::setenv("GOGREEN_SCALE", "bogus", 1);
  EXPECT_EQ(GetBenchScale(), BenchScale::kDefault);
  ::unsetenv("GOGREEN_SCALE");
  EXPECT_EQ(GetBenchScale(), BenchScale::kDefault);
  EXPECT_STREQ(BenchScaleName(BenchScale::kSmoke), "smoke");
}

TEST(EnvTest, TempDirNonEmpty) {
  EXPECT_FALSE(TempDir().empty());
}

TEST(EnvTest, GetEnvOrEmpty) {
  ::setenv("GOGREEN_TEST_VAR", "value", 1);
  EXPECT_EQ(GetEnvOrEmpty("GOGREEN_TEST_VAR"), "value");
  ::unsetenv("GOGREEN_TEST_VAR");
  EXPECT_EQ(GetEnvOrEmpty("GOGREEN_TEST_VAR"), "");
}

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, ParseLogLevel) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));  // Case-insensitive.
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kInfo);  // Untouched on failure.
}

TEST(LoggingTest, InitLogLevelFromEnv) {
  LogLevelGuard guard;
  ::setenv("GOGREEN_LOG_LEVEL", "error", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ::setenv("GOGREEN_LOG_LEVEL", "nonsense", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);  // Unparseable: unchanged.
  ::unsetenv("GOGREEN_LOG_LEVEL");
}

TEST(LoggingTest, LinePrefixHasTimestampSeverityAndLocation) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  GOGREEN_LOG(Warning) << "w" << 42;
  const std::string out = ::testing::internal::GetCapturedStderr();
  // "[YYYY-MM-DD HH:MM:SS.mmm WARN util_test.cc:NN] w42"
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], '[');
  EXPECT_NE(out.find(" WARN util_test.cc:"), std::string::npos);
  EXPECT_NE(out.find("] w42"), std::string::npos);
  // Timestamp shape: 4-digit year, '-', and a '.' before the millis.
  EXPECT_EQ(out.find('-'), 5u);
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(LoggingTest, LinesBelowLevelAreSuppressed) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  GOGREEN_LOG(Info) << "hidden";
  GOGREEN_LOG(Error) << "shown";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find(" ERROR "), std::string::npos);
  EXPECT_NE(out.find("shown"), std::string::npos);
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformInBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const int64_t v = rng.UniformInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, PoissonMeanApproximatelyCorrect) {
  Random rng(11);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Poisson(6.0);
  EXPECT_NEAR(sum / kTrials, 6.0, 0.15);
}

TEST(RandomTest, PoissonLargeMeanUsesNormalApprox) {
  Random rng(13);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Poisson(60.0);
  EXPECT_NEAR(sum / kTrials, 60.0, 1.0);
}

TEST(RandomTest, BernoulliFrequency) {
  Random rng(17);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RandomTest, ExponentialMean) {
  Random rng(19);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / kTrials, 2.5, 0.1);
}

}  // namespace
}  // namespace gogreen
