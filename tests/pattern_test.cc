// Tests for Pattern, PatternSet and canonical-form helpers.

#include "fpm/pattern.h"

#include <gtest/gtest.h>

#include "fpm/pattern_set.h"

namespace gogreen::fpm {
namespace {

TEST(PatternTest, CanonicalizeSortsAndDeduplicates) {
  std::vector<ItemId> items = {5, 1, 5, 3, 1};
  CanonicalizeItems(&items);
  EXPECT_EQ(items, (std::vector<ItemId>{1, 3, 5}));
}

TEST(PatternTest, IsSubsetSorted) {
  const std::vector<ItemId> hay = {1, 3, 5, 7, 9};
  EXPECT_TRUE(IsSubsetSorted(std::vector<ItemId>{}, hay));
  EXPECT_TRUE(IsSubsetSorted(std::vector<ItemId>{1}, hay));
  EXPECT_TRUE(IsSubsetSorted(std::vector<ItemId>{3, 7}, hay));
  EXPECT_TRUE(IsSubsetSorted(std::vector<ItemId>{1, 3, 5, 7, 9}, hay));
  EXPECT_FALSE(IsSubsetSorted(std::vector<ItemId>{2}, hay));
  EXPECT_FALSE(IsSubsetSorted(std::vector<ItemId>{9, 10}, hay));
  EXPECT_FALSE(IsSubsetSorted(std::vector<ItemId>{0, 1}, hay));
}

TEST(PatternTest, ContainsUsesSetSemantics) {
  const Pattern p({1, 4, 6}, 3);
  EXPECT_TRUE(p.Contains(Pattern({4}, 0)));
  EXPECT_TRUE(p.Contains(Pattern({1, 6}, 0)));
  EXPECT_FALSE(p.Contains(Pattern({2}, 0)));
}

TEST(PatternTest, ToString) {
  EXPECT_EQ(Pattern({1, 2}, 7).ToString(), "{1,2}:7");
}

TEST(PatternTest, PatternLessIsLexicographicThenSupport) {
  EXPECT_TRUE(PatternLess(Pattern({1}, 5), Pattern({1, 2}, 5)));
  EXPECT_TRUE(PatternLess(Pattern({1, 2}, 5), Pattern({1, 3}, 5)));
  EXPECT_TRUE(PatternLess(Pattern({1}, 4), Pattern({1}, 5)));
  EXPECT_FALSE(PatternLess(Pattern({1}, 5), Pattern({1}, 5)));
}

TEST(PatternSetTest, EqualAfterReordering) {
  PatternSet a;
  a.Add({1, 2}, 3);
  a.Add({4}, 5);
  PatternSet b;
  b.Add({4}, 5);
  b.Add({1, 2}, 3);
  EXPECT_TRUE(PatternSet::Equal(&a, &b));
}

TEST(PatternSetTest, NotEqualOnSupportMismatch) {
  PatternSet a;
  a.Add({1, 2}, 3);
  PatternSet b;
  b.Add({1, 2}, 4);
  EXPECT_FALSE(PatternSet::Equal(&a, &b));
}

TEST(PatternSetTest, DifferenceReportsMissing) {
  PatternSet a;
  a.Add({1}, 2);
  a.Add({2}, 2);
  PatternSet b;
  b.Add({1}, 2);
  const std::vector<Pattern> diff = PatternSet::Difference(&a, &b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].items, (std::vector<ItemId>{2}));
}

TEST(PatternSetTest, FilterBySupportImplementsTightenedConstraints) {
  // Section 2: when the support threshold rises, the new complete set is a
  // filter of the old one.
  PatternSet fp;
  fp.Add({1}, 10);
  fp.Add({2}, 5);
  fp.Add({1, 2}, 5);
  fp.Add({3}, 2);
  const PatternSet tightened = fp.FilterBySupport(5);
  EXPECT_EQ(tightened.size(), 3u);
  EXPECT_EQ(tightened.SupportOf(std::vector<ItemId>{3}), 0u);
}

TEST(PatternSetTest, FilterByMinLength) {
  PatternSet fp;
  fp.Add({1}, 10);
  fp.Add({1, 2}, 5);
  fp.Add({1, 2, 3}, 2);
  EXPECT_EQ(fp.FilterByMinLength(2).size(), 2u);
  EXPECT_EQ(fp.FilterByMinLength(4).size(), 0u);
}

TEST(PatternSetTest, MaxLength) {
  PatternSet fp;
  EXPECT_EQ(fp.MaxLength(), 0u);
  fp.Add({1}, 1);
  fp.Add({1, 2, 3}, 1);
  EXPECT_EQ(fp.MaxLength(), 3u);
}

TEST(PatternSetTest, SupportOfExactMatchOnly) {
  PatternSet fp;
  fp.Add({1, 2}, 9);
  EXPECT_EQ(fp.SupportOf(std::vector<ItemId>{1, 2}), 9u);
  EXPECT_EQ(fp.SupportOf(std::vector<ItemId>{1}), 0u);
  EXPECT_EQ(fp.SupportOf(std::vector<ItemId>{1, 2, 3}), 0u);
}

}  // namespace
}  // namespace gogreen::fpm
