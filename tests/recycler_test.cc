// Tests for the RecyclingSession: path selection (initial / filtered /
// recycled / scratch), result correctness on every path, cache seeding
// (multi-user), and option handling.

#include "core/recycler.h"

#include <gtest/gtest.h>

#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::core {
namespace {

using fpm::PatternSet;
using fpm::TransactionDb;
using testutil::PaperExampleDb;
using testutil::RandomDb;

PatternSet Direct(const TransactionDb& db, uint64_t minsup) {
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(RecyclerTest, FirstMineIsInitialPath) {
  RecyclingSession session(PaperExampleDb());
  auto result = session.Mine(3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kInitial);
  EXPECT_EQ(result->size(), 11u);
  EXPECT_TRUE(session.has_cache());
  EXPECT_EQ(session.cached_min_support(), 3u);
}

TEST(RecyclerTest, TightenedUsesFilterPath) {
  const TransactionDb db = RandomDb(31, 500, 50, 7.0);
  RecyclingSession session(db);
  ASSERT_TRUE(session.Mine(10).ok());

  auto result = session.Mine(25);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kFiltered);
  PatternSet expected = Direct(db, 25);
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
  // The cache keeps the richer set for future relaxations.
  EXPECT_EQ(session.cached_min_support(), 10u);
}

TEST(RecyclerTest, RelaxedUsesRecycledPathAndIsExact) {
  const TransactionDb db = RandomDb(32, 500, 50, 7.0);
  RecyclingSession session(db);
  ASSERT_TRUE(session.Mine(40).ok());

  auto result = session.Mine(12);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kRecycled);
  EXPECT_EQ(session.last_stats().delta, ConstraintDelta::kRelaxed);
  EXPECT_LE(session.last_stats().compression_ratio, 1.0);
  PatternSet expected = Direct(db, 12);
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
  EXPECT_EQ(session.cached_min_support(), 12u);
}

TEST(RecyclerTest, IterativeDrillDownStaysCorrect) {
  // The canonical workflow from the introduction: 5% -> 3% -> ... with a
  // tightening thrown in.
  const TransactionDb db = RandomDb(33, 800, 60, 8.0);
  RecyclingSession session(db);
  for (uint64_t minsup : {60u, 35u, 50u, 20u, 10u}) {
    SCOPED_TRACE(minsup);
    auto result = session.Mine(minsup);
    ASSERT_TRUE(result.ok());
    PatternSet expected = Direct(db, minsup);
    PatternSet got = std::move(result).value();
    EXPECT_TRUE(PatternSet::Equal(&expected, &got))
        << "at minsup " << minsup;
  }
}

TEST(RecyclerTest, AllAlgoStrategyCombinationsAgree) {
  const TransactionDb db = RandomDb(34, 300, 40, 6.0);
  PatternSet expected = Direct(db, 8);
  for (RecycleAlgo algo :
       {RecycleAlgo::kNaive, RecycleAlgo::kHMine, RecycleAlgo::kFpGrowth,
        RecycleAlgo::kTreeProjection}) {
    for (CompressionStrategy strategy :
         {CompressionStrategy::kMcp, CompressionStrategy::kMlp}) {
      SCOPED_TRACE(testing::Message() << RecycleAlgoName(algo) << "/"
                                      << CompressionStrategyName(strategy));
      RecyclerOptions options;
      options.algo = algo;
      options.strategy = strategy;
      RecyclingSession session(db, options);
      ASSERT_TRUE(session.Mine(30).ok());
      auto result = session.Mine(8);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(session.last_stats().path, MiningPath::kRecycled);
      PatternSet got = std::move(result).value();
      EXPECT_TRUE(PatternSet::Equal(&expected, &got));
    }
  }
}

TEST(RecyclerTest, DisabledRecyclingAlwaysScratch) {
  RecyclerOptions options;
  options.enable_recycling = false;
  RecyclingSession session(PaperExampleDb(), options);
  ASSERT_TRUE(session.Mine(3).ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kScratch);
  ASSERT_TRUE(session.Mine(2).ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kScratch);
  EXPECT_FALSE(session.has_cache());
}

TEST(RecyclerTest, SeedCacheEnablesMultiUserRecycling) {
  // User A mines; user B's session is seeded with A's result and goes
  // straight to the recycled path.
  const TransactionDb db = RandomDb(35, 400, 40, 6.0);
  PatternSet user_a = Direct(db, 30);

  RecyclingSession user_b(db);
  user_b.SeedCache(user_a, 30);
  auto result = user_b.Mine(10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(user_b.last_stats().path, MiningPath::kRecycled);
  PatternSet expected = Direct(db, 10);
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(RecyclerTest, InvalidateCacheForcesInitialMine) {
  RecyclingSession session(PaperExampleDb());
  ASSERT_TRUE(session.Mine(3).ok());
  session.InvalidateCache();
  EXPECT_FALSE(session.has_cache());
  ASSERT_TRUE(session.Mine(2).ok());
  EXPECT_EQ(session.last_stats().path, MiningPath::kInitial);
}

TEST(RecyclerTest, MineFractionConvertsThreshold) {
  RecyclingSession session(PaperExampleDb());
  auto result = session.MineFraction(0.6);  // ceil(0.6 * 5) = 3.
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 11u);
  EXPECT_FALSE(session.MineFraction(0.0).ok());
  EXPECT_FALSE(session.MineFraction(1.5).ok());
}

TEST(RecyclerTest, ZeroSupportRejected) {
  RecyclingSession session(PaperExampleDb());
  EXPECT_FALSE(session.Mine(uint64_t{0}).ok());
}

TEST(RecyclerTest, ConstrainedMiningFiltersAndReportsDelta) {
  const TransactionDb db = RandomDb(36, 400, 40, 6.0);
  RecyclingSession session(db);

  ConstraintSet c1(20);
  c1.Add(MakeMinLength(2));
  auto r1 = session.Mine(c1);
  ASSERT_TRUE(r1.ok());
  for (const auto& p : *r1) EXPECT_GE(p.size(), 2u);

  // Relax the support, keep the length constraint.
  ConstraintSet c2(8);
  c2.Add(MakeMinLength(2));
  auto r2 = session.Mine(c2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(session.last_stats().delta, ConstraintDelta::kRelaxed);
  EXPECT_EQ(session.last_stats().path, MiningPath::kRecycled);

  // Check against a directly computed answer.
  PatternSet expected = c2.Filter(Direct(db, 8));
  PatternSet got = std::move(r2).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(RecyclerTest, StatsReportPatternCounts) {
  RecyclingSession session(PaperExampleDb());
  auto r = session.Mine(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(session.last_stats().patterns_returned, 11u);
  EXPECT_EQ(session.last_stats().cached_patterns, 11u);
}

}  // namespace
}  // namespace gogreen::core
