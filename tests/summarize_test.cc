// Tests for closed/maximal pattern extraction and pattern-set summaries.

#include "fpm/summarize.h"

#include <gtest/gtest.h>

#include "fpm/miner.h"
#include "fpm/pattern_trie.h"
#include "tests/test_util.h"

namespace gogreen::fpm {
namespace {

TEST(SummarizeTest, ClosedPatternsOnPaperExample) {
  // At support 3 the complete set has 11 patterns. fgc:3 closes f, g, fg,
  // fc, gc (all support 3); ae:3 closes a; ec:3 is closed; e:4, c:4 are
  // closed (no superset with support 4).
  auto fp = CreateMiner(MinerKind::kFpGrowth)
                ->Mine(testutil::PaperExampleDb(), 3);
  ASSERT_TRUE(fp.ok());
  PatternSet closed = ClosedPatterns(*fp);
  closed.SortCanonical();
  EXPECT_EQ(closed.size(), 5u);
  EXPECT_EQ(closed.SupportOf(std::vector<ItemId>{2, 5, 6}), 3u);  // fgc
  EXPECT_EQ(closed.SupportOf(std::vector<ItemId>{0, 4}), 3u);     // ae
  EXPECT_EQ(closed.SupportOf(std::vector<ItemId>{2, 4}), 3u);     // ec
  EXPECT_EQ(closed.SupportOf(std::vector<ItemId>{4}), 4u);        // e
  EXPECT_EQ(closed.SupportOf(std::vector<ItemId>{2}), 4u);        // c
}

TEST(SummarizeTest, MaximalPatternsOnPaperExample) {
  auto fp = CreateMiner(MinerKind::kFpGrowth)
                ->Mine(testutil::PaperExampleDb(), 3);
  ASSERT_TRUE(fp.ok());
  PatternSet maximal = MaximalPatterns(*fp);
  maximal.SortCanonical();
  // Maximal: fgc, ae, ec (e and c are subsumed by ec/fgc; everything else
  // has a frequent superset).
  EXPECT_EQ(maximal.size(), 3u);
  EXPECT_EQ(maximal.SupportOf(std::vector<ItemId>{2, 5, 6}), 3u);
  EXPECT_EQ(maximal.SupportOf(std::vector<ItemId>{0, 4}), 3u);
  EXPECT_EQ(maximal.SupportOf(std::vector<ItemId>{2, 4}), 3u);
}

TEST(SummarizeTest, MaximalSubsetOfClosedSubsetOfAll) {
  const auto db = testutil::RandomDb(77, 400, 40, 6.0);
  auto fp = CreateMiner(MinerKind::kEclat)->Mine(db, 15);
  ASSERT_TRUE(fp.ok());
  const PatternSet closed = ClosedPatterns(*fp);
  const PatternSet maximal = MaximalPatterns(*fp);
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), fp->size());
  EXPECT_GT(maximal.size(), 0u);

  // Every maximal pattern is closed.
  PatternTrie closed_index;
  for (const auto& p : closed) closed_index.Insert(ItemSpan(p.items));
  for (const auto& p : maximal) {
    EXPECT_NE(closed_index.Find(ItemSpan(p.items)), PatternTrie::kNoNode)
        << p.ToString();
  }
}

TEST(SummarizeTest, ClosedSetDeterminesAllSupports) {
  // Lossless property: every frequent pattern's support equals the max
  // support among its closed supersets.
  const auto db = testutil::RandomDb(78, 200, 25, 5.0);
  auto fp = CreateMiner(MinerKind::kApriori)->Mine(db, 8);
  ASSERT_TRUE(fp.ok());
  const PatternSet closed = ClosedPatterns(*fp);
  for (const auto& p : *fp) {
    uint64_t best = 0;
    for (const auto& c : closed) {
      if (c.ContainsItems(ItemSpan(p.items))) {
        best = std::max(best, c.support);
      }
    }
    EXPECT_EQ(best, p.support) << p.ToString();
  }
}

TEST(SummarizeTest, IdenticalTransactionsCollapseToOneClosed) {
  TransactionDb db;
  for (int i = 0; i < 10; ++i) db.AddTransaction({1, 2, 3});
  auto fp = CreateMiner(MinerKind::kHMine)->Mine(db, 5);
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp->size(), 7u);
  EXPECT_EQ(ClosedPatterns(*fp).size(), 1u);
  EXPECT_EQ(MaximalPatterns(*fp).size(), 1u);
}

TEST(SummarizeTest, EmptySet) {
  EXPECT_TRUE(ClosedPatterns(PatternSet()).empty());
  EXPECT_TRUE(MaximalPatterns(PatternSet()).empty());
  const PatternSetSummary s = Summarize(PatternSet());
  EXPECT_EQ(s.count, 0u);
}

TEST(SummarizeTest, SummaryStatistics) {
  PatternSet fp;
  fp.Add({1}, 10);
  fp.Add({1, 2}, 6);
  fp.Add({1, 2, 3}, 3);
  const PatternSetSummary s = Summarize(fp);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.max_length, 3u);
  EXPECT_DOUBLE_EQ(s.avg_length, 2.0);
  EXPECT_EQ(s.max_support, 10u);
  EXPECT_EQ(s.min_support, 3u);
  ASSERT_EQ(s.length_histogram.size(), 4u);
  EXPECT_EQ(s.length_histogram[1], 1u);
  EXPECT_EQ(s.length_histogram[2], 1u);
  EXPECT_EQ(s.length_histogram[3], 1u);
  EXPECT_NE(s.ToString().find("3 patterns"), std::string::npos);
}

}  // namespace
}  // namespace gogreen::fpm
