// Unit and property tests for the five substrate miners: exact results on the
// paper's example database, brute-force cross-checks, and full pairwise
// equivalence on randomized databases.

#include <gtest/gtest.h>

#include <memory>

#include "fpm/eclat.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "tests/test_util.h"

namespace gogreen::fpm {
namespace {

using testutil::MakeDb;
using testutil::PaperExampleDb;
using testutil::RandomDb;
using testutil::RandomDenseDb;

constexpr MinerKind kAllMiners[] = {
    MinerKind::kApriori, MinerKind::kEclat, MinerKind::kHMine,
    MinerKind::kFpGrowth, MinerKind::kTreeProjection};

PatternSet MustMine(MinerKind kind, const TransactionDb& db, uint64_t minsup) {
  auto miner = CreateMiner(kind);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Brute-force complete-set miner by explicit subset enumeration over the
/// distinct items; only usable for tiny databases.
PatternSet BruteForceMine(const TransactionDb& db, uint64_t minsup) {
  std::vector<ItemId> universe;
  auto counts = db.CountItemSupports();
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) universe.push_back(static_cast<ItemId>(i));
  }
  PatternSet out;
  const size_t n = universe.size();
  EXPECT_LE(n, 20u) << "brute force limited to 20 distinct items";
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    std::vector<ItemId> items;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) items.push_back(universe[i]);
    }
    const uint64_t sup = db.CountSupport(ItemSpan(items));
    if (sup >= minsup) out.Add(std::move(items), sup);
  }
  return out;
}

TEST(MinersTest, PaperExampleAtSupport3) {
  // Section 3.1, Example 1: FP at xi_old = 3 is
  // {f:3, fg:3, fgc:3, g:3, gc:3, a:3, ae:3, e:4, ec:3, c:4} plus fc:3
  // (the paper text omits fc but it follows from fgc:3; our miners return the
  // complete set).
  constexpr ItemId a = 0, c = 2, e = 4, f = 5, g = 6;
  const TransactionDb db = PaperExampleDb();
  for (MinerKind kind : kAllMiners) {
    SCOPED_TRACE(MinerKindName(kind));
    PatternSet got = MustMine(kind, db, 3);
    got.SortCanonical();
    EXPECT_EQ(got.size(), 11u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{f}), 3u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{f, g}), 3u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, f, g}), 3u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, g}), 3u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{a, e}), 3u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, e}), 3u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{e}), 4u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c}), 4u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, f}), 3u);
  }
}

TEST(MinersTest, PaperExampleAtSupport2MatchesExample3) {
  // Section 3.3, Example 3 spot checks at xi_new = 2.
  constexpr ItemId a = 0, c = 2, d = 3, e = 4, f = 5, g = 6;
  const TransactionDb db = PaperExampleDb();
  for (MinerKind kind : kAllMiners) {
    SCOPED_TRACE(MinerKindName(kind));
    const PatternSet got = MustMine(kind, db, 2);
    // d-extensions (step 1 of Example 3).
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, d}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{d, f}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{d, g}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, d, f, g}), 2u);
    // f-extensions (step 2).
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{f, g}), 3u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{e, f, g}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, e, f, g}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{c, f}), 3u);
    // a-extensions (step 4).
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{a, e}), 3u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{a, c, e}), 2u);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{a, c}), 2u);
  }
}

TEST(MinersTest, AgainstBruteForceTinyDbs) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const TransactionDb db = RandomDb(seed, 30, 10, 4.0);
    for (uint64_t minsup : {1u, 2u, 3u, 5u}) {
      PatternSet expected = BruteForceMine(db, minsup);
      for (MinerKind kind : kAllMiners) {
        SCOPED_TRACE(testing::Message() << MinerKindName(kind) << " seed="
                                        << seed << " minsup=" << minsup);
        PatternSet got = MustMine(kind, db, minsup);
        EXPECT_TRUE(PatternSet::Equal(&expected, &got))
            << "missing: " << PatternSet::Difference(&expected, &got).size()
            << " extra: " << PatternSet::Difference(&got, &expected).size();
      }
    }
  }
}

struct EquivalenceParam {
  uint64_t seed;
  size_t num_transactions;
  size_t num_items;
  double avg_len;
  uint64_t minsup;
  bool dense;
};

class MinerEquivalenceTest : public testing::TestWithParam<EquivalenceParam> {};

TEST_P(MinerEquivalenceTest, AllMinersAgree) {
  const EquivalenceParam& p = GetParam();
  const TransactionDb db =
      p.dense ? RandomDenseDb(p.seed, p.num_transactions, p.num_items, 3)
              : RandomDb(p.seed, p.num_transactions, p.num_items, p.avg_len);
  PatternSet reference = MustMine(MinerKind::kApriori, db, p.minsup);
  for (MinerKind kind : kAllMiners) {
    if (kind == MinerKind::kApriori) continue;
    SCOPED_TRACE(MinerKindName(kind));
    PatternSet got = MustMine(kind, db, p.minsup);
    EXPECT_TRUE(PatternSet::Equal(&reference, &got))
        << "missing: " << PatternSet::Difference(&reference, &got).size()
        << " extra: " << PatternSet::Difference(&got, &reference).size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sparse, MinerEquivalenceTest,
    testing::Values(EquivalenceParam{11, 200, 50, 6.0, 10, false},
                    EquivalenceParam{12, 500, 100, 8.0, 25, false},
                    EquivalenceParam{13, 300, 40, 5.0, 5, false},
                    EquivalenceParam{14, 1000, 200, 10.0, 40, false},
                    EquivalenceParam{15, 100, 30, 4.0, 2, false}));

INSTANTIATE_TEST_SUITE_P(
    Dense, MinerEquivalenceTest,
    testing::Values(EquivalenceParam{21, 200, 8, 0, 120, true},
                    EquivalenceParam{22, 400, 10, 0, 260, true},
                    EquivalenceParam{23, 150, 12, 0, 100, true}));

TEST(MinersTest, EmptyDatabase) {
  TransactionDb db;
  for (MinerKind kind : kAllMiners) {
    SCOPED_TRACE(MinerKindName(kind));
    const PatternSet got = MustMine(kind, db, 1);
    EXPECT_TRUE(got.empty());
  }
}

TEST(MinersTest, MinSupportZeroRejected) {
  const TransactionDb db = PaperExampleDb();
  for (MinerKind kind : kAllMiners) {
    auto miner = CreateMiner(kind);
    auto result = miner->Mine(db, 0);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(MinersTest, SupportAboveEveryItemYieldsEmpty) {
  const TransactionDb db = PaperExampleDb();
  for (MinerKind kind : kAllMiners) {
    SCOPED_TRACE(MinerKindName(kind));
    EXPECT_TRUE(MustMine(kind, db, 100).empty());
  }
}

TEST(MinersTest, SingleTransaction) {
  const TransactionDb db = MakeDb({{3, 7, 9}});
  for (MinerKind kind : kAllMiners) {
    SCOPED_TRACE(MinerKindName(kind));
    PatternSet got = MustMine(kind, db, 1);
    EXPECT_EQ(got.size(), 7u);  // All non-empty subsets of a 3-itemset.
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{3, 7, 9}), 1u);
  }
}

TEST(MinersTest, DuplicateItemsInInputAreDeduplicated) {
  TransactionDb db;
  db.AddTransaction({5, 5, 2, 2, 2});
  db.AddTransaction({2, 5});
  for (MinerKind kind : kAllMiners) {
    SCOPED_TRACE(MinerKindName(kind));
    PatternSet got = MustMine(kind, db, 2);
    EXPECT_EQ(got.SupportOf(std::vector<ItemId>{2, 5}), 2u);
  }
}

TEST(MinersTest, StatsPopulated) {
  const TransactionDb db = RandomDb(99, 200, 30, 6.0);
  auto miner = CreateMiner(MinerKind::kHMine);
  auto result = miner->Mine(db, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(miner->stats().patterns_emitted, result.value().size());
  EXPECT_GT(miner->stats().items_scanned, 0u);
}

TEST(MinersTest, EclatLayoutsProduceIdenticalResults) {
  for (uint64_t seed : {41u, 42u}) {
    const TransactionDb sparse = RandomDb(seed, 300, 60, 6.0);
    const TransactionDb dense = RandomDenseDb(seed, 200, 10, 3);
    for (const TransactionDb* db : {&sparse, &dense}) {
      const uint64_t minsup = db == &sparse ? 10 : 120;
      EclatMiner lists(EclatLayout::kTidLists);
      EclatMiner bits(EclatLayout::kBitsets);
      auto a = lists.Mine(*db, minsup);
      auto b = bits.Mine(*db, minsup);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_TRUE(PatternSet::Equal(&a.value(), &b.value()));
    }
  }
}

TEST(MinersTest, AbsoluteSupportConversion) {
  EXPECT_EQ(AbsoluteSupport(0.05, 100), 5u);
  EXPECT_EQ(AbsoluteSupport(0.05, 101), 6u);  // Ceil.
  EXPECT_EQ(AbsoluteSupport(1.0, 7), 7u);
  EXPECT_EQ(AbsoluteSupport(0.001, 10), 1u);  // Clamped to >= 1.
}

}  // namespace
}  // namespace gogreen::fpm
