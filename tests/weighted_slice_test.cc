// Direct tests for the weighted-slice layer (row dedup + equal-pattern
// merging) shared by Recycle-FP and Recycle-TP.

#include <gtest/gtest.h>

#include "core/compressor.h"
#include "core/slice_db.h"
#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::core {
namespace {

using fpm::FList;
using fpm::Rank;
using fpm::TransactionDb;

/// CDB of the paper example compressed at xi_old = 3.
CompressedDb PaperCdb() {
  const TransactionDb db = testutil::PaperExampleDb();
  auto fp = fpm::CreateMiner(fpm::MinerKind::kFpGrowth)->Mine(db, 3);
  EXPECT_TRUE(fp.ok());
  auto cdb = CompressDatabase(db, *fp, {CompressionStrategy::kMcp,
                                        MatcherKind::kLinear});
  EXPECT_TRUE(cdb.ok());
  return std::move(cdb).value();
}

TEST(WeightedSliceTest, BuildPreservesCounts) {
  const CompressedDb cdb = PaperCdb();
  const FList flist = FList::FromCounts(cdb.CountItemSupports(9), 2);
  const SliceDb sdb = SliceDb::Build(cdb, flist);
  const std::vector<WeightedSlice> ws = BuildWeightedSlices(sdb);
  ASSERT_EQ(ws.size(), sdb.slices.size());
  for (size_t i = 0; i < ws.size(); ++i) {
    EXPECT_EQ(ws[i].count(), sdb.slices[i].count());
    EXPECT_EQ(ws[i].pattern, sdb.slices[i].pattern);
  }
}

TEST(WeightedSliceTest, DedupeMergesIdenticalRows) {
  std::vector<std::pair<std::vector<Rank>, uint64_t>> outs;
  outs.emplace_back(std::vector<Rank>{1, 2}, 1);
  outs.emplace_back(std::vector<Rank>{3}, 2);
  outs.emplace_back(std::vector<Rank>{1, 2}, 4);
  DedupeWeightedOuts(&outs);
  ASSERT_EQ(outs.size(), 2u);
  uint64_t w12 = 0;
  uint64_t w3 = 0;
  for (const auto& [row, w] : outs) {
    if (row == std::vector<Rank>{1, 2}) w12 = w;
    if (row == std::vector<Rank>{3}) w3 = w;
  }
  EXPECT_EQ(w12, 5u);
  EXPECT_EQ(w3, 2u);
}

TEST(WeightedSliceTest, IdenticalMembersCollapse) {
  // Ten identical tuples in one group: the weighted build keeps one row of
  // weight 10.
  TransactionDb db;
  for (int i = 0; i < 10; ++i) db.AddTransaction({1, 2, 7});
  fpm::PatternSet fp;
  fp.Add({1, 2}, 10);
  auto cdb = CompressDatabase(db, fp, {CompressionStrategy::kMcp,
                                       MatcherKind::kLinear});
  ASSERT_TRUE(cdb.ok());
  const FList flist =
      FList::FromCounts(cdb->CountItemSupports(cdb->ItemUniverseSize()), 2);
  const SliceDb sdb = SliceDb::Build(*cdb, flist);
  const std::vector<WeightedSlice> ws = BuildWeightedSlices(sdb);
  ASSERT_EQ(ws.size(), 1u);
  ASSERT_EQ(ws[0].outs.size(), 1u);
  EXPECT_EQ(ws[0].outs[0].second, 10u);
  EXPECT_EQ(ws[0].count(), 10u);
}

TEST(WeightedSliceTest, ProjectionMatchesUnweightedProjection) {
  // Counting over ProjectWeightedSlices must equal counting over
  // ProjectSlices for every item, on randomized compressed databases.
  for (uint64_t seed : {51u, 52u, 53u}) {
    const TransactionDb db = testutil::RandomDb(seed, 250, 30, 5.0);
    auto fp = fpm::CreateMiner(fpm::MinerKind::kEclat)->Mine(db, 25);
    ASSERT_TRUE(fp.ok());
    auto cdb = CompressDatabase(db, *fp, {CompressionStrategy::kMcp,
                                          MatcherKind::kAuto});
    ASSERT_TRUE(cdb.ok());
    const FList flist = FList::FromCounts(
        cdb->CountItemSupports(cdb->ItemUniverseSize()), 10);
    const SliceDb sdb = SliceDb::Build(*cdb, flist);
    const std::vector<WeightedSlice> ws = BuildWeightedSlices(sdb);

    fpm::PatternSet sink;
    fpm::MiningStats stats;
    SliceMiningContext ctx(flist, 10, &sink, &stats);
    for (Rank f = 0; f < std::min<size_t>(flist.size(), 8); ++f) {
      const auto plain = ProjectSlices(sdb.slices, f);
      const auto weighted = ProjectWeightedSlices(ws, f);
      std::vector<uint64_t> counts_a;
      std::vector<uint64_t> counts_b;
      const auto freq_a = ctx.CountFrequent(plain, &counts_a);
      const auto freq_b = ctx.CountFrequentWeighted(weighted, &counts_b);
      EXPECT_EQ(freq_a, freq_b) << "seed " << seed << " f " << f;
      EXPECT_EQ(counts_a, counts_b) << "seed " << seed << " f " << f;
    }
  }
}

TEST(WeightedSliceTest, EqualPatternSlicesMergeOnProjection) {
  // Two groups whose pattern suffixes coincide after projecting away their
  // distinguishing head item must merge into one weighted slice.
  TransactionDb db;
  for (int i = 0; i < 4; ++i) db.AddTransaction({1, 5, 6});
  for (int i = 0; i < 4; ++i) db.AddTransaction({2, 5, 6});
  fpm::PatternSet fp;
  fp.Add({1, 5, 6}, 4);
  fp.Add({2, 5, 6}, 4);
  auto cdb = CompressDatabase(db, fp, {CompressionStrategy::kMcp,
                                       MatcherKind::kLinear});
  ASSERT_TRUE(cdb.ok());
  ASSERT_EQ(cdb->NumGroups(), 2u);
  const FList flist =
      FList::FromCounts(cdb->CountItemSupports(cdb->ItemUniverseSize()), 4);
  const SliceDb sdb = SliceDb::Build(*cdb, flist);
  const std::vector<WeightedSlice> ws = BuildWeightedSlices(sdb);
  ASSERT_EQ(ws.size(), 2u);

  // Items 1 and 2 have support 4 (ranks 0/1); 5 and 6 have support 8.
  // Projecting on rank 0 (item 1 or 2) keeps one group; projecting on the
  // rank of item 5 keeps both groups, whose pattern suffix is then just
  // {6} — they must merge.
  const Rank r5 = flist.rank(5);
  ASSERT_NE(r5, fpm::kNoRank);
  const auto projected = ProjectWeightedSlices(ws, r5);
  ASSERT_EQ(projected.size(), 1u);
  EXPECT_EQ(projected[0].count(), 8u);
}

TEST(WeightedSliceTest, EmptyInputs) {
  EXPECT_TRUE(ProjectWeightedSlices({}, 0).empty());
  std::vector<std::pair<std::vector<Rank>, uint64_t>> outs;
  DedupeWeightedOuts(&outs);
  EXPECT_TRUE(outs.empty());
}

}  // namespace
}  // namespace gogreen::core
