// Property and stress tests for the work-stealing ThreadPool: inline
// single-thread fallback, ParallelFor coverage and lane exclusivity, task
// ordering independence, nested submission, exception propagation, and
// wait-group completion under contention.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/run_context.h"
#include "util/thread_annotations.h"

namespace gogreen {
namespace {

using std::chrono::milliseconds;

/// A manually released gate that tasks can park on, to hold pool workers
/// busy while a test probes waiting behavior.
class Gate {
 public:
  void Open() {
    {
      MutexLock lock(mu_);
      open_ = true;
    }
    cv_.NotifyAll();
  }
  void Wait() {
    MutexLock lock(mu_);
    while (!open_) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool open_ GUARDED_BY(mu_) = false;
};

TEST(WaitGroupTest, StartsFinished) {
  WaitGroup wg;
  EXPECT_TRUE(wg.Finished());
}

TEST(ThreadPoolTest, SingleThreadRunsInlineAtSubmission) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  WaitGroup wg;
  std::vector<int> order;
  pool.Submit(&wg, [&] { order.push_back(1); });
  // No workers exist: the task already ran, before Submit returned.
  EXPECT_EQ(order.size(), 1u);
  EXPECT_TRUE(wg.Finished());
  pool.Submit(&wg, [&] { order.push_back(2); });
  pool.Wait(&wg);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ThreadPoolTest, SingleThreadParallelForIsSequential) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(10, [&](size_t lane, size_t i) {
    EXPECT_EQ(lane, 0u);
    order.push_back(i);
  });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t lane, size_t i) {
      EXPECT_LT(lane, threads);
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForLanesAreExclusive) {
  // No two concurrent iterations may share a lane id — that is the contract
  // that lets miners keep lock-free lane-local scratch.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> in_lane(4);
  std::atomic<bool> violated{false};
  pool.ParallelFor(2000, [&](size_t lane, size_t) {
    if (in_lane[lane].fetch_add(1, std::memory_order_acq_rel) != 0) {
      violated.store(true, std::memory_order_relaxed);
    }
    in_lane[lane].fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_FALSE(violated.load());
}

TEST(ThreadPoolTest, ResultIndependentOfTaskOrdering) {
  // Tasks complete in a scheduler-dependent order, but the set of effects
  // must be exactly the submitted set.
  ThreadPool pool(4);
  Mutex mu;
  std::vector<int> done;  // Written under mu by tasks; read after Wait().
  WaitGroup wg;
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    pool.Submit(&wg, [&, i] {
      MutexLock lock(mu);
      done.push_back(i);
    });
  }
  pool.Wait(&wg);
  std::sort(done.begin(), done.end());
  std::vector<int> expected(kN);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(done, expected);
}

TEST(ThreadPoolTest, NestedSubmitCompletes) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  WaitGroup wg;
  for (int i = 0; i < 16; ++i) {
    pool.Submit(&wg, [&pool, &wg, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < 8; ++j) {
        pool.Submit(&wg, [&count] {
          count.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  pool.Wait(&wg);
  EXPECT_EQ(count.load(), 16 + 16 * 8);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // An outer iteration fanning out an inner loop must not deadlock even when
  // every worker is occupied by outer iterations: waiting threads help.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t, size_t) {
    pool.ParallelFor(8, [&](size_t, size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, SubmitExceptionPropagatesToWait) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    WaitGroup wg;
    std::atomic<int> survivors{0};
    for (int i = 0; i < 32; ++i) {
      pool.Submit(&wg, [&survivors, i] {
        if (i == 7) throw std::runtime_error("boom");
        survivors.fetch_add(1, std::memory_order_relaxed);
      });
    }
    EXPECT_THROW(pool.Wait(&wg), std::runtime_error);
    // All non-throwing tasks still ran to completion.
    EXPECT_EQ(survivors.load(), 31);
    // The group is reusable after the error was consumed.
    pool.Submit(&wg, [&survivors] {
      survivors.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_NO_THROW(pool.Wait(&wg));
    EXPECT_EQ(survivors.load(), 32);
  }
}

TEST(ThreadPoolTest, ParallelForExceptionPropagates) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.ParallelFor(100,
                                  [](size_t, size_t i) {
                                    if (i == 42) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
                 std::runtime_error);
  }
}

TEST(ThreadPoolTest, WaitGroupCompletionUnderContention) {
  // Many rounds of short tasks from several submitting groups: every Wait
  // must observe its full group, never a partial one.
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> a{0};
    std::atomic<int> b{0};
    WaitGroup wga;
    WaitGroup wgb;
    for (int i = 0; i < 64; ++i) {
      pool.Submit(&wga, [&a] { a.fetch_add(1, std::memory_order_relaxed); });
      pool.Submit(&wgb, [&b] { b.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait(&wga);
    EXPECT_EQ(a.load(), 64);
    pool.Wait(&wgb);
    EXPECT_EQ(b.load(), 64);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  WaitGroup wg;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit(&wg, [&count] {
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  // Destruction joins workers and runs anything still queued.
  EXPECT_EQ(count.load(), 200);
  EXPECT_TRUE(wg.Finished());
}

TEST(ThreadPoolTest, StackWaitGroupSafeToDestroyAfterWait) {
  // Regression: Wait() must not return until the final Done() has fully
  // left the WaitGroup's critical section, because callers (ParallelFor
  // included) destroy stack-allocated groups the moment Wait returns.
  // Many rounds of short tasks stress the window where a worker finishing
  // the last task races the waiter's exit and the group's destruction —
  // the use-after-free an atomics-only pending count allowed.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kRounds = 5000;
  constexpr int kTasksPerRound = 8;
  for (int round = 0; round < kRounds; ++round) {
    WaitGroup wg;
    for (int t = 0; t < kTasksPerRound; ++t) {
      pool.Submit(&wg, [&count] {
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.Wait(&wg);
  }
  EXPECT_EQ(count.load(), kRounds * kTasksPerRound);
}

TEST(ThreadPoolTest, PinnedGlobalPoolSurvivesReconfiguration) {
  // Regression: a run holds the shared_ptr from Global() across its whole
  // fan-out, so SetGlobalThreads() must not destroy (or resize lane ids
  // out from under) the pool that run is still using.
  const size_t original = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(4);
  const std::shared_ptr<ThreadPool> pinned = ThreadPool::Global();
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(pinned->threads(), 4u);
  EXPECT_EQ(ThreadPool::Global()->threads(), 2u);
  std::atomic<int> count{0};
  pinned->ParallelFor(100, [&](size_t lane, size_t) {
    EXPECT_LT(lane, pinned->threads());
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::SetGlobalThreads(original);
}

TEST(ThreadPoolTest, SetGlobalThreadsControlsGlobalPool) {
  const size_t original = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3u);
  EXPECT_EQ(ThreadPool::Global()->threads(), 3u);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 1u);
  // 0 resets to the environment/hardware default.
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(ThreadPool::GlobalThreads(), ThreadPool::DefaultThreads());
  ThreadPool::SetGlobalThreads(original);
}

TEST(ThreadPoolTest, ZeroIterationParallelForIsANoop) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t, size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, WaitForReturnsTrueOnFinishedGroup) {
  ThreadPool pool(2);
  WaitGroup wg;
  EXPECT_TRUE(pool.WaitFor(&wg, milliseconds(0)));  // Empty group.
  std::atomic<int> ran{0};
  pool.Submit(&wg, [&] { ran.fetch_add(1); });
  EXPECT_TRUE(pool.WaitFor(&wg, milliseconds(1000)));
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, WaitForTimesOutWhileTaskStillRuns) {
  ThreadPool pool(2);
  Gate gate;
  std::atomic<bool> started{false};
  WaitGroup wg;
  pool.Submit(&wg, [&] {
    started.store(true);
    gate.Wait();
  });
  // Let the worker take the task so WaitFor cannot steal-and-block on it.
  while (!started.load()) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(pool.WaitFor(&wg, milliseconds(20)));
  EXPECT_FALSE(wg.Finished());
  gate.Open();
  pool.Wait(&wg);
  EXPECT_TRUE(wg.Finished());
}

TEST(ThreadPoolTest, WaitForHelpsExecuteWhenWorkersAreBusy) {
  // Park the pool's only worker on a gate, then queue more tasks: the
  // waiting thread must drain them itself rather than deadlocking on the
  // parked worker.
  ThreadPool pool(2);  // threads() counts the caller: one real worker.
  Gate gate;
  std::atomic<bool> worker_parked{false};
  WaitGroup parked;
  pool.Submit(&parked, [&] {
    worker_parked.store(true);
    gate.Wait();
  });
  // Wait until the worker actually holds the gate task, so the caller's
  // help-execute loop below cannot steal it and park itself.
  while (!worker_parked.load()) {
    std::this_thread::yield();
  }
  WaitGroup wg;
  std::atomic<int> drained{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit(&wg, [&drained] { drained.fetch_add(1); });
  }
  // Only the caller can make progress here.
  while (!pool.WaitFor(&wg, milliseconds(50))) {
  }
  EXPECT_EQ(drained.load(), 16);
  gate.Open();
  pool.Wait(&parked);
}

TEST(ThreadPoolTest, WaitForDoesNotConsumeExceptionOnTimeout) {
  ThreadPool pool(2);
  Gate gate;
  std::atomic<bool> started{false};
  WaitGroup wg;
  pool.Submit(&wg, [&] {
    started.store(true);
    gate.Wait();
    throw std::runtime_error("task failed");
  });
  while (!started.load()) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(pool.WaitFor(&wg, milliseconds(10)));
  gate.Open();
  // The timeout above must not have swallowed the pending exception: the
  // successful wait still rethrows it.
  EXPECT_THROW(
      {
        while (!pool.WaitFor(&wg, milliseconds(200))) {
        }
      },
      std::runtime_error);
  EXPECT_TRUE(wg.Finished());
}

TEST(ThreadPoolTest, CancelledGovernedWaitDrainsPinnedPoolWithoutLeaks) {
  // The governed fan-out pattern (MineFirstLevelGoverned): tasks poll a
  // RunContext and bail early once it is cancelled; the driver loops on
  // WaitFor + PollNow. A cancelled run must account for every queued task
  // (none leak into later rounds) and leave the pinned pool functional.
  const size_t original = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(2);
  const std::shared_ptr<ThreadPool> pool = ThreadPool::Global();

  RunContext ctx;
  Gate gate;
  std::atomic<int> entered{0};
  std::atomic<int> skipped{0};
  constexpr int kTasks = 64;
  WaitGroup wg;
  for (int i = 0; i < kTasks; ++i) {
    pool->Submit(&wg, [&, i] {
      if (i == 0) gate.Wait();  // Hold one lane until cancel lands.
      if (ctx.ShouldStop()) {
        skipped.fetch_add(1);
        return;
      }
      entered.fetch_add(1);
    });
  }
  ctx.RequestCancel();
  gate.Open();
  int spins = 0;
  while (!pool->WaitFor(&wg, milliseconds(5))) {
    ctx.PollNow();
    ASSERT_LT(++spins, 2000) << "governed wait did not drain";
  }
  EXPECT_EQ(entered.load() + skipped.load(), kTasks);
  EXPECT_GT(skipped.load(), 0);

  // No queued task leaked: a fresh round on the same pinned pool runs
  // exactly its own tasks.
  std::atomic<int> fresh{0};
  WaitGroup wg2;
  for (int i = 0; i < 8; ++i) {
    pool->Submit(&wg2, [&fresh] { fresh.fetch_add(1); });
  }
  pool->Wait(&wg2);
  EXPECT_EQ(fresh.load(), 8);
  ThreadPool::SetGlobalThreads(original);
}

}  // namespace
}  // namespace gogreen
