// Property and stress tests for the work-stealing ThreadPool: inline
// single-thread fallback, ParallelFor coverage and lane exclusivity, task
// ordering independence, nested submission, exception propagation, and
// wait-group completion under contention.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gogreen {
namespace {

TEST(WaitGroupTest, StartsFinished) {
  WaitGroup wg;
  EXPECT_TRUE(wg.Finished());
}

TEST(ThreadPoolTest, SingleThreadRunsInlineAtSubmission) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  WaitGroup wg;
  std::vector<int> order;
  pool.Submit(&wg, [&] { order.push_back(1); });
  // No workers exist: the task already ran, before Submit returned.
  EXPECT_EQ(order.size(), 1u);
  EXPECT_TRUE(wg.Finished());
  pool.Submit(&wg, [&] { order.push_back(2); });
  pool.Wait(&wg);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ThreadPoolTest, SingleThreadParallelForIsSequential) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(10, [&](size_t lane, size_t i) {
    EXPECT_EQ(lane, 0u);
    order.push_back(i);
  });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t lane, size_t i) {
      EXPECT_LT(lane, threads);
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForLanesAreExclusive) {
  // No two concurrent iterations may share a lane id — that is the contract
  // that lets miners keep lock-free lane-local scratch.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> in_lane(4);
  std::atomic<bool> violated{false};
  pool.ParallelFor(2000, [&](size_t lane, size_t) {
    if (in_lane[lane].fetch_add(1, std::memory_order_acq_rel) != 0) {
      violated.store(true, std::memory_order_relaxed);
    }
    in_lane[lane].fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_FALSE(violated.load());
}

TEST(ThreadPoolTest, ResultIndependentOfTaskOrdering) {
  // Tasks complete in a scheduler-dependent order, but the set of effects
  // must be exactly the submitted set.
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<int> done;
  WaitGroup wg;
  constexpr int kN = 500;
  for (int i = 0; i < kN; ++i) {
    pool.Submit(&wg, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      done.push_back(i);
    });
  }
  pool.Wait(&wg);
  std::sort(done.begin(), done.end());
  std::vector<int> expected(kN);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(done, expected);
}

TEST(ThreadPoolTest, NestedSubmitCompletes) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  WaitGroup wg;
  for (int i = 0; i < 16; ++i) {
    pool.Submit(&wg, [&pool, &wg, &count] {
      count.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < 8; ++j) {
        pool.Submit(&wg, [&count] {
          count.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  pool.Wait(&wg);
  EXPECT_EQ(count.load(), 16 + 16 * 8);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // An outer iteration fanning out an inner loop must not deadlock even when
  // every worker is occupied by outer iterations: waiting threads help.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t, size_t) {
    pool.ParallelFor(8, [&](size_t, size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, SubmitExceptionPropagatesToWait) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    WaitGroup wg;
    std::atomic<int> survivors{0};
    for (int i = 0; i < 32; ++i) {
      pool.Submit(&wg, [&survivors, i] {
        if (i == 7) throw std::runtime_error("boom");
        survivors.fetch_add(1, std::memory_order_relaxed);
      });
    }
    EXPECT_THROW(pool.Wait(&wg), std::runtime_error);
    // All non-throwing tasks still ran to completion.
    EXPECT_EQ(survivors.load(), 31);
    // The group is reusable after the error was consumed.
    pool.Submit(&wg, [&survivors] {
      survivors.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_NO_THROW(pool.Wait(&wg));
    EXPECT_EQ(survivors.load(), 32);
  }
}

TEST(ThreadPoolTest, ParallelForExceptionPropagates) {
  for (size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.ParallelFor(100,
                                  [](size_t, size_t i) {
                                    if (i == 42) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
                 std::runtime_error);
  }
}

TEST(ThreadPoolTest, WaitGroupCompletionUnderContention) {
  // Many rounds of short tasks from several submitting groups: every Wait
  // must observe its full group, never a partial one.
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> a{0};
    std::atomic<int> b{0};
    WaitGroup wga;
    WaitGroup wgb;
    for (int i = 0; i < 64; ++i) {
      pool.Submit(&wga, [&a] { a.fetch_add(1, std::memory_order_relaxed); });
      pool.Submit(&wgb, [&b] { b.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait(&wga);
    EXPECT_EQ(a.load(), 64);
    pool.Wait(&wgb);
    EXPECT_EQ(b.load(), 64);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  WaitGroup wg;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) {
      pool.Submit(&wg, [&count] {
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  // Destruction joins workers and runs anything still queued.
  EXPECT_EQ(count.load(), 200);
  EXPECT_TRUE(wg.Finished());
}

TEST(ThreadPoolTest, StackWaitGroupSafeToDestroyAfterWait) {
  // Regression: Wait() must not return until the final Done() has fully
  // left the WaitGroup's critical section, because callers (ParallelFor
  // included) destroy stack-allocated groups the moment Wait returns.
  // Many rounds of short tasks stress the window where a worker finishing
  // the last task races the waiter's exit and the group's destruction —
  // the use-after-free an atomics-only pending count allowed.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kRounds = 5000;
  constexpr int kTasksPerRound = 8;
  for (int round = 0; round < kRounds; ++round) {
    WaitGroup wg;
    for (int t = 0; t < kTasksPerRound; ++t) {
      pool.Submit(&wg, [&count] {
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.Wait(&wg);
  }
  EXPECT_EQ(count.load(), kRounds * kTasksPerRound);
}

TEST(ThreadPoolTest, PinnedGlobalPoolSurvivesReconfiguration) {
  // Regression: a run holds the shared_ptr from Global() across its whole
  // fan-out, so SetGlobalThreads() must not destroy (or resize lane ids
  // out from under) the pool that run is still using.
  const size_t original = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(4);
  const std::shared_ptr<ThreadPool> pinned = ThreadPool::Global();
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(pinned->threads(), 4u);
  EXPECT_EQ(ThreadPool::Global()->threads(), 2u);
  std::atomic<int> count{0};
  pinned->ParallelFor(100, [&](size_t lane, size_t) {
    EXPECT_LT(lane, pinned->threads());
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::SetGlobalThreads(original);
}

TEST(ThreadPoolTest, SetGlobalThreadsControlsGlobalPool) {
  const size_t original = ThreadPool::GlobalThreads();
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3u);
  EXPECT_EQ(ThreadPool::Global()->threads(), 3u);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 1u);
  // 0 resets to the environment/hardware default.
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(ThreadPool::GlobalThreads(), ThreadPool::DefaultThreads());
  ThreadPool::SetGlobalThreads(original);
}

TEST(ThreadPoolTest, ZeroIterationParallelForIsANoop) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t, size_t) { FAIL() << "must not run"; });
}

}  // namespace
}  // namespace gogreen
