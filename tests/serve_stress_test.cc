// Concurrency stress harness for the serving layer (DESIGN.md §13): M
// client threads replay randomized overlapping query scripts against one
// MiningService and every answer must be canonically identical to a serial
// replay, with the store's byte budget holding at every sampled instant.
// The single-flight protocol gets deterministic coverage through the
// leader-hold test seam and the `coalesce.leader` failpoint: an identical
// burst performs exactly one mine (proven by `mine.runs` and the
// serve.scratch / serve.cache_hits / serve.coalesced counters), a parked
// follower's RunContext deadline still fires while the leader keeps
// mining, and a killed leader propagates its error to its own caller while
// the followers elect a new leader instead of hanging.
//
// This file must run clean under the TSan CI leg; it is the concurrency
// proof for the sharded PatternStore and the in-flight table.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/seed_selection.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "fpm/transaction_db.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "serve/mining_service.h"
#include "serve/pattern_store.h"
#include "tests/test_util.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "util/run_context.h"
#include "util/status.h"

namespace gogreen {
namespace {

using core::SeedRoute;
using fpm::MineRequest;
using fpm::MineResult;
using fpm::PatternSet;
using fpm::TransactionDb;
using serve::MiningService;
using serve::ServeStats;

uint64_t CounterNow(const char* name) {
  return obs::MetricRegistry::Global().Snapshot().CounterValue(name);
}

/// Serial-replay oracle: a direct storeless mine, the answer every
/// concurrent route must reproduce bit-for-bit (canonical order).
PatternSet DirectMine(const TransactionDb& db, uint64_t minsup) {
  auto miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

bool CanonicallyEqual(const PatternSet& expected, const PatternSet& got) {
  PatternSet a = expected;
  PatternSet b = got;
  return PatternSet::Equal(&a, &b);
}

/// Spin until `done` returns true or `millis` elapse; true on success.
bool AwaitFor(uint64_t millis, const std::function<bool()>& done) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(millis);
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// M >= 8 worker threads, each replaying its own seeded random script of
// overlapping supports over one service. Differential: every result equals
// the serial-replay oracle. Invariant: the store budget is never exceeded
// at any instant — checked by every worker after every request and by a
// dedicated sampler thread racing the workers. When the CI wiring sets
// GOGREEN_STRESS_REQUEST_LOG / GOGREEN_STRESS_METRICS_JSON, the run also
// emits its wide events and a metrics snapshot for validate_request_log.py
// --concurrent.
TEST(ServeStressTest, ConcurrentRandomizedScriptsMatchSerialReplay) {
  const std::string log_path = GetEnvOrEmpty("GOGREEN_STRESS_REQUEST_LOG");
  if (!log_path.empty()) {
    ASSERT_TRUE(obs::RequestLog::Global().AttachSink(log_path).ok());
  }

  const TransactionDb db = testutil::RandomDb(/*seed=*/7, 1500, 48, 7.0);
  const std::vector<uint64_t> supports = {450, 300, 210, 150, 105, 75};

  // Serial replay first: the oracle answers, computed with no store.
  std::vector<PatternSet> expected;
  expected.reserve(supports.size());
  size_t max_cost = 0;
  for (uint64_t s : supports) {
    expected.push_back(DirectMine(db, s));
    max_cost = std::max(max_cost, serve::PatternSetCost(expected.back()));
  }

  // A budget that always admits any single set but cannot hold all of
  // them: eviction and reinsertion churn constantly under the workers.
  serve::ServiceOptions options;
  options.store.byte_budget = 2 * max_cost + 4096;
  MiningService service(db, "stress", options);
  const size_t budget = service.store().byte_budget();

  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 20;
  const uint64_t requests_before = CounterNow("serve.requests");
  std::atomic<uint64_t> budget_violations{0};
  std::atomic<bool> done{false};

  // Sampler: races the workers, observing the ledger mid-insert.
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (service.store().bytes_in_use() > budget) {
        budget_violations.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(1000 + static_cast<unsigned>(t));
      std::uniform_int_distribution<size_t> pick(0, supports.size() - 1);
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        const size_t i = pick(rng);
        ServeStats stats;
        auto result = service.Mine(MineRequest::At(supports[i]), &stats);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_FALSE(result->partial);
        EXPECT_TRUE(CanonicallyEqual(expected[i], result->patterns))
            << "support " << supports[i] << " via route "
            << core::SeedRouteName(stats.route)
            << (stats.coalesced ? " (coalesced)" : "");
        EXPECT_LE(service.store().bytes_in_use(), budget);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_EQ(budget_violations.load(), 0u)
      << "store byte budget exceeded mid-flight";
  EXPECT_EQ(CounterNow("serve.requests") - requests_before,
            kThreads * kOpsPerThread);
  EXPECT_EQ(service.CoalesceWaitersForTest(), 0u);

  if (!log_path.empty()) {
    obs::RequestLog::Global().DetachSink();
    const std::string metrics_path =
        GetEnvOrEmpty("GOGREEN_STRESS_METRICS_JSON");
    if (!metrics_path.empty()) {
      ASSERT_TRUE(obs::WriteMetricsJson(metrics_path).ok());
    }
  }
}

// The coalescing differential: K threads submit the identical MineRequest
// simultaneously. The leader-hold seam keeps the leader parked until all
// K-1 followers have rendezvoused, so the burst deterministically performs
// exactly one mine: `mine.runs` and `serve.scratch` rise by 1,
// `serve.cache_hits` and `serve.coalesced` by K-1, and all K results are
// identical.
TEST(ServeStressTest, IdenticalBurstCoalescesToOneMine) {
  const TransactionDb db = testutil::RandomDb(/*seed=*/11, 800, 40, 6.0);
  constexpr uint64_t kSupport = 48;
  constexpr size_t kThreads = 8;

  PatternSet oracle = DirectMine(db, kSupport);  // Before the snapshots.

  MiningService service(db, "burst");
  service.SetLeaderHoldForTest([&service] {
    // Rendezvous window: hold the one leader until every follower parks.
    EXPECT_TRUE(AwaitFor(10000, [&service] {
      return service.CoalesceWaitersForTest() + 1 >= kThreads;
    })) << "followers never rendezvoused";
  });

  const uint64_t runs_before = CounterNow("mine.runs");
  const uint64_t scratch_before = CounterNow("serve.scratch");
  const uint64_t hits_before = CounterNow("serve.cache_hits");
  const uint64_t coalesced_before = CounterNow("serve.coalesced");

  std::vector<ServeStats> stats(kThreads);
  std::vector<MineResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto result = service.Mine(MineRequest::At(kSupport), &stats[t]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      results[t] = std::move(result).value();
    });
  }
  for (std::thread& t : threads) t.join();

  // Exactly one mine for the whole burst.
  EXPECT_EQ(CounterNow("mine.runs") - runs_before, 1u);
  EXPECT_EQ(CounterNow("serve.scratch") - scratch_before, 1u);
  EXPECT_EQ(CounterNow("serve.cache_hits") - hits_before, kThreads - 1);
  EXPECT_EQ(CounterNow("serve.coalesced") - coalesced_before, kThreads - 1);

  size_t leaders = 0;
  size_t followers = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(CanonicallyEqual(oracle, results[t].patterns))
        << "thread " << t;
    if (stats[t].coalesced) {
      ++followers;
      EXPECT_EQ(stats[t].route, SeedRoute::kExact);
      EXPECT_EQ(stats[t].seed_support, kSupport);
    } else {
      ++leaders;
      EXPECT_EQ(stats[t].route, SeedRoute::kNone);
    }
  }
  EXPECT_EQ(leaders, 1u);
  EXPECT_EQ(followers, kThreads - 1);
}

// A follower with a short RunContext deadline must come back with its own
// partial/deadline outcome while the leader keeps mining — a slow shared
// mine cannot hold a deadline-bound caller hostage.
TEST(ServeStressTest, FollowerDeadlineFiresWhileLeaderKeepsMining) {
  const TransactionDb db = testutil::PaperExampleDb();
  MiningService service(db, "deadline");

  std::atomic<bool> leader_held{false};
  std::atomic<bool> release_leader{false};
  service.SetLeaderHoldForTest([&] {
    leader_held.store(true, std::memory_order_release);
    while (!release_leader.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Leader and follower share a governor class ("gd": deadline-armed), so
  // they coalesce; only the follower's deadline is near.
  std::thread leader_thread([&] {
    RunContext ctx;
    ctx.SetDeadlineAfterMillis(60000);
    MineRequest request = MineRequest::At(2);
    request.run_context = &ctx;
    ServeStats stats;
    auto result = service.Mine(request, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The deadline-tripped follower may have cached its partial set at the
    // frontier while the leader was held, so the leader's route is free to
    // recycle from it — but its answer must still be complete and its own.
    EXPECT_FALSE(result->partial);
    EXPECT_FALSE(stats.coalesced);
  });
  ASSERT_TRUE(AwaitFor(10000, [&] {
    return leader_held.load(std::memory_order_acquire);
  })) << "leader never reached the hold seam";

  std::thread follower_thread([&] {
    RunContext ctx;
    ctx.SetDeadlineAfterMillis(50);
    MineRequest request = MineRequest::At(2);
    request.run_context = &ctx;
    ServeStats stats;
    auto result = service.Mine(request, &stats);
    // The deadline fired while parked: the follower mined for itself with
    // the tripped context and got the governed partial answer, not the
    // leader's (still unfinished) result.
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->partial);
    EXPECT_EQ(stats.outcome, "partial");
    EXPECT_FALSE(stats.coalesced);
    EXPECT_TRUE(ctx.stopped());
    EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadlineExceeded);
  });
  follower_thread.join();  // Completes while the leader is still held.

  release_leader.store(true, std::memory_order_release);
  leader_thread.join();
}

// A leader killed via the `coalesce.leader` failpoint must not strand its
// followers: the error goes to the dead leader's own caller, each follower
// elects a new leader, and — with the failpoint at probability 1 — every
// thread eventually leads, fails, and returns. Nobody hangs, nobody
// inherits another caller's error silently.
TEST(ServeStressTest, KilledLeaderElectsNewLeaderWithoutStrandingFollowers) {
  const TransactionDb db = testutil::PaperExampleDb();
  MiningService service(db, "killed");
  constexpr size_t kThreads = 6;

  // Hold only the *first* leader until the followers have parked, so the
  // kill provably happens with a full rendezvous in flight.
  std::atomic<bool> first_leader{true};
  service.SetLeaderHoldForTest([&] {
    if (!first_leader.exchange(false)) return;
    EXPECT_TRUE(AwaitFor(10000, [&service] {
      return service.CoalesceWaitersForTest() + 1 >= kThreads;
    })) << "followers never rendezvoused before the kill";
  });

  const uint64_t hits_before = failpoint::HitCount("coalesce.leader");
  const uint64_t errors_before = CounterNow("serve.errors");
  failpoint::ScopedFailpoints fp("coalesce.leader:ioerror");

  std::vector<Status> statuses(kThreads, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto result = service.Mine(MineRequest::At(2));
      statuses[t] = result.status();
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(statuses[t].code(), StatusCode::kIOError)
        << "thread " << t << ": " << statuses[t].ToString();
  }
  // Every thread led exactly once and died at the seam.
  EXPECT_EQ(failpoint::HitCount("coalesce.leader") - hits_before, kThreads);
  EXPECT_EQ(CounterNow("serve.errors") - errors_before, kThreads);
  EXPECT_EQ(service.CoalesceWaitersForTest(), 0u);
}

}  // namespace
}  // namespace gogreen
