// Tests pinning the paper's qualitative claims in work-count terms (time
// is flaky in CI; items_scanned is deterministic):
//   - recycling scans fewer item occurrences than direct mining when the
//     compression covers the data well;
//   - the single-group shortcut (Lemma 3.1) suppresses whole projection
//     subtrees;
//   - MCP's utility ranking prefers the patterns whose subtree was most
//     expensive to visit.

#include <gtest/gtest.h>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/utility.h"
#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::core {
namespace {

using fpm::PatternSet;
using fpm::TransactionDb;
using testutil::RandomDenseDb;

TEST(PaperInvariantsTest, RecyclingScansFewerItemsOnDenseData) {
  const TransactionDb db = RandomDenseDb(91, 600, 12, 3);
  auto fp_miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto fp = fp_miner->Mine(db, 380);
  ASSERT_TRUE(fp.ok());
  ASSERT_GT(fp->size(), 3u);
  auto cdb = CompressDatabase(db, *fp,
                              {CompressionStrategy::kMcp, MatcherKind::kAuto});
  ASSERT_TRUE(cdb.ok());

  auto direct = fpm::CreateMiner(fpm::MinerKind::kHMine);
  ASSERT_TRUE(direct->Mine(db, 300).ok());
  for (RecycleAlgo algo : {RecycleAlgo::kNaive, RecycleAlgo::kHMine,
                           RecycleAlgo::kFpGrowth}) {
    SCOPED_TRACE(RecycleAlgoName(algo));
    auto rec = CreateCompressedMiner(algo);
    ASSERT_TRUE(rec->MineCompressed(*cdb, 300).ok());
    EXPECT_LT(rec->stats().items_scanned, direct->stats().items_scanned);
    auto r2 = rec->MineCompressed(*cdb, 300);
    ASSERT_TRUE(r2.ok());
  }
}

TEST(PaperInvariantsTest, SingleGroupShortcutCutsProjections) {
  // A database that is one big group: every projected database below the
  // top level is single-group, so Recycle-HM should build far fewer
  // projected databases than plain H-Mine.
  TransactionDb db;
  for (int i = 0; i < 100; ++i) db.AddTransaction({1, 2, 3, 4, 5, 6});
  for (int i = 0; i < 20; ++i) db.AddTransaction({1, 7});

  auto fp_miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto fp = fp_miner->Mine(db, 100);
  ASSERT_TRUE(fp.ok());
  auto cdb = CompressDatabase(db, *fp,
                              {CompressionStrategy::kMcp, MatcherKind::kAuto});
  ASSERT_TRUE(cdb.ok());

  auto direct = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto direct_result = direct->Mine(db, 20);
  ASSERT_TRUE(direct_result.ok());

  auto rec = CreateCompressedMiner(RecycleAlgo::kHMine);
  auto rec_result = rec->MineCompressed(*cdb, 20);
  ASSERT_TRUE(rec_result.ok());

  PatternSet a = std::move(direct_result).value();
  PatternSet b = std::move(rec_result).value();
  ASSERT_TRUE(PatternSet::Equal(&a, &b));
  EXPECT_LT(rec->stats().projections_built,
            direct->stats().projections_built / 4);
  EXPECT_LT(rec->stats().items_scanned, direct->stats().items_scanned / 4);
}

TEST(PaperInvariantsTest, McpRanksExpensiveSubtreesFirst) {
  // fgc:3 discovered at xi_old cost ~ (2^3-1)*3 = 21 beats e:4 (cost 4)
  // even though e has higher support; MLP agrees here via length. But a
  // short very frequent pattern can beat a longer rarer one under MCP only
  // if its cost is higher: {9,10}:100 (cost 300) > {1,2,3}:20 (cost 140).
  PatternSet fp;
  fp.Add({9, 10}, 100);
  fp.Add({1, 2, 3}, 20);
  const auto mcp = RankPatternsByUtility(fp, CompressionStrategy::kMcp, 200);
  EXPECT_EQ(fp[mcp[0]].items, (std::vector<fpm::ItemId>{9, 10}));
  const auto mlp = RankPatternsByUtility(fp, CompressionStrategy::kMlp, 200);
  EXPECT_EQ(fp[mlp[0]].items, (std::vector<fpm::ItemId>{1, 2, 3}));
}

TEST(PaperInvariantsTest, CompressionIsThresholdIndependent) {
  // The compressed image depends only on DB and FP — mining it at any
  // xi_new below xi_old is exact (checked across three thresholds on one
  // image).
  const TransactionDb db = testutil::RandomDb(92, 400, 40, 6.0);
  auto fp_miner = fpm::CreateMiner(fpm::MinerKind::kEclat);
  auto fp = fp_miner->Mine(db, 60);
  ASSERT_TRUE(fp.ok());
  auto cdb = CompressDatabase(db, *fp,
                              {CompressionStrategy::kMcp, MatcherKind::kAuto});
  ASSERT_TRUE(cdb.ok());
  for (uint64_t sup : {40u, 20u, 8u}) {
    SCOPED_TRACE(sup);
    auto direct = fpm::CreateMiner(fpm::MinerKind::kFpGrowth)->Mine(db, sup);
    auto rec = CreateCompressedMiner(RecycleAlgo::kHMine)
                   ->MineCompressed(*cdb, sup);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(rec.ok());
    PatternSet a = std::move(direct).value();
    PatternSet b = std::move(rec).value();
    EXPECT_TRUE(PatternSet::Equal(&a, &b));
  }
}

}  // namespace
}  // namespace gogreen::core
