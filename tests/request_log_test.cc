// Tests for request-scoped observability: the wide-event schema (golden
// key set — every route emits the same keys; request ids unique and
// monotonic), the bounded ring + file sink, the reconciliation between
// request-log routes and the serve.* counters, per-request phase-timing
// attribution (span deltas, not cumulative aggregates), and trace/metric
// attribution equivalence at 1 vs 4 threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "fpm/miner.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "serve/mining_service.h"
#include "util/env.h"

namespace gogreen {
namespace {

using obs::MetricsSnapshot;
using obs::RequestEvent;
using obs::RequestLog;
using serve::MiningService;

/// A line is schema-conformant when every golden key appears as a JSON
/// key, in SchemaKeys() order (the emitter writes a fixed sequence).
void ExpectSchemaLine(const std::string& line) {
  size_t last_pos = 0;
  for (const std::string& key : RequestEvent::SchemaKeys()) {
    const std::string needle = "\"" + key + "\":";
    const size_t pos = line.find(needle);
    ASSERT_NE(pos, std::string::npos) << "missing key '" << key << "' in "
                                      << line;
    EXPECT_GT(pos, last_pos) << "key '" << key << "' out of order in "
                             << line;
    last_pos = pos;
  }
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

TEST(RequestEventTest, JsonLineContainsEverySchemaKeyInOrder) {
  RequestEvent event;
  event.request_id = 7;
  event.dataset = "weather";
  event.min_support = 42;
  event.route = "recycle";
  event.seed_support = 60;
  event.outcome = "ok";
  event.seconds = 0.25;
  event.phases = {{"serve.compress", 0.1}, {"serve.recycle_mine", 0.15}};
  const std::string line = event.ToJsonLine();
  ExpectSchemaLine(line);
  EXPECT_NE(line.find("\"request_id\":7"), std::string::npos);
  EXPECT_NE(line.find("\"route\":\"recycle\""), std::string::npos);
  EXPECT_NE(line.find("\"serve.compress\":0.1"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "must be single-line";
}

TEST(RequestLogTest, RingIsBoundedAndCountsDrops) {
  RequestLog log;
  log.SetCapacity(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    RequestEvent event;
    event.request_id = i;
    log.Record(event);
  }
  const auto events = log.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().request_id, 3u);  // Oldest two rotated out.
  EXPECT_EQ(events.back().request_id, 5u);
  EXPECT_EQ(log.dropped(), 2u);
  log.Clear();
  EXPECT_TRUE(log.Events().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(RequestLogTest, NextRequestIdIsMonotonic) {
  RequestLog log;
  const uint64_t first = log.NextRequestId();
  EXPECT_GE(first, 1u);
  EXPECT_EQ(log.NextRequestId(), first + 1);
  EXPECT_EQ(log.NextRequestId(), first + 2);
}

TEST(RequestLogTest, FileSinkAppendsOneValidLinePerEvent) {
  const std::string path =
      ::testing::TempDir() + "/request_log_sink_test.jsonl";
  std::remove(path.c_str());
  RequestLog log;
  ASSERT_TRUE(log.AttachSink(path).ok());
  for (uint64_t i = 1; i <= 3; ++i) {
    RequestEvent event;
    event.request_id = i;
    event.route = "none";
    event.outcome = "ok";
    log.Record(event);
  }
  log.DetachSink();
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ExpectSchemaLine(line);
  }
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

/// Drives a MiningService through all four routes (scratch, recycle,
/// filter-down, exact) the way the session REPL sweep does, collecting
/// the emitted wide events and the serve.* counter deltas.
struct SweepOutcome {
  std::vector<RequestEvent> events;
  std::map<std::string, uint64_t> counter_deltas;  // serve.* and mine.*.
  std::vector<uint64_t> patterns;  // Per request, in order.
};

SweepOutcome RunFourRouteSweep(const fpm::TransactionDb& db,
                               const std::string& dataset_id,
                               size_t threads) {
  const size_t events_before = RequestLog::Global().Events().size();
  const MetricsSnapshot before = obs::MetricRegistry::Global().Snapshot();

  MiningService service(db, dataset_id);
  const uint64_t xi_hi = db.NumTransactions() / 4;
  const uint64_t xi_lo = db.NumTransactions() / 10;
  const uint64_t xi_mid = (xi_hi + xi_lo) / 2;
  SweepOutcome outcome;
  for (const uint64_t minsup : {xi_hi, xi_lo, xi_mid, xi_hi}) {
    fpm::MineRequest request = fpm::MineRequest::At(minsup);
    request.threads = threads;
    auto result = service.Mine(request);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    outcome.patterns.push_back(result.ok() ? result->patterns.size() : 0);
  }

  const MetricsSnapshot after = obs::MetricRegistry::Global().Snapshot();
  for (const auto& [name, value] : after.counters) {
    const uint64_t delta = value - before.CounterValue(name);
    if (delta > 0) outcome.counter_deltas[name] = delta;
  }
  auto events = RequestLog::Global().Events();
  outcome.events.assign(events.begin() + events_before, events.end());
  return outcome;
}

class ServiceWideEventTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Aggregate-only tracing: what `--request-log` turns on in the CLI.
    obs::Tracer::Global().Enable(/*record_events=*/false);
    RequestLog::Global().Clear();
    auto made = data::MakeDataset(data::DatasetId::kWeatherSub,
                                  BenchScale::kSmoke);
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    db_ = std::move(made).value();
  }
  void TearDown() override { obs::Tracer::Global().Disable(); }

  fpm::TransactionDb db_;
};

TEST_F(ServiceWideEventTest, EveryRouteEmitsTheGoldenKeySet) {
  const SweepOutcome sweep = RunFourRouteSweep(db_, "wide-event", 1);
  ASSERT_EQ(sweep.events.size(), 4u);

  const std::vector<std::string> want_routes = {"none", "recycle",
                                                "filter-down", "exact"};
  for (size_t i = 0; i < sweep.events.size(); ++i) {
    const RequestEvent& event = sweep.events[i];
    ExpectSchemaLine(event.ToJsonLine());
    EXPECT_EQ(event.route, want_routes[i]) << "request " << i;
    EXPECT_EQ(event.outcome, "ok");
    EXPECT_EQ(event.dataset, "wide-event");
    EXPECT_FALSE(event.partial);
    EXPECT_EQ(event.patterns, sweep.patterns[i]);
    EXPECT_GT(event.threads, 0u);
  }
  // Seed provenance: recycle reuses the scratch round's support; the exact
  // hit is flagged as a cache hit at its own support.
  EXPECT_EQ(sweep.events[0].seed_support, 0u);
  EXPECT_EQ(sweep.events[1].seed_support, sweep.events[0].min_support);
  EXPECT_TRUE(sweep.events[3].cache_hit);
  EXPECT_EQ(sweep.events[3].seed_support, sweep.events[3].min_support);
  // Scratch mining under the request-scoped governor reports real byte
  // accounting even though no budget was armed.
  EXPECT_GT(sweep.events[0].bytes_peak, 0u);
}

TEST_F(ServiceWideEventTest, RequestIdsAreUniqueAndMonotonic) {
  const SweepOutcome first = RunFourRouteSweep(db_, "ids-a", 1);
  const SweepOutcome second = RunFourRouteSweep(db_, "ids-b", 1);
  std::vector<uint64_t> ids;
  for (const auto& e : first.events) ids.push_back(e.request_id);
  for (const auto& e : second.events) ids.push_back(e.request_id);
  ASSERT_EQ(ids.size(), 8u);
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LT(ids[i - 1], ids[i]) << "ids must be strictly increasing";
  }
}

TEST_F(ServiceWideEventTest, RouteCountsReconcileWithServeCounters) {
  const SweepOutcome sweep = RunFourRouteSweep(db_, "reconcile", 1);
  ASSERT_EQ(sweep.events.size(), 4u);
  std::map<std::string, uint64_t> route_counts;
  for (const auto& event : sweep.events) ++route_counts[event.route];

  const auto delta = [&](const char* name) {
    const auto it = sweep.counter_deltas.find(name);
    return it == sweep.counter_deltas.end() ? uint64_t{0} : it->second;
  };
  EXPECT_EQ(delta("serve.requests"), sweep.events.size());
  EXPECT_EQ(delta("serve.scratch"), route_counts["none"]);
  EXPECT_EQ(delta("serve.recycled"), route_counts["recycle"]);
  EXPECT_EQ(delta("serve.filter_down"), route_counts["filter-down"]);
  EXPECT_EQ(delta("serve.cache_hits"), route_counts["exact"]);
  EXPECT_EQ(delta("serve.errors"), 0u);
}

TEST_F(ServiceWideEventTest, PhaseSecondsSumCloseToWallTime) {
  const SweepOutcome sweep = RunFourRouteSweep(db_, "phases", 1);
  ASSERT_EQ(sweep.events.size(), 4u);
  for (const RequestEvent& event : sweep.events) {
    double phase_sum = 0.0;
    for (const auto& [name, seconds] : event.phases) {
      EXPECT_EQ(name.rfind("serve.", 0), 0u) << name;
      EXPECT_NE(name, "serve.request") << "envelope span is not a phase";
      phase_sum += seconds;
    }
    // The phase spans are disjoint and nested inside the request, so the
    // sum cannot exceed the wall time and must account for nearly all of
    // it. The absolute floor keeps microsecond-scale exact hits (where
    // fixed envelope overhead dominates) from flaking the relative band.
    EXPECT_LE(phase_sum, event.seconds + 1e-6) << event.ToJsonLine();
    const double slack =
        (event.seconds * 0.05) > 0.002 ? event.seconds * 0.05 : 0.002;
    EXPECT_GE(phase_sum, event.seconds - slack) << event.ToJsonLine();
  }
}

TEST_F(ServiceWideEventTest, PartialGovernedRequestReportsOutcome) {
  MiningService service(db_, "governed");
  RunContext ctx;
  ctx.SetDeadlineAfterMillis(0);  // Already due: deterministic early stop.
  fpm::MineRequest request =
      fpm::MineRequest::At(db_.NumTransactions() / 10);
  request.run_context = &ctx;
  auto result = service.Mine(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->partial);
  const auto events = RequestLog::Global().Events();
  ASSERT_FALSE(events.empty());
  const RequestEvent& event = events.back();
  ExpectSchemaLine(event.ToJsonLine());
  EXPECT_TRUE(event.partial);
  EXPECT_EQ(event.outcome, "partial");
  EXPECT_EQ(event.frontier_support, result->frontier_support);
  EXPECT_EQ(ctx.request_id(), event.request_id);
}

// The attribution must be thread-count independent: the deterministic work
// counters (items scanned, projections built) and the answers themselves
// are identical at 1 and 4 threads, so a 4-thread request log reads the
// same as a 1-thread one apart from wall times.
TEST_F(ServiceWideEventTest, AttributionEquivalentAtOneAndFourThreads) {
  const SweepOutcome t1 = RunFourRouteSweep(db_, "threads-1", 1);
  const SweepOutcome t4 = RunFourRouteSweep(db_, "threads-4", 4);
  ASSERT_EQ(t1.events.size(), 4u);
  ASSERT_EQ(t4.events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t1.events[i].route, t4.events[i].route) << "request " << i;
    EXPECT_EQ(t1.events[i].patterns, t4.events[i].patterns)
        << "request " << i;
    EXPECT_EQ(t4.events[i].threads, 4u);
  }
  const auto work = [](const SweepOutcome& sweep, const char* name) {
    const auto it = sweep.counter_deltas.find(name);
    return it == sweep.counter_deltas.end() ? uint64_t{0} : it->second;
  };
  EXPECT_EQ(work(t1, "mine.items_scanned"), work(t4, "mine.items_scanned"));
  EXPECT_EQ(work(t1, "mine.projections_built"),
            work(t4, "mine.projections_built"));
  EXPECT_EQ(work(t1, "serve.requests"), work(t4, "serve.requests"));
}

}  // namespace
}  // namespace gogreen
