// Tests for memory-limited mining (Section 5.3): spill-file round trips,
// the memory model, and exactness of the disk-partitioned miners under
// budgets small enough to force (multi-level) partitioning.

#include <gtest/gtest.h>

#include "core/compressor.h"
#include "core/disk_recycle.h"
#include "fpm/miner.h"
#include "fpm/partition.h"
#include "tests/test_util.h"
#include "util/env.h"

namespace gogreen {
namespace {

using core::CompressedDb;
using core::CompressionStrategy;
using core::MatcherKind;
using fpm::PatternSet;
using fpm::Rank;
using fpm::TransactionDb;
using testutil::PaperExampleDb;
using testutil::RandomDb;
using testutil::RandomDenseDb;

PatternSet Direct(const TransactionDb& db, uint64_t minsup) {
  auto miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(SpillTest, WriteReadRoundTrip) {
  fpm::SpillWriter writer(TempDir(), "spill_test", 4);
  ASSERT_TRUE(writer.Append(1, std::vector<Rank>{2, 3}).ok());
  ASSERT_TRUE(writer.Append(1, std::vector<Rank>{}).ok());
  ASSERT_TRUE(writer.Append(3, std::vector<Rank>{9}).ok());
  ASSERT_TRUE(writer.Finish().ok());

  auto rows1 = fpm::ReadSpill(writer.PathOf(1));
  ASSERT_TRUE(rows1.ok());
  ASSERT_EQ(rows1->size(), 2u);
  EXPECT_EQ((*rows1)[0], (std::vector<Rank>{2, 3}));
  EXPECT_TRUE((*rows1)[1].empty());

  auto rows3 = fpm::ReadSpill(writer.PathOf(3));
  ASSERT_TRUE(rows3.ok());
  ASSERT_EQ(rows3->size(), 1u);

  // Rank 0 never written: missing file reads as empty.
  auto rows0 = fpm::ReadSpill(writer.PathOf(0));
  ASSERT_TRUE(rows0.ok());
  EXPECT_TRUE(rows0->empty());

  EXPECT_EQ(writer.used_ranks().size(), 2u);
  writer.Cleanup();
  // After cleanup the files are gone.
  auto again = fpm::ReadSpill(writer.PathOf(1));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

TEST(MemoryModelTest, GrowsWithInput) {
  EXPECT_LT(fpm::EstimateHMineMemory(100, 10, 5),
            fpm::EstimateHMineMemory(10000, 1000, 5));
  EXPECT_GT(core::EstimateSliceMineMemory(1000, 100, 10, 50), 0u);
}

TEST(MemoryLimitedHMineTest, UnlimitedBudgetMatchesInMemory) {
  const TransactionDb db = RandomDb(61, 400, 50, 7.0);
  PatternSet expected = Direct(db, 12);
  auto result =
      fpm::MineHMineMemoryLimited(db, 12, SIZE_MAX, TempDir());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(MemoryLimitedHMineTest, TinyBudgetForcesPartitioningAndStaysExact) {
  const TransactionDb db = RandomDb(62, 600, 50, 7.0);
  PatternSet expected = Direct(db, 15);
  // A few KB: the top level must spill, and most first-level partitions
  // will recurse at least once more.
  for (size_t budget : {size_t{2} << 10, size_t{16} << 10, size_t{1} << 20}) {
    SCOPED_TRACE(budget);
    auto result = fpm::MineHMineMemoryLimited(db, 15, budget, TempDir());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    PatternSet got = std::move(result).value();
    EXPECT_TRUE(PatternSet::Equal(&expected, &got))
        << "missing: " << PatternSet::Difference(&expected, &got).size()
        << " extra: " << PatternSet::Difference(&got, &expected).size();
  }
}

TEST(MemoryLimitedHMineTest, DenseDataExact) {
  const TransactionDb db = RandomDenseDb(63, 300, 10, 3);
  PatternSet expected = Direct(db, 200);
  auto result =
      fpm::MineHMineMemoryLimited(db, 200, size_t{8} << 10, TempDir());
  ASSERT_TRUE(result.ok());
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(MemoryLimitedHMineTest, RejectsZeroSupport) {
  EXPECT_FALSE(
      fpm::MineHMineMemoryLimited(PaperExampleDb(), 0, 1024, TempDir())
          .ok());
}

CompressedDb Compress(const TransactionDb& db, uint64_t xi_old) {
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto fp = miner->Mine(db, xi_old);
  EXPECT_TRUE(fp.ok());
  auto cdb = core::CompressDatabase(
      db, fp.value(), {CompressionStrategy::kMcp, MatcherKind::kAuto});
  EXPECT_TRUE(cdb.ok());
  return std::move(cdb).value();
}

TEST(MemoryLimitedRecycleTest, UnlimitedBudgetMatchesDirect) {
  const TransactionDb db = RandomDb(64, 400, 50, 7.0);
  const CompressedDb cdb = Compress(db, 40);
  PatternSet expected = Direct(db, 12);
  auto result =
      core::MineRecycleHMMemoryLimited(cdb, 12, SIZE_MAX, TempDir());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(MemoryLimitedRecycleTest, TinyBudgetStaysExact) {
  const TransactionDb db = RandomDb(65, 600, 50, 7.0);
  const CompressedDb cdb = Compress(db, 50);
  PatternSet expected = Direct(db, 15);
  for (size_t budget : {size_t{2} << 10, size_t{32} << 10}) {
    SCOPED_TRACE(budget);
    auto result =
        core::MineRecycleHMMemoryLimited(cdb, 15, budget, TempDir());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    PatternSet got = std::move(result).value();
    EXPECT_TRUE(PatternSet::Equal(&expected, &got))
        << "missing: " << PatternSet::Difference(&expected, &got).size()
        << " extra: " << PatternSet::Difference(&got, &expected).size();
  }
}

TEST(MemoryLimitedRecycleTest, DenseDataExactUnderBudget) {
  const TransactionDb db = RandomDenseDb(66, 300, 10, 3);
  const CompressedDb cdb = Compress(db, 250);
  PatternSet expected = Direct(db, 180);
  auto result =
      core::MineRecycleHMMemoryLimited(cdb, 180, size_t{4} << 10, TempDir());
  ASSERT_TRUE(result.ok());
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

TEST(MemoryLimitedRecycleTest, PaperExampleUnderSmallBudget) {
  const TransactionDb db = PaperExampleDb();
  const CompressedDb cdb = Compress(db, 3);
  PatternSet expected = Direct(db, 2);
  auto result = core::MineRecycleHMMemoryLimited(cdb, 2, 1, TempDir());
  ASSERT_TRUE(result.ok());
  PatternSet got = std::move(result).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));
}

}  // namespace
}  // namespace gogreen
