// Tests for association-rule generation.

#include "fpm/rules.h"

#include <gtest/gtest.h>

#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::fpm {
namespace {

/// Complete set for the paper example at support 3 (11 patterns).
PatternSet PaperFp() {
  auto miner = CreateMiner(MinerKind::kFpGrowth);
  auto result = miner->Mine(testutil::PaperExampleDb(), 3);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

const Rule* FindRule(const std::vector<Rule>& rules,
                     const std::vector<ItemId>& ante,
                     const std::vector<ItemId>& cons) {
  for (const Rule& r : rules) {
    if (r.antecedent == ante && r.consequent == cons) return &r;
  }
  return nullptr;
}

TEST(RulesTest, PaperExampleConfidences) {
  auto rules = GenerateRules(PaperFp(), 5, {/*min_confidence=*/0.0});
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();

  // {f,g} -> {c}: support(fgc)=3, support(fg)=3 -> confidence 1.0,
  // lift = 1.0 / (4/5) = 1.25.
  const Rule* r = FindRule(*rules, {5, 6}, {2});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->support, 3u);
  EXPECT_DOUBLE_EQ(r->confidence, 1.0);
  EXPECT_DOUBLE_EQ(r->lift, 1.25);

  // {e} -> {a}: support(ae)=3, support(e)=4 -> confidence 0.75,
  // lift = 0.75 / (3/5) = 1.25.
  const Rule* r2 = FindRule(*rules, {4}, {0});
  ASSERT_NE(r2, nullptr);
  EXPECT_DOUBLE_EQ(r2->confidence, 0.75);
  EXPECT_DOUBLE_EQ(r2->lift, 1.25);
}

TEST(RulesTest, MinConfidenceFilters) {
  auto all = GenerateRules(PaperFp(), 5, {0.0});
  auto strict = GenerateRules(PaperFp(), 5, {0.9});
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_LT(strict->size(), all->size());
  for (const Rule& r : *strict) EXPECT_GE(r.confidence, 0.9);
}

TEST(RulesTest, SortedByConfidenceDescending) {
  auto rules = GenerateRules(PaperFp(), 5, {0.0});
  ASSERT_TRUE(rules.ok());
  for (size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].confidence, (*rules)[i].confidence);
  }
}

TEST(RulesTest, MultiItemConsequent) {
  RuleOptions options;
  options.min_confidence = 0.0;
  options.max_consequent = 2;
  auto rules = GenerateRules(PaperFp(), 5, options);
  ASSERT_TRUE(rules.ok());
  // {f} -> {c,g} exists: support(fgc)=3 / support(f)=3 = 1.0.
  const Rule* r = FindRule(*rules, {5}, {2, 6});
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->confidence, 1.0);
}

TEST(RulesTest, IncompleteSetRejected) {
  PatternSet fp;
  fp.Add({1, 2}, 5);  // Subsets {1}, {2} missing.
  auto rules = GenerateRules(fp, 10, {0.0});
  EXPECT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kInvalidArgument);
}

TEST(RulesTest, BadArgumentsRejected) {
  EXPECT_FALSE(GenerateRules(PaperFp(), 0, {0.5}).ok());
  EXPECT_FALSE(GenerateRules(PaperFp(), 5, {-0.1}).ok());
  EXPECT_FALSE(GenerateRules(PaperFp(), 5, {1.5}).ok());
  RuleOptions bad;
  bad.max_consequent = 0;
  EXPECT_FALSE(GenerateRules(PaperFp(), 5, bad).ok());
}

TEST(RulesTest, SingletonPatternsYieldNoRules) {
  PatternSet fp;
  fp.Add({1}, 5);
  fp.Add({2}, 3);
  auto rules = GenerateRules(fp, 10, {0.0});
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

TEST(RulesTest, RandomizedConfidenceDefinitionHolds) {
  const auto db = testutil::RandomDb(66, 300, 30, 5.0);
  auto fp = CreateMiner(MinerKind::kEclat)->Mine(db, 10);
  ASSERT_TRUE(fp.ok());
  auto rules = GenerateRules(*fp, db.NumTransactions(), {0.3});
  ASSERT_TRUE(rules.ok());
  for (const Rule& r : *rules) {
    // Recompute from raw data.
    std::vector<ItemId> joint = r.antecedent;
    joint.insert(joint.end(), r.consequent.begin(), r.consequent.end());
    CanonicalizeItems(&joint);
    const uint64_t joint_sup = db.CountSupport(ItemSpan(joint));
    const uint64_t ante_sup = db.CountSupport(ItemSpan(r.antecedent));
    EXPECT_EQ(r.support, joint_sup);
    EXPECT_DOUBLE_EQ(r.confidence, static_cast<double>(joint_sup) /
                                       static_cast<double>(ante_sup));
  }
}

TEST(RulesTest, ToStringRendersAllParts) {
  Rule r;
  r.antecedent = {1, 2};
  r.consequent = {3};
  r.support = 7;
  r.confidence = 0.5;
  r.lift = 2.0;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("{1,2}"), std::string::npos);
  EXPECT_NE(s.find("{3}"), std::string::npos);
  EXPECT_NE(s.find("sup=7"), std::string::npos);
}

}  // namespace
}  // namespace gogreen::fpm
