// Edge-case coverage across the library: degenerate databases, extreme
// thresholds, identical transactions (maximal group sharing), and the
// exposed partition/row-mining entry points.

#include <gtest/gtest.h>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/recycler.h"
#include "fpm/hmine.h"
#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen {
namespace {

using core::CompressDatabase;
using core::CompressionStrategy;
using core::CreateCompressedMiner;
using core::MatcherKind;
using core::RecycleAlgo;
using fpm::FList;
using fpm::ItemId;
using fpm::PatternSet;
using fpm::Rank;
using fpm::TransactionDb;

constexpr RecycleAlgo kAllRecycleAlgos[] = {
    RecycleAlgo::kNaive, RecycleAlgo::kHMine, RecycleAlgo::kFpGrowth,
    RecycleAlgo::kTreeProjection};

constexpr fpm::MinerKind kAllMiners[] = {
    fpm::MinerKind::kApriori, fpm::MinerKind::kEclat, fpm::MinerKind::kHMine,
    fpm::MinerKind::kFpGrowth, fpm::MinerKind::kTreeProjection};

TEST(EdgeCasesTest, AllIdenticalTransactions) {
  // One giant group; every miner must enumerate the full subset lattice.
  TransactionDb db;
  for (int i = 0; i < 50; ++i) db.AddTransaction({2, 4, 6, 8});
  for (fpm::MinerKind kind : kAllMiners) {
    SCOPED_TRACE(fpm::MinerKindName(kind));
    auto result = fpm::CreateMiner(kind)->Mine(db, 50);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), 15u);  // 2^4 - 1.
    for (const auto& p : *result) EXPECT_EQ(p.support, 50u);
  }
}

TEST(EdgeCasesTest, IdenticalTransactionsRecycledIsSingleGroup) {
  TransactionDb db;
  for (int i = 0; i < 50; ++i) db.AddTransaction({2, 4, 6, 8});
  auto fp = fpm::CreateMiner(fpm::MinerKind::kEclat)->Mine(db, 50);
  ASSERT_TRUE(fp.ok());
  auto cdb = CompressDatabase(db, *fp,
                              {CompressionStrategy::kMcp, MatcherKind::kAuto});
  ASSERT_TRUE(cdb.ok());
  EXPECT_EQ(cdb->NumGroups(), 1u);
  EXPECT_EQ(cdb->StoredItems(), 4u);  // The whole DB compresses to 4 items.

  for (RecycleAlgo algo : kAllRecycleAlgos) {
    SCOPED_TRACE(RecycleAlgoName(algo));
    auto miner = CreateCompressedMiner(algo);
    auto result = miner->MineCompressed(*cdb, 10);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), 15u);
    // The single-group shortcut must avoid building any projection.
    EXPECT_EQ(miner->stats().projections_built, 0u);
  }
}

TEST(EdgeCasesTest, SingletonTransactionsOnly) {
  TransactionDb db;
  for (ItemId it = 0; it < 10; ++it) {
    db.AddTransaction({it});
    db.AddTransaction({it});
  }
  for (fpm::MinerKind kind : kAllMiners) {
    SCOPED_TRACE(fpm::MinerKindName(kind));
    auto result = fpm::CreateMiner(kind)->Mine(db, 2);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), 10u);
  }
}

TEST(EdgeCasesTest, MinSupportOneEnumeratesEverything) {
  TransactionDb db = testutil::MakeDb({{1, 2}, {3}});
  for (fpm::MinerKind kind : kAllMiners) {
    SCOPED_TRACE(fpm::MinerKindName(kind));
    auto result = fpm::CreateMiner(kind)->Mine(db, 1);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), 4u);  // {1},{2},{1,2},{3}.
  }
}

TEST(EdgeCasesTest, LargeItemIdsHandled) {
  TransactionDb db;
  db.AddTransaction({1000000, 2000000});
  db.AddTransaction({1000000, 2000000});
  auto result = fpm::CreateMiner(fpm::MinerKind::kHMine)->Mine(db, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  EXPECT_EQ(result->SupportOf(std::vector<ItemId>{1000000, 2000000}), 2u);
}

TEST(EdgeCasesTest, RecyclingWithPatternsMissingFromDb) {
  // Seeding compression with patterns that never match (e.g. from another
  // table) must degrade gracefully to an uncovered database.
  TransactionDb db = testutil::MakeDb({{1, 2}, {1, 2}, {3}});
  PatternSet foreign;
  foreign.Add({7, 8}, 5);
  auto cdb = CompressDatabase(db, foreign,
                              {CompressionStrategy::kMcp, MatcherKind::kAuto});
  ASSERT_TRUE(cdb.ok());
  for (RecycleAlgo algo : kAllRecycleAlgos) {
    SCOPED_TRACE(RecycleAlgoName(algo));
    auto result = CreateCompressedMiner(algo)->MineCompressed(*cdb, 2);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->SupportOf(std::vector<ItemId>{1, 2}), 2u);
  }
}

TEST(EdgeCasesTest, GroupWithEntirelyInfrequentOutlyingParts) {
  // Members whose outlying items all fall below xi_new exercise the
  // empty_count bookkeeping.
  TransactionDb db;
  for (int i = 0; i < 6; ++i) {
    db.AddTransaction({1, 2, static_cast<ItemId>(100 + i)});  // Unique tail.
  }
  PatternSet fp;
  fp.Add({1, 2}, 6);
  auto cdb = CompressDatabase(db, fp,
                              {CompressionStrategy::kMcp, MatcherKind::kAuto});
  ASSERT_TRUE(cdb.ok());
  for (RecycleAlgo algo : kAllRecycleAlgos) {
    SCOPED_TRACE(RecycleAlgoName(algo));
    auto result = CreateCompressedMiner(algo)->MineCompressed(*cdb, 2);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), 3u);  // {1},{2},{1,2} at support 6.
    EXPECT_EQ(result->SupportOf(std::vector<ItemId>{1, 2}), 6u);
  }
}

TEST(EdgeCasesTest, MineRankedRowsPrefixHandling) {
  // The exposed H-Mine core must prepend the prefix to every emission.
  TransactionDb db = testutil::MakeDb({{1, 2, 3}, {1, 2, 3}, {2, 3}});
  const FList flist = FList::Build(db, 2);
  std::vector<std::vector<Rank>> rows;
  for (fpm::Tid t = 0; t < db.NumTransactions(); ++t) {
    rows.push_back(flist.EncodeTransaction(db.Transaction(t)));
  }
  PatternSet out;
  fpm::MiningStats stats;
  const Rank prefix_rank = flist.rank(1);
  ASSERT_NE(prefix_rank, fpm::kNoRank);
  fpm::MineRankedRowsHM(rows, flist, 2, {prefix_rank}, &out, &stats);
  // Every emitted pattern contains item 1.
  for (const auto& p : out) {
    EXPECT_TRUE(std::find(p.items.begin(), p.items.end(), 1u) !=
                p.items.end())
        << p.ToString();
  }
}

TEST(EdgeCasesTest, DeepRelaxationChain) {
  // Mine at a ladder of thresholds, recycling each round into the next;
  // every rung must stay exact.
  const TransactionDb db = testutil::RandomDb(881, 500, 50, 7.0);
  core::RecyclingSession session(db);
  for (uint64_t sup : {120u, 60u, 30u, 15u, 8u, 4u}) {
    SCOPED_TRACE(sup);
    auto got = session.Mine(sup);
    ASSERT_TRUE(got.ok());
    auto expected =
        fpm::CreateMiner(fpm::MinerKind::kFpGrowth)->Mine(db, sup);
    ASSERT_TRUE(expected.ok());
    PatternSet a = std::move(expected).value();
    PatternSet b = std::move(got).value();
    EXPECT_TRUE(PatternSet::Equal(&a, &b));
  }
}

TEST(EdgeCasesTest, CompressionOfEmptyDatabase) {
  TransactionDb db;
  PatternSet fp;
  fp.Add({1}, 1);
  auto cdb = CompressDatabase(db, fp,
                              {CompressionStrategy::kMcp, MatcherKind::kAuto});
  ASSERT_TRUE(cdb.ok());
  EXPECT_EQ(cdb->NumTuples(), 0u);
  for (RecycleAlgo algo : kAllRecycleAlgos) {
    auto result = CreateCompressedMiner(algo)->MineCompressed(*cdb, 1);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty());
  }
}

}  // namespace
}  // namespace gogreen
