// Tests for the data substrate: .dat I/O, the Quest and dense generators,
// and the named benchmark datasets.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/dat_io.h"
#include "data/datasets.h"
#include "data/dense_gen.h"
#include "data/quest_gen.h"
#include "fpm/miner.h"
#include "util/env.h"

namespace gogreen::data {
namespace {

using fpm::ItemId;
using fpm::TransactionDb;

std::string TempPath(const char* name) {
  return TempDir() + "/" + name + std::to_string(::getpid()) + ".dat";
}

TEST(DatIoTest, RoundTrip) {
  TransactionDb db;
  db.AddTransaction({3, 1, 2});
  db.AddTransaction({});
  db.AddTransaction({42});
  const std::string path = TempPath("dat_roundtrip");
  auto written = WriteDatFile(db, path);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_GT(written.value(), 0u);

  auto loaded = ReadDatFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->NumTransactions(), 3u);
  const fpm::ItemSpan row0 = loaded->Transaction(0);
  EXPECT_EQ(std::vector<ItemId>(row0.begin(), row0.end()),
            (std::vector<ItemId>{1, 2, 3}));
  EXPECT_TRUE(loaded->Transaction(1).empty());
  std::remove(path.c_str());
}

TEST(DatIoTest, ReadHandlesWhitespaceVariants) {
  const std::string path = TempPath("dat_ws");
  {
    std::ofstream out(path);
    out << "1  2\t3 \n\n 7\n";
  }
  auto loaded = ReadDatFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumTransactions(), 3u);
  EXPECT_EQ(loaded->Transaction(0).size(), 3u);
  EXPECT_TRUE(loaded->Transaction(1).empty());
  EXPECT_EQ(loaded->Transaction(2).size(), 1u);
  std::remove(path.c_str());
}

TEST(DatIoTest, ReadRejectsMalformedTokens) {
  const std::string path = TempPath("dat_bad");
  {
    std::ofstream out(path);
    out << "1 banana 3\n";
  }
  auto loaded = ReadDatFile(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatIoTest, MalformedInputTable) {
  // Every malformed shape must come back as InvalidArgument naming the
  // offending line — never UB, never a crash, never a silent truncation.
  struct Case {
    const char* name;
    std::string content;
    const char* expect_line;  // "path:<line>" suffix expected in the message.
  };
  // Matches the 1 MiB line cap in dat_io.cc.
  const std::string overlong(size_t{1} << 20, 'x');
  const Case cases[] = {
      {"non_numeric_token", "1 2\nfoo 3\n", ":2"},
      {"negative_item", "1 -2 3\n", ":1"},
      {"overflow_item", "1 99999999999 3\n", ":1"},
      {"sentinel_item", "4294967295\n", ":1"},
      {"embedded_nul", std::string("1 2\n3 ") + '\0' + " 4\n", ":2"},
      {"line_too_long", overlong + "\n", ":1"},
      {"trailing_garbage", "1 2 3x\n", ":1"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string path = TempPath(c.name);
    {
      std::ofstream out(path, std::ios::binary);
      out.write(c.content.data(),
                static_cast<std::streamsize>(c.content.size()));
    }
    auto loaded = ReadDatFile(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
    const std::string msg = loaded.status().ToString();
    EXPECT_NE(msg.find(path + c.expect_line), std::string::npos) << msg;
    std::remove(path.c_str());
  }
}

TEST(DatIoTest, ValidEdgeCasesStillParse) {
  // Boundary inputs that must NOT be rejected: max-1 item id, a line just
  // under the cap, CRLF endings, and a final line without a newline.
  const std::string path = TempPath("dat_edge");
  {
    std::ofstream out(path, std::ios::binary);
    out << "4294967294\r\n";
    out << "1 2\r\n";
    out << "7 8";  // No trailing newline.
  }
  auto loaded = ReadDatFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->NumTransactions(), 3u);
  EXPECT_EQ(loaded->Transaction(0)[0], 4294967294u);
  EXPECT_EQ(loaded->Transaction(2).size(), 2u);
  std::remove(path.c_str());
}

TEST(DatIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadDatFile("/nonexistent/x.dat").ok());
}

TEST(QuestGenTest, RespectsBasicShape) {
  QuestConfig cfg;
  cfg.num_transactions = 2000;
  cfg.avg_transaction_len = 10.0;
  cfg.num_items = 500;
  cfg.num_patterns = 50;
  cfg.seed = 5;
  auto db = GenerateQuest(cfg);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumTransactions(), 2000u);
  EXPECT_NEAR(db->AvgLength(), 10.0, 2.5);
  EXPECT_LE(db->ItemUniverseSize(), 500u);
}

TEST(QuestGenTest, DeterministicPerSeed) {
  QuestConfig cfg;
  cfg.num_transactions = 200;
  cfg.seed = 9;
  auto a = GenerateQuest(cfg);
  auto b = GenerateQuest(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumTransactions(), b->NumTransactions());
  for (fpm::Tid t = 0; t < a->NumTransactions(); ++t) {
    const auto ra = a->Transaction(t);
    const auto rb = b->Transaction(t);
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()));
  }
  cfg.seed = 10;
  auto c = GenerateQuest(cfg);
  ASSERT_TRUE(c.ok());
  // Different seed differs somewhere.
  bool differs = c->TotalItems() != a->TotalItems();
  for (fpm::Tid t = 0; !differs && t < 10; ++t) {
    const auto ra = a->Transaction(t);
    const auto rc = c->Transaction(t);
    differs = !std::equal(ra.begin(), ra.end(), rc.begin(), rc.end());
  }
  EXPECT_TRUE(differs);
}

TEST(QuestGenTest, ProducesFrequentPatterns) {
  QuestConfig cfg;
  cfg.num_transactions = 3000;
  cfg.num_items = 300;
  cfg.num_patterns = 30;
  cfg.avg_pattern_len = 3.0;
  cfg.weight_skew = 2.0;
  cfg.corruption_mean = 0.2;
  cfg.seed = 6;
  auto db = GenerateQuest(cfg);
  ASSERT_TRUE(db.ok());
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto fp = miner->Mine(*db, fpm::AbsoluteSupport(0.05, 3000));
  ASSERT_TRUE(fp.ok());
  EXPECT_GT(fp->size(), 5u);
  EXPECT_GE(fp->MaxLength(), 2u);
}

TEST(QuestGenTest, RejectsBadConfig) {
  QuestConfig cfg;
  cfg.num_items = 0;
  EXPECT_FALSE(GenerateQuest(cfg).ok());
  cfg = QuestConfig();
  cfg.num_patterns = 0;
  EXPECT_FALSE(GenerateQuest(cfg).ok());
  cfg = QuestConfig();
  cfg.avg_transaction_len = 0.5;
  EXPECT_FALSE(GenerateQuest(cfg).ok());
}

TEST(DenseGenTest, EveryTupleHasOneItemPerAttribute) {
  DenseConfig cfg = DenseConfig::Uniform(500, 8, 4, 11);
  auto db = GenerateDense(cfg);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumTransactions(), 500u);
  EXPECT_DOUBLE_EQ(db->AvgLength(), 8.0);
  for (fpm::Tid t = 0; t < 50; ++t) {
    const auto row = db->Transaction(t);
    ASSERT_EQ(row.size(), 8u);
    for (size_t a = 0; a < 8; ++a) {
      EXPECT_GE(row[a], a * 4);
      EXPECT_LT(row[a], (a + 1) * 4);
    }
  }
}

TEST(DenseGenTest, PerAttributeDominantProbsShapeFrequencies) {
  DenseConfig cfg = DenseConfig::Uniform(4000, 4, 3, 13);
  cfg.dominant_probs = {0.99, 0.5, 0.99, 0.2};
  auto db = GenerateDense(cfg);
  ASSERT_TRUE(db.ok());
  const auto counts = db->CountItemSupports();
  EXPECT_GT(counts[0], 3800u);   // Attr 0 dominant ~99%.
  EXPECT_LT(counts[3 * 3], 1200u);  // Attr 3 dominant ~20%.
}

TEST(DenseGenTest, RejectsBadConfig) {
  DenseConfig cfg;
  EXPECT_FALSE(GenerateDense(cfg).ok());  // No cardinalities.
  cfg.cardinalities = {3, 0};
  EXPECT_FALSE(GenerateDense(cfg).ok());  // Zero cardinality.
  cfg.cardinalities = {3, 3};
  cfg.dominant_probs = {0.5};
  EXPECT_FALSE(GenerateDense(cfg).ok());  // Size mismatch.
}

TEST(DatasetsTest, SmokeScaleShapes) {
  for (DatasetId id : kAllDatasets) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    SCOPED_TRACE(spec.name);
    auto db = MakeDataset(id, BenchScale::kSmoke);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->NumTransactions(),
              DatasetTransactions(id, BenchScale::kSmoke));
    EXPECT_GT(db->AvgLength(), 1.0);
    // The xi_new sweep is a strict relaxation sequence below xi_old.
    double prev = spec.xi_old;
    for (double xi : spec.xi_new_sweep) {
      EXPECT_LT(xi, prev);
      prev = xi;
    }
  }
}

TEST(DatasetsTest, DenseFlagMatchesShape) {
  auto dense = MakeDataset(DatasetId::kConnect4Sub, BenchScale::kSmoke);
  ASSERT_TRUE(dense.ok());
  EXPECT_DOUBLE_EQ(dense->AvgLength(), 43.0);
  EXPECT_TRUE(GetDatasetSpec(DatasetId::kConnect4Sub).dense);
  EXPECT_FALSE(GetDatasetSpec(DatasetId::kWeatherSub).dense);
}

TEST(DatasetsTest, RecyclablePatternsExistAtXiOld) {
  // The premise of every experiment: mining at xi_old yields a non-trivial
  // pattern set to recycle.
  for (DatasetId id : kAllDatasets) {
    const DatasetSpec& spec = GetDatasetSpec(id);
    SCOPED_TRACE(spec.name);
    auto db = MakeDataset(id, BenchScale::kSmoke);
    ASSERT_TRUE(db.ok());
    auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
    auto fp = miner->Mine(
        *db, fpm::AbsoluteSupport(spec.xi_old, db->NumTransactions()));
    ASSERT_TRUE(fp.ok());
    EXPECT_GT(fp->size(), 10u);
  }
}

}  // namespace
}  // namespace gogreen::data
